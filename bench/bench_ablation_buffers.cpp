// Ablation: FIFO buffer sizing policies (Section 6). Compares
//  - EQ5:    the paper's Equation 5 sizes on undirected-cycle edges;
//  - NAIVE:  every streaming channel sized to its full edge volume;
//  - MIN1:   every channel one slot deep (under-provisioned).
// Reports total buffer space, deadlock rate, and simulated makespan blowup,
// demonstrating that Eq. 5 is both deadlock-free and near-minimal.

#include <iostream>

#include "bench_common.hpp"
#include "pipeline/registry.hpp"
#include "sim/dataflow_sim.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

sts::BufferPlan with_capacity(const sts::BufferPlan& base, const sts::TaskGraph& g,
                              bool full_volume) {
  sts::BufferPlan plan = base;
  for (sts::ChannelPlan& c : plan.channels) {
    c.capacity = full_volume ? g.edge(c.edge).volume : 1;
  }
  plan.total_capacity = 0;
  for (const sts::ChannelPlan& c : plan.channels) plan.total_capacity += c.capacity;
  return plan;
}

}  // namespace

int main() {
  using namespace sts;
  using namespace sts::bench;
  const int graphs = graphs_per_config();

  std::cout << "Ablation: FIFO sizing policy vs deadlocks and buffer space\n"
            << graphs << " random graphs per topology (P = half the tasks, SB-RLX)\n\n";

  BenchReport report("ablation_buffers");
  report.add("graphs", graphs);
  std::int64_t total_dead_eq5 = 0, total_runs = 0;
  Table table({"Topology", "space EQ5", "space NAIVE", "EQ5/NAIVE", "deadlock EQ5",
               "deadlock MIN1", "makespan MIN1/EQ5"});
  // Full paper-size topologies: affordable since the bulk-advance engine
  // made simulation cost independent of stream volume.
  for (const Topology& topo : paper_topologies()) {
    std::vector<double> space_eq5, space_naive, blowup;
    int dead_eq5 = 0, dead_min1 = 0, runs = 0;
    for (int seed = 0; seed < graphs; ++seed) {
      const TaskGraph g = topo.make(static_cast<std::uint64_t>(seed) + 1);
      MachineConfig machine;
      machine.num_pes =
          std::max<std::int64_t>(2, static_cast<std::int64_t>(g.node_count()) / 2);
      const ScheduleResult r = schedule_by_name("streaming-rlx", g, machine);
      ++runs;

      space_eq5.push_back(static_cast<double>(r.buffers->total_capacity));
      const BufferPlan naive = with_capacity(*r.buffers, g, /*full_volume=*/true);
      space_naive.push_back(static_cast<double>(naive.total_capacity));

      const SimResult eq5 = simulate_streaming(g, *r.streaming, *r.buffers);
      if (eq5.deadlocked) ++dead_eq5;

      const BufferPlan min1 = with_capacity(*r.buffers, g, /*full_volume=*/false);
      const SimResult starved = simulate_streaming(g, *r.streaming, min1);
      if (starved.deadlocked) {
        ++dead_min1;
      } else if (!eq5.deadlocked && eq5.makespan > 0) {
        blowup.push_back(static_cast<double>(starved.makespan) /
                         static_cast<double>(eq5.makespan));
      }
    }
    table.add_row({topo.name, fmt(median_of(space_eq5), 0), fmt(median_of(space_naive), 0),
                   fmt(median_of(space_eq5) / std::max(1.0, median_of(space_naive)), 3),
                   std::to_string(dead_eq5) + "/" + std::to_string(runs),
                   std::to_string(dead_min1) + "/" + std::to_string(runs),
                   blowup.empty() ? "-" : fmt(median_of(blowup), 2)});
    total_dead_eq5 += dead_eq5;
    total_runs += runs;
  }
  table.print(std::cout);
  std::cout << "\nExpected: EQ5 never deadlocks with a fraction of the naive space;\n"
               "single-slot FIFOs deadlock whenever reconvergent streaming paths\n"
               "carry unbalanced delays.\n";
  report.add("runs", total_runs);
  report.add("deadlocks_eq5", total_dead_eq5);
  report.write();
  return total_dead_eq5 == 0 ? 0 : 1;
}
