// Ablation: heuristic vs optimal spatial-block partitioning. The paper
// shows the partitioning problem is NP-hard (sum-of-max under a knapsack
// constraint) and proposes the greedy SB-LTS / SB-RLX heuristics; this
// harness quantifies their optimality gap by exhaustive branch-and-bound on
// small graphs (chains and random layered DAGs up to ~9 tasks).

#include <iostream>

#include "bench_common.hpp"
#include "core/optimal_partition.hpp"
#include "pipeline/registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace sts;
  using namespace sts::bench;
  const int graphs = std::min(40, graphs_per_config());

  std::cout << "Ablation: greedy heuristics vs exhaustive-optimal partitioning\n"
            << graphs << " random graphs per configuration (small instances)\n\n";

  struct Family {
    std::string name;
    std::function<TaskGraph(std::uint64_t)> make;
  };
  LayeredSpec small;
  small.layers = 4;
  small.width = 2;
  const std::vector<Family> families{
      {"Chain(7)", [](std::uint64_t s) { return make_chain(7, s); }},
      {"Layered(4x2)", [small](std::uint64_t s) { return make_random_layered(small, s); }},
  };

  BenchReport report("ablation_optimality");
  report.add("graphs", graphs);
  int total_runs = 0, total_lts_hits = 0, total_rlx_hits = 0;
  Table table({"family", "PEs", "LTS/OPT med [Q1,Q3]", "RLX/OPT med [Q1,Q3]",
               "LTS optimal %", "RLX optimal %"});
  for (const Family& family : families) {
    for (const std::int64_t pes : {2, 3}) {
      std::vector<double> lts_gap, rlx_gap;
      int lts_hits = 0, rlx_hits = 0, runs = 0;
      for (int seed = 0; seed < graphs; ++seed) {
        const TaskGraph g = family.make(static_cast<std::uint64_t>(seed) + 1);
        const OptimalPartitionResult best = optimal_partition_exhaustive(g, pes);
        if (!best.exhausted || best.makespan <= 0) continue;
        ++runs;
        MachineConfig machine;
        machine.num_pes = pes;
        const ScheduleResult lts = schedule_by_name("streaming-lts", g, machine);
        const ScheduleResult rlx = schedule_by_name("streaming-rlx", g, machine);
        lts_gap.push_back(static_cast<double>(lts.makespan) /
                          static_cast<double>(best.makespan));
        rlx_gap.push_back(static_cast<double>(rlx.makespan) /
                          static_cast<double>(best.makespan));
        if (lts.makespan == best.makespan) ++lts_hits;
        if (rlx.makespan == best.makespan) ++rlx_hits;
      }
      table.add_row({family.name, std::to_string(pes), box_stats(lts_gap).summary(3),
                     box_stats(rlx_gap).summary(3),
                     fmt(100.0 * lts_hits / std::max(1, runs), 0) + "%",
                     fmt(100.0 * rlx_hits / std::max(1, runs), 0) + "%"});
      total_runs += runs;
      total_lts_hits += lts_hits;
      total_rlx_hits += rlx_hits;
    }
  }
  table.print(std::cout);
  std::cout << "\nThe greedy heuristics track the exhaustive optimum closely on\n"
               "instances small enough to enumerate; gaps appear where volume-safe\n"
               "eligibility (LTS) fragments blocks that the optimum would merge.\n";
  report.add("runs", total_runs);
  report.add("lts_optimal_pct", 100.0 * total_lts_hits / std::max(1, total_runs));
  report.add("rlx_optimal_pct", 100.0 * total_rlx_hits / std::max(1, total_runs));
  report.write();
  return 0;
}
