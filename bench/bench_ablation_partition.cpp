// Ablation: SB-LTS vs SB-RLX block structure. The paper attributes the
// SB-RLX advantage near #PEs ~ #tasks to its smaller number of spatial
// blocks; this harness quantifies block counts, capacity fill, and the
// resulting makespans across the synthetic topologies, plus Algorithm 2
// (work-ordered partitioning, Appendix A.2) as a third arm where applicable.

#include <iostream>

#include "bench_common.hpp"
#include "core/streaming_scheduler.hpp"
#include "metrics/metrics.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace sts;
  using namespace sts::bench;
  const int graphs = graphs_per_config();

  std::cout << "Ablation: spatial block partitioning variants\n"
            << graphs << " random graphs per configuration\n\n";

  BenchReport report("ablation_partition");
  report.add("graphs", graphs);
  std::vector<double> all_sp_lts, all_sp_rlx, all_sp_work;
  for (const Topology& topo : paper_topologies()) {
    Table table({"PEs", "blocks LTS", "blocks RLX", "blocks WORK", "speedup LTS",
                 "speedup RLX", "speedup WORK"});
    for (const std::int64_t pes : topo.pe_sweep) {
      std::vector<double> blocks_lts, blocks_rlx, blocks_work;
      std::vector<double> sp_lts, sp_rlx, sp_work;
      for (int seed = 0; seed < graphs; ++seed) {
        const TaskGraph g = topo.make(static_cast<std::uint64_t>(seed) + 1);
        const std::int64_t t1 = g.total_work();

        const auto lts = partition_spatial_blocks(g, pes, PartitionVariant::kLTS);
        blocks_lts.push_back(static_cast<double>(lts.block_count()));
        sp_lts.push_back(speedup(t1, schedule_streaming(g, lts).makespan));

        const auto rlx = partition_spatial_blocks(g, pes, PartitionVariant::kRLX);
        blocks_rlx.push_back(static_cast<double>(rlx.block_count()));
        sp_rlx.push_back(speedup(t1, schedule_streaming(g, rlx).makespan));

        const auto work = partition_by_work(g, pes);
        blocks_work.push_back(static_cast<double>(work.block_count()));
        sp_work.push_back(speedup(t1, schedule_streaming(g, work).makespan));
      }
      table.add_row({std::to_string(pes), fmt(median_of(blocks_lts), 1),
                     fmt(median_of(blocks_rlx), 1), fmt(median_of(blocks_work), 1),
                     box_stats(sp_lts).summary(), box_stats(sp_rlx).summary(),
                     box_stats(sp_work).summary()});
      all_sp_lts.insert(all_sp_lts.end(), sp_lts.begin(), sp_lts.end());
      all_sp_rlx.insert(all_sp_rlx.end(), sp_rlx.begin(), sp_rlx.end());
      all_sp_work.insert(all_sp_work.end(), sp_work.begin(), sp_work.end());
    }
    std::cout << topo.name << " (#Tasks = " << topo.tasks << ")\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected: RLX produces <= as many blocks as LTS and wins when\n"
               "#PEs approaches #tasks; the work-ordered variant ignores volume\n"
               "safety and pays for it on upsampler-heavy graphs.\n";
  report.add("samples", static_cast<std::int64_t>(all_sp_lts.size()));
  report.add("median_speedup_lts", median_of(all_sp_lts));
  report.add("median_speedup_rlx", median_of(all_sp_rlx));
  report.add("median_speedup_work", median_of(all_sp_work));
  report.write();
  return 0;
}
