// Ablation: placement of spatial blocks onto a 2D-mesh NoC (the future-work
// direction the paper names for CGRAs). The scheduling model assumes
// contention-free links; this harness quantifies how much a
// communication-aware placement reduces the NoC traffic that assumption
// hides: volume-weighted hop counts and the hottest-link load, greedy vs
// naive placement, across the synthetic topologies.

#include <iostream>

#include "bench_common.hpp"
#include "noc/placement.hpp"
#include "pipeline/registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace sts;
  using namespace sts::bench;
  const int graphs = graphs_per_config();

  std::cout << "Ablation: block placement on a 2D mesh NoC (XY routing)\n"
            << graphs << " random graphs per topology; SB-RLX\n\n";

  BenchReport report("ablation_placement");
  report.add("graphs", graphs);
  std::vector<double> all_gain;
  Table table({"Topology", "PEs(mesh)", "hops naive", "hops greedy", "improvement",
               "hot link naive", "hot link greedy"});
  for (const Topology& topo : paper_topologies()) {
    const std::int64_t pes = topo.pe_sweep[topo.pe_sweep.size() / 2];
    const Mesh mesh = Mesh::for_pes(pes);
    std::vector<double> naive_hops, greedy_hops, naive_hot, greedy_hot, gain;
    for (int seed = 0; seed < graphs; ++seed) {
      const TaskGraph g = topo.make(static_cast<std::uint64_t>(seed) + 1);
      MachineConfig machine;
      machine.num_pes = mesh.size();
      machine.place_on_mesh = true;  // greedy placement runs as a pipeline pass
      const ScheduleResult r = schedule_by_name("streaming-rlx", g, machine);
      const Placement naive = place_identity(g, *r.streaming, mesh);
      const Placement& greedy = *r.placement;
      if (naive.metrics.weighted_hops == 0) continue;
      naive_hops.push_back(static_cast<double>(naive.metrics.weighted_hops));
      greedy_hops.push_back(static_cast<double>(greedy.metrics.weighted_hops));
      naive_hot.push_back(static_cast<double>(naive.metrics.max_link_load));
      greedy_hot.push_back(static_cast<double>(greedy.metrics.max_link_load));
      gain.push_back(static_cast<double>(naive.metrics.weighted_hops) /
                     static_cast<double>(greedy.metrics.weighted_hops));
    }
    table.add_row({topo.name, std::to_string(mesh.size()) + " (" + std::to_string(mesh.rows()) +
                                  "x" + std::to_string(mesh.cols()) + ")",
                   fmt(median_of(naive_hops), 0), fmt(median_of(greedy_hops), 0),
                   fmt(median_of(gain), 2) + "x", fmt(median_of(naive_hot), 0),
                   fmt(median_of(greedy_hot), 0)});
    all_gain.insert(all_gain.end(), gain.begin(), gain.end());
  }
  table.print(std::cout);
  std::cout << "\nGreedy placement keeps streaming neighbors adjacent, shrinking the\n"
               "traffic the contention-free NoC assumption must absorb.\n";
  report.add("samples", static_cast<std::int64_t>(all_gain.size()));
  report.add("median_hop_improvement", median_of(all_gain));
  report.write();
  return 0;
}
