#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "workloads/synthetic.hpp"

namespace sts::bench {

/// One synthetic workload family at the paper's evaluation sizes
/// (Section 7.1): Chain #tasks=8, FFT #tasks=223, Gaussian Elimination
/// #tasks=135, Cholesky #tasks=120.
struct Topology {
  std::string name;
  std::function<TaskGraph(std::uint64_t seed)> make;
  std::vector<std::int64_t> pe_sweep;
  std::int64_t tasks = 0;
};

inline std::vector<Topology> paper_topologies() {
  return {
      {"Chain", [](std::uint64_t s) { return make_chain(8, s); }, {2, 4, 6, 8}, 8},
      {"FFT", [](std::uint64_t s) { return make_fft(32, s); }, {32, 64, 96, 128}, 223},
      {"Gaussian", [](std::uint64_t s) { return make_gaussian_elimination(16, s); },
       {32, 64, 96, 128}, 135},
      {"Cholesky", [](std::uint64_t s) { return make_cholesky(8, s); }, {32, 64, 96, 128}, 120},
  };
}

/// Smaller variants for the costlier experiments (simulation, CSDF).
inline std::vector<Topology> small_topologies() {
  return {
      {"Chain", [](std::uint64_t s) { return make_chain(8, s); }, {2, 4, 6, 8}, 8},
      {"FFT", [](std::uint64_t s) { return make_fft(16, s); }, {16, 32, 48, 64}, 95},
      {"Gaussian", [](std::uint64_t s) { return make_gaussian_elimination(10, s); },
       {16, 32, 48, 64}, 54},
      {"Cholesky", [](std::uint64_t s) { return make_cholesky(6, s); }, {16, 32, 48, 64}, 56},
  };
}

/// Wall-clock stopwatch in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Number of random graphs per configuration, as in the paper ("100 randomly
/// generated task graphs"). Override with STS_BENCH_GRAPHS for quick runs
/// (CI smoke mode uses STS_BENCH_GRAPHS=2).
inline int graphs_per_config() {
  if (const char* env = std::getenv("STS_BENCH_GRAPHS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 100;
}

/// Machine-readable benchmark results: collects (key, value) metrics and
/// writes them as flat JSON to BENCH_<name>.json in the working directory,
/// including the wall time since construction. CI archives these files and
/// perf gates read them, so keys should stay stable across runs.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    entries_.push_back({key, buf});
  }
  void add(const std::string& key, std::int64_t value) {
    entries_.push_back({key, std::to_string(value)});
  }
  void add(const std::string& key, int value) { add(key, static_cast<std::int64_t>(value)); }
  void add(const std::string& key, const std::string& value) {
    entries_.push_back({key, '"' + value + '"'});
  }

  /// Writes BENCH_<name>.json; returns false (and prints to stderr) on I/O
  /// failure so benches can keep going.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
      return false;
    }
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"wall_seconds\": ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", watch_.seconds());
    out << buf;
    for (const Entry& e : entries_) {
      out << ",\n  \"" << e.key << "\": " << e.value;
    }
    out << "\n}\n";
    return out.good();
  }

 private:
  struct Entry {
    std::string key;
    std::string value;  // pre-rendered JSON literal
  };
  std::string name_;
  Stopwatch watch_;
  std::vector<Entry> entries_;
};

}  // namespace sts::bench
