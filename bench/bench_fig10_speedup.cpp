// Reproduces Figure 10: distributions of speedup over sequential execution
// for synthetic task graphs under streaming (STR-SCH-1 = SB-LTS,
// STR-SCH-2 = SB-RLX) and non-streaming (NSTR-SCH) scheduling, with PE
// utilization. 100 random canonical graphs per topology, PE sweep as in the
// paper. All schedulers are resolved by name through SchedulerRegistry.

#include <iostream>

#include "bench_common.hpp"
#include "pipeline/registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace sts;
  using namespace sts::bench;
  const int graphs = graphs_per_config();

  std::cout << "Figure 10: speedup over sequential execution (median [Q1, Q3])\n"
            << "STR-SCH-1 = SB-LTS, STR-SCH-2 = SB-RLX, NSTR-SCH = buffered baseline\n"
            << graphs << " random graphs per configuration\n\n";

  BenchReport report("fig10_speedup");
  report.add("graphs", graphs);
  const char* schedulers[] = {"streaming-lts", "streaming-rlx", "list"};

  for (const Topology& topo : paper_topologies()) {
    Table table({"PEs", "STR-SCH-1", "STR-SCH-2", "NSTR-SCH", "util STR-1", "util STR-2",
                 "util NSTR"});
    for (const std::int64_t pes : topo.pe_sweep) {
      MachineConfig machine;
      machine.num_pes = pes;
      std::vector<double> s[3], u[3];
      for (int seed = 0; seed < graphs; ++seed) {
        const TaskGraph g = topo.make(static_cast<std::uint64_t>(seed) + 1);
        for (int i = 0; i < 3; ++i) {
          const ScheduleResult r = schedule_by_name(schedulers[i], g, machine);
          s[i].push_back(r.metrics.speedup);
          u[i].push_back(r.metrics.utilization);
        }
      }
      table.add_row({std::to_string(pes), box_stats(s[0]).summary(), box_stats(s[1]).summary(),
                     box_stats(s[2]).summary(), fmt(mean_of(u[0])), fmt(mean_of(u[1])),
                     fmt(mean_of(u[2]))});
    }
    std::cout << topo.name << " (#Tasks = " << topo.tasks << ")\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  report.write();
  return 0;
}
