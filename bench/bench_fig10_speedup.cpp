// Reproduces Figure 10: distributions of speedup over sequential execution
// for synthetic task graphs under streaming (STR-SCH-1 = SB-LTS,
// STR-SCH-2 = SB-RLX) and non-streaming (NSTR-SCH) scheduling, with PE
// utilization. 100 random canonical graphs per topology, PE sweep as in the
// paper.

#include <cstdio>
#include <iostream>

#include "baseline/list_scheduler.hpp"
#include "bench_common.hpp"
#include "core/streaming_scheduler.hpp"
#include "metrics/metrics.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace sts;
  using namespace sts::bench;
  const int graphs = graphs_per_config();

  std::cout << "Figure 10: speedup over sequential execution (median [Q1, Q3])\n"
            << "STR-SCH-1 = SB-LTS, STR-SCH-2 = SB-RLX, NSTR-SCH = buffered baseline\n"
            << graphs << " random graphs per configuration\n\n";

  for (const Topology& topo : paper_topologies()) {
    Table table({"PEs", "STR-SCH-1", "STR-SCH-2", "NSTR-SCH", "util STR-1", "util STR-2",
                 "util NSTR"});
    for (const std::int64_t pes : topo.pe_sweep) {
      std::vector<double> s_lts, s_rlx, s_nstr, u_lts, u_rlx, u_nstr;
      for (int seed = 0; seed < graphs; ++seed) {
        const TaskGraph g = topo.make(static_cast<std::uint64_t>(seed) + 1);
        const std::int64_t t1 = g.total_work();

        const auto lts = schedule_streaming_graph(g, pes, PartitionVariant::kLTS);
        s_lts.push_back(speedup(t1, lts.schedule.makespan));
        u_lts.push_back(streaming_utilization(g, lts.schedule, pes));

        const auto rlx = schedule_streaming_graph(g, pes, PartitionVariant::kRLX);
        s_rlx.push_back(speedup(t1, rlx.schedule.makespan));
        u_rlx.push_back(streaming_utilization(g, rlx.schedule, pes));

        const ListSchedule nstr = schedule_non_streaming(g, pes);
        s_nstr.push_back(speedup(t1, nstr.makespan));
        u_nstr.push_back(non_streaming_utilization(g, nstr, pes));
      }
      table.add_row({std::to_string(pes), box_stats(s_lts).summary(), box_stats(s_rlx).summary(),
                     box_stats(s_nstr).summary(), fmt(mean_of(u_lts)), fmt(mean_of(u_rlx)),
                     fmt(mean_of(u_nstr))});
    }
    std::cout << topo.name << " (#Tasks = " << topo.tasks << ")\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
