// Reproduces Figure 11: Streaming Scheduling Length Ratio (SSLR)
// distributions for the two streaming heuristic variants. SSLR = makespan /
// streaming depth T_s_inf; it approaches 1 when the schedule attains the
// infinite-PE streaming execution. Schedulers come from SchedulerRegistry;
// the SSLR is the `slr` metric the pipeline's MetricsPass computes.

#include <iostream>

#include "bench_common.hpp"
#include "pipeline/registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace sts;
  using namespace sts::bench;
  const int graphs = graphs_per_config();

  std::cout << "Figure 11: Streaming SLR distributions (median [Q1, Q3])\n"
            << graphs << " random graphs per configuration\n\n";

  BenchReport report("fig11_sslr");
  report.add("graphs", graphs);
  for (const Topology& topo : paper_topologies()) {
    Table table({"PEs", "STR-SCH-1 (SB-LTS)", "STR-SCH-2 (SB-RLX)"});
    for (const std::int64_t pes : topo.pe_sweep) {
      MachineConfig machine;
      machine.num_pes = pes;
      std::vector<double> lts_sslr, rlx_sslr;
      for (int seed = 0; seed < graphs; ++seed) {
        const TaskGraph g = topo.make(static_cast<std::uint64_t>(seed) + 1);
        lts_sslr.push_back(schedule_by_name("streaming-lts", g, machine).metrics.slr);
        rlx_sslr.push_back(schedule_by_name("streaming-rlx", g, machine).metrics.slr);
      }
      table.add_row({std::to_string(pes), box_stats(lts_sslr).summary(),
                     box_stats(rlx_sslr).summary()});
    }
    std::cout << topo.name << " (#Tasks = " << topo.tasks << ")\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  report.write();
  return 0;
}
