// Reproduces Figure 12: comparison with Cyclo-Static Dataflow analysis.
// Left: analysis/scheduling wall time of the canonical scheduler (STR-SCHD)
// vs. token-level CSDF self-timed execution (our stand-in for SDF3/Kiter:
// all three walk the token system firing by firing and compute the optimal
// single-iteration makespan). Right: makespan ratio STR-SCHD / CSDF.
// P is set to the number of nodes and SB-RLX is used, as in the paper.

#include <iostream>

#include "bench_common.hpp"
#include "csdf/csdf.hpp"
#include "pipeline/registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace sts;
  using namespace sts::bench;
  const int graphs = graphs_per_config();
  // Generous firing budget standing in for the paper's 1-hour timeout.
  constexpr std::int64_t kFiringBudget = 50'000'000;

  std::cout << "Figure 12: canonical scheduling vs CSDF throughput analysis\n"
            << graphs << " random graphs per topology; P = #nodes; SB-RLX\n\n";

  BenchReport report("fig12_csdf");
  report.add("graphs", graphs);
  int total_timeouts = 0;
  std::vector<double> all_ratio;
  Table table({"Topology", "STR-SCHD time", "CSDF time", "time ratio",
               "makespan ratio med [Q1,Q3]", "timeouts"});
  for (const Topology& topo : paper_topologies()) {
    std::vector<double> sched_time, csdf_time, ratio;
    int timeouts = 0;
    for (int seed = 0; seed < graphs; ++seed) {
      const TaskGraph g = topo.make(static_cast<std::uint64_t>(seed) + 1);
      MachineConfig machine;
      machine.num_pes = static_cast<std::int64_t>(g.node_count());

      Stopwatch sched_clock;
      const ScheduleResult result = schedule_by_name("streaming-rlx", g, machine);
      sched_time.push_back(sched_clock.seconds());

      Stopwatch csdf_clock;
      const CsdfGraph csdf = csdf_from_canonical(g);
      const CsdfThroughput analysis = analyze_throughput(csdf, /*max_iterations=*/6,
                                                         kFiringBudget);
      csdf_time.push_back(csdf_clock.seconds());

      if (analysis.timed_out || analysis.period == 0) {
        ++timeouts;
        continue;
      }
      ratio.push_back(static_cast<double>(result.makespan) /
                      static_cast<double>(analysis.period));
    }
    const double med_sched = median_of(sched_time);
    const double med_csdf = median_of(csdf_time);
    table.add_row({topo.name, fmt(med_sched * 1e6, 1) + " us", fmt(med_csdf * 1e6, 1) + " us",
                   fmt(med_csdf / med_sched, 1) + "x", box_stats(ratio).summary(3),
                   std::to_string(timeouts) + "/" + std::to_string(graphs)});
    total_timeouts += timeouts;
    all_ratio.insert(all_ratio.end(), ratio.begin(), ratio.end());
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): CSDF analysis 2-3 orders of magnitude slower;\n"
               "makespan ratio medians ~1.00-1.2 (canonical schedule marginally longer).\n";
  report.add("timeouts", total_timeouts);
  report.add("median_makespan_ratio", median_of(all_ratio));
  report.write();
  return 0;
}
