// Reproduces Figure 13 (Appendix B): validation of the analytic schedule by
// discrete-event simulation. For every scheduled graph the DES runs with the
// Eq. 5 FIFO sizes; we report the relative error between the analytic
// makespan and the simulated one (negative = analysis shorter than
// simulation), and assert the absence of deadlocks. Schedulers are resolved
// by name through SchedulerRegistry.

#include <iostream>

#include "bench_common.hpp"
#include "pipeline/registry.hpp"
#include "sim/dataflow_sim.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace sts;
  using namespace sts::bench;
  const int graphs = graphs_per_config();

  std::cout << "Figure 13: relative error (%) of analytic vs simulated makespan\n"
            << "(median [Q1, Q3]; whiskers = min/max); error = (sim - analytic)/sim\n"
            << graphs << " random graphs per configuration\n\n";

  BenchReport report("fig13_validation");
  report.add("graphs", graphs);
  int total_deadlocks = 0;
  std::int64_t total_runs = 0;
  for (const Topology& topo : paper_topologies()) {
    Table table({"PEs", "STR-SCH-1 err%", "range", "STR-SCH-2 err%", "range", "deadlocks"});
    for (const std::int64_t pes : topo.pe_sweep) {
      MachineConfig machine;
      machine.num_pes = pes;
      std::vector<double> err_lts, err_rlx;
      int deadlocks = 0;
      for (int seed = 0; seed < graphs; ++seed) {
        const TaskGraph g = topo.make(static_cast<std::uint64_t>(seed) + 1);
        for (const char* scheduler : {"streaming-lts", "streaming-rlx"}) {
          const ScheduleResult r = schedule_by_name(scheduler, g, machine);
          const SimResult sim = simulate_streaming(g, *r.streaming, *r.buffers);
          ++total_runs;
          if (sim.deadlocked || sim.tick_limit_reached) {
            ++deadlocks;
            ++total_deadlocks;
            continue;
          }
          const double err = 100.0 *
                             (static_cast<double>(sim.makespan) -
                              static_cast<double>(r.makespan)) /
                             static_cast<double>(sim.makespan);
          (scheduler == std::string_view("streaming-lts") ? err_lts : err_rlx).push_back(err);
        }
      }
      const BoxStats lts = box_stats(err_lts);
      const BoxStats rlx = box_stats(err_rlx);
      table.add_row({std::to_string(pes), lts.summary(),
                     "[" + fmt(lts.min, 1) + ", " + fmt(lts.max, 1) + "]", rlx.summary(),
                     "[" + fmt(rlx.min, 1) + ", " + fmt(rlx.max, 1) + "]",
                     std::to_string(deadlocks)});
    }
    std::cout << topo.name << " (#Tasks = " << topo.tasks << ")\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Total deadlocks: " << total_deadlocks << " / " << total_runs
            << " simulated schedules (paper + this reproduction: must be 0)\n";
  report.add("simulated_schedules", total_runs);
  report.add("deadlocks", static_cast<std::int64_t>(total_deadlocks));
  report.write();
  return total_deadlocks == 0 ? 0 : 1;
}
