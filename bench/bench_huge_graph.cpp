// Intra-request parallelism at 10^5..10^6-node scale. Four phases:
//
//   identity — full-result fingerprints at lanes {2, 4, auto} x every
//              registered scheduler on a medium layered graph must equal the
//              serial fingerprint bit-for-bit. Hard gate on every host: the
//              parallel paths are only allowed to be faster, never different.
//   alloc    — arena heap-block audit of one 10^5-node request: scheduling
//              must cost at most STS_HUGE_MAX_ARENA_BLOCKS (default 64)
//              arena blocks, i.e. O(log n) heap traffic instead of per-node
//              allocations. Hard gate on every host.
//   latency  — best-of-N streaming-rlx schedule latency on the 10^5-node
//              graph at 1 lane vs 4 lanes. The speedup gates at
//              STS_HUGE_SPEEDUP_MIN (default 2.0) only on hosts with >= 4
//              hardware threads; elsewhere (laptops pinned to a core, CI
//              containers) it is reported but cannot gate.
//   mega     — one 10^6-node schedule at auto lanes, reported only; skipped
//              in smoke mode (STS_BENCH_GRAPHS set) where it would dominate
//              the job's wall time.
//
// Graphs come from a bounded fan-in layered generator (each node samples a
// constant number of predecessors), so building a 10^6-node topology is
// O(nodes), unlike LayeredSpec's per-pair coin flips. Writes
// BENCH_huge_graph.json; exits non-zero on any gate failure.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/result_fingerprint.hpp"
#include "support/arena.hpp"
#include "support/parallel.hpp"
#include "support/prng.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace sts;
using bench::BenchReport;
using bench::Stopwatch;

/// Layered DAG with exactly `width` nodes per layer and `fan_in` sampled
/// predecessors per non-entry node (deduplicated, so a node may end up with
/// fewer). O(layers * width * fan_in) — scales to 10^6 nodes.
TaskGraph make_huge_layered(int layers, int width, int fan_in, std::uint64_t seed) {
  Prng rng(seed ^ 0x5851f42d4c957f2dULL);
  const std::int64_t nodes = static_cast<std::int64_t>(layers) * width;
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  edges.reserve(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(fan_in));
  for (int l = 1; l < layers; ++l) {
    const std::int32_t prev_base = static_cast<std::int32_t>((l - 1) * width);
    const std::int32_t base = static_cast<std::int32_t>(l * width);
    for (std::int32_t v = base; v < base + width; ++v) {
      for (int k = 0; k < fan_in; ++k) {
        edges.emplace_back(prev_base + static_cast<std::int32_t>(rng.uniform_int(0, width - 1)),
                           v);
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return canonical_from_topology(static_cast<std::int32_t>(nodes), edges, seed);
}

double env_double(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const std::int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return fallback;
}

std::uint64_t fingerprint_at(const std::string& scheduler, const TaskGraph& graph,
                             std::int64_t pes, std::int64_t lanes) {
  MachineConfig machine;
  machine.num_pes = pes;
  machine.intra_threads = lanes;
  return result_fingerprint(schedule_by_name(scheduler, graph, machine));
}

double schedule_seconds(const TaskGraph& graph, std::int64_t pes, std::int64_t lanes,
                        int repeats) {
  MachineConfig machine;
  machine.num_pes = pes;
  machine.intra_threads = lanes;
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const Stopwatch watch;
    const ScheduleResult result = schedule_by_name("streaming-rlx", graph, machine);
    const double t = watch.seconds();
    if (result.makespan <= 0) {
      std::fprintf(stderr, "huge_graph: non-positive makespan at lanes=%lld\n",
                   static_cast<long long>(lanes));
      std::exit(1);
    }
    if (r == 0 || t < best) best = t;
  }
  return best;
}

// Process-wide arena heap accounting for the alloc phase.
std::atomic<std::int64_t> g_arena_blocks{0};
std::atomic<std::int64_t> g_arena_bytes{0};
void count_arena_block(std::size_t bytes) noexcept {
  g_arena_blocks.fetch_add(1, std::memory_order_relaxed);
  g_arena_bytes.fetch_add(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
}

}  // namespace

int main() {
  const bool smoke = std::getenv("STS_BENCH_GRAPHS") != nullptr;
  const int repeats = smoke ? 2 : 3;
  const unsigned hw = std::thread::hardware_concurrency();
  BenchReport report("huge_graph");
  report.add("hardware_threads", static_cast<std::int64_t>(hw));
  report.add("pool_workers", static_cast<std::int64_t>(TaskPool::global().worker_count()));
  report.add("smoke", std::string(smoke ? "yes" : "no"));
  bool failed = false;

  // ------------------------------------------------------- phase 1: identity
  {
    const TaskGraph medium = make_huge_layered(12, 60, 3, 17);
    std::int64_t mismatches = 0;
    std::int64_t combos = 0;
    for (const std::string& scheduler : SchedulerRegistry::instance().names()) {
      std::uint64_t serial = 0;
      try {
        serial = fingerprint_at(scheduler, medium, 16, 1);
      } catch (const std::invalid_argument&) {
        continue;  // scheduler rejects this graph class regardless of lanes
      }
      for (const std::int64_t lanes : {2, 4, 0}) {
        ++combos;
        if (fingerprint_at(scheduler, medium, 16, lanes) != serial) {
          ++mismatches;
          std::fprintf(stderr, "huge_graph: fingerprint mismatch: %s lanes=%lld\n",
                       scheduler.c_str(), static_cast<long long>(lanes));
        }
      }
    }
    report.add("identity_combos", combos);
    report.add("identity_mismatches", mismatches);
    if (combos < 9 || mismatches != 0) failed = true;
  }

  // ------------------------------------------------- build the 10^5 workload
  const Stopwatch gen_watch;
  const TaskGraph huge = make_huge_layered(50, 2000, 4, 23);
  report.add("huge_nodes", static_cast<std::int64_t>(huge.node_count()));
  report.add("huge_edges", static_cast<std::int64_t>(huge.edge_count()));
  report.add("huge_gen_seconds", gen_watch.seconds());

  // ---------------------------------------------------------- phase 2: alloc
  {
    Arena::set_heap_hook(&count_arena_block);
    g_arena_blocks.store(0);
    g_arena_bytes.store(0);
    MachineConfig machine;
    machine.num_pes = 64;
    machine.intra_threads = 4;
    const ScheduleResult result = schedule_by_name("streaming-rlx", huge, machine);
    Arena::set_heap_hook(nullptr);
    const std::int64_t blocks = g_arena_blocks.load();
    const std::int64_t max_blocks = env_int("STS_HUGE_MAX_ARENA_BLOCKS", 64);
    report.add("alloc_makespan", result.makespan);
    report.add("alloc_arena_blocks", blocks);
    report.add("alloc_arena_bytes", g_arena_bytes.load());
    report.add("alloc_arena_blocks_max", max_blocks);
    if (blocks > max_blocks) {
      std::fprintf(stderr,
                   "huge_graph: %lld arena blocks for one request exceeds the %lld bound "
                   "(per-node allocations crept back into a hot path?)\n",
                   static_cast<long long>(blocks), static_cast<long long>(max_blocks));
      failed = true;
    }
  }

  // -------------------------------------------------------- phase 3: latency
  {
    const double t1 = schedule_seconds(huge, 64, 1, repeats);
    const double t4 = schedule_seconds(huge, 64, 4, repeats);
    const double speedup = t4 > 0.0 ? t1 / t4 : 0.0;
    const double speedup_min = env_double("STS_HUGE_SPEEDUP_MIN", 2.0);
    const bool enforce = hw >= 4;
    report.add("latency_seconds_1lane", t1);
    report.add("latency_seconds_4lane", t4);
    report.add("latency_speedup_4lane", speedup);
    report.add("latency_speedup_min", speedup_min);
    report.add("latency_gate_enforced", std::string(enforce ? "yes" : "no"));
    std::printf("huge_graph: %lld nodes, 1-lane %.3fs, 4-lane %.3fs, speedup %.2fx\n",
                static_cast<long long>(huge.node_count()), t1, t4, speedup);
    if (enforce && speedup < speedup_min) {
      std::fprintf(stderr, "huge_graph: speedup %.2fx below the %.2fx gate on %u threads\n",
                   speedup, speedup_min, hw);
      failed = true;
    } else if (!enforce) {
      std::printf("huge_graph: < 4 hardware threads, speedup reported but not enforced\n");
    }
  }

  // ----------------------------------------------------------- phase 4: mega
  if (!smoke) {
    const Stopwatch mega_gen;
    const TaskGraph mega = make_huge_layered(100, 10'000, 3, 29);
    report.add("mega_nodes", static_cast<std::int64_t>(mega.node_count()));
    report.add("mega_edges", static_cast<std::int64_t>(mega.edge_count()));
    report.add("mega_gen_seconds", mega_gen.seconds());
    report.add("mega_seconds_auto", schedule_seconds(mega, 256, 0, 1));
  }

  report.add("status", std::string(failed ? "fail" : "ok"));
  report.write();
  return failed ? 1 : 0;
}
