// Incremental rescheduling at 10^5-node scale. Three phases:
//
//   identity — schedule_with_subgraph_cache (cold AND fully warm) must equal
//              the plain schedule_by_name result_fingerprint bit-for-bit for
//              every registered scheduler on a multi-component graph. Hard
//              gate on every host: fragment assembly is only allowed to be
//              faster, never different.
//   delta    — a 1-node edit (retuned exit output) against a warm fragment
//              cache on a ~10^5-node / ~100-partition graph must reschedule
//              only the touched partition: best-of-N delta latency gates at
//              STS_INC_SPEEDUP_MIN (default 10) times faster than the cold
//              whole-graph schedule.
//   stream   — a request stream where consecutive graphs share 90% of their
//              partitions (9 of 10 components from a common pool, 1 unique)
//              must run STS_INC_STREAM_MIN (default 3) times faster with the
//              fragment cache than scheduling each graph whole — the regime
//              whole-graph caching cannot help (every request key is new).
//
// Smoke mode (STS_BENCH_GRAPHS set) shrinks the workloads so CI finishes in
// seconds; the gates still run. Writes BENCH_incremental.json; exits non-zero
// on any gate failure.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "graph/graph_edit.hpp"
#include "graph/serialization.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/result_fingerprint.hpp"
#include "pipeline/subgraph_cache.hpp"
#include "support/prng.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace sts;
using bench::BenchReport;
using bench::Stopwatch;

double env_double(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return fallback;
}

/// Bounded fan-in layered component (same shape as bench_huge_graph's
/// generator: O(layers * width * fan_in) to build).
TaskGraph make_component(int layers, int width, int fan_in, std::uint64_t seed) {
  Prng rng(seed ^ 0x5851f42d4c957f2dULL);
  const auto nodes = static_cast<std::int32_t>(layers * width);
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  edges.reserve(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(fan_in));
  for (int l = 1; l < layers; ++l) {
    const auto prev_base = static_cast<std::int32_t>((l - 1) * width);
    const auto base = static_cast<std::int32_t>(l * width);
    for (std::int32_t v = base; v < base + width; ++v) {
      for (int k = 0; k < fan_in; ++k) {
        edges.emplace_back(prev_base + static_cast<std::int32_t>(rng.uniform_int(0, width - 1)),
                           v);
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return canonical_from_topology(nodes, edges, seed);
}

/// Appends `part` to `g` as an independent connected component, preserving
/// kinds, declared outputs, volumes, and edge insertion order — so the same
/// component embedded in two different graphs yields the same canonical
/// partition form (the fragment-sharing premise of the stream phase).
void append_component(TaskGraph& g, const TaskGraph& part) {
  const auto base = static_cast<NodeId>(g.node_count());
  for (NodeId v = 0; static_cast<std::size_t>(v) < part.node_count(); ++v) {
    switch (part.kind(v)) {
      case NodeKind::kSource:
        g.add_source(part.declared_output(v));
        break;
      case NodeKind::kCompute: {
        const NodeId nv = g.add_compute();
        if (part.declared_output(v) > 0) g.declare_output(nv, part.declared_output(v));
        break;
      }
      case NodeKind::kBuffer: {
        const NodeId nv = g.add_buffer();
        if (part.declared_output(v) > 0) g.declare_output(nv, part.declared_output(v));
        break;
      }
      case NodeKind::kSink:
        g.add_sink();
        break;
    }
  }
  for (const Edge& edge : part.edges()) {
    g.add_edge(base + edge.src, base + edge.dst, edge.volume);
  }
}

/// One-node retune: rescale the declared output of the first exit compute
/// node. Canonicity-safe (no out-edge volume must agree) and touches exactly
/// one partition.
std::vector<GraphEdit> retune_exit(const TaskGraph& g, std::int64_t factor) {
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (g.kind(v) == NodeKind::kCompute && g.out_degree(v) == 0 && g.declared_output(v) > 0) {
      return {GraphEdit{GraphEdit::Op::kSetOutput, NodeKind::kCompute, v, -1, -1,
                       g.declared_output(v) * factor, ""}};
    }
  }
  std::fprintf(stderr, "incremental: graph has no exit compute node\n");
  std::exit(1);
}

}  // namespace

int main() {
  const bool smoke = std::getenv("STS_BENCH_GRAPHS") != nullptr;
  const int repeats = smoke ? 2 : 3;
  BenchReport report("incremental");
  report.add("smoke", std::string(smoke ? "yes" : "no"));
  bool failed = false;

  MachineConfig machine;
  machine.num_pes = 64;

  // ------------------------------------------------------- phase 1: identity
  {
    TaskGraph medium;
    for (int c = 0; c < 6; ++c) append_component(medium, make_component(6, 8, 2, 40 + c));
    std::int64_t combos = 0;
    std::int64_t mismatches = 0;
    for (const std::string& scheduler : SchedulerRegistry::instance().names()) {
      std::uint64_t cold = 0;
      try {
        cold = result_fingerprint(schedule_by_name(scheduler, medium, machine));
      } catch (const std::exception&) {
        continue;  // scheduler precondition rejects this graph class
      }
      ++combos;
      SubgraphCache cache;
      const std::uint64_t assembled =
          result_fingerprint(schedule_with_subgraph_cache(scheduler, medium, machine, cache));
      const std::uint64_t warm =
          result_fingerprint(schedule_with_subgraph_cache(scheduler, medium, machine, cache));
      if (assembled != cold || warm != cold) {
        ++mismatches;
        std::fprintf(stderr, "incremental: fingerprint mismatch for %s (cold %016llx vs %016llx/%016llx)\n",
                     scheduler.c_str(), static_cast<unsigned long long>(cold),
                     static_cast<unsigned long long>(assembled),
                     static_cast<unsigned long long>(warm));
      }
    }
    report.add("identity_schedulers", combos);
    report.add("identity_mismatches", mismatches);
    if (combos < 4 || mismatches != 0) failed = true;
  }

  // --------------------------------------------- build the ~10^5 delta graph
  const int big_components = smoke ? 10 : 100;
  const int big_layers = smoke ? 5 : 25;
  const int big_width = smoke ? 8 : 40;
  const Stopwatch gen_watch;
  TaskGraph big;
  for (int c = 0; c < big_components; ++c) {
    append_component(big, make_component(big_layers, big_width, 3, 1000 + c));
  }
  report.add("delta_nodes", static_cast<std::int64_t>(big.node_count()));
  report.add("delta_edges", static_cast<std::int64_t>(big.edge_count()));
  report.add("delta_partitions", static_cast<std::int64_t>(big_components));
  report.add("delta_gen_seconds", gen_watch.seconds());

  // ---------------------------------------------------------- phase 2: delta
  {
    // Cold: what a whole-graph schedule of this request costs.
    double cold = 0.0;
    for (int r = 0; r < repeats; ++r) {
      const Stopwatch watch;
      const ScheduleResult result = schedule_by_name("streaming-rlx", big, machine);
      const double t = watch.seconds();
      if (result.makespan <= 0) {
        std::fprintf(stderr, "incremental: non-positive cold makespan\n");
        return 1;
      }
      if (r == 0 || t < cold) cold = t;
    }

    // Warm the fragment cache, then time 1-node-edit deltas. Each repeat uses
    // a fresh retune factor so it really reschedules one partition (repeating
    // one factor would measure a 100% hit, not a delta).
    SubgraphCache cache;
    const ScheduleResult base_result =
        schedule_with_subgraph_cache("streaming-rlx", big, machine, cache);
    if (result_fingerprint(base_result) !=
        result_fingerprint(schedule_by_name("streaming-rlx", big, machine))) {
      std::fprintf(stderr, "incremental: assembled big-graph schedule differs from cold\n");
      return 1;
    }
    double delta = 0.0;
    double materialize = 0.0;
    std::uint64_t edit_fp = 0;
    for (int r = 0; r < repeats; ++r) {
      // Materialize the edited graph (and its lazy adjacency CSR) outside the
      // delta timer: the cold baseline above schedules a CSR-warm graph, so
      // the delta side must start from the same footing for the ratio to
      // compare scheduling work, not one-time graph construction. The
      // materialization cost is reported separately below.
      const Stopwatch mat_watch;
      const TaskGraph edited = apply_graph_edits(big, retune_exit(big, r + 2));
      (void)edited.profiles();
      const double mt = mat_watch.seconds();
      if (r == 0 || mt < materialize) materialize = mt;
      const Stopwatch watch;
      const ScheduleResult result =
          schedule_with_subgraph_cache("streaming-rlx", edited, machine, cache, /*delta=*/true);
      const double t = watch.seconds();
      edit_fp = result_fingerprint(result);
      if (r == 0 || t < delta) delta = t;
      // Every edited variant must still match its own cold schedule.
      if (edit_fp != result_fingerprint(schedule_by_name("streaming-rlx", edited, machine))) {
        std::fprintf(stderr, "incremental: delta schedule differs from cold at factor %d\n",
                     r + 2);
        return 1;
      }
    }
    const SubgraphCache::Stats stats = cache.stats();
    const double speedup = delta > 0.0 ? cold / delta : 0.0;
    const double speedup_min = env_double("STS_INC_SPEEDUP_MIN", 10.0);
    report.add("delta_cold_seconds", cold);
    report.add("delta_edit_seconds", delta);
    report.add("delta_materialize_seconds", materialize);
    report.add("delta_speedup", speedup);
    report.add("delta_speedup_min", speedup_min);
    report.add("delta_partition_hits", static_cast<std::int64_t>(stats.partition_hits));
    report.add("delta_invalidated", static_cast<std::int64_t>(stats.delta_invalidated));
    std::printf("incremental: %lld nodes, cold %.3fs, 1-node delta %.4fs, speedup %.1fx\n",
                static_cast<long long>(big.node_count()), cold, delta, speedup);
    if (speedup < speedup_min) {
      std::fprintf(stderr, "incremental: delta speedup %.2fx below the %.2fx gate\n", speedup,
                   speedup_min);
      failed = true;
    }
    if (stats.delta_invalidated != static_cast<std::uint64_t>(repeats)) {
      std::fprintf(stderr, "incremental: expected %d invalidated partitions, saw %llu\n",
                   repeats, static_cast<unsigned long long>(stats.delta_invalidated));
      failed = true;
    }
  }

  // --------------------------------------------------------- phase 3: stream
  {
    // A pool of shared components; each stream request takes 9 of them plus
    // one unique component, so consecutive requests share 90% of their
    // partitions while every whole-graph request key is new.
    const int pool_size = 10;
    const int stream_len = smoke ? 8 : 24;
    const int comp_layers = smoke ? 4 : 10;
    const int comp_width = smoke ? 6 : 24;
    std::vector<TaskGraph> pool;
    pool.reserve(pool_size);
    for (int c = 0; c < pool_size; ++c) pool.push_back(make_component(comp_layers, comp_width, 3, 7000 + c));
    std::vector<TaskGraph> stream;
    stream.reserve(static_cast<std::size_t>(stream_len));
    for (int i = 0; i < stream_len; ++i) {
      TaskGraph g;
      for (int k = 0; k < 9; ++k) append_component(g, pool[static_cast<std::size_t>((i + k) % pool_size)]);
      append_component(g, make_component(comp_layers, comp_width, 3, 9000 + i));
      stream.push_back(std::move(g));
    }

    double whole = 0.0;  // whole-graph scheduling: the no-fragment-cache cost
    {
      const Stopwatch watch;
      for (const TaskGraph& g : stream) {
        if (schedule_by_name("streaming-rlx", g, machine).makespan <= 0) {
          std::fprintf(stderr, "incremental: stream cold makespan <= 0\n");
          return 1;
        }
      }
      whole = watch.seconds();
    }
    double cached = 0.0;
    SubgraphCache cache;
    {
      const Stopwatch watch;
      for (const TaskGraph& g : stream) {
        if (schedule_with_subgraph_cache("streaming-rlx", g, machine, cache).makespan <= 0) {
          std::fprintf(stderr, "incremental: stream cached makespan <= 0\n");
          return 1;
        }
      }
      cached = watch.seconds();
    }
    const SubgraphCache::Stats stats = cache.stats();
    const double ratio = cached > 0.0 ? whole / cached : 0.0;
    const double ratio_min = env_double("STS_INC_STREAM_MIN", 3.0);
    report.add("stream_requests", stream_len);
    report.add("stream_whole_seconds", whole);
    report.add("stream_cached_seconds", cached);
    report.add("stream_speedup", ratio);
    report.add("stream_speedup_min", ratio_min);
    report.add("stream_partition_hits", static_cast<std::int64_t>(stats.partition_hits));
    report.add("stream_partition_misses", static_cast<std::int64_t>(stats.partition_misses));
    std::printf(
        "incremental: %d-request stream (90%% shared), whole %.3fs, fragment-cached %.3fs, "
        "speedup %.1fx\n",
        stream_len, whole, cached, ratio);
    if (ratio < ratio_min) {
      std::fprintf(stderr, "incremental: stream speedup %.2fx below the %.2fx gate\n", ratio,
                   ratio_min);
      failed = true;
    }
  }

  report.add("status", std::string(failed ? "fail" : "ok"));
  report.write();
  return failed ? 1 : 0;
}
