// Micro-benchmarks (google-benchmark) of the analysis and scheduling passes:
// streaming-interval computation is linear in the graph (Theorem 4.1 gives a
// closed form per WCC), partitioning and within-block scheduling are the
// O(N^2)-bounded passes of Section 5. These underpin the Figure 12 claim
// that canonical analysis is orders of magnitude cheaper than token-level
// CSDF execution.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "baseline/list_scheduler.hpp"
#include "core/buffer_sizing.hpp"
#include "core/streaming_intervals.hpp"
#include "core/streaming_scheduler.hpp"
#include "core/work_depth.hpp"
#include "csdf/csdf.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/schedule_cache.hpp"
#include "workloads/synthetic.hpp"

namespace {

sts::TaskGraph graph_for(std::int64_t size) {
  // Cholesky tiles scale the node count cubically: size 4 -> 36 tasks,
  // 8 -> 120, 12 -> 364, 16 -> 816, 24 -> 2600.
  return sts::make_cholesky(static_cast<int>(size), /*seed=*/7);
}

void BM_StreamingIntervals(benchmark::State& state) {
  const sts::TaskGraph g = graph_for(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sts::streaming_intervals(g));
  }
  state.SetComplexityN(static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_StreamingIntervals)->Arg(4)->Arg(8)->Arg(16)->Arg(24)->Complexity();

void BM_WorkDepth(benchmark::State& state) {
  const sts::TaskGraph g = graph_for(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sts::analyze_work_depth(g));
  }
  state.SetComplexityN(static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_WorkDepth)->Arg(4)->Arg(8)->Arg(16)->Arg(24)->Complexity();

void BM_PartitionRlx(benchmark::State& state) {
  const sts::TaskGraph g = graph_for(state.range(0));
  const auto pes = static_cast<std::int64_t>(g.node_count()) / 4 + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sts::partition_spatial_blocks(g, pes, sts::PartitionVariant::kRLX));
  }
  state.SetComplexityN(static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_PartitionRlx)->Arg(4)->Arg(8)->Arg(16)->Arg(24)->Complexity();

void BM_FullStreamingPipeline(benchmark::State& state) {
  const sts::TaskGraph g = graph_for(state.range(0));
  const auto pes = static_cast<std::int64_t>(g.node_count()) / 4 + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sts::schedule_streaming_graph(g, pes, sts::PartitionVariant::kRLX));
  }
  state.SetComplexityN(static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_FullStreamingPipeline)->Arg(4)->Arg(8)->Arg(16)->Arg(24)->Complexity();

void BM_NonStreamingBaseline(benchmark::State& state) {
  const sts::TaskGraph g = graph_for(state.range(0));
  const auto pes = static_cast<std::int64_t>(g.node_count()) / 4 + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sts::schedule_non_streaming(g, pes));
  }
  state.SetComplexityN(static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_NonStreamingBaseline)->Arg(4)->Arg(8)->Arg(16)->Arg(24)->Complexity();

void BM_RegistrySchedule(benchmark::State& state) {
  // Full pipeline through the SchedulerRegistry: name lookup + factory +
  // pass assembly on top of BM_FullStreamingPipeline's work.
  const sts::TaskGraph g = graph_for(state.range(0));
  sts::MachineConfig machine;
  machine.num_pes = static_cast<std::int64_t>(g.node_count()) / 4 + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sts::schedule_by_name("streaming-rlx", g, machine));
  }
  state.SetComplexityN(static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_RegistrySchedule)->Arg(4)->Arg(8)->Arg(16)->Arg(24)->Complexity();

void BM_CachedSchedule(benchmark::State& state) {
  // Steady-state cache hit: key construction (graph serialization + hash)
  // only; scheduling is skipped entirely.
  const sts::TaskGraph g = graph_for(state.range(0));
  sts::MachineConfig machine;
  machine.num_pes = static_cast<std::int64_t>(g.node_count()) / 4 + 1;
  sts::ScheduleCache cache;
  benchmark::DoNotOptimize(cache.get_or_schedule(g, "streaming-rlx", machine));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get_or_schedule(g, "streaming-rlx", machine));
  }
  state.SetComplexityN(static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_CachedSchedule)->Arg(4)->Arg(8)->Arg(16)->Arg(24)->Complexity();

void BM_CsdfSelfTimed(benchmark::State& state) {
  const sts::TaskGraph g = graph_for(state.range(0));
  const sts::CsdfGraph csdf = sts::csdf_from_canonical(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sts::analyze_self_timed(csdf));
  }
  state.SetComplexityN(static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_CsdfSelfTimed)->Arg(4)->Arg(8)->Arg(16)->Complexity();

}  // namespace

// Expanded BENCHMARK_MAIN() so the run also leaves a BENCH_micro_scheduler.json
// marker behind (the google-benchmark console output carries the real numbers;
// CI only needs the per-bench JSON artifact to exist, like every other bench).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  sts::bench::BenchReport report("micro_scheduler");
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  report.add("benchmarks_run", static_cast<std::int64_t>(ran));
  report.write();
  return 0;
}
