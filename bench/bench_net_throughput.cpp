// Cross-process serving bench + acceptance gates for the net layer
// (StsServer / RemoteBackend / ServerProcess) on paper_topologies sweeps:
//
//   1. local:   ShardRouter over 4 in-process single-worker services — the
//      in-process baseline the wire must keep up with.
//   2. remote:  the same router over 4 spawned sts-serve processes reached
//      through RemoteBackend (fork/exec + HTTP/1.1 over loopback); gate:
//      remote QPS >= STS_NET_RATIO_MIN (default 0.8) of local QPS, enforced
//      when the host has >= 4 hardware threads (smaller hosts report the
//      ratio without gating — the correctness gates below still must pass).
//   3. drain:   a server drained mid-flight while a RemoteBackend hammers it
//      over real sockets; gate: zero lost in-flight requests — every future
//      settles, the server answers exactly what it accepts
//      (requests == responses), and the backend balances
//      submitted == completed + rejected across the socket boundary.
//   4. sigterm: a spawned sts-serve child SIGTERMed mid-flight; gate: the
//      child drains and exits 0 and every client future settles.
//
// STS_BENCH_GRAPHS overrides seeds per configuration (CI smoke uses 2);
// STS_NET_ROUNDS repeats the sweep submissions per phase (the CI soak job
// uses it to stretch phases into a sustained hammer).

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_common.hpp"
#include "net/remote_backend.hpp"
#include "net/server_process.hpp"
#include "net/sts_server.hpp"
#include "service/request.hpp"
#include "service/schedule_service.hpp"
#include "service/shard_router.hpp"
#include "support/table.hpp"

namespace {

struct Scenario {
  std::string label;
  sts::TaskGraph graph;
  std::int64_t pes;
};

std::vector<Scenario> build_scenarios(int seeds_per_config) {
  std::vector<Scenario> scenarios;
  for (const sts::bench::Topology& topo : sts::bench::paper_topologies()) {
    for (int seed = 0; seed < seeds_per_config; ++seed) {
      const sts::TaskGraph graph = topo.make(static_cast<std::uint64_t>(seed) + 1);
      for (const std::int64_t pes : topo.pe_sweep) {
        scenarios.push_back({topo.name + "/" + std::to_string(pes) + "/" + std::to_string(seed),
                             graph, pes});
      }
    }
  }
  return scenarios;
}

sts::ScheduleRequest make_request(const Scenario& s) {
  sts::ScheduleRequest request;
  request.graph = s.graph;
  request.scheduler = "streaming-rlx";
  request.machine.num_pes = s.pes;
  request.label = s.label;
  return request;
}

int rounds() {
  if (const char* env = std::getenv("STS_NET_ROUNDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 1;
}

/// Submits every scenario `copies` times and waits on every future; wall
/// time covers submission through completion.
double run_sweep(sts::ShardRouter& router, const std::vector<Scenario>& scenarios, int copies) {
  const sts::bench::Stopwatch clock;
  std::vector<sts::ServiceFuture> futures;
  futures.reserve(scenarios.size() * static_cast<std::size_t>(copies));
  for (int copy = 0; copy < copies; ++copy) {
    for (const Scenario& s : scenarios) {
      futures.push_back(router.submit(make_request(s)).future);
    }
  }
  for (auto& f : futures) {
    if (f.get()->makespan <= 0) throw std::runtime_error("scenario produced empty schedule");
  }
  return clock.seconds();
}

}  // namespace

int main() {
  using namespace sts;
  using namespace sts::bench;

  const int seeds = graphs_per_config();
  const int copies = rounds();
  const std::vector<Scenario> scenarios = build_scenarios(seeds);
  const std::size_t jobs = scenarios.size() * static_cast<std::size_t>(copies);
  const unsigned cores = std::thread::hardware_concurrency();

  const std::string binary = default_sts_serve_binary();
  if (::access(binary.c_str(), X_OK) != 0) {
    std::cerr << "error: sts_serve binary not found at " << binary
              << " (build it, or point STS_SERVE_BIN at it)\n";
    return 1;
  }

  std::cout << "Net throughput: " << scenarios.size() << " unique scenarios x " << copies
            << " rounds, scheduler = streaming-rlx, " << cores << " hardware threads\n"
            << "sts-serve: " << binary << "\n\n";

  BenchReport report("net_throughput");
  report.add("scenarios", static_cast<std::int64_t>(scenarios.size()));
  report.add("rounds", copies);
  report.add("hardware_threads", static_cast<std::int64_t>(cores));

  // 1. In-process baseline: router over 4 single-worker services.
  RouterConfig local_config;
  local_config.num_backends = 4;
  local_config.backend.num_workers = 1;
  double t_local = 0.0;
  {
    ShardRouter router(local_config);
    t_local = run_sweep(router, scenarios, copies);
  }

  // 2. The same fleet as real processes: 4 sts-serve children, reached
  // through RemoteBackend — identical router, identical envelopes, plus a
  // fork, a serialization, and a loopback round trip per job.
  double t_remote = 0.0;
  {
    std::vector<std::unique_ptr<ServerProcess>> servers;
    for (int i = 0; i < 4; ++i) {
      servers.push_back(std::make_unique<ServerProcess>(
          binary, std::vector<std::string>{"--port", "0", "--threads", "1"}));
    }
    RouterConfig remote_config;
    remote_config.num_backends = 4;
    remote_config.backend_factory =
        [&servers](std::size_t index) -> std::shared_ptr<ScheduleBackend> {
      RemoteConfig remote;
      remote.port = servers.at(index)->port();
      return std::make_shared<RemoteBackend>(remote);
    };
    {
      ShardRouter router(remote_config);
      t_remote = run_sweep(router, scenarios, copies);
    }
    for (auto& server : servers) {
      if (server->terminate() != 0) {
        std::cerr << "error: sts-serve backend exited non-zero after drain\n";
        return 1;
      }
    }
  }
  const double qps_local = jobs / t_local;
  const double qps_remote = jobs / t_remote;
  const double ratio = qps_remote / qps_local;

  // 3. Drain gate over real sockets: hammer a server through RemoteBackend
  // and drain it mid-flight. Zero lost in-flight: every client future
  // settles, the server answers exactly what it accepted, and the service's
  // ledger balances across the process boundary.
  std::size_t drain_ok_count = 0;
  std::size_t drain_err_count = 0;
  bool drain_ok = false;
  std::uint64_t drain_requests = 0;
  std::uint64_t drain_responses = 0;
  {
    auto service = std::make_shared<ScheduleService>(ServiceConfig{});
    StsServer server(service);
    RemoteConfig remote_config;
    remote_config.port = server.port();
    remote_config.connections = 4;
    RemoteBackend remote(remote_config);

    std::vector<ServiceFuture> futures;
    for (const Scenario& s : scenarios) {
      futures.push_back(remote.submit(make_request(s)).future);
    }
    server.drain();  // races the in-flight stream on purpose
    for (ServiceFuture& future : futures) {
      const Settled settled = future.settled();
      if (settled.result != nullptr) {
        ++drain_ok_count;
      } else {
        ++drain_err_count;
        if (settled.error.empty() && !settled.rejected.has_value()) {
          std::cerr << "error: future settled with neither result nor error\n";
          return 1;
        }
      }
    }
    const StsServer::Stats net = server.stats();
    const ServiceStats stats = service->stats();
    drain_requests = net.requests;
    drain_responses = net.responses;
    drain_ok = drain_ok_count + drain_err_count == scenarios.size() &&
               net.requests == net.responses &&
               stats.submitted == stats.completed + stats.rejected;
  }

  // 4. SIGTERM a real child mid-flight: the drain sequence must answer what
  // it accepted and exit 0; the client must see every future settle.
  bool sigterm_ok = false;
  int sigterm_exit = -1;
  {
    ServerProcess child(binary, {"--port", "0", "--threads", "1"});
    RemoteConfig remote_config;
    remote_config.port = child.port();
    remote_config.connections = 2;
    RemoteBackend remote(remote_config);

    std::vector<ServiceFuture> futures;
    for (const Scenario& s : scenarios) {
      futures.push_back(remote.submit(make_request(s)).future);
    }
    sigterm_exit = child.terminate();  // SIGTERM races the stream
    std::size_t settled_count = 0;
    for (ServiceFuture& future : futures) {
      const Settled settled = future.settled();
      if (settled.result != nullptr || !settled.error.empty() || settled.rejected.has_value()) {
        ++settled_count;
      }
    }
    sigterm_ok = sigterm_exit == 0 && settled_count == scenarios.size();
  }

  Table table({"phase", "backends", "jobs", "seconds", "jobs/s"});
  table.add_row({"local router 4x1", "4", std::to_string(jobs), fmt(t_local, 3),
                 fmt(qps_local, 0)});
  table.add_row({"remote 4 x sts-serve", "4", std::to_string(jobs), fmt(t_remote, 3),
                 fmt(qps_remote, 0)});
  table.print(std::cout);

  double ratio_min = 0.8;
  if (const char* env = std::getenv("STS_NET_RATIO_MIN")) {
    const double v = std::atof(env);
    if (v > 0) ratio_min = v;
  }
  const bool enforce_ratio = cores >= 4;
  const bool ratio_ok = ratio >= ratio_min;

  std::cout << "\nremote/local QPS ratio: " << fmt(ratio, 2) << " (floor " << fmt(ratio_min, 2)
            << (enforce_ratio ? ", enforced" : ", reported only: < 4 hardware threads")
            << ")\n"
            << "drain: " << drain_ok_count << " answered + " << drain_err_count
            << " settled-with-error of " << scenarios.size() << " in flight; server "
            << drain_requests << " requests == " << drain_responses << " responses -> "
            << (drain_ok ? "OK" : "FAIL") << "\n"
            << "sigterm: child exit " << sigterm_exit << ", every future settled -> "
            << (sigterm_ok ? "OK" : "FAIL") << "\n";

  bool pass = drain_ok && sigterm_ok;
  if (enforce_ratio) pass = pass && ratio_ok;
  std::cout << (pass ? "RESULT: PASS" : "RESULT: BELOW TARGET") << "\n";

  report.add("qps_local", qps_local);
  report.add("qps_remote", qps_remote);
  report.add("remote_over_local", ratio);
  report.add("ratio_min", ratio_min);
  report.add("ratio_gate_enforced", std::string(enforce_ratio ? "yes" : "no"));
  report.add("seconds_local", t_local);
  report.add("seconds_remote", t_remote);
  report.add("drain_answered", static_cast<std::int64_t>(drain_ok_count));
  report.add("drain_settled_with_error", static_cast<std::int64_t>(drain_err_count));
  report.add("drain_server_requests", static_cast<std::int64_t>(drain_requests));
  report.add("drain_server_responses", static_cast<std::int64_t>(drain_responses));
  report.add("drain_ok", std::string(drain_ok ? "yes" : "no"));
  report.add("sigterm_exit", sigterm_exit);
  report.add("sigterm_ok", std::string(sigterm_ok ? "yes" : "no"));
  report.add("gate", std::string(pass ? "pass" : "fail"));
  report.write();
  return pass ? 0 : 1;
}
