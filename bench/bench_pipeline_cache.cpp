// Micro-benchmark: cached vs uncached scheduling throughput on repeated
// synthetic workloads — the serving scenario the ScheduleCache exists for
// (many queries over a small working set of distinct graphs). For each
// topology we schedule the same ~100-node graph `kRepeats` times cold
// (straight through SchedulerRegistry) and through the global-style cache,
// and report queries/second plus the speedup of the hit path. The cache-hit
// path still pays for the canonical key (graph serialization + FNV-1a), so
// the speedup measures memoization, not a no-op loop.

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/schedule_cache.hpp"
#include "support/table.hpp"
#include "workloads/synthetic.hpp"

namespace {

constexpr int kRepeats = 200;

struct Workload {
  std::string name;
  sts::TaskGraph graph;
  std::int64_t pes;
};

}  // namespace

int main() {
  using namespace sts;
  using namespace sts::bench;

  std::cout << "Pipeline cache: cached vs uncached scheduling throughput\n"
            << kRepeats << " repeated queries per workload; scheduler = streaming-rlx\n\n";

  LayeredSpec layered;
  layered.layers = 16;
  layered.width = 12;  // widths are sampled, so this lands near 100 nodes
  std::vector<Workload> workloads;
  workloads.push_back({"Layered(16x12)", make_random_layered(layered, 1), 25});
  workloads.push_back({"FFT(16)", make_fft(16, 1), 24});
  workloads.push_back({"Cholesky(8)", make_cholesky(8, 1), 30});

  Table table({"workload", "#nodes", "cold q/s", "cached q/s", "speedup", "hits", "misses"});
  BenchReport report("pipeline_cache");
  bool all_fast = true;
  for (const Workload& w : workloads) {
    MachineConfig machine;
    machine.num_pes = w.pes;

    // Cold path: every query runs the full pipeline.
    Stopwatch cold_clock;
    for (int i = 0; i < kRepeats; ++i) {
      const ScheduleResult r = schedule_by_name("streaming-rlx", w.graph, machine);
      if (r.makespan <= 0) return 1;
    }
    const double cold_seconds = cold_clock.seconds();

    // Cached path: first query computes, the rest hit.
    ScheduleCache cache;
    Stopwatch cached_clock;
    for (int i = 0; i < kRepeats; ++i) {
      const auto r = cache.get_or_schedule(w.graph, "streaming-rlx", machine);
      if (r->makespan <= 0) return 1;
    }
    const double cached_seconds = cached_clock.seconds();

    const double speedup = cold_seconds / cached_seconds;
    all_fast = all_fast && speedup >= 10.0;
    const ScheduleCache::Stats stats = cache.stats();
    table.add_row({w.name, std::to_string(w.graph.node_count()),
                   fmt(kRepeats / cold_seconds, 0), fmt(kRepeats / cached_seconds, 0),
                   fmt(speedup, 1) + "x", std::to_string(stats.hits),
                   std::to_string(stats.misses)});
    std::string key = w.name.substr(0, w.name.find('('));
    report.add(key + "_speedup", speedup);
    report.add(key + "_cold_qps", kRepeats / cold_seconds);
    report.add(key + "_cached_qps", kRepeats / cached_seconds);
  }
  table.print(std::cout);
  std::cout << "\nExpected: cache-hit scheduling >= 10x faster than cold scheduling\n"
            << (all_fast ? "RESULT: PASS" : "RESULT: BELOW TARGET") << "\n";
  report.add("gate", std::string(all_fast ? "pass" : "fail"));
  report.write();
  return all_fast ? 0 : 1;
}
