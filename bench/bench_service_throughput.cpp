// Throughput bench + acceptance gates for the concurrent ScheduleService and
// the consistent-hash ShardRouter on paper_topologies sweeps (topology x
// PE-count x seed — the shape of the paper's Section 7 evaluation, run as
// one batch). Every submission is a ScheduleRequest envelope through
// `submit(ScheduleRequest)` — the one serving path.
//
//   1. scaling:  cold sweep wall-clock with a 1-worker service vs a 4-worker
//      service vs a ShardRouter over 4 single-worker backends; gate >= 3x
//      throughput for BOTH 4-way configurations (enforced when the host
//      actually has >= 4 hardware threads — on smaller hosts the ratios are
//      reported but cannot gate, and the correctness gates below still must
//      pass).
//   2. dedup:    every scenario submitted kDuplicates times; single-flight
//      must keep cache misses == unique scenarios (duplicate submissions do
//      not multiply schedule computations).
//   3. bounded:  a service whose size-aware cache capacity (total weight =
//      graph node count) is far below the sweep's total weight must end with
//      total_weight() <= capacity and positive eviction counts/weight.
//   4. backpressure: a single-worker service with a small per-shard queue
//      depth flooded through AdmissionPolicy::kReject requests; rejections
//      must occur (the flood outpaces one worker), every rejection must
//      report depth == the configured limit (admission is refused only when
//      the target shard is actually full), the queue high-water mark must
//      respect the limit, and submitted == completed + rejected must balance
//      after the drain.
//
// STS_BENCH_GRAPHS overrides seeds per configuration (CI smoke uses 2).

#include <cstdint>
#include <cstdlib>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "service/request.hpp"
#include "service/schedule_service.hpp"
#include "service/shard_router.hpp"
#include "support/table.hpp"

namespace {

constexpr int kDuplicates = 4;

struct Scenario {
  std::string label;
  sts::TaskGraph graph;
  std::int64_t pes;
};

std::vector<Scenario> build_scenarios(int seeds_per_config) {
  std::vector<Scenario> scenarios;
  for (const sts::bench::Topology& topo : sts::bench::paper_topologies()) {
    for (int seed = 0; seed < seeds_per_config; ++seed) {
      const sts::TaskGraph graph = topo.make(static_cast<std::uint64_t>(seed) + 1);
      for (const std::int64_t pes : topo.pe_sweep) {
        scenarios.push_back({topo.name + "/" + std::to_string(pes) + "/" + std::to_string(seed),
                             graph, pes});
      }
    }
  }
  return scenarios;
}

sts::ScheduleRequest make_request(const Scenario& s,
                                  sts::AdmissionPolicy admission = sts::AdmissionPolicy::kBlock) {
  sts::ScheduleRequest request;
  request.graph = s.graph;
  request.scheduler = "streaming-rlx";
  request.machine.num_pes = s.pes;
  request.admission = admission;
  request.label = s.label;
  return request;
}

/// Submits every scenario `copies` times through `submit` and waits on every
/// future; the returned wall time covers submission through completion.
template <typename SubmitFn>
double run_sweep(SubmitFn&& submit, const std::vector<Scenario>& scenarios, int copies) {
  const sts::bench::Stopwatch clock;
  std::vector<sts::ScheduleService::Future> futures;
  futures.reserve(scenarios.size() * static_cast<std::size_t>(copies));
  for (int copy = 0; copy < copies; ++copy) {
    for (const Scenario& s : scenarios) {
      futures.push_back(submit(make_request(s)).future);
    }
  }
  for (auto& f : futures) {
    if (f.get()->makespan <= 0) throw std::runtime_error("scenario produced empty schedule");
  }
  return clock.seconds();
}

}  // namespace

int main() {
  using namespace sts;
  using namespace sts::bench;

  const int seeds = graphs_per_config();
  const std::vector<Scenario> scenarios = build_scenarios(seeds);
  const std::size_t unique = scenarios.size();
  const unsigned cores = std::thread::hardware_concurrency();

  std::cout << "Service throughput: paper_topologies sweep, " << unique
            << " unique scenarios (" << seeds << " seeds/config), scheduler = streaming-rlx, "
            << cores << " hardware threads\n\n";

  BenchReport report("service_throughput");
  report.add("scenarios", static_cast<std::int64_t>(unique));
  report.add("hardware_threads", static_cast<std::int64_t>(cores));

  // 1. Cold sweep scaling: 1 worker vs 4 workers vs a router over 4
  // single-worker backends, distinct caches throughout. The scaling phase
  // gets a floor of 16 seeds regardless of smoke mode — a handful of
  // sub-millisecond jobs is all noise, not a throughput signal.
  const std::vector<Scenario> scaling_scenarios =
      seeds >= 16 ? scenarios : build_scenarios(16);
  ServiceConfig one;
  one.num_workers = 1;
  double t1 = 0.0;
  {
    ScheduleService service(one);
    t1 = run_sweep([&](ScheduleRequest r) { return service.submit(std::move(r)); },
                   scaling_scenarios, 1);
  }
  ServiceConfig four;
  four.num_workers = 4;
  double t4 = 0.0;
  {
    ScheduleService service(four);
    t4 = run_sweep([&](ScheduleRequest r) { return service.submit(std::move(r)); },
                   scaling_scenarios, 1);
  }
  // The router seam must not cost the parallelism it exists to distribute:
  // 4 backends x 1 worker behind the consistent-hash ring, one front door.
  RouterConfig router_config;
  router_config.num_backends = 4;
  router_config.backend = one;
  double t_router = 0.0;
  {
    ShardRouter router(router_config);
    t_router = run_sweep([&](ScheduleRequest r) { return router.submit(std::move(r)); },
                         scaling_scenarios, 1);
  }
  const double scaling = t1 / t4;
  const double router_scaling = t1 / t_router;

  // 2. Single-flight dedup: kDuplicates copies of every scenario; the
  // scheduling pipeline must run exactly `unique` times.
  ScheduleService dedup_service(four);
  const double t_dedup =
      run_sweep([&](ScheduleRequest r) { return dedup_service.submit(std::move(r)); },
                scenarios, kDuplicates);
  const ScheduleService::Stats dedup_stats = dedup_service.stats();
  const bool dedup_ok = dedup_stats.cache.misses == unique &&
                        dedup_stats.cache.hits + dedup_stats.cache.races ==
                            unique * (kDuplicates - 1) &&
                        dedup_stats.failed == 0;

  // 3. Bounded memory, size-aware: capacity (total weight) far below the
  // sweep's total node weight must evict, not grow.
  std::size_t sweep_weight = 0;
  for (const Scenario& s : scenarios) sweep_weight += s.graph.node_count();
  ServiceConfig bounded_config = four;
  bounded_config.cache_capacity = sweep_weight >= 16 ? sweep_weight / 4 : 4;
  ScheduleService bounded_service(bounded_config);
  (void)run_sweep([&](ScheduleRequest r) { return bounded_service.submit(std::move(r)); },
                  scenarios, 1);
  const std::size_t bounded_weight = bounded_service.cache().total_weight();
  const ScheduleCache::Stats bounded_cache = bounded_service.stats().cache;
  const bool bounded_ok = bounded_weight <= bounded_config.cache_capacity &&
                          bounded_cache.evictions > 0 && bounded_cache.evicted_weight > 0;

  // 4. Backpressure: flood one worker with kReject envelopes and a tiny
  // queue bound. Scheduling costs milliseconds while admission costs
  // microseconds, so the shard saturates and sheds load; every refusal must
  // carry an accurate depth and the queue must never exceed its bound.
  constexpr std::size_t kQueueDepth = 4;
  ServiceConfig bp_config;
  bp_config.num_workers = 1;
  bp_config.queue_depth = kQueueDepth;
  ScheduleService bp_service(bp_config);
  const Stopwatch bp_clock;
  std::vector<ScheduleService::Future> bp_futures;
  std::uint64_t bp_rejections = 0;
  bool bp_depths_accurate = true;
  for (const Scenario& s : scenarios) {
    ScheduleService::Admission admission =
        bp_service.submit(make_request(s, AdmissionPolicy::kReject));
    if (admission.accepted()) {
      bp_futures.push_back(std::move(admission.future));
    } else {
      ++bp_rejections;
      bp_depths_accurate = bp_depths_accurate && admission.rejected->depth == kQueueDepth &&
                           admission.rejected->limit == kQueueDepth &&
                           admission.rejected->shard == 0;
    }
  }
  for (auto& f : bp_futures) {
    if (f.get()->makespan <= 0) throw std::runtime_error("accepted job produced empty schedule");
  }
  bp_service.wait_idle();
  const double t_bp = bp_clock.seconds();
  const ScheduleService::Stats bp_stats = bp_service.stats();
  const std::size_t bp_peak_depth =
      bp_stats.shard_max_depth.empty() ? 0 : bp_stats.shard_max_depth.front();
  const bool bp_ok = bp_rejections > 0 && bp_depths_accurate &&
                     bp_stats.rejected == bp_rejections && bp_peak_depth <= kQueueDepth &&
                     bp_stats.submitted == bp_stats.completed + bp_stats.rejected;

  Table table({"phase", "workers", "jobs", "seconds", "jobs/s"});
  const auto row = [&](const char* phase, std::size_t workers, std::size_t jobs, double sec) {
    table.add_row({phase, std::to_string(workers), std::to_string(jobs), fmt(sec, 3),
                   fmt(jobs / sec, 0)});
  };
  row("cold", 1, scaling_scenarios.size(), t1);
  row("cold", 4, scaling_scenarios.size(), t4);
  row("cold router 4x1", 4, scaling_scenarios.size(), t_router);
  row("dedup x4", 4, unique * kDuplicates, t_dedup);
  row("backpressure", 1, unique, t_bp);
  table.print(std::cout);
  std::cout << "\nscaling 4w/1w: " << fmt(scaling, 2) << "x\n"
            << "scaling router(4x1)/1w: " << fmt(router_scaling, 2) << "x\n"
            << "dedup: " << dedup_stats.cache.misses << " schedules computed for "
            << unique * kDuplicates << " submissions (" << dedup_stats.cache.hits << " hits, "
            << dedup_stats.cache.races << " races) -> " << (dedup_ok ? "OK" : "FAIL") << "\n"
            << "bounded: weight " << bounded_weight << " <= capacity "
            << bounded_config.cache_capacity << ", " << bounded_cache.evictions
            << " evictions (weight " << bounded_cache.evicted_weight << ") -> "
            << (bounded_ok ? "OK" : "FAIL") << "\n"
            << "backpressure: " << bp_rejections << " of " << unique
            << " refused at depth " << kQueueDepth << " (peak depth " << bp_peak_depth
            << ", depths accurate: " << (bp_depths_accurate ? "yes" : "no") << ") -> "
            << (bp_ok ? "OK" : "FAIL") << "\n";

  // STS_SCALING_MIN overrides the 3x bar: shared CI runners advertise 4
  // vCPUs that are really 2 SMT cores plus noisy neighbors, where 3x is
  // physically out of reach; real 4-core hosts keep the full gate.
  double scaling_min = 3.0;
  if (const char* env = std::getenv("STS_SCALING_MIN")) {
    const double v = std::atof(env);
    if (v > 0) scaling_min = v;
  }
  const bool enforce_scaling = cores >= 4;
  const bool scaling_ok = scaling >= scaling_min && router_scaling >= scaling_min;
  bool pass = dedup_ok && bounded_ok && bp_ok;
  if (enforce_scaling) {
    pass = pass && scaling_ok;
    std::cout << "Expected: >= " << fmt(scaling_min, 1)
              << "x throughput at 4 workers vs 1, direct and through the router\n";
  } else {
    std::cout << "NOTE: only " << cores << " hardware threads; the >= 3x scaling gates need 4 "
              << "and are reported but not enforced on this host\n";
  }
  std::cout << (pass ? "RESULT: PASS" : "RESULT: BELOW TARGET") << "\n";

  report.add("scaling_scenarios", static_cast<std::int64_t>(scaling_scenarios.size()));
  report.add("cold_seconds_1w", t1);
  report.add("cold_seconds_4w", t4);
  report.add("cold_seconds_router_4x1", t_router);
  report.add("qps_1w", scaling_scenarios.size() / t1);
  report.add("qps_4w", scaling_scenarios.size() / t4);
  report.add("qps_router_4x1", scaling_scenarios.size() / t_router);
  report.add("scaling_4w_over_1w", scaling);
  report.add("scaling_router_over_1w", router_scaling);
  report.add("scaling_min", scaling_min);
  report.add("scaling_gate_enforced", std::string(enforce_scaling ? "yes" : "no"));
  report.add("dedup_submissions", static_cast<std::int64_t>(unique * kDuplicates));
  report.add("dedup_schedules_computed", static_cast<std::int64_t>(dedup_stats.cache.misses));
  report.add("dedup_ok", std::string(dedup_ok ? "yes" : "no"));
  report.add("bounded_capacity", static_cast<std::int64_t>(bounded_config.cache_capacity));
  report.add("bounded_weight", static_cast<std::int64_t>(bounded_weight));
  report.add("bounded_evictions", static_cast<std::int64_t>(bounded_cache.evictions));
  report.add("bounded_evicted_weight",
             static_cast<std::int64_t>(bounded_cache.evicted_weight));
  report.add("bounded_ok", std::string(bounded_ok ? "yes" : "no"));
  report.add("backpressure_queue_depth", static_cast<std::int64_t>(kQueueDepth));
  report.add("backpressure_rejections", static_cast<std::int64_t>(bp_rejections));
  report.add("backpressure_peak_depth", static_cast<std::int64_t>(bp_peak_depth));
  report.add("backpressure_depths_accurate", std::string(bp_depths_accurate ? "yes" : "no"));
  report.add("backpressure_seconds", t_bp);
  report.add("backpressure_ok", std::string(bp_ok ? "yes" : "no"));
  report.add("gate", std::string(pass ? "pass" : "fail"));
  report.write();
  return pass ? 0 : 1;
}
