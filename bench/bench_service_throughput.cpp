// Throughput bench + acceptance gates for the concurrent ScheduleService on
// paper_topologies sweeps (topology x PE-count x seed — the shape of the
// paper's Section 7 evaluation, run as one batch):
//
//   1. scaling:  cold sweep wall-clock with 1 worker vs 4 workers; gate
//      >= 3x throughput at 4 workers (enforced when the host actually has
//      >= 4 hardware threads — on smaller hosts the ratio is reported but
//      cannot gate, and the correctness gates below still must pass).
//   2. dedup:    every scenario submitted kDuplicates times; single-flight
//      must keep cache misses == unique scenarios (duplicate submissions do
//      not multiply schedule computations).
//   3. bounded:  a service with a cache capacity far below the scenario
//      count must end with size() <= capacity and a positive eviction count.
//   4. backpressure: a single-worker service with a small per-shard queue
//      depth flooded through try_submit; rejections must occur (the flood
//      outpaces one worker), every rejection must report depth == the
//      configured limit (admission is refused only when the target shard is
//      actually full), the queue high-water mark must respect the limit, and
//      submitted == completed + rejected must balance after the drain.
//
// STS_BENCH_GRAPHS overrides seeds per configuration (CI smoke uses 2).

#include <cstdint>
#include <cstdlib>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "service/schedule_service.hpp"
#include "support/table.hpp"

namespace {

constexpr int kDuplicates = 4;

struct Scenario {
  std::string label;
  sts::TaskGraph graph;
  std::int64_t pes;
};

std::vector<Scenario> build_scenarios(int seeds_per_config) {
  std::vector<Scenario> scenarios;
  for (const sts::bench::Topology& topo : sts::bench::paper_topologies()) {
    for (int seed = 0; seed < seeds_per_config; ++seed) {
      const sts::TaskGraph graph = topo.make(static_cast<std::uint64_t>(seed) + 1);
      for (const std::int64_t pes : topo.pe_sweep) {
        scenarios.push_back({topo.name + "/" + std::to_string(pes) + "/" + std::to_string(seed),
                             graph, pes});
      }
    }
  }
  return scenarios;
}

/// Submits every scenario `copies` times to a fresh service and waits; the
/// returned wall time covers submission through completion of all jobs.
double run_sweep(sts::ScheduleService& service, const std::vector<Scenario>& scenarios,
                 int copies) {
  const sts::bench::Stopwatch clock;
  std::vector<std::future<sts::ScheduleService::ResultPtr>> futures;
  futures.reserve(scenarios.size() * static_cast<std::size_t>(copies));
  for (int copy = 0; copy < copies; ++copy) {
    for (const Scenario& s : scenarios) {
      sts::MachineConfig machine;
      machine.num_pes = s.pes;
      futures.push_back(service.submit(s.graph, "streaming-rlx", machine));
    }
  }
  for (auto& f : futures) {
    if (f.get()->makespan <= 0) throw std::runtime_error("scenario produced empty schedule");
  }
  return clock.seconds();
}

}  // namespace

int main() {
  using namespace sts;
  using namespace sts::bench;

  const int seeds = graphs_per_config();
  const std::vector<Scenario> scenarios = build_scenarios(seeds);
  const std::size_t unique = scenarios.size();
  const unsigned cores = std::thread::hardware_concurrency();

  std::cout << "Service throughput: paper_topologies sweep, " << unique
            << " unique scenarios (" << seeds << " seeds/config), scheduler = streaming-rlx, "
            << cores << " hardware threads\n\n";

  BenchReport report("service_throughput");
  report.add("scenarios", static_cast<std::int64_t>(unique));
  report.add("hardware_threads", static_cast<std::int64_t>(cores));

  // 1. Cold sweep scaling: 1 worker vs 4 workers, distinct caches. The
  // scaling phase gets a floor of 16 seeds regardless of smoke mode — a
  // handful of sub-millisecond jobs is all noise, not a throughput signal.
  const std::vector<Scenario> scaling_scenarios =
      seeds >= 16 ? scenarios : build_scenarios(16);
  ServiceConfig one;
  one.num_workers = 1;
  double t1 = 0.0;
  {
    ScheduleService service(one);
    t1 = run_sweep(service, scaling_scenarios, 1);
  }
  ServiceConfig four;
  four.num_workers = 4;
  double t4 = 0.0;
  {
    ScheduleService service(four);
    t4 = run_sweep(service, scaling_scenarios, 1);
  }
  const double scaling = t1 / t4;

  // 2. Single-flight dedup: kDuplicates copies of every scenario; the
  // scheduling pipeline must run exactly `unique` times.
  ScheduleService dedup_service(four);
  const double t_dedup = run_sweep(dedup_service, scenarios, kDuplicates);
  const ScheduleService::Stats dedup_stats = dedup_service.stats();
  const bool dedup_ok = dedup_stats.cache.misses == unique &&
                        dedup_stats.cache.hits + dedup_stats.cache.races ==
                            unique * (kDuplicates - 1) &&
                        dedup_stats.failed == 0;

  // 3. Bounded memory: capacity far below the scenario count must evict, not
  // grow.
  ServiceConfig bounded_config = four;
  bounded_config.cache_capacity = unique >= 16 ? unique / 4 : 4;
  ScheduleService bounded_service(bounded_config);
  (void)run_sweep(bounded_service, scenarios, 1);
  const std::size_t bounded_size = bounded_service.cache().size();
  const std::uint64_t evictions = bounded_service.stats().cache.evictions;
  const bool bounded_ok =
      bounded_size <= bounded_config.cache_capacity && evictions > 0;

  // 4. Backpressure: flood one worker through try_submit with a tiny queue
  // bound. Scheduling costs milliseconds while admission costs microseconds,
  // so the shard saturates and sheds load; every refusal must carry an
  // accurate depth and the queue must never exceed its bound.
  constexpr std::size_t kQueueDepth = 4;
  ServiceConfig bp_config;
  bp_config.num_workers = 1;
  bp_config.queue_depth = kQueueDepth;
  ScheduleService bp_service(bp_config);
  const Stopwatch bp_clock;
  std::vector<std::future<ScheduleService::ResultPtr>> bp_futures;
  std::uint64_t bp_rejections = 0;
  bool bp_depths_accurate = true;
  for (const Scenario& s : scenarios) {
    MachineConfig machine;
    machine.num_pes = s.pes;
    ScheduleService::Admission admission =
        bp_service.try_submit(s.graph, "streaming-rlx", machine);
    if (admission.accepted()) {
      bp_futures.push_back(std::move(admission.future));
    } else {
      ++bp_rejections;
      bp_depths_accurate = bp_depths_accurate && admission.rejected->depth == kQueueDepth &&
                           admission.rejected->limit == kQueueDepth &&
                           admission.rejected->shard == 0;
    }
  }
  for (auto& f : bp_futures) {
    if (f.get()->makespan <= 0) throw std::runtime_error("accepted job produced empty schedule");
  }
  bp_service.wait_idle();
  const double t_bp = bp_clock.seconds();
  const ScheduleService::Stats bp_stats = bp_service.stats();
  const std::size_t bp_peak_depth =
      bp_stats.shard_max_depth.empty() ? 0 : bp_stats.shard_max_depth.front();
  const bool bp_ok = bp_rejections > 0 && bp_depths_accurate &&
                     bp_stats.rejected == bp_rejections && bp_peak_depth <= kQueueDepth &&
                     bp_stats.submitted == bp_stats.completed + bp_stats.rejected;

  Table table({"phase", "workers", "jobs", "seconds", "jobs/s"});
  const auto row = [&](const char* phase, std::size_t workers, std::size_t jobs, double sec) {
    table.add_row({phase, std::to_string(workers), std::to_string(jobs), fmt(sec, 3),
                   fmt(jobs / sec, 0)});
  };
  row("cold", 1, scaling_scenarios.size(), t1);
  row("cold", 4, scaling_scenarios.size(), t4);
  row("dedup x4", 4, unique * kDuplicates, t_dedup);
  row("backpressure", 1, unique, t_bp);
  table.print(std::cout);
  std::cout << "\nscaling 4w/1w: " << fmt(scaling, 2) << "x\n"
            << "dedup: " << dedup_stats.cache.misses << " schedules computed for "
            << unique * kDuplicates << " submissions (" << dedup_stats.cache.hits << " hits, "
            << dedup_stats.cache.races << " races) -> " << (dedup_ok ? "OK" : "FAIL") << "\n"
            << "bounded: size " << bounded_size << " <= capacity "
            << bounded_config.cache_capacity << ", " << evictions << " evictions -> "
            << (bounded_ok ? "OK" : "FAIL") << "\n"
            << "backpressure: " << bp_rejections << " of " << unique
            << " refused at depth " << kQueueDepth << " (peak depth " << bp_peak_depth
            << ", depths accurate: " << (bp_depths_accurate ? "yes" : "no") << ") -> "
            << (bp_ok ? "OK" : "FAIL") << "\n";

  // STS_SCALING_MIN overrides the 3x bar: shared CI runners advertise 4
  // vCPUs that are really 2 SMT cores plus noisy neighbors, where 3x is
  // physically out of reach; real 4-core hosts keep the full gate.
  double scaling_min = 3.0;
  if (const char* env = std::getenv("STS_SCALING_MIN")) {
    const double v = std::atof(env);
    if (v > 0) scaling_min = v;
  }
  const bool enforce_scaling = cores >= 4;
  const bool scaling_ok = scaling >= scaling_min;
  bool pass = dedup_ok && bounded_ok && bp_ok;
  if (enforce_scaling) {
    pass = pass && scaling_ok;
    std::cout << "Expected: >= " << fmt(scaling_min, 1) << "x throughput at 4 workers vs 1\n";
  } else {
    std::cout << "NOTE: only " << cores << " hardware threads; the >= 3x scaling gate needs 4 "
              << "and is reported but not enforced on this host\n";
  }
  std::cout << (pass ? "RESULT: PASS" : "RESULT: BELOW TARGET") << "\n";

  report.add("scaling_scenarios", static_cast<std::int64_t>(scaling_scenarios.size()));
  report.add("cold_seconds_1w", t1);
  report.add("cold_seconds_4w", t4);
  report.add("qps_1w", scaling_scenarios.size() / t1);
  report.add("qps_4w", scaling_scenarios.size() / t4);
  report.add("scaling_4w_over_1w", scaling);
  report.add("scaling_min", scaling_min);
  report.add("scaling_gate_enforced", std::string(enforce_scaling ? "yes" : "no"));
  report.add("dedup_submissions", static_cast<std::int64_t>(unique * kDuplicates));
  report.add("dedup_schedules_computed", static_cast<std::int64_t>(dedup_stats.cache.misses));
  report.add("dedup_ok", std::string(dedup_ok ? "yes" : "no"));
  report.add("bounded_capacity", static_cast<std::int64_t>(bounded_config.cache_capacity));
  report.add("bounded_size", static_cast<std::int64_t>(bounded_size));
  report.add("bounded_evictions", static_cast<std::int64_t>(evictions));
  report.add("bounded_ok", std::string(bounded_ok ? "yes" : "no"));
  report.add("backpressure_queue_depth", static_cast<std::int64_t>(kQueueDepth));
  report.add("backpressure_rejections", static_cast<std::int64_t>(bp_rejections));
  report.add("backpressure_peak_depth", static_cast<std::int64_t>(bp_peak_depth));
  report.add("backpressure_depths_accurate", std::string(bp_depths_accurate ? "yes" : "no"));
  report.add("backpressure_seconds", t_bp);
  report.add("backpressure_ok", std::string(bp_ok ? "yes" : "no"));
  report.add("gate", std::string(pass ? "pass" : "fail"));
  report.write();
  return pass ? 0 : 1;
}
