// Simulation-engine benchmark and acceptance gate: the bulk-advance engine
// must be >= 20x faster than the tick-accurate reference on FFT-32 at
// paper-scale stream volumes (4Ki-64Ki elements per edge) while returning
// identical results. Also reports Cholesky-8 and the default-volume FFT-32
// for context, and emits BENCH_sim_engine.json for CI.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "pipeline/registry.hpp"
#include "sim/dataflow_sim.hpp"
#include "support/table.hpp"

namespace {

constexpr double kRequiredSpeedup = 20.0;

struct EngineRow {
  double tick_seconds = 0.0;
  double bulk_seconds = 0.0;
  std::int64_t total_ticks = 0;
  std::int64_t live_ticks = 0;
  std::int64_t jumps = 0;
  int mismatches = 0;

  [[nodiscard]] double speedup() const {
    return bulk_seconds > 0.0 ? tick_seconds / bulk_seconds : 0.0;
  }
};

EngineRow run_config(const sts::TaskGraph& g, std::int64_t pes) {
  using namespace sts;
  EngineRow row;
  MachineConfig machine;
  machine.num_pes = pes;
  const ScheduleResult r = schedule_by_name("streaming-rlx", g, machine);

  SimOptions tick_opts;
  tick_opts.engine = SimEngine::kTickAccurate;
  tick_opts.max_ticks = 500'000'000;
  SimOptions bulk_opts = tick_opts;
  bulk_opts.engine = SimEngine::kBulkAdvance;

  const bench::Stopwatch tick_watch;
  const SimResult tick = simulate_streaming(g, *r.streaming, *r.buffers, tick_opts);
  row.tick_seconds = tick_watch.seconds();

  const bench::Stopwatch bulk_watch;
  const SimResult bulk = simulate_streaming(g, *r.streaming, *r.buffers, bulk_opts);
  row.bulk_seconds = bulk_watch.seconds();

  row.total_ticks = tick.ticks_executed;
  row.live_ticks = bulk.live_ticks;
  row.jumps = bulk.bulk_jumps;
  if (bulk.makespan != tick.makespan || bulk.deadlocked != tick.deadlocked ||
      bulk.finish != tick.finish || bulk.first_out != tick.first_out) {
    ++row.mismatches;
  }
  return row;
}

}  // namespace

int main() {
  using namespace sts;
  using namespace sts::bench;
  const int graphs = std::clamp(graphs_per_config(), 1, 5);

  // Paper-scale streams: 2^12 .. 2^16 elements per edge, as in the paper's
  // full-size validation runs (the default 2^4 .. 2^10 distribution keeps
  // unit tests fast but underrepresents simulation cost).
  VolumeDistribution paper_scale;
  paper_scale.min_log2 = 12;
  paper_scale.max_log2 = 16;

  struct Config {
    std::string name;
    std::function<TaskGraph(std::uint64_t)> make;
    std::int64_t pes;
    bool gate;
  };
  const std::vector<Config> configs = {
      {"FFT-32 paper-scale",
       [&](std::uint64_t s) { return make_fft(32, s, paper_scale); }, 64, true},
      {"Cholesky-8 paper-scale",
       [&](std::uint64_t s) { return make_cholesky(8, s, paper_scale); }, 64, false},
      {"FFT-32 default-volumes", [](std::uint64_t s) { return make_fft(32, s); }, 64, false},
  };

  std::cout << "Simulation engines: bulk-advance vs tick-accurate reference\n"
            << graphs << " random graphs per configuration, identical results required\n\n";

  Table table({"Topology", "tick s", "bulk s", "speedup", "sim ticks", "live ticks", "jumps",
               "mismatches"});
  BenchReport report("sim_engine");
  report.add("graphs", graphs);

  double gate_speedup = 0.0;
  int total_mismatches = 0;
  for (const Config& config : configs) {
    EngineRow total;
    for (int seed = 0; seed < graphs; ++seed) {
      const TaskGraph g = config.make(static_cast<std::uint64_t>(seed) + 1);
      const EngineRow row = run_config(g, config.pes);
      total.tick_seconds += row.tick_seconds;
      total.bulk_seconds += row.bulk_seconds;
      total.total_ticks += row.total_ticks;
      total.live_ticks += row.live_ticks;
      total.jumps += row.jumps;
      total.mismatches += row.mismatches;
    }
    if (config.gate) gate_speedup = total.speedup();
    total_mismatches += total.mismatches;
    table.add_row({config.name, fmt(total.tick_seconds, 3), fmt(total.bulk_seconds, 4),
                   fmt(total.speedup(), 1) + "x", std::to_string(total.total_ticks),
                   std::to_string(total.live_ticks), std::to_string(total.jumps),
                   std::to_string(total.mismatches)});

    std::string key = config.name;
    for (char& c : key) {
      if (c == ' ' || c == '-') c = '_';
    }
    report.add(key + "_tick_seconds", total.tick_seconds);
    report.add(key + "_bulk_seconds", total.bulk_seconds);
    report.add(key + "_speedup", total.speedup());
    report.add(key + "_live_ticks", total.live_ticks);
    report.add(key + "_sim_ticks", total.total_ticks);
  }
  table.print(std::cout);

  const bool pass = gate_speedup >= kRequiredSpeedup && total_mismatches == 0;
  std::cout << "\nGate: bulk-advance speedup on FFT-32 paper-scale = " << fmt(gate_speedup, 1)
            << "x (required >= " << fmt(kRequiredSpeedup, 0) << "x), engine mismatches = "
            << total_mismatches << (pass ? "  [PASS]\n" : "  [FAIL]\n");
  report.add("gate_speedup", gate_speedup);
  report.add("gate_required", kRequiredSpeedup);
  report.add("mismatches", static_cast<std::int64_t>(total_mismatches));
  report.add("gate", std::string(pass ? "pass" : "fail"));
  report.write();
  return pass ? 0 : 1;
}
