// Reproduces Table 2: streaming vs non-streaming scheduling of real ML
// inference workloads — ResNet-50 and one transformer encoder layer — over
// the paper's PE sweeps, reporting speedups and the streaming gain G.
// As in the paper, the SB-LTS variant is reported (the two variants do not
// differ noticeably here). Both schedulers come from SchedulerRegistry.

#include <iostream>

#include "bench_common.hpp"
#include "ml/models.hpp"
#include "pipeline/registry.hpp"
#include "support/table.hpp"

namespace {

void run_model(const char* title, const std::string& report_key, const sts::TaskGraph& graph,
               const std::vector<std::int64_t>& pe_sweep, sts::bench::BenchReport& report) {
  using namespace sts;
  const ModelStats stats = stats_of(graph);
  std::cout << title << ": " << stats.nodes << " nodes (" << stats.buffer_nodes
            << " buffers), " << stats.edges << " edges, T1 = " << stats.total_work << "\n";

  Table table({"#PEs", "STR-SCH speedup", "NSTR-SCH speedup", "G"});
  for (const std::int64_t pes : pe_sweep) {
    MachineConfig machine;
    machine.num_pes = pes;
    const double s_str = schedule_by_name("streaming-lts", graph, machine).metrics.speedup;
    const double s_nstr = schedule_by_name("list", graph, machine).metrics.speedup;
    table.add_row({std::to_string(pes), fmt(s_str, 1), fmt(s_nstr, 1),
                   fmt(s_str / s_nstr, 1)});
    report.add(report_key + "_g_at_" + std::to_string(pes), s_str / s_nstr);
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace sts;
  std::cout << "Table 2: real ML inference task graphs, streaming (SB-LTS) vs\n"
               "non-streaming scheduling; G = streaming gain\n\n";

  bench::BenchReport report("table2_ml");
  run_model("Resnet-50 (im2col)", "resnet50", build_resnet50(ResNetConfig{}),
            {512, 1024, 1536, 2048}, report);
  run_model("Transformer encoder layer (base)", "transformer",
            build_transformer_encoder(TransformerConfig{}), {256, 512, 768, 1024}, report);

  std::cout << "Expected shape (paper): G ~ 1.3-1.5 for Resnet-50, ~1.4-2.0 for the\n"
               "encoder, both growing with the PE count.\n";
  report.write();
  return 0;
}
