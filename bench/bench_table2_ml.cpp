// Reproduces Table 2: streaming vs non-streaming scheduling of real ML
// inference workloads — ResNet-50 and one transformer encoder layer — over
// the paper's PE sweeps, reporting speedups and the streaming gain G.
// As in the paper, the SB-LTS variant is reported (the two variants do not
// differ noticeably here).

#include <iostream>

#include "baseline/list_scheduler.hpp"
#include "bench_common.hpp"
#include "core/streaming_scheduler.hpp"
#include "metrics/metrics.hpp"
#include "ml/models.hpp"
#include "support/table.hpp"

namespace {

void run_model(const char* title, const sts::TaskGraph& graph,
               const std::vector<std::int64_t>& pe_sweep) {
  using namespace sts;
  const ModelStats stats = stats_of(graph);
  std::cout << title << ": " << stats.nodes << " nodes (" << stats.buffer_nodes
            << " buffers), " << stats.edges << " edges, T1 = " << stats.total_work << "\n";

  Table table({"#PEs", "STR-SCH speedup", "NSTR-SCH speedup", "G"});
  const std::int64_t t1 = graph.total_work();
  for (const std::int64_t pes : pe_sweep) {
    sts::bench::Stopwatch clock;
    const auto str = schedule_streaming_graph(graph, pes, PartitionVariant::kLTS);
    const ListSchedule nstr = schedule_non_streaming(graph, pes);
    const double s_str = speedup(t1, str.schedule.makespan);
    const double s_nstr = speedup(t1, nstr.makespan);
    table.add_row({std::to_string(pes), fmt(s_str, 1), fmt(s_nstr, 1),
                   fmt(s_str / s_nstr, 1)});
    (void)clock;
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace sts;
  std::cout << "Table 2: real ML inference task graphs, streaming (SB-LTS) vs\n"
               "non-streaming scheduling; G = streaming gain\n\n";

  run_model("Resnet-50 (im2col)", build_resnet50(ResNetConfig{}), {512, 1024, 1536, 2048});
  run_model("Transformer encoder layer (base)", build_transformer_encoder(TransformerConfig{}),
            {256, 512, 768, 1024});

  std::cout << "Expected shape (paper): G ~ 1.3-1.5 for Resnet-50, ~1.4-2.0 for the\n"
               "encoder, both growing with the PE count.\n";
  return 0;
}
