file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_speedup.dir/bench/bench_fig10_speedup.cpp.o"
  "CMakeFiles/bench_fig10_speedup.dir/bench/bench_fig10_speedup.cpp.o.d"
  "bench_fig10_speedup"
  "bench_fig10_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
