file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_sslr.dir/bench/bench_fig11_sslr.cpp.o"
  "CMakeFiles/bench_fig11_sslr.dir/bench/bench_fig11_sslr.cpp.o.d"
  "bench_fig11_sslr"
  "bench_fig11_sslr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sslr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
