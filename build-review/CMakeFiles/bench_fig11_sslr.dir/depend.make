# Empty dependencies file for bench_fig11_sslr.
# This may be replaced when dependencies are built.
