file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_csdf.dir/bench/bench_fig12_csdf.cpp.o"
  "CMakeFiles/bench_fig12_csdf.dir/bench/bench_fig12_csdf.cpp.o.d"
  "bench_fig12_csdf"
  "bench_fig12_csdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_csdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
