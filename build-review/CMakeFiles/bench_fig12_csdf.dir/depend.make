# Empty dependencies file for bench_fig12_csdf.
# This may be replaced when dependencies are built.
