file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_cache.dir/bench/bench_pipeline_cache.cpp.o"
  "CMakeFiles/bench_pipeline_cache.dir/bench/bench_pipeline_cache.cpp.o.d"
  "bench_pipeline_cache"
  "bench_pipeline_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
