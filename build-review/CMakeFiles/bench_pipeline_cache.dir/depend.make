# Empty dependencies file for bench_pipeline_cache.
# This may be replaced when dependencies are built.
