file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ml.dir/bench/bench_table2_ml.cpp.o"
  "CMakeFiles/bench_table2_ml.dir/bench/bench_table2_ml.cpp.o.d"
  "bench_table2_ml"
  "bench_table2_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
