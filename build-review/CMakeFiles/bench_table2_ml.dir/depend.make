# Empty dependencies file for bench_table2_ml.
# This may be replaced when dependencies are built.
