file(REMOVE_RECURSE
  "CMakeFiles/deadlock_doctor.dir/examples/deadlock_doctor.cpp.o"
  "CMakeFiles/deadlock_doctor.dir/examples/deadlock_doctor.cpp.o.d"
  "deadlock_doctor"
  "deadlock_doctor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_doctor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
