# Empty dependencies file for deadlock_doctor.
# This may be replaced when dependencies are built.
