file(REMOVE_RECURSE
  "CMakeFiles/matmul_variants.dir/examples/matmul_variants.cpp.o"
  "CMakeFiles/matmul_variants.dir/examples/matmul_variants.cpp.o.d"
  "matmul_variants"
  "matmul_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
