# Empty dependencies file for matmul_variants.
# This may be replaced when dependencies are built.
