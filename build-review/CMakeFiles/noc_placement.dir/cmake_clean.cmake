file(REMOVE_RECURSE
  "CMakeFiles/noc_placement.dir/examples/noc_placement.cpp.o"
  "CMakeFiles/noc_placement.dir/examples/noc_placement.cpp.o.d"
  "noc_placement"
  "noc_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
