# Empty dependencies file for noc_placement.
# This may be replaced when dependencies are built.
