file(REMOVE_RECURSE
  "CMakeFiles/softmax_pipeline.dir/examples/softmax_pipeline.cpp.o"
  "CMakeFiles/softmax_pipeline.dir/examples/softmax_pipeline.cpp.o.d"
  "softmax_pipeline"
  "softmax_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softmax_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
