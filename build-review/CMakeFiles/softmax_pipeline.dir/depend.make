# Empty dependencies file for softmax_pipeline.
# This may be replaced when dependencies are built.
