
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/heft.cpp" "CMakeFiles/sts.dir/src/baseline/heft.cpp.o" "gcc" "CMakeFiles/sts.dir/src/baseline/heft.cpp.o.d"
  "/root/repo/src/baseline/list_scheduler.cpp" "CMakeFiles/sts.dir/src/baseline/list_scheduler.cpp.o" "gcc" "CMakeFiles/sts.dir/src/baseline/list_scheduler.cpp.o.d"
  "/root/repo/src/core/buffer_sizing.cpp" "CMakeFiles/sts.dir/src/core/buffer_sizing.cpp.o" "gcc" "CMakeFiles/sts.dir/src/core/buffer_sizing.cpp.o.d"
  "/root/repo/src/core/optimal_partition.cpp" "CMakeFiles/sts.dir/src/core/optimal_partition.cpp.o" "gcc" "CMakeFiles/sts.dir/src/core/optimal_partition.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "CMakeFiles/sts.dir/src/core/partition.cpp.o" "gcc" "CMakeFiles/sts.dir/src/core/partition.cpp.o.d"
  "/root/repo/src/core/schedule_export.cpp" "CMakeFiles/sts.dir/src/core/schedule_export.cpp.o" "gcc" "CMakeFiles/sts.dir/src/core/schedule_export.cpp.o.d"
  "/root/repo/src/core/streaming_intervals.cpp" "CMakeFiles/sts.dir/src/core/streaming_intervals.cpp.o" "gcc" "CMakeFiles/sts.dir/src/core/streaming_intervals.cpp.o.d"
  "/root/repo/src/core/streaming_schedule.cpp" "CMakeFiles/sts.dir/src/core/streaming_schedule.cpp.o" "gcc" "CMakeFiles/sts.dir/src/core/streaming_schedule.cpp.o.d"
  "/root/repo/src/core/streaming_scheduler.cpp" "CMakeFiles/sts.dir/src/core/streaming_scheduler.cpp.o" "gcc" "CMakeFiles/sts.dir/src/core/streaming_scheduler.cpp.o.d"
  "/root/repo/src/core/work_depth.cpp" "CMakeFiles/sts.dir/src/core/work_depth.cpp.o" "gcc" "CMakeFiles/sts.dir/src/core/work_depth.cpp.o.d"
  "/root/repo/src/csdf/csdf.cpp" "CMakeFiles/sts.dir/src/csdf/csdf.cpp.o" "gcc" "CMakeFiles/sts.dir/src/csdf/csdf.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "CMakeFiles/sts.dir/src/graph/algorithms.cpp.o" "gcc" "CMakeFiles/sts.dir/src/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/dot_export.cpp" "CMakeFiles/sts.dir/src/graph/dot_export.cpp.o" "gcc" "CMakeFiles/sts.dir/src/graph/dot_export.cpp.o.d"
  "/root/repo/src/graph/serialization.cpp" "CMakeFiles/sts.dir/src/graph/serialization.cpp.o" "gcc" "CMakeFiles/sts.dir/src/graph/serialization.cpp.o.d"
  "/root/repo/src/graph/task_graph.cpp" "CMakeFiles/sts.dir/src/graph/task_graph.cpp.o" "gcc" "CMakeFiles/sts.dir/src/graph/task_graph.cpp.o.d"
  "/root/repo/src/metrics/metrics.cpp" "CMakeFiles/sts.dir/src/metrics/metrics.cpp.o" "gcc" "CMakeFiles/sts.dir/src/metrics/metrics.cpp.o.d"
  "/root/repo/src/ml/canonical_builder.cpp" "CMakeFiles/sts.dir/src/ml/canonical_builder.cpp.o" "gcc" "CMakeFiles/sts.dir/src/ml/canonical_builder.cpp.o.d"
  "/root/repo/src/ml/models.cpp" "CMakeFiles/sts.dir/src/ml/models.cpp.o" "gcc" "CMakeFiles/sts.dir/src/ml/models.cpp.o.d"
  "/root/repo/src/ml/ops.cpp" "CMakeFiles/sts.dir/src/ml/ops.cpp.o" "gcc" "CMakeFiles/sts.dir/src/ml/ops.cpp.o.d"
  "/root/repo/src/noc/mesh.cpp" "CMakeFiles/sts.dir/src/noc/mesh.cpp.o" "gcc" "CMakeFiles/sts.dir/src/noc/mesh.cpp.o.d"
  "/root/repo/src/noc/placement.cpp" "CMakeFiles/sts.dir/src/noc/placement.cpp.o" "gcc" "CMakeFiles/sts.dir/src/noc/placement.cpp.o.d"
  "/root/repo/src/pipeline/passes.cpp" "CMakeFiles/sts.dir/src/pipeline/passes.cpp.o" "gcc" "CMakeFiles/sts.dir/src/pipeline/passes.cpp.o.d"
  "/root/repo/src/pipeline/pipeline.cpp" "CMakeFiles/sts.dir/src/pipeline/pipeline.cpp.o" "gcc" "CMakeFiles/sts.dir/src/pipeline/pipeline.cpp.o.d"
  "/root/repo/src/pipeline/registry.cpp" "CMakeFiles/sts.dir/src/pipeline/registry.cpp.o" "gcc" "CMakeFiles/sts.dir/src/pipeline/registry.cpp.o.d"
  "/root/repo/src/pipeline/schedule_cache.cpp" "CMakeFiles/sts.dir/src/pipeline/schedule_cache.cpp.o" "gcc" "CMakeFiles/sts.dir/src/pipeline/schedule_cache.cpp.o.d"
  "/root/repo/src/pipeline/schedule_context.cpp" "CMakeFiles/sts.dir/src/pipeline/schedule_context.cpp.o" "gcc" "CMakeFiles/sts.dir/src/pipeline/schedule_context.cpp.o.d"
  "/root/repo/src/pipeline/scheduler.cpp" "CMakeFiles/sts.dir/src/pipeline/scheduler.cpp.o" "gcc" "CMakeFiles/sts.dir/src/pipeline/scheduler.cpp.o.d"
  "/root/repo/src/service/schedule_service.cpp" "CMakeFiles/sts.dir/src/service/schedule_service.cpp.o" "gcc" "CMakeFiles/sts.dir/src/service/schedule_service.cpp.o.d"
  "/root/repo/src/sim/bulk_advance.cpp" "CMakeFiles/sts.dir/src/sim/bulk_advance.cpp.o" "gcc" "CMakeFiles/sts.dir/src/sim/bulk_advance.cpp.o.d"
  "/root/repo/src/sim/dataflow_sim.cpp" "CMakeFiles/sts.dir/src/sim/dataflow_sim.cpp.o" "gcc" "CMakeFiles/sts.dir/src/sim/dataflow_sim.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "CMakeFiles/sts.dir/src/support/stats.cpp.o" "gcc" "CMakeFiles/sts.dir/src/support/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "CMakeFiles/sts.dir/src/support/table.cpp.o" "gcc" "CMakeFiles/sts.dir/src/support/table.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "CMakeFiles/sts.dir/src/workloads/synthetic.cpp.o" "gcc" "CMakeFiles/sts.dir/src/workloads/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
