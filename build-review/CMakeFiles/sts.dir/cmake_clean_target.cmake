file(REMOVE_RECURSE
  "libsts.a"
)
