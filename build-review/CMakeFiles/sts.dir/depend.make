# Empty dependencies file for sts.
# This may be replaced when dependencies are built.
