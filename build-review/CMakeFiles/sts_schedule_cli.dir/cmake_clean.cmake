file(REMOVE_RECURSE
  "CMakeFiles/sts_schedule_cli.dir/examples/sts_schedule_cli.cpp.o"
  "CMakeFiles/sts_schedule_cli.dir/examples/sts_schedule_cli.cpp.o.d"
  "sts_schedule_cli"
  "sts_schedule_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sts_schedule_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
