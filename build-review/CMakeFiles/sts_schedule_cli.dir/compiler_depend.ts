# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sts_schedule_cli.
