# Empty dependencies file for sts_schedule_cli.
# This may be replaced when dependencies are built.
