
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_algorithms.cpp" "CMakeFiles/sts_tests.dir/tests/test_algorithms.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_algorithms.cpp.o.d"
  "/root/repo/tests/test_block_schedule.cpp" "CMakeFiles/sts_tests.dir/tests/test_block_schedule.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_block_schedule.cpp.o.d"
  "/root/repo/tests/test_buffer_sizing.cpp" "CMakeFiles/sts_tests.dir/tests/test_buffer_sizing.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_buffer_sizing.cpp.o.d"
  "/root/repo/tests/test_csdf.cpp" "CMakeFiles/sts_tests.dir/tests/test_csdf.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_csdf.cpp.o.d"
  "/root/repo/tests/test_export.cpp" "CMakeFiles/sts_tests.dir/tests/test_export.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_export.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "CMakeFiles/sts_tests.dir/tests/test_fuzz.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "CMakeFiles/sts_tests.dir/tests/test_graph.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_graph.cpp.o.d"
  "/root/repo/tests/test_heft.cpp" "CMakeFiles/sts_tests.dir/tests/test_heft.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_heft.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "CMakeFiles/sts_tests.dir/tests/test_integration.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_integration.cpp.o.d"
  "/root/repo/tests/test_list_scheduler.cpp" "CMakeFiles/sts_tests.dir/tests/test_list_scheduler.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_list_scheduler.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "CMakeFiles/sts_tests.dir/tests/test_metrics.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_metrics.cpp.o.d"
  "/root/repo/tests/test_ml.cpp" "CMakeFiles/sts_tests.dir/tests/test_ml.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_ml.cpp.o.d"
  "/root/repo/tests/test_optimal_partition.cpp" "CMakeFiles/sts_tests.dir/tests/test_optimal_partition.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_optimal_partition.cpp.o.d"
  "/root/repo/tests/test_partition.cpp" "CMakeFiles/sts_tests.dir/tests/test_partition.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_partition.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "CMakeFiles/sts_tests.dir/tests/test_pipeline.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_placement.cpp" "CMakeFiles/sts_tests.dir/tests/test_placement.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_placement.cpp.o.d"
  "/root/repo/tests/test_rational.cpp" "CMakeFiles/sts_tests.dir/tests/test_rational.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_rational.cpp.o.d"
  "/root/repo/tests/test_schedule_cache.cpp" "CMakeFiles/sts_tests.dir/tests/test_schedule_cache.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_schedule_cache.cpp.o.d"
  "/root/repo/tests/test_serialization.cpp" "CMakeFiles/sts_tests.dir/tests/test_serialization.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_serialization.cpp.o.d"
  "/root/repo/tests/test_service.cpp" "CMakeFiles/sts_tests.dir/tests/test_service.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_service.cpp.o.d"
  "/root/repo/tests/test_sim_engines.cpp" "CMakeFiles/sts_tests.dir/tests/test_sim_engines.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_sim_engines.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "CMakeFiles/sts_tests.dir/tests/test_simulator.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_simulator.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "CMakeFiles/sts_tests.dir/tests/test_stats.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_stats.cpp.o.d"
  "/root/repo/tests/test_streaming_intervals.cpp" "CMakeFiles/sts_tests.dir/tests/test_streaming_intervals.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_streaming_intervals.cpp.o.d"
  "/root/repo/tests/test_work_depth.cpp" "CMakeFiles/sts_tests.dir/tests/test_work_depth.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_work_depth.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "CMakeFiles/sts_tests.dir/tests/test_workloads.cpp.o" "gcc" "CMakeFiles/sts_tests.dir/tests/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/sts.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
