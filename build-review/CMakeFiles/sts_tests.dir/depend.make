# Empty dependencies file for sts_tests.
# This may be replaced when dependencies are built.
