file(REMOVE_RECURSE
  "CMakeFiles/transformer_inference.dir/examples/transformer_inference.cpp.o"
  "CMakeFiles/transformer_inference.dir/examples/transformer_inference.cpp.o.d"
  "transformer_inference"
  "transformer_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transformer_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
