# Empty dependencies file for transformer_inference.
# This may be replaced when dependencies are built.
