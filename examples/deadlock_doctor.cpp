// Deadlock analysis walkthrough (paper Section 6, Figure 9): reconvergent
// streaming paths with unbalanced delays deadlock when FIFOs are too small.
// This example computes the Eq. 5 buffer space for both Figure 9 graphs,
// then demonstrates by simulation that (a) the computed sizes run to
// completion and (b) single-slot FIFOs wedge the pipeline, reporting which
// tasks are stuck.

#include <iostream>

#include "core/streaming_scheduler.hpp"
#include "graph/task_graph.hpp"
#include "sim/dataflow_sim.hpp"
#include "support/table.hpp"

namespace {

using namespace sts;

TaskGraph figure9_graph1() {
  TaskGraph g;
  const NodeId n0 = g.add_source(32, "t0");
  const NodeId n1 = g.add_compute("t1");
  const NodeId n2 = g.add_compute("t2");
  const NodeId n3 = g.add_compute("t3");
  const NodeId n4 = g.add_compute("t4");
  g.add_edge(n0, n1, 32);
  g.add_edge(n1, n2, 4);
  g.add_edge(n2, n3, 2);
  g.add_edge(n3, n4, 32);
  g.add_edge(n0, n4, 32);
  g.declare_output(n4, 32);
  return g;
}

TaskGraph figure9_graph2() {
  TaskGraph g;
  const NodeId n0 = g.add_source(32, "t0");
  const NodeId n1 = g.add_compute("t1");
  const NodeId n2 = g.add_compute("t2");
  const NodeId n3 = g.add_source(32, "t3");
  const NodeId n4 = g.add_compute("t4");
  const NodeId n5 = g.add_compute("t5");
  g.add_edge(n0, n1, 32);
  g.add_edge(n1, n2, 1);
  g.add_edge(n2, n5, 32);
  g.add_edge(n3, n4, 32);
  g.add_edge(n0, n4, 32);
  g.add_edge(n4, n5, 32);
  g.declare_output(n5, 32);
  return g;
}

void diagnose(const char* title, const TaskGraph& g) {
  std::cout << title << "\n";
  const auto r = schedule_streaming_graph(
      g, static_cast<std::int64_t>(g.node_count()), PartitionVariant::kRLX);

  Table plan({"channel", "volume", "Eq.5", "FIFO slots", "on cycle"});
  for (const ChannelPlan& c : r.buffers.channels) {
    const Edge& e = g.edge(c.edge);
    plan.add_row({g.name(e.src) + " -> " + g.name(e.dst), std::to_string(e.volume),
                  std::to_string(c.eq5_requirement), std::to_string(c.capacity),
                  c.on_undirected_cycle ? "yes" : "no"});
  }
  plan.print(std::cout);

  const SimResult healthy = simulate_streaming(g, r.schedule, r.buffers);
  std::cout << "with Eq. 5 sizes : makespan " << healthy.makespan
            << (healthy.deadlocked ? "  DEADLOCK" : "  (completes)") << "\n";

  BufferPlan starved = r.buffers;
  for (ChannelPlan& c : starved.channels) c.capacity = 1;
  const SimResult wedged = simulate_streaming(g, r.schedule, starved);
  std::cout << "with 1-slot FIFOs: ";
  if (wedged.deadlocked) {
    std::cout << "DEADLOCK after tick " << wedged.ticks_executed << "; stuck tasks:";
    for (const NodeId v : wedged.stuck) std::cout << " " << g.name(v);
    std::cout << "\n";
  } else {
    std::cout << "makespan " << wedged.makespan << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Deadlock-free buffer sizing (paper Section 6)\n\n";
  diagnose("Figure 9, graph 1: reconvergent paths through reducers", figure9_graph1());
  diagnose("Figure 9, graph 2: undirected cycle across two source chains",
           figure9_graph2());
  std::cout << "Expected FIFO sizes from the paper: 18 slots on t0->t4 (graph 1)\n"
               "and 32 slots on t4->t5 (graph 2).\n";
  return 0;
}
