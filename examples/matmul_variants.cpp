// Choosing a matrix-multiplication implementation (paper Section 3.2.2,
// Figure 3): the same C = A * B can be expressed as (1) a naive inner
// product, (2) a column-parallel bank of matrix-vector tasks, or (3) a
// K-parallel outer-product with a sum tree. Their canonical task graphs
// expose very different parallelism; this example schedules all three on the
// same device and reports the winner per shape — mirroring the paper's
// "for each MatMul we choose the implementation that maximizes parallelism
// depending on the input matrices' sizes".

#include <iostream>

#include "core/streaming_scheduler.hpp"
#include "metrics/metrics.hpp"
#include "ml/canonical_builder.hpp"
#include "ml/ops.hpp"
#include "support/table.hpp"

namespace {

using namespace sts;

std::int64_t schedule_makespan(const TaskGraph& g, std::int64_t pes) {
  return schedule_streaming_graph(g, pes, PartitionVariant::kRLX).schedule.makespan;
}

struct Variant {
  const char* name;
  std::int64_t makespan;
  std::int64_t nodes;
};

Variant inner_product(std::int64_t n, std::int64_t k, std::int64_t m, std::int64_t pes) {
  TaskGraph g;
  CanonicalBuilder b(g);
  const Stream a = b.source(n * k, "A");
  const Stream bs = b.source(k * m, "B");
  b.finish(matmul_inner_product(b, a, bs, n, k, m, "mm"));
  g.validate_or_throw();
  return {"inner-product (Fig3-1)", schedule_makespan(g, pes),
          static_cast<std::int64_t>(g.node_count())};
}

Variant column_parallel(std::int64_t n, std::int64_t k, std::int64_t m, std::int64_t pes) {
  TaskGraph g;
  CanonicalBuilder b(g);
  const Stream a = b.source(n * k, "A");
  const MatmulExpansion mm = matmul_weights(b, a, n, k, m, "mm");
  b.finish(mm.out);
  g.validate_or_throw();
  return {"column-parallel (Fig3-2)", schedule_makespan(g, pes),
          static_cast<std::int64_t>(g.node_count())};
}

Variant outer_product_tree(std::int64_t n, std::int64_t k, std::int64_t m, std::int64_t pes) {
  TaskGraph g;
  CanonicalBuilder b(g);
  const Stream a = b.source(n * k, "A");
  const Stream bs = b.source(k * m, "B");
  const MatmulExpansion mm = matmul_outer_product(b, a, bs, n, k, m, "mm");
  b.finish(mm.out);
  g.validate_or_throw();
  return {"outer-product (Fig3-3)", schedule_makespan(g, pes),
          static_cast<std::int64_t>(g.node_count())};
}

}  // namespace

int main() {
  const std::int64_t pes = 64;
  std::cout << "Matrix-multiply implementation selection on " << pes << " PEs\n\n";

  sts::Table table({"N x K x M", "variant", "nodes", "makespan", "chosen"});
  const std::int64_t shapes[][3] = {{32, 16, 48}, {8, 128, 8}, {64, 8, 64}, {16, 64, 16}};
  for (const auto& s : shapes) {
    const Variant variants[] = {inner_product(s[0], s[1], s[2], pes),
                                column_parallel(s[0], s[1], s[2], pes),
                                outer_product_tree(s[0], s[1], s[2], pes)};
    std::int64_t best = variants[0].makespan;
    for (const Variant& v : variants) best = std::min(best, v.makespan);
    const std::string shape = std::to_string(s[0]) + " x " + std::to_string(s[1]) + " x " +
                              std::to_string(s[2]);
    for (const Variant& v : variants) {
      table.add_row({shape, v.name, std::to_string(v.nodes), std::to_string(v.makespan),
                     v.makespan == best ? "<--" : ""});
    }
  }
  table.print(std::cout);
  std::cout << "\nTall/thin shapes favor the parallel expansions; the naive inner\n"
               "product has no task-level parallelism and loses once K stops\n"
               "dominating the shape.\n";
  return 0;
}
