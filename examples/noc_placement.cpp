// Placing a scheduled application onto a 2D-mesh dataflow fabric: the
// spatio-temporal schedule decides *when* tasks run; placement decides
// *where*. This example schedules an FFT task graph, places each spatial
// block on a mesh NoC with both the naive and the communication-aware
// greedy placement, and renders the mesh occupancy of the first block.

#include <iostream>
#include <vector>

#include "core/streaming_scheduler.hpp"
#include "noc/placement.hpp"
#include "support/table.hpp"
#include "workloads/synthetic.hpp"

int main() {
  using namespace sts;

  const TaskGraph g = make_fft(16, /*seed=*/7);
  const Mesh mesh(4, 4);
  const auto r = schedule_streaming_graph(g, mesh.size(), PartitionVariant::kRLX);
  std::cout << "FFT(16) task graph: " << g.node_count() << " tasks in "
            << r.schedule.partition.block_count() << " spatial blocks on a "
            << mesh.rows() << "x" << mesh.cols() << " mesh\n\n";

  const Placement naive = place_identity(g, r.schedule, mesh);
  const Placement greedy = place_greedy(g, r.schedule, mesh);

  Table table({"placement", "weighted hops", "mean hops", "hottest link (elements)"});
  table.add_row({"naive (PE order)", std::to_string(naive.metrics.weighted_hops),
                 fmt(naive.metrics.mean_hops, 2),
                 std::to_string(naive.metrics.max_link_load)});
  table.add_row({"greedy (traffic-aware)", std::to_string(greedy.metrics.weighted_hops),
                 fmt(greedy.metrics.mean_hops, 2),
                 std::to_string(greedy.metrics.max_link_load)});
  table.print(std::cout);

  std::cout << "\nBlock 0 under greedy placement (task per mesh tile):\n";
  const auto& block0 = r.schedule.partition.blocks.front();
  std::vector<std::string> tile(static_cast<std::size_t>(mesh.size()), ".");
  for (const NodeId v : block0) {
    const std::int64_t pe = greedy.mesh_pe[static_cast<std::size_t>(v)];
    tile[static_cast<std::size_t>(pe)] = g.name(v);
  }
  for (std::int32_t y = 0; y < mesh.rows(); ++y) {
    for (std::int32_t x = 0; x < mesh.cols(); ++x) {
      const auto pe = mesh.pe_of(MeshCoord{x, y});
      std::cout << "  " << tile[static_cast<std::size_t>(pe)];
      std::cout << std::string(tile[static_cast<std::size_t>(pe)].size() < 4
                                   ? 4 - tile[static_cast<std::size_t>(pe)].size()
                                   : 1,
                               ' ');
    }
    std::cout << "\n";
  }
  std::cout << "\nStreaming neighbors sit adjacently, so the on-chip FIFO traffic\n"
               "matches the contention-free assumption of the scheduling model.\n";
  return 0;
}
