// Quickstart: build a canonical task graph, run the full streaming
// scheduling pipeline (partition -> within-block schedule -> deadlock-free
// FIFO sizing), and inspect the result. The graph is Figure 8 of the paper,
// so the printed ST/FO/LO table matches the one in print.

#include <iostream>

#include "core/streaming_scheduler.hpp"
#include "core/work_depth.hpp"
#include "graph/task_graph.hpp"
#include "metrics/metrics.hpp"
#include "sim/dataflow_sim.hpp"
#include "support/table.hpp"

int main() {
  using namespace sts;

  // 1. Describe the application as a canonical task graph (Section 3):
  //    a source streaming 16 elements, a 1/4 downsampler, an element-wise
  //    task, a 2x upsampler, and another 1/4 downsampler.
  TaskGraph g;
  const NodeId t0 = g.add_source(16, "t0");
  const NodeId t1 = g.add_compute("t1");
  const NodeId t2 = g.add_compute("t2");
  const NodeId t3 = g.add_compute("t3");
  const NodeId t4 = g.add_compute("t4");
  g.add_edge(t0, t1, 16);
  g.add_edge(t1, t2, 4);
  g.add_edge(t0, t3, 16);
  g.add_edge(t3, t4, 32);
  g.declare_output(t2, 4);  // exit streams write global memory
  g.declare_output(t4, 8);
  g.validate_or_throw();

  // 2. Analyze: work, streaming depth, steady-state intervals.
  const WorkDepth wd = analyze_work_depth(g);
  std::cout << "T1 (sequential work) = " << wd.work
            << ", streaming depth bound T_s_inf = " << wd.streaming_depth << "\n\n";

  // 3. Schedule on 5 PEs with the SB-RLX heuristic; FIFO sizes via Eq. 5.
  const StreamingSchedulerResult r = schedule_streaming_graph(g, 5, PartitionVariant::kRLX);

  Table table({"Task", "block", "PE", "ST", "FO", "LO", "S_in", "S_out"});
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    const TaskTiming& t = r.schedule.at(v);
    table.add_row({g.name(v), std::to_string(t.block), std::to_string(t.pe),
                   std::to_string(t.start), std::to_string(t.first_out),
                   std::to_string(t.last_out), t.s_in.to_string(), t.s_out.to_string()});
  }
  table.print(std::cout);
  std::cout << "\nMakespan = " << r.schedule.makespan
            << " (speedup over sequential: " << fmt(speedup(wd.work, r.schedule.makespan), 2)
            << ")\n";

  std::cout << "Streaming FIFO sizes (Section 6):\n";
  for (const ChannelPlan& c : r.buffers.channels) {
    const Edge& e = g.edge(c.edge);
    std::cout << "  " << g.name(e.src) << " -> " << g.name(e.dst) << ": " << c.capacity
              << " element(s)" << (c.on_undirected_cycle ? "  [on undirected cycle]" : "")
              << "\n";
  }

  // 4. Validate by discrete-event simulation (Appendix B).
  const SimResult sim = simulate_streaming(g, r.schedule, r.buffers);
  std::cout << "\nSimulated makespan = " << sim.makespan
            << (sim.deadlocked ? "  DEADLOCK!" : "  (no deadlock)") << "\n";
  return sim.deadlocked ? 1 : 0;
}
