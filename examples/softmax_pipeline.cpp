// Streaming kernels with buffer nodes: the Figure 5 softmax and the two
// vector-normalization variants of Figure 4. Shows how buffer nodes split
// the computation into sequential weakly connected components, and how the
// fully streamed alternative trades that latency for Eq. 5 FIFO space.

#include <iostream>

#include "core/streaming_scheduler.hpp"
#include "core/work_depth.hpp"
#include "ml/canonical_builder.hpp"
#include "ml/ops.hpp"
#include "sim/dataflow_sim.hpp"
#include "support/table.hpp"

namespace {

using namespace sts;

void report(const char* title, const TaskGraph& g, std::int64_t pes) {
  g.validate_or_throw();
  const auto r = schedule_streaming_graph(g, pes, PartitionVariant::kRLX);
  const SimResult sim = simulate_streaming(g, r.schedule, r.buffers);
  const WorkDepth wd = analyze_work_depth(g);
  std::cout << title << ": " << g.node_count() << " nodes, T1 = " << wd.work
            << ", T_s_inf = " << wd.streaming_depth << ", makespan = " << r.schedule.makespan
            << ", simulated = " << sim.makespan
            << (sim.deadlocked ? " DEADLOCK" : "") << ", FIFO space = "
            << r.buffers.total_capacity << "\n";
}

}  // namespace

int main() {
  const std::int64_t n = 256;
  const std::int64_t pes = 16;

  std::cout << "Vector normalization y = x / ||x|| over " << n << " elements (Figure 4)\n";
  {
    TaskGraph g;
    CanonicalBuilder b(g);
    const Stream x = b.source(n, "x");
    b.finish(vector_normalize_buffered(b, x, n, "vn"));
    report("  buffered  (Fig4-1)", g, pes);
  }
  {
    TaskGraph g;
    CanonicalBuilder b(g);
    const Stream x = b.source(n, "x");
    b.finish(vector_normalize_streamed(b, x, n, "vn"));
    report("  streamed  (Fig4-2)", g, pes);
  }
  std::cout << "  The streamed variant pipelines the norm with the division but\n"
               "  needs a FIFO sized to the whole vector (Eq. 5) to avoid deadlock.\n\n";

  std::cout << "Numerically stable softmax over 8 rows x 32 columns (Figure 5)\n";
  {
    TaskGraph g;
    CanonicalBuilder b(g);
    const Stream x = b.source(8 * 32, "x");
    b.finish(softmax(b, x, 8, 32, "softmax"));
    report("  softmax", g, pes);
  }
  std::cout << "  Buffer nodes hold the replayed x / e^x streams and the per-row\n"
               "  scalars; e^(x-max) is computed once and reused, partially\n"
               "  streaming the interior of the kernel.\n\n";

  std::cout << "Layer normalization over 8 rows x 32 columns\n";
  {
    TaskGraph g;
    CanonicalBuilder b(g);
    const Stream x = b.source(8 * 32, "x");
    b.finish(layer_norm(b, x, 8, 32, "ln"));
    report("  layernorm", g, pes);
  }
  return 0;
}
