// Command-line front end to the full scheduling pipeline: read a canonical
// task graph from a text file (see graph/serialization.hpp for the format),
// schedule it, and emit the result in a choice of formats.
//
// Usage:
//   sts_schedule_cli <graph-file|-> [--pes N] [--variant lts|rlx|work]
//                    [--format table|gantt|json|dot] [--simulate]
//
// Example graph file:
//   node 0 source src
//   output 0 16
//   node 1 compute half
//   output 1 8
//   edge 0 1 16

#include <fstream>
#include <iostream>
#include <string>

#include "core/schedule_export.hpp"
#include "core/streaming_scheduler.hpp"
#include "graph/dot_export.hpp"
#include "graph/serialization.hpp"
#include "metrics/metrics.hpp"
#include "sim/dataflow_sim.hpp"
#include "support/table.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <graph-file|-> [--pes N] [--variant lts|rlx|work]"
               " [--format table|gantt|json|dot] [--simulate]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sts;
  if (argc < 2) return usage(argv[0]);

  std::string path = argv[1];
  std::int64_t pes = 8;
  std::string variant = "rlx";
  std::string format = "table";
  bool simulate = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--pes") {
        pes = std::stoll(next());
      } else if (arg == "--variant") {
        variant = next();
      } else if (arg == "--format") {
        format = next();
      } else if (arg == "--simulate") {
        simulate = true;
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  TaskGraph graph;
  try {
    if (path == "-") {
      graph = load_task_graph(std::cin);
    } else {
      std::ifstream file(path);
      if (!file) {
        std::cerr << "error: cannot open " << path << "\n";
        return 1;
      }
      graph = load_task_graph(file);
    }
    graph.validate_or_throw();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  if (format == "dot") {
    write_dot(std::cout, graph);
    return 0;
  }

  StreamingSchedulerResult result;
  try {
    if (variant == "work") {
      result.schedule = schedule_streaming(graph, partition_by_work(graph, pes));
      result.buffers = compute_buffer_plan(graph, result.schedule);
    } else {
      const PartitionVariant v =
          variant == "lts" ? PartitionVariant::kLTS : PartitionVariant::kRLX;
      result = schedule_streaming_graph(graph, pes, v);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  if (format == "json") {
    write_schedule_json(std::cout, graph, result.schedule, &result.buffers);
  } else if (format == "gantt") {
    write_gantt(std::cout, graph, result.schedule);
  } else {
    Table table({"task", "kind", "block", "PE", "ST", "FO", "LO"});
    for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
      const TaskTiming& t = result.schedule.at(v);
      table.add_row({graph.name(v).empty() ? "n" + std::to_string(v) : graph.name(v),
                     to_string(graph.kind(v)), std::to_string(t.block), std::to_string(t.pe),
                     std::to_string(t.start), std::to_string(t.first_out),
                     std::to_string(t.last_out)});
    }
    table.print(std::cout);
    std::cout << "makespan " << result.schedule.makespan << ", speedup "
              << fmt(speedup(graph.total_work(), result.schedule.makespan), 2)
              << ", FIFO space " << result.buffers.total_capacity << "\n";
  }

  if (simulate) {
    const SimResult sim = simulate_streaming(graph, result.schedule, result.buffers);
    std::cout << "simulation: makespan " << sim.makespan
              << (sim.deadlocked ? " DEADLOCK" : " (no deadlock)") << "\n";
    return sim.deadlocked ? 1 : 0;
  }
  return 0;
}
