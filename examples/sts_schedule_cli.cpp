// Command-line front end to the pass-based scheduling pipeline: read a
// canonical task graph from a text file (see graph/serialization.hpp for the
// format), schedule it with any scheduler registered in SchedulerRegistry,
// and emit the result in a choice of formats.
//
// Usage:
//   sts_schedule_cli <graph-file|-> [--pes N] [--scheduler <name>]
//                    [--variant lts|rlx|work] [--format table|gantt|json|dot]
//                    [--simulate] [--sim-engine bulk|tick] [--timings] [--cached]
//   sts_schedule_cli --list-schedulers
//
// `--variant X` is shorthand for `--scheduler streaming-X`. `--cached` routes
// the query through the global ScheduleCache (useful with repeated
// invocations in one process; here it demonstrates the serving path).
//
// Example graph file:
//   node 0 source src
//   output 0 16
//   node 1 compute half
//   output 1 8
//   edge 0 1 16

#include <fstream>
#include <iostream>
#include <string>

#include "core/schedule_export.hpp"
#include "graph/dot_export.hpp"
#include "graph/serialization.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/schedule_cache.hpp"
#include "sim/dataflow_sim.hpp"
#include "support/table.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <graph-file|-> [--pes N] [--scheduler <name>] [--variant lts|rlx|work]"
               " [--format table|gantt|json|dot] [--simulate] [--sim-engine bulk|tick]"
               " [--timings] [--cached]\n"
               "       "
            << argv0 << " --list-schedulers\n";
  return 2;
}

int list_schedulers() {
  const auto& registry = sts::SchedulerRegistry::instance();
  sts::Table table({"name", "description"});
  for (const std::string& name : registry.names()) {
    table.add_row({name, std::string(registry.create(name)->description())});
  }
  table.print(std::cout);
  return 0;
}

void print_streaming_table(const sts::TaskGraph& graph, const sts::ScheduleResult& result) {
  using namespace sts;
  Table table({"task", "kind", "block", "PE", "ST", "FO", "LO"});
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    const TaskTiming& t = result.streaming->at(v);
    table.add_row({graph.name(v).empty() ? "n" + std::to_string(v) : graph.name(v),
                   to_string(graph.kind(v)), std::to_string(t.block), std::to_string(t.pe),
                   std::to_string(t.start), std::to_string(t.first_out),
                   std::to_string(t.last_out)});
  }
  table.print(std::cout);
  std::cout << "makespan " << result.makespan << ", speedup " << fmt(result.metrics.speedup, 2)
            << ", FIFO space " << result.buffers->total_capacity << "\n";
}

void print_list_table(const sts::TaskGraph& graph, const sts::ScheduleResult& result) {
  using namespace sts;
  Table table({"task", "kind", "PE", "start", "finish"});
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    const ListScheduleEntry& e = result.list->at(v);
    table.add_row({graph.name(v).empty() ? "n" + std::to_string(v) : graph.name(v),
                   to_string(graph.kind(v)), std::to_string(e.pe), std::to_string(e.start),
                   std::to_string(e.finish)});
  }
  table.print(std::cout);
  std::cout << "makespan " << result.makespan << ", speedup " << fmt(result.metrics.speedup, 2)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sts;
  if (argc < 2) return usage(argv[0]);
  if (std::string(argv[1]) == "--list-schedulers") return list_schedulers();

  std::string path = argv[1];
  std::string scheduler = "streaming-rlx";
  std::int64_t pes = 8;
  std::string format = "table";
  bool simulate = false;
  bool timings = false;
  bool cached = false;
  SimEngine sim_engine = SimEngine::kAuto;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--pes") {
        pes = std::stoll(next());
      } else if (arg == "--scheduler") {
        scheduler = next();
      } else if (arg == "--variant") {
        scheduler = "streaming-" + next();
      } else if (arg == "--format") {
        format = next();
      } else if (arg == "--simulate") {
        simulate = true;
      } else if (arg == "--sim-engine") {
        const std::string which = next();
        if (which == "bulk") {
          sim_engine = SimEngine::kBulkAdvance;
        } else if (which == "tick") {
          sim_engine = SimEngine::kTickAccurate;
        } else {
          throw std::invalid_argument("unknown simulation engine " + which);
        }
        simulate = true;
      } else if (arg == "--timings") {
        timings = true;
      } else if (arg == "--cached") {
        cached = true;
      } else if (arg == "--list-schedulers") {
        return list_schedulers();
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  TaskGraph graph;
  try {
    if (path == "-") {
      graph = load_task_graph(std::cin);
    } else {
      std::ifstream file(path);
      if (!file) {
        std::cerr << "error: cannot open " << path << "\n";
        return 1;
      }
      graph = load_task_graph(file);
    }
    graph.validate_or_throw();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  if (format == "dot") {
    write_dot(std::cout, graph);
    return 0;
  }

  MachineConfig machine;
  machine.num_pes = pes;
  ScheduleResult result;
  try {
    if (cached) {
      result = *ScheduleCache::global().get_or_schedule(graph, scheduler, machine);
    } else {
      result = schedule_by_name(scheduler, graph, machine);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  if (result.is_streaming()) {
    if (format == "json") {
      write_schedule_json(std::cout, graph, *result.streaming,
                          result.buffers ? &*result.buffers : nullptr);
    } else if (format == "gantt") {
      write_gantt(std::cout, graph, *result.streaming);
    } else {
      print_streaming_table(graph, result);
    }
  } else {
    if (format != "table") {
      std::cerr << "error: format " << format << " is only available for streaming schedulers\n";
      return 2;
    }
    if (result.list) {
      print_list_table(graph, result);
    } else if (result.csdf) {
      std::cout << "csdf: makespan " << result.csdf->makespan << ", firings "
                << result.csdf->firings << "\n";
    }
  }

  if (timings) {
    Table table({"pass", "seconds"});
    for (const PassTiming& t : result.timings) {
      table.add_row({t.pass, fmt(t.seconds * 1e6, 1) + " us"});
    }
    table.print(std::cout);
  }

  if (simulate) {
    if (!result.is_streaming()) {
      std::cerr << "error: --simulate requires a streaming scheduler\n";
      return 2;
    }
    SimOptions opts;
    opts.engine = sim_engine;
    const SimResult sim = simulate_streaming(graph, *result.streaming, *result.buffers, opts);
    std::cout << "simulation [" << to_string(sim.engine_used) << "]: makespan " << sim.makespan
              << (sim.deadlocked ? " DEADLOCK" : " (no deadlock)") << ", " << sim.live_ticks
              << " live ticks, " << sim.bulk_jumps << " bulk jumps\n";
    return sim.deadlocked ? 1 : 0;
  }
  return 0;
}
