// Command-line front end to the pass-based scheduling pipeline: read a
// canonical task graph from a text file (see graph/serialization.hpp for the
// format), schedule it with any scheduler registered in SchedulerRegistry,
// and emit the result in a choice of formats.
//
// Usage:
//   sts_schedule_cli <graph-file|-> [--pes N] [--scheduler <name>]
//                    [--variant lts|rlx|work] [--format table|gantt|json|dot]
//                    [--simulate] [--sim-engine bulk|tick] [--timings] [--cached]
//   sts_schedule_cli sweep <scenario-file|-> [--threads N] [--cache-capacity N]
//                    [--repeat K] [--queue-depth N] [--backends N] [--spawn]
//                    [--simulate] [--sim-engine bulk|tick] [--incremental]
//   sts_schedule_cli --list-schedulers
//
// `--variant X` is shorthand for `--scheduler streaming-X`. `--cached` routes
// the query through the global ScheduleCache (useful with repeated
// invocations in one process; here it demonstrates the serving path).
//
// `sweep` schedules a whole scenario list in parallel through the serving
// stack and emits a JSON array of ScheduleResponse records on stdout.
// Throughput and cache statistics go to stderr, ending with one
// machine-readable JSON line in the style of the BENCH_*.json bench reports.
// Every scenario is a ScheduleRequest envelope (service/request.hpp) and
// every submission goes through `submit(ScheduleRequest)`; with
// `--backends N` the requests are consistent-hash routed across N in-process
// ScheduleService backends by a ShardRouter (the cross-process sharding
// seam), otherwise one service serves them. Adding `--spawn` makes the fleet
// real: each backend becomes an sts-serve child process (fork/exec, see
// net/server_process.hpp) reached over HTTP through a RemoteBackend — same
// router, same envelopes, across actual process boundaries. The sts_serve
// binary is resolved via $STS_SERVE_BIN, falling back to `sts_serve` next to
// this executable; children are SIGTERM-drained when the sweep finishes.
// `--queue-depth` bounds every
// worker queue (submissions then apply backpressure instead of queueing
// without limit); `--simulate` chains the dataflow simulation after
// scheduling on the workers for scenarios that do not already request it.
//
// Scenario lines (# comments and blank lines skipped) are request-envelope
// JSON lines:
//   {"schema_version": 1, "scheduler": "streaming-rlx",
//    "machine": {"pes": 8}, "graph": {"generator": "fft", "param": 16,
//    "seed": 7}}
// with `graph` either a generator ref (chain | fft | gaussian | cholesky)
// or an inline {"nodes": [...], "edges": [...]} spec; optional members:
// sim, admission, priority, label. A line may instead be a delta envelope —
// `"base_key"` plus an `"edits"` list (see graph/graph_edit.hpp) in place of
// `"graph"` — rescheduling an edited variant of an earlier request. As sugar,
// `base_key` may name an earlier scenario line's label instead of a 16-hex
// digest; the sweep resolves it to that scenario's key_digest() before
// submitting (deltas themselves cannot be targets — their graph only
// materializes inside the service). `--incremental` turns on subgraph-level
// schedule memoization in the serving stack (per-partition fragment reuse
// across near-duplicate and delta requests); without it the sweep serves
// whole-graph cache entries only. The pre-envelope text form is still
// accepted per line:
//   chain    <tasks>  <seed> <scheduler> <pes>
//   fft      <points> <seed> <scheduler> <pes>
//   gaussian <size>   <seed> <scheduler> <pes>
//   cholesky <tiles>  <seed> <scheduler> <pes>
//   file     <path>          <scheduler> <pes>
// `--repeat K` submits the list K times (duplicates deduplicate against the
// service cache, demonstrating single-flight); results are emitted once.
//
// Example graph file:
//   node 0 source src
//   output 0 16
//   node 1 compute half
//   output 1 8
//   edge 0 1 16

#include <chrono>
#include <fstream>
#include <future>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/schedule_export.hpp"
#include "graph/dot_export.hpp"
#include "graph/serialization.hpp"
#include "net/remote_backend.hpp"
#include "net/server_process.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/schedule_cache.hpp"
#include "pipeline/subgraph_cache.hpp"
#include "service/request.hpp"
#include "service/schedule_service.hpp"
#include "service/shard_router.hpp"
#include "sim/dataflow_sim.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "workloads/synthetic.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <graph-file|-> [--pes N] [--scheduler <name>] [--variant lts|rlx|work]"
               " [--format table|gantt|json|dot] [--simulate] [--sim-engine bulk|tick]"
               " [--timings] [--cached]\n"
               "       "
            << argv0
            << " sweep <scenario-file|-> [--threads N] [--cache-capacity N] [--repeat K]\n"
               "                        [--queue-depth N] [--backends N] [--spawn]\n"
               "                        [--simulate] [--sim-engine bulk|tick] [--incremental]\n"
               "       "
            << argv0 << " --list-schedulers\n";
  return 2;
}

int list_schedulers() {
  const auto& registry = sts::SchedulerRegistry::instance();
  sts::Table table({"name", "description"});
  for (const std::string& name : registry.names()) {
    table.add_row({name, std::string(registry.create(name)->description())});
  }
  table.print(std::cout);
  return 0;
}

void print_streaming_table(const sts::TaskGraph& graph, const sts::ScheduleResult& result) {
  using namespace sts;
  Table table({"task", "kind", "block", "PE", "ST", "FO", "LO"});
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    const TaskTiming& t = result.streaming->at(v);
    table.add_row({graph.name(v).empty() ? "n" + std::to_string(v) : graph.name(v),
                   to_string(graph.kind(v)), std::to_string(t.block), std::to_string(t.pe),
                   std::to_string(t.start), std::to_string(t.first_out),
                   std::to_string(t.last_out)});
  }
  table.print(std::cout);
  std::cout << "makespan " << result.makespan << ", speedup " << fmt(result.metrics.speedup, 2)
            << ", FIFO space " << result.buffers->total_capacity << "\n";
}

void print_list_table(const sts::TaskGraph& graph, const sts::ScheduleResult& result) {
  using namespace sts;
  Table table({"task", "kind", "PE", "start", "finish"});
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    const ListScheduleEntry& e = result.list->at(v);
    table.add_row({graph.name(v).empty() ? "n" + std::to_string(v) : graph.name(v),
                   to_string(graph.kind(v)), std::to_string(e.pe), std::to_string(e.start),
                   std::to_string(e.finish)});
  }
  table.print(std::cout);
  std::cout << "makespan " << result.makespan << ", speedup " << fmt(result.metrics.speedup, 2)
            << "\n";
}

// ------------------------------------------------------------------- sweep

struct SweepScenario {
  std::string label;
  sts::ScheduleRequest request;
  std::string error;  ///< non-empty: scenario failed to parse/build
};

/// Legacy text scenario line -> request envelope. Generator lines keep their
/// GraphRef so the scenario re-serializes compactly.
sts::ScheduleRequest parse_text_scenario(const std::string& kind, std::istringstream& fields) {
  sts::ScheduleRequest request;
  if (kind == "file") {
    std::string path;
    if (!(fields >> path >> request.scheduler >> request.machine.num_pes)) {
      throw std::invalid_argument("expected: file <path> <scheduler> <pes>");
    }
    request.label = kind + " " + path;
    std::ifstream file(path);
    if (!file) throw std::invalid_argument("cannot open " + path);
    request.graph = sts::load_task_graph(file);
    return request;
  }
  sts::GraphRef ref;
  ref.generator = kind;
  std::int64_t seed = 0;
  if (!(fields >> ref.param >> seed >> request.scheduler >> request.machine.num_pes) ||
      seed < 0) {
    throw std::invalid_argument("expected: " + kind + " <param> <seed> <scheduler> <pes>");
  }
  ref.seed = static_cast<std::uint64_t>(seed);
  request.label = ref.label();
  if (ref.param < 0 || ref.param > std::numeric_limits<int>::max()) {
    throw std::invalid_argument("parameter " + std::to_string(ref.param) + " out of range for " +
                                kind);
  }
  const int p = static_cast<int>(ref.param);
  if (kind == "chain") {
    request.graph = sts::make_chain(p, ref.seed);
  } else if (kind == "fft") {
    request.graph = sts::make_fft(p, ref.seed);
  } else if (kind == "gaussian") {
    request.graph = sts::make_gaussian_elimination(p, ref.seed);
  } else if (kind == "cholesky") {
    request.graph = sts::make_cholesky(p, ref.seed);
  } else {
    throw std::invalid_argument("unknown scenario kind " + kind);
  }
  request.graph_ref = std::move(ref);
  return request;
}

std::vector<SweepScenario> parse_scenarios(std::istream& in) {
  std::vector<SweepScenario> scenarios;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind) || kind[0] == '#') continue;

    SweepScenario s;
    try {
      if (kind[0] == '{') {
        // Request-envelope JSON line.
        s.request = sts::ScheduleRequest::from_json(line);
        if (s.request.label.empty() && s.request.graph_ref) {
          s.request.label = s.request.graph_ref->label();
        }
        if (s.request.label.empty()) {
          s.request.label = "request " + std::to_string(line_no);
        }
      } else {
        s.request = parse_text_scenario(kind, fields);
      }
      s.label = s.request.label;
    } catch (const std::exception& e) {
      s.error = "line " + std::to_string(line_no) + ": " + e.what();
      if (s.label.empty()) s.label = kind[0] == '{' ? "request " + std::to_string(line_no)
                                                    : kind;
    }
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

int run_sweep(int argc, char** argv) {
  using namespace sts;
  if (argc < 3) return usage(argv[0]);
  const std::string path = argv[2];
  std::size_t threads = 0;
  std::size_t cache_capacity = ScheduleCache::kDefaultCapacity;
  std::size_t queue_depth = 0;
  std::size_t backends = 0;  // 0 = single service, >= 1 = ShardRouter
  bool spawn = false;        // with --backends: real sts-serve child processes
  int repeat = 1;
  bool simulate = false;
  bool incremental = false;
  SimOptions sim_options;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--threads") {
        threads = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--cache-capacity") {
        cache_capacity = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--queue-depth") {
        queue_depth = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--backends") {
        backends = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--spawn") {
        spawn = true;
      } else if (arg == "--repeat") {
        repeat = std::stoi(next());
        if (repeat < 1) throw std::invalid_argument("--repeat must be >= 1");
      } else if (arg == "--simulate") {
        simulate = true;
      } else if (arg == "--incremental") {
        incremental = true;
      } else if (arg == "--sim-engine") {
        const std::string which = next();
        if (which == "bulk") {
          sim_options.engine = SimEngine::kBulkAdvance;
        } else if (which == "tick") {
          sim_options.engine = SimEngine::kTickAccurate;
        } else {
          throw std::invalid_argument("unknown simulation engine " + which);
        }
        simulate = true;
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  std::vector<SweepScenario> scenarios;
  if (path == "-") {
    scenarios = parse_scenarios(std::cin);
  } else {
    std::ifstream file(path);
    if (!file) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
    scenarios = parse_scenarios(file);
  }
  if (scenarios.empty()) {
    std::cerr << "error: no scenarios in " << path << "\n";
    return 1;
  }
  // `--simulate` chains simulation onto scenarios that did not ask for it
  // themselves (an envelope-specified `sim` wins over the flag).
  if (simulate) {
    for (SweepScenario& s : scenarios) {
      if (s.error.empty() && !s.request.sim) s.request.sim = sim_options;
    }
  }

  // Delta label sugar: resolve a `base_key` that names an earlier scenario's
  // label into that scenario's key_digest() — what the service registers the
  // base graph under. Runs after the --simulate splice above (sim options are
  // part of the digest). Deltas are not resolvable targets themselves: their
  // graph only materializes inside the service. An unresolved base_key is
  // forwarded verbatim (a real digest, or a typed error at the service).
  {
    std::unordered_map<std::string, std::string> digests;
    for (SweepScenario& s : scenarios) {
      if (!s.error.empty()) continue;
      if (s.request.base_key) {
        if (const auto it = digests.find(*s.request.base_key); it != digests.end()) {
          s.request.base_key = it->second;
        }
      } else {
        digests.emplace(s.label, s.request.key_digest());
      }
    }
  }

  ServiceConfig config;
  config.num_workers = threads;
  config.cache_capacity = cache_capacity;
  config.queue_depth = queue_depth;
  // Off by default in the sweep so plain runs serve the exact whole-graph
  // cache path; --incremental layers per-partition fragment reuse under it.
  config.subgraph_cache_capacity = incremental ? SubgraphCache::kDefaultCapacity : 0;
  if (spawn && backends == 0) {
    std::cerr << "error: --spawn requires --backends N\n";
    return 2;
  }

  // Declared before service/router so the RemoteBackends (inside the router)
  // close their connections before the children are SIGTERM-drained.
  std::vector<std::unique_ptr<ServerProcess>> servers;
  std::unique_ptr<ScheduleService> service;
  std::unique_ptr<ShardRouter> router;
  std::size_t workers_total = 0;
  try {
    if (backends > 0) {
      RouterConfig router_config;
      router_config.num_backends = backends;
      router_config.backend = config;
      if (spawn) {
        // A real fleet: one sts-serve child per backend, each on an ephemeral
        // port, reached through RemoteBackend — the same router code path as
        // the in-process fleet, across actual process boundaries.
        const std::string binary = default_sts_serve_binary();
        std::vector<std::string> child_args = {"--port", "0"};
        if (threads > 0) {
          child_args.insert(child_args.end(), {"--threads", std::to_string(threads)});
        }
        if (queue_depth > 0) {
          child_args.insert(child_args.end(), {"--queue-depth", std::to_string(queue_depth)});
        }
        child_args.insert(child_args.end(),
                          {"--cache-capacity", std::to_string(cache_capacity)});
        if (incremental) child_args.push_back("--incremental");
        servers.reserve(backends);
        for (std::size_t b = 0; b < backends; ++b) {
          servers.push_back(std::make_unique<ServerProcess>(binary, child_args));
        }
        router_config.backend_factory =
            [&servers](std::size_t index) -> std::shared_ptr<ScheduleBackend> {
          RemoteConfig remote;
          remote.port = servers.at(index)->port();
          return std::make_shared<RemoteBackend>(remote);
        };
      }
      router = std::make_unique<ShardRouter>(router_config);
      for (std::size_t b = 0; b < router->backend_count(); ++b) {
        workers_total += router->backend(b).worker_count();
      }
    } else {
      service = std::make_unique<ScheduleService>(config);
      workers_total = service->worker_count();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  const auto do_submit = [&](ScheduleRequest request) {
    return router ? router->submit(std::move(request)) : service->submit(std::move(request));
  };
  const auto wait_all_idle = [&] { router ? router->wait_idle() : service->wait_idle(); };

  const auto start = std::chrono::steady_clock::now();
  std::vector<ScheduleService::Admission> admissions(scenarios.size());
  for (int round = 0; round < repeat; ++round) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      if (!scenarios[i].error.empty()) continue;
      // With --queue-depth, a kBlock submit applies backpressure: a full
      // worker queue stalls this loop instead of growing without bound.
      ScheduleService::Admission a = do_submit(scenarios[i].request);
      if (round == 0) admissions[i] = std::move(a);
    }
  }
  wait_all_idle();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  // Counted before the output loop: failures surfacing through wait() below
  // are still submissions.
  std::size_t parsed_ok = 0;
  for (const SweepScenario& s : scenarios) {
    if (s.error.empty()) ++parsed_ok;
  }

  bool any_failed = false;
  std::cout << "[\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    SweepScenario& s = scenarios[i];
    // Per-scenario record: the unified ScheduleResponse JSON with the
    // scenario identity spliced in front. Ok responses already carry
    // "scheduler" (from the result), so the prefix adds it only otherwise —
    // every record ends up with exactly one scheduler member.
    ScheduleResponse response;
    if (s.error.empty()) {
      response = admissions[i].wait();
    } else {
      response.status = ScheduleResponse::Status::kError;
      response.error = s.error;
    }
    any_failed = any_failed || !response.ok();
    std::string prefix = "{\"scenario\": ";
    append_json_quoted(prefix, s.label);
    prefix += ", \"pes\": " + std::to_string(s.request.machine.num_pes);
    if (!response.ok()) {
      prefix += ", \"scheduler\": ";
      append_json_quoted(prefix, s.request.scheduler);
    }
    prefix += ", ";
    std::string record = response.to_json();
    record.replace(0, 1, prefix);
    std::cout << "  " << record << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  std::cout << "]\n";

  ScheduleService::Stats stats = router ? router->stats().total : service->stats();
  std::cerr << "sweep: " << stats.submitted << " jobs (" << parsed_ok << " schedulable of "
            << scenarios.size() << " scenarios x " << repeat << " rounds) on " << workers_total
            << " workers";
  if (router) {
    std::cerr << " across " << router->backend_count()
              << (spawn ? " spawned sts-serve backends" : " backends");
  }
  std::cerr << " in " << fmt(seconds, 3) << "s (" << fmt(stats.submitted / seconds, 1)
            << " jobs/s)\n"
            << "cache: " << stats.cache.hits << " hits, " << stats.cache.misses << " misses, "
            << stats.cache.races << " races, " << stats.cache.evictions << " evictions\n";

  // Machine-readable BENCH_*.json-style record (scalar keys plus arrays):
  // splice the sweep-level fields into the service/router stats_json()
  // object.
  const std::string sweep_fields =
      "\"bench\": \"sweep\", \"wall_seconds\": " + fmt(seconds, 6) +
      ", \"jobs_per_second\": " + fmt(stats.submitted / seconds, 1) +
      ", \"scenarios\": " + std::to_string(scenarios.size()) +
      ", \"rounds\": " + std::to_string(repeat) +
      ", \"incremental\": " + (incremental ? "1" : "0");
  std::string stats_line = router ? router->stats_json() : service->stats_json();
  if (!stats_line.empty() && stats_line.front() == '{') {
    stats_line.insert(1, sweep_fields + ", ");
  } else {
    // stats_json() no longer renders a bare object: keep the record valid
    // JSON rather than emitting a corrupt splice.
    stats_line = "{" + sweep_fields + "}";
  }
  std::cerr << stats_line << "\n";
  return any_failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sts;
  if (argc < 2) return usage(argv[0]);
  if (std::string(argv[1]) == "--list-schedulers") return list_schedulers();
  if (std::string(argv[1]) == "sweep") return run_sweep(argc, argv);

  std::string path = argv[1];
  std::string scheduler = "streaming-rlx";
  std::int64_t pes = 8;
  std::string format = "table";
  bool simulate = false;
  bool timings = false;
  bool cached = false;
  SimEngine sim_engine = SimEngine::kAuto;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--pes") {
        pes = std::stoll(next());
      } else if (arg == "--scheduler") {
        scheduler = next();
      } else if (arg == "--variant") {
        scheduler = "streaming-" + next();
      } else if (arg == "--format") {
        format = next();
      } else if (arg == "--simulate") {
        simulate = true;
      } else if (arg == "--sim-engine") {
        const std::string which = next();
        if (which == "bulk") {
          sim_engine = SimEngine::kBulkAdvance;
        } else if (which == "tick") {
          sim_engine = SimEngine::kTickAccurate;
        } else {
          throw std::invalid_argument("unknown simulation engine " + which);
        }
        simulate = true;
      } else if (arg == "--timings") {
        timings = true;
      } else if (arg == "--cached") {
        cached = true;
      } else if (arg == "--list-schedulers") {
        return list_schedulers();
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  TaskGraph graph;
  try {
    if (path == "-") {
      graph = load_task_graph(std::cin);
    } else {
      std::ifstream file(path);
      if (!file) {
        std::cerr << "error: cannot open " << path << "\n";
        return 1;
      }
      graph = load_task_graph(file);
    }
    graph.validate_or_throw();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  if (format == "dot") {
    write_dot(std::cout, graph);
    return 0;
  }

  MachineConfig machine;
  machine.num_pes = pes;
  ScheduleResult result;
  try {
    if (cached) {
      result = *ScheduleCache::global().get_or_schedule(graph, scheduler, machine);
    } else {
      result = schedule_by_name(scheduler, graph, machine);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  if (result.is_streaming()) {
    if (format == "json") {
      write_schedule_json(std::cout, graph, *result.streaming,
                          result.buffers ? &*result.buffers : nullptr);
    } else if (format == "gantt") {
      write_gantt(std::cout, graph, *result.streaming);
    } else {
      print_streaming_table(graph, result);
    }
  } else {
    if (format != "table") {
      std::cerr << "error: format " << format << " is only available for streaming schedulers\n";
      return 2;
    }
    if (result.list) {
      print_list_table(graph, result);
    } else if (result.csdf) {
      std::cout << "csdf: makespan " << result.csdf->makespan << ", firings "
                << result.csdf->firings << "\n";
    }
  }

  if (timings) {
    Table table({"pass", "seconds"});
    for (const PassTiming& t : result.timings) {
      table.add_row({t.pass, fmt(t.seconds * 1e6, 1) + " us"});
    }
    table.print(std::cout);
  }

  if (simulate) {
    if (!result.is_streaming()) {
      std::cerr << "error: --simulate requires a streaming scheduler\n";
      return 2;
    }
    SimOptions opts;
    opts.engine = sim_engine;
    const SimResult sim = simulate_streaming(graph, *result.streaming, *result.buffers, opts);
    std::cout << "simulation [" << to_string(sim.engine_used) << "]: makespan " << sim.makespan
              << (sim.deadlocked ? " DEADLOCK" : " (no deadlock)") << ", " << sim.live_ticks
              << " live ticks, " << sim.bulk_jumps << " bulk jumps\n";
    return sim.deadlocked ? 1 : 0;
  }
  return 0;
}
