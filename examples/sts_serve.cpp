// sts-serve: one scheduling service process behind the HTTP/1.1 wire
// protocol (src/net/) — the serving side of the cross-process seam. A
// ShardRouter in another process reaches it through RemoteBackend; the sweep
// CLI's `--backends N --spawn` mode launches a fleet of these.
//
// Usage:
//   sts_serve [--port N] [--host ADDR] [--threads N] [--queue-depth N]
//             [--cache-capacity N] [--incremental] [--responders N]
//
//   --port N            TCP port; 0 (default) picks an ephemeral port
//   --host ADDR         bind address, default 127.0.0.1 (loopback only: the
//                       protocol is unauthenticated)
//   --threads N         service worker threads, 0 = hardware concurrency
//   --queue-depth N     per-worker queue bound (0 = unbounded); required for
//                       envelopes carrying "admission": "reject" to reject
//   --cache-capacity N  result-cache capacity
//   --incremental       enable subgraph-level schedule memoization
//   --responders N      server responder threads, 0 = one per service worker
//
// Startup handshake: exactly one line on stdout,
//
//     sts-serve listening on <host>:<port>
//
// (ServerProcess parses it to learn an ephemeral port). Logs go to stderr.
//
// Shutdown: SIGTERM (or SIGINT) starts the graceful drain — stop accepting,
// answer every in-flight request, close connections, wait for the service to
// go idle — then the final service stats document is flushed to stderr and
// the process exits 0. Zero accepted requests are lost.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "net/sts_server.hpp"
#include "pipeline/schedule_cache.hpp"
#include "pipeline/subgraph_cache.hpp"
#include "service/schedule_service.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--port N] [--host ADDR] [--threads N] [--queue-depth N]\n"
               "                 [--cache-capacity N] [--incremental] [--responders N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sts;
  ServiceConfig service_config;
  ServerConfig server_config;
  bool incremental = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--port") {
        const unsigned long port = std::stoul(next());
        if (port > 65535) throw std::invalid_argument("--port out of range");
        server_config.port = static_cast<std::uint16_t>(port);
      } else if (arg == "--host") {
        server_config.host = next();
      } else if (arg == "--threads") {
        service_config.num_workers = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--queue-depth") {
        service_config.queue_depth = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--cache-capacity") {
        service_config.cache_capacity = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--incremental") {
        incremental = true;
      } else if (arg == "--responders") {
        server_config.responders = static_cast<std::size_t>(std::stoull(next()));
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }
  service_config.subgraph_cache_capacity =
      incremental ? SubgraphCache::kDefaultCapacity : 0;

  // Block the shutdown signals before any thread exists so every thread
  // inherits the mask and sigwait below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGTERM);
  sigaddset(&signals, SIGINT);
  if (pthread_sigmask(SIG_BLOCK, &signals, nullptr) != 0) {
    std::cerr << "error: pthread_sigmask failed\n";
    return 1;
  }

  try {
    auto service = std::make_shared<ScheduleService>(service_config);
    StsServer server(service, server_config);

    // The handshake line ServerProcess waits for. stdout is the handshake
    // channel and nothing else; logs go to stderr.
    std::printf("sts-serve listening on %s:%u\n", server_config.host.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    std::fprintf(stderr, "sts-serve: %zu workers, %zu responders, pid %ld\n",
                 service->worker_count(),
                 server_config.responders == 0 ? service->worker_count()
                                               : server_config.responders,
                 static_cast<long>(getpid()));

    int signal_number = 0;
    while (sigwait(&signals, &signal_number) != 0) {
    }
    std::fprintf(stderr, "sts-serve: signal %d, draining\n", signal_number);

    // The SIGTERM sequence: stop accepting and settle every in-flight
    // request (drain), let the service finish anything still queued, then
    // flush the final counters — the document a supervisor scrapes post-hoc.
    server.drain();
    service->wait_idle();
    std::fprintf(stderr, "sts-serve: drained; transport %s\n", server.stats_json().c_str());
    std::fprintf(stderr, "%s\n", service->stats_json().c_str());
    server.stop();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
