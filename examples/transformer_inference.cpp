// Scheduling a real workload end to end: one transformer encoder layer
// (Vaswani et al., base configuration scaled down for a quick run) is
// expanded into a canonical task graph — column-parallel matmuls, Figure 5
// softmax per attention head, buffered residuals — and scheduled with both
// the streaming heuristic and the non-streaming baseline across a PE sweep
// (a miniature of the paper's Table 2).

#include <iostream>

#include "baseline/list_scheduler.hpp"
#include "core/streaming_scheduler.hpp"
#include "metrics/metrics.hpp"
#include "ml/models.hpp"
#include "support/table.hpp"

int main() {
  using namespace sts;

  TransformerConfig cfg;
  cfg.seq_len = 32;
  cfg.d_model = 128;
  cfg.heads = 4;
  cfg.d_ff = 512;
  const TaskGraph g = build_transformer_encoder(cfg);
  g.validate_or_throw();

  const ModelStats stats = stats_of(g);
  std::cout << "Transformer encoder layer: seq=" << cfg.seq_len << " d_model=" << cfg.d_model
            << " heads=" << cfg.heads << " d_ff=" << cfg.d_ff << "\n"
            << "Canonical task graph: " << stats.nodes << " nodes (" << stats.buffer_nodes
            << " buffer nodes), " << stats.edges << " edges, T1 = " << stats.total_work
            << "\n\n";

  Table table({"#PEs", "STR-SCH speedup", "NSTR-SCH speedup", "G", "blocks", "SSLR"});
  const std::int64_t t1 = g.total_work();
  const Rational depth = streaming_depth(g);
  for (const std::int64_t pes : {64, 128, 256, 512}) {
    const auto str = schedule_streaming_graph(g, pes, PartitionVariant::kLTS);
    const ListSchedule nstr = schedule_non_streaming(g, pes);
    const double s_str = speedup(t1, str.schedule.makespan);
    const double s_nstr = speedup(t1, nstr.makespan);
    table.add_row({std::to_string(pes), fmt(s_str, 1), fmt(s_nstr, 1), fmt(s_str / s_nstr, 2),
                   std::to_string(str.schedule.partition.block_count()),
                   fmt(streaming_slr(str.schedule.makespan, depth), 2)});
  }
  table.print(std::cout);
  std::cout << "\nPipelined communication overlaps the projection, attention, and\n"
               "FFN stages; the gain G grows with the PE count as in Table 2.\n";
  return 0;
}
