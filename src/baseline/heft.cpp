#include "baseline/heft.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace sts {

std::int64_t HeterogeneousSystem::duration(std::int64_t work, std::int64_t pe) const {
  const double speed = pe_speed[static_cast<std::size_t>(pe)];
  if (speed <= 0.0) throw std::invalid_argument("HeterogeneousSystem: non-positive speed");
  return static_cast<std::int64_t>(std::ceil(static_cast<double>(work) / speed));
}

double HeterogeneousSystem::mean_duration(std::int64_t work) const {
  double sum = 0.0;
  for (const double s : pe_speed) sum += static_cast<double>(work) / s;
  return sum / static_cast<double>(pe_speed.size());
}

std::vector<double> upward_ranks(const TaskGraph& graph, const HeterogeneousSystem& system) {
  return upward_ranks(graph, system, nullptr);
}

std::vector<double> upward_ranks(const TaskGraph& graph, const HeterogeneousSystem& system,
                                 Workspace* ws) {
  std::vector<double> rank(graph.node_count(), 0.0);
  // Reverse Kahn waves: successors live in strictly earlier waves, so ranks
  // within one wave are independent; each node runs the exact same double
  // operations as the serial sweep, keeping results bit-identical.
  const TopoWaves waves = topological_waves(graph, /*reverse=*/true);
  const Parallel parallel = ws ? ws->parallel : Parallel();
  for (std::size_t w = 0; w + 1 < waves.offsets.size(); ++w) {
    const std::size_t begin = waves.offsets[w];
    const std::size_t end = waves.offsets[w + 1];
    parallel.for_range(static_cast<std::int64_t>(end - begin), 128,
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i) {
                           const NodeId v = waves.order[begin + static_cast<std::size_t>(i)];
                           double succ_max = 0.0;
                           for (const EdgeId e : graph.out_edges(v)) {
                             succ_max = std::max(
                                 succ_max, rank[static_cast<std::size_t>(graph.edge(e).dst)]);
                           }
                           rank[static_cast<std::size_t>(v)] =
                               system.mean_duration(graph.work(v)) + succ_max;
                         }
                       });
  }
  return rank;
}

ListSchedule schedule_heft(const TaskGraph& graph, const HeterogeneousSystem& system,
                           Workspace* ws) {
  if (system.pe_count() <= 0) throw std::invalid_argument("schedule_heft: no PEs");
  ListSchedule sched;
  sched.entries.assign(graph.node_count(), ListScheduleEntry{});

  const std::vector<double> rank = upward_ranks(graph, system, ws);
  std::vector<NodeId> order = topological_order(graph);
  std::vector<std::size_t> topo_pos(graph.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    topo_pos[static_cast<std::size_t>(order[i])] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const double ra = rank[static_cast<std::size_t>(a)];
    const double rb = rank[static_cast<std::size_t>(b)];
    if (ra != rb) return ra > rb;
    return topo_pos[static_cast<std::size_t>(a)] < topo_pos[static_cast<std::size_t>(b)];
  });

  struct Interval {
    std::int64_t start;
    std::int64_t finish;
  };
  std::vector<std::vector<Interval>> busy(static_cast<std::size_t>(system.pe_count()));

  for (const NodeId v : order) {
    const auto idx = static_cast<std::size_t>(v);
    std::int64_t ready = 0;
    for (const EdgeId e : graph.in_edges(v)) {
      ready = std::max(ready, sched.entries[static_cast<std::size_t>(graph.edge(e).src)].finish);
    }
    if (!graph.occupies_pe(v)) {
      sched.entries[idx] = ListScheduleEntry{ready, ready, -1};
      continue;
    }

    std::int64_t best_finish = -1;
    std::int64_t best_start = 0;
    std::int32_t best_pe = -1;
    for (std::int64_t pe = 0; pe < system.pe_count(); ++pe) {
      const std::int64_t duration = system.duration(graph.work(v), pe);
      const auto& intervals = busy[static_cast<std::size_t>(pe)];
      // Same O(log k) skip as the homogeneous list scheduler: sorted
      // non-overlapping intervals finishing at or before `ready` cannot
      // change the slot this scan finds.
      std::int64_t cursor = ready;
      std::int64_t slot = -1;
      const auto first = std::partition_point(
          intervals.begin(), intervals.end(),
          [&](const Interval& iv) { return iv.finish <= ready; });
      for (auto it = first; it != intervals.end(); ++it) {
        if (it->start >= cursor + duration) {
          slot = cursor;
          break;
        }
        cursor = std::max(cursor, it->finish);
      }
      if (slot < 0) slot = cursor;
      const std::int64_t finish = slot + duration;
      if (best_finish < 0 || finish < best_finish) {
        best_finish = finish;
        best_start = slot;
        best_pe = static_cast<std::int32_t>(pe);
      }
    }

    auto& intervals = busy[static_cast<std::size_t>(best_pe)];
    const Interval placed{best_start, best_finish};
    intervals.insert(
        std::upper_bound(intervals.begin(), intervals.end(), placed,
                         [](const Interval& a, const Interval& b) { return a.start < b.start; }),
        placed);
    sched.entries[idx] = ListScheduleEntry{placed.start, placed.finish, best_pe};
    sched.makespan = std::max(sched.makespan, placed.finish);
  }
  return sched;
}

}  // namespace sts
