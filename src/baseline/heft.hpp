#pragma once

#include <cstdint>
#include <vector>

#include "baseline/list_scheduler.hpp"
#include "graph/task_graph.hpp"
#include "support/workspace.hpp"

namespace sts {

/// A set of heterogeneous processing elements, described by their relative
/// speeds (work units per time unit). The paper's model assumes homogeneous
/// PEs; heterogeneous System-on-Chip fabrics are the extension named in its
/// conclusion. This module provides the corresponding non-streaming
/// baseline: HEFT (Topcuoglu et al. [33]), the de-facto standard list
/// scheduler for heterogeneous systems.
struct HeterogeneousSystem {
  std::vector<double> pe_speed;

  /// All PEs at speed 1 — reduces HEFT to the homogeneous baseline.
  [[nodiscard]] static HeterogeneousSystem homogeneous(std::int64_t pes) {
    return HeterogeneousSystem{std::vector<double>(static_cast<std::size_t>(pes), 1.0)};
  }

  [[nodiscard]] std::int64_t pe_count() const noexcept {
    return static_cast<std::int64_t>(pe_speed.size());
  }

  /// Execution time of `work` units on PE `pe` (ceil to whole time units).
  [[nodiscard]] std::int64_t duration(std::int64_t work, std::int64_t pe) const;

  /// Mean execution time across PEs (the HEFT ranking cost).
  [[nodiscard]] double mean_duration(std::int64_t work) const;
};

/// HEFT: tasks ranked by upward rank (mean cost + max successor rank),
/// then greedily assigned to the PE with the earliest insertion-based
/// finish time. Task cost is W(v) = max(I,O) scaled by PE speed;
/// communication is buffered through global memory (cost folded into the
/// data-proportional task costs, as in the homogeneous baseline).
/// Buffer nodes take no PE and no time.
///
/// With a Workspace, the upward-rank phase runs wave-parallel with results
/// bit-identical to serial (each node's rank is computed from strictly
/// later waves with the exact same double operations); placement stays
/// serial.
[[nodiscard]] ListSchedule schedule_heft(const TaskGraph& graph,
                                         const HeterogeneousSystem& system,
                                         Workspace* ws = nullptr);

/// Upward ranks used by the priority order (exposed for tests).
[[nodiscard]] std::vector<double> upward_ranks(const TaskGraph& graph,
                                               const HeterogeneousSystem& system);
[[nodiscard]] std::vector<double> upward_ranks(const TaskGraph& graph,
                                               const HeterogeneousSystem& system, Workspace* ws);

}  // namespace sts
