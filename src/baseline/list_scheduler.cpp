#include "baseline/list_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace sts {

std::vector<std::int64_t> bottom_levels(const TaskGraph& graph) {
  return bottom_levels(graph, nullptr);
}

std::vector<std::int64_t> bottom_levels(const TaskGraph& graph, Workspace* ws) {
  std::vector<std::int64_t> bl(graph.node_count(), 0);
  // Reverse Kahn waves: every successor of a node sits in a strictly earlier
  // wave, so each wave's ranks are independent and a parallel sweep writes
  // exactly the serial values (exact int64 arithmetic, disjoint slots).
  const TopoWaves waves = topological_waves(graph, /*reverse=*/true);
  const Parallel parallel = ws ? ws->parallel : Parallel();
  for (std::size_t w = 0; w + 1 < waves.offsets.size(); ++w) {
    const std::size_t begin = waves.offsets[w];
    const std::size_t end = waves.offsets[w + 1];
    parallel.for_range(static_cast<std::int64_t>(end - begin), 128,
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i) {
                           const NodeId v = waves.order[begin + static_cast<std::size_t>(i)];
                           std::int64_t succ_max = 0;
                           for (const EdgeId e : graph.out_edges(v)) {
                             succ_max = std::max(
                                 succ_max, bl[static_cast<std::size_t>(graph.edge(e).dst)]);
                           }
                           bl[static_cast<std::size_t>(v)] = graph.work(v) + succ_max;
                         }
                       });
  }
  return bl;
}

ListSchedule schedule_non_streaming(const TaskGraph& graph, std::int64_t num_pes, Workspace* ws) {
  if (num_pes <= 0) throw std::invalid_argument("schedule_non_streaming: num_pes must be > 0");
  ListSchedule sched;
  sched.entries.assign(graph.node_count(), ListScheduleEntry{});

  const std::vector<std::int64_t> bl = bottom_levels(graph, ws);
  std::vector<NodeId> order = topological_order(graph);
  std::vector<std::size_t> topo_pos(graph.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    topo_pos[static_cast<std::size_t>(order[i])] = i;
  }
  // Descending bottom level is itself a topological order for positive task
  // costs; the topo position settles zero-cost buffer ties.
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const auto ba = bl[static_cast<std::size_t>(a)];
    const auto bb = bl[static_cast<std::size_t>(b)];
    if (ba != bb) return ba > bb;
    return topo_pos[static_cast<std::size_t>(a)] < topo_pos[static_cast<std::size_t>(b)];
  });

  // Per-PE busy intervals, kept sorted by start time for gap (insertion)
  // search.
  struct Interval {
    std::int64_t start;
    std::int64_t finish;
  };
  std::vector<std::vector<Interval>> busy(static_cast<std::size_t>(num_pes));

  for (const NodeId v : order) {
    const auto idx = static_cast<std::size_t>(v);
    std::int64_t ready = 0;
    for (const EdgeId e : graph.in_edges(v)) {
      ready = std::max(ready, sched.entries[static_cast<std::size_t>(graph.edge(e).src)].finish);
    }
    if (!graph.occupies_pe(v)) {
      sched.entries[idx] = ListScheduleEntry{ready, ready, -1};
      continue;
    }
    const std::int64_t duration = graph.work(v);

    std::int64_t best_start = -1;
    std::int32_t best_pe = -1;
    for (std::int32_t pe = 0; pe < num_pes; ++pe) {
      const auto& intervals = busy[static_cast<std::size_t>(pe)];
      // Earliest gap on this PE that fits [start, start+duration) at or after
      // `ready` (insertion slot); falls through to after the last interval.
      // Intervals are non-overlapping and sorted, so everything finishing at
      // or before `ready` can be skipped in O(log k): those intervals only
      // clamp the cursor to at most `ready`, and the lone case where one
      // could itself open a slot (a zero-duration task against a zero-length
      // interval) yields slot == ready, which the remaining scan reproduces.
      std::int64_t cursor = ready;
      std::int64_t slot = -1;
      const auto first = std::partition_point(
          intervals.begin(), intervals.end(),
          [&](const Interval& iv) { return iv.finish <= ready; });
      for (auto it = first; it != intervals.end(); ++it) {
        if (it->start >= cursor + duration) {
          slot = cursor;
          break;
        }
        cursor = std::max(cursor, it->finish);
      }
      if (slot < 0) slot = cursor;
      if (best_start < 0 || slot < best_start) {
        best_start = slot;
        best_pe = pe;
        if (slot == ready) break;  // cannot do better than starting when ready
      }
    }

    auto& intervals = busy[static_cast<std::size_t>(best_pe)];
    const Interval placed{best_start, best_start + duration};
    intervals.insert(
        std::upper_bound(intervals.begin(), intervals.end(), placed,
                         [](const Interval& a, const Interval& b) { return a.start < b.start; }),
        placed);
    sched.entries[idx] = ListScheduleEntry{placed.start, placed.finish, best_pe};
    sched.makespan = std::max(sched.makespan, placed.finish);
  }
  return sched;
}

}  // namespace sts
