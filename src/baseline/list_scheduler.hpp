#pragma once

#include <cstdint>
#include <vector>

#include "graph/task_graph.hpp"
#include "support/workspace.hpp"

namespace sts {

/// Placement of one task in the non-streaming schedule.
struct ListScheduleEntry {
  std::int64_t start = 0;
  std::int64_t finish = 0;
  std::int32_t pe = -1;  ///< -1 for buffer nodes (zero-duration pass-throughs)
};

/// Non-streaming baseline schedule (paper Section 7, "NSTR-SCH"): every
/// communication is buffered through global memory, so a task starts only
/// after all its parents finished.
struct ListSchedule {
  std::vector<ListScheduleEntry> entries;  ///< indexed by NodeId
  std::int64_t makespan = 0;

  [[nodiscard]] const ListScheduleEntry& at(NodeId v) const {
    return entries[static_cast<std::size_t>(v)];
  }
};

/// Classical critical-path list scheduling for homogeneous PEs with
/// bottom-level priorities (CP/MISF-like) and insertion-based slot search:
///  - task cost  W(v) = max(I(v), O(v))  (costs proportional to data moved);
///  - communication cost 0 (producing/consuming is already accounted for);
///  - priority   bl(v) = W(v) + max over successors bl(succ), descending;
///  - each task goes to the PE offering the earliest finish time, allowed to
///    slot into idle gaps between already-placed tasks.
/// Buffer nodes take no PE and no time; they only relay precedence.
///
/// With a Workspace, the bottom-level ranking phase runs wave-parallel (a
/// node's rank depends only on strictly later waves, so the result is
/// bit-identical to serial at every lane count); placement itself stays
/// serial, which the priority order requires.
[[nodiscard]] ListSchedule schedule_non_streaming(const TaskGraph& graph, std::int64_t num_pes,
                                                  Workspace* ws = nullptr);

/// Bottom levels used for the priority order (exposed for tests).
[[nodiscard]] std::vector<std::int64_t> bottom_levels(const TaskGraph& graph);
[[nodiscard]] std::vector<std::int64_t> bottom_levels(const TaskGraph& graph, Workspace* ws);

}  // namespace sts
