#include "core/buffer_sizing.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "graph/algorithms.hpp"

namespace sts {

BufferPlan compute_buffer_plan(const TaskGraph& graph, const StreamingSchedule& schedule,
                               std::int64_t default_capacity) {
  if (default_capacity < 1) {
    throw std::invalid_argument("compute_buffer_plan: default capacity must be >= 1");
  }
  BufferPlan plan;
  const auto& block_of = schedule.partition.block_of;

  for (std::size_t k = 0; k < schedule.partition.blocks.size(); ++k) {
    const auto block_id = static_cast<std::int32_t>(k);
    const auto& members = schedule.partition.blocks[k];

    // Local index of the block's streaming subgraph (buffer nodes excluded:
    // data parked in memory can always be re-read, so no deadlock through
    // them).
    std::vector<std::int32_t> local(graph.node_count(), -1);
    for (std::size_t i = 0; i < members.size(); ++i) {
      local[static_cast<std::size_t>(members[i])] = static_cast<std::int32_t>(i);
    }
    std::vector<std::pair<std::int32_t, std::int32_t>> undirected;
    std::vector<EdgeId> edge_ids;
    for (const NodeId v : members) {
      for (const EdgeId e : graph.out_edges(v)) {
        const NodeId w = graph.edge(e).dst;
        if (block_of[static_cast<std::size_t>(w)] == block_id) {
          undirected.emplace_back(local[static_cast<std::size_t>(v)],
                                  local[static_cast<std::size_t>(w)]);
          edge_ids.push_back(e);
        }
      }
    }
    if (edge_ids.empty()) continue;
    const std::vector<bool> on_cycle =
        edges_on_undirected_cycles(members.size(), undirected);

    for (std::size_t i = 0; i < edge_ids.size(); ++i) {
      const EdgeId e = edge_ids[i];
      const Edge& edge = graph.edge(e);
      ChannelPlan channel;
      channel.edge = e;
      channel.on_undirected_cycle = on_cycle[i];

      const NodeId v = edge.dst;
      // Eq. 5 applies to nodes with more than one in-block predecessor that
      // lie on an undirected cycle of the streaming subgraph.
      std::size_t in_block_preds = 0;
      std::int64_t max_fo = 0;
      for (const EdgeId ie : graph.in_edges(v)) {
        const NodeId t = graph.edge(ie).src;
        if (block_of[static_cast<std::size_t>(t)] == block_id) {
          ++in_block_preds;
          max_fo = std::max(max_fo, schedule.at(t).first_out);
        }
      }
      if (on_cycle[i] && in_block_preds > 1) {
        const NodeId u = edge.src;
        const Rational s_out = schedule.at(u).s_out;
        const Rational delay(max_fo - schedule.at(u).first_out);
        channel.eq5_requirement = s_out > Rational(0) ? (delay / s_out).ceil() : 0;
      }
      // Allocation: Eq. 5 delay absorption + credit slack, capped at volume.
      channel.capacity = std::min(
          edge.volume, std::max(channel.eq5_requirement + default_capacity - 1,
                                default_capacity));
      plan.total_capacity += channel.capacity;
      plan.channels.push_back(channel);
    }
  }
  return plan;
}

}  // namespace sts
