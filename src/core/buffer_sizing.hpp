#pragma once

#include <cstdint>
#include <vector>

#include "core/streaming_schedule.hpp"
#include "graph/task_graph.hpp"

namespace sts {

/// FIFO capacity assigned to one in-block streaming edge.
struct ChannelPlan {
  EdgeId edge = -1;
  std::int64_t capacity = 1;         ///< allocated FIFO depth (elements)
  std::int64_t eq5_requirement = 0;  ///< the paper's Equation 5 value (cycle edges)
  bool on_undirected_cycle = false;  ///< whether Eq. 5 applied (deadlock risk)
};

/// Deadlock-free FIFO sizing for all streaming channels of a schedule
/// (paper Section 6).
struct BufferPlan {
  std::vector<ChannelPlan> channels;
  std::int64_t total_capacity = 0;

  /// Capacity for an edge; `fallback` if the edge is not a streaming channel.
  [[nodiscard]] std::int64_t capacity_of(EdgeId e, std::int64_t fallback = 0) const {
    for (const ChannelPlan& c : channels) {
      if (c.edge == e) return c.capacity;
    }
    return fallback;
  }
};

/// Computes the smallest FIFO buffer space that avoids deadlocks and bubbles
/// (Equation 5): only edges on undirected cycles of a spatial block's
/// streaming subgraph can deadlock; for a node v on such a cycle with more
/// than one in-block predecessor, the channel (u,v) must absorb the delay
/// difference  B(u,v) = ceil((max_t FO(t) - FO(u)) / S_o(u)),
/// capped at the edge data volume.
///
/// On top of the Eq. 5 requirement every channel receives
/// `default_capacity - 1` slack slots (default: one): a write lands while
/// the previous element's credit is still in flight, so depth-2 FIFOs are
/// needed to sustain one element per unit through broadcast/join meshes —
/// the standard double-buffering rule of dataflow fabrics. Capacities never
/// exceed the edge volume (a FIFO holding the whole stream cannot block).
[[nodiscard]] BufferPlan compute_buffer_plan(const TaskGraph& graph,
                                             const StreamingSchedule& schedule,
                                             std::int64_t default_capacity = 2);

}  // namespace sts
