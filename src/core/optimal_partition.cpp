#include "core/optimal_partition.hpp"

#include <algorithm>
#include <limits>

#include "graph/algorithms.hpp"

namespace sts {

namespace {

/// DFS state: PE tasks assigned in topological order; each task may join any
/// block from the highest block of its predecessors up to one past the
/// current highest non-empty block (capacity permitting). This enumerates
/// every monotone block assignment exactly once up to empty-block renaming.
/// Complete assignments per parallel evaluation flush: large enough to feed
/// every lane, small enough that the batch memory stays trivial.
constexpr std::size_t kEvalBatch = 64;

class Search {
 public:
  Search(const TaskGraph& graph, std::int64_t num_pes, std::int64_t max_candidates,
         Parallel parallel)
      : graph_(graph), num_pes_(num_pes), max_candidates_(max_candidates), parallel_(parallel) {
    for (const NodeId v : topological_order(graph)) {
      if (graph.occupies_pe(v)) order_.push_back(v);
    }
    assignment_.assign(graph.node_count(), -1);
    result_.makespan = std::numeric_limits<std::int64_t>::max();
    result_.exhausted = true;
  }

  OptimalPartitionResult run() {
    descend(0, -1);
    flush();
    if (result_.makespan == std::numeric_limits<std::int64_t>::max()) {
      // Graph without PE tasks: a single empty result.
      result_.makespan = 0;
    }
    return std::move(result_);
  }

 private:
  void descend(std::size_t position, std::int32_t highest_block) {
    if (result_.explored >= max_candidates_) {
      result_.exhausted = false;
      return;
    }
    if (position == order_.size()) {
      evaluate(highest_block);
      return;
    }
    const NodeId v = order_[position];
    // Effective predecessor blocks relay through buffer nodes (which carry
    // no block of their own).
    std::int32_t min_block = 0;
    for (const EdgeId e : graph_.in_edges(v)) {
      min_block = std::max(min_block, effective_block(graph_.edge(e).src));
    }
    const std::int32_t max_block = std::min(highest_block + 1,
                                            static_cast<std::int32_t>(order_.size()) - 1);
    for (std::int32_t block = min_block; block <= max_block; ++block) {
      if (block_sizes_.size() <= static_cast<std::size_t>(block)) {
        block_sizes_.resize(static_cast<std::size_t>(block) + 1, 0);
      }
      if (block_sizes_[static_cast<std::size_t>(block)] >= num_pes_) continue;
      ++block_sizes_[static_cast<std::size_t>(block)];
      assignment_[static_cast<std::size_t>(v)] = block;
      descend(position + 1, std::max(highest_block, block));
      assignment_[static_cast<std::size_t>(v)] = -1;
      --block_sizes_[static_cast<std::size_t>(block)];
    }
  }

  std::int32_t effective_block(NodeId u) const {
    if (graph_.kind(u) != NodeKind::kBuffer) {
      return assignment_[static_cast<std::size_t>(u)];
    }
    std::int32_t best = 0;
    for (const EdgeId e : graph_.in_edges(u)) {
      best = std::max(best, effective_block(graph_.edge(e).src));
    }
    return best;
  }

  /// Queues one complete assignment; makespans are computed batch-wise so
  /// independent candidates can be scored on all lanes at once. The explored
  /// counter advances at enqueue time, preserving the max_candidates cutoff
  /// of the serial search exactly.
  void evaluate(std::int32_t highest_block) {
    ++result_.explored;
    Candidate candidate;
    candidate.partition.block_of.assign(graph_.node_count(), -1);
    candidate.partition.blocks.resize(static_cast<std::size_t>(highest_block) + 1);
    for (const NodeId v : order_) {
      const auto block = assignment_[static_cast<std::size_t>(v)];
      candidate.partition.block_of[static_cast<std::size_t>(v)] = block;
      candidate.partition.blocks[static_cast<std::size_t>(block)].push_back(v);
    }
    batch_.push_back(std::move(candidate));
    if (batch_.size() >= kEvalBatch) flush();
  }

  void flush() {
    if (batch_.empty()) return;
    // Scoring is pure (each lane schedules its own candidates with a private
    // workspace); only the min-scan below mutates search state, and it runs
    // serially in enumeration order, keeping the first-strict-minimum winner
    // identical to the serial search.
    parallel_.for_range(static_cast<std::int64_t>(batch_.size()), 1,
                        [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t i = lo; i < hi; ++i) {
                            auto& candidate = batch_[static_cast<std::size_t>(i)];
                            candidate.makespan =
                                schedule_streaming(graph_, candidate.partition).makespan;
                          }
                        });
    for (auto& candidate : batch_) {
      if (candidate.makespan < result_.makespan) {
        result_.makespan = candidate.makespan;
        result_.partition = std::move(candidate.partition);
      }
    }
    batch_.clear();
  }

  struct Candidate {
    SpatialPartition partition;
    std::int64_t makespan = 0;
  };

  const TaskGraph& graph_;
  std::int64_t num_pes_;
  std::int64_t max_candidates_;
  Parallel parallel_;
  std::vector<NodeId> order_;
  std::vector<std::int32_t> assignment_;
  std::vector<std::int64_t> block_sizes_;
  std::vector<Candidate> batch_;
  OptimalPartitionResult result_;
};

}  // namespace

OptimalPartitionResult optimal_partition_exhaustive(const TaskGraph& graph,
                                                    std::int64_t num_pes,
                                                    std::int64_t max_candidates, Workspace* ws) {
  if (num_pes <= 0) throw std::invalid_argument("optimal_partition: num_pes must be > 0");
  Search search(graph, num_pes, max_candidates, ws ? ws->parallel : Parallel());
  return search.run();
}

}  // namespace sts
