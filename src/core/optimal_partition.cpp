#include "core/optimal_partition.hpp"

#include <algorithm>
#include <limits>

#include "graph/algorithms.hpp"

namespace sts {

namespace {

/// DFS state: PE tasks assigned in topological order; each task may join any
/// block from the highest block of its predecessors up to one past the
/// current highest non-empty block (capacity permitting). This enumerates
/// every monotone block assignment exactly once up to empty-block renaming.
class Search {
 public:
  Search(const TaskGraph& graph, std::int64_t num_pes, std::int64_t max_candidates)
      : graph_(graph), num_pes_(num_pes), max_candidates_(max_candidates) {
    for (const NodeId v : topological_order(graph)) {
      if (graph.occupies_pe(v)) order_.push_back(v);
    }
    assignment_.assign(graph.node_count(), -1);
    result_.makespan = std::numeric_limits<std::int64_t>::max();
    result_.exhausted = true;
  }

  OptimalPartitionResult run() {
    descend(0, -1);
    if (result_.makespan == std::numeric_limits<std::int64_t>::max()) {
      // Graph without PE tasks: a single empty result.
      result_.makespan = 0;
    }
    return std::move(result_);
  }

 private:
  void descend(std::size_t position, std::int32_t highest_block) {
    if (result_.explored >= max_candidates_) {
      result_.exhausted = false;
      return;
    }
    if (position == order_.size()) {
      evaluate(highest_block);
      return;
    }
    const NodeId v = order_[position];
    // Effective predecessor blocks relay through buffer nodes (which carry
    // no block of their own).
    std::int32_t min_block = 0;
    for (const EdgeId e : graph_.in_edges(v)) {
      min_block = std::max(min_block, effective_block(graph_.edge(e).src));
    }
    const std::int32_t max_block = std::min(highest_block + 1,
                                            static_cast<std::int32_t>(order_.size()) - 1);
    for (std::int32_t block = min_block; block <= max_block; ++block) {
      if (block_sizes_.size() <= static_cast<std::size_t>(block)) {
        block_sizes_.resize(static_cast<std::size_t>(block) + 1, 0);
      }
      if (block_sizes_[static_cast<std::size_t>(block)] >= num_pes_) continue;
      ++block_sizes_[static_cast<std::size_t>(block)];
      assignment_[static_cast<std::size_t>(v)] = block;
      descend(position + 1, std::max(highest_block, block));
      assignment_[static_cast<std::size_t>(v)] = -1;
      --block_sizes_[static_cast<std::size_t>(block)];
    }
  }

  std::int32_t effective_block(NodeId u) const {
    if (graph_.kind(u) != NodeKind::kBuffer) {
      return assignment_[static_cast<std::size_t>(u)];
    }
    std::int32_t best = 0;
    for (const EdgeId e : graph_.in_edges(u)) {
      best = std::max(best, effective_block(graph_.edge(e).src));
    }
    return best;
  }

  void evaluate(std::int32_t highest_block) {
    ++result_.explored;
    SpatialPartition partition;
    partition.block_of.assign(graph_.node_count(), -1);
    partition.blocks.resize(static_cast<std::size_t>(highest_block) + 1);
    for (const NodeId v : order_) {
      const auto block = assignment_[static_cast<std::size_t>(v)];
      partition.block_of[static_cast<std::size_t>(v)] = block;
      partition.blocks[static_cast<std::size_t>(block)].push_back(v);
    }
    const StreamingSchedule schedule = schedule_streaming(graph_, partition);
    if (schedule.makespan < result_.makespan) {
      result_.makespan = schedule.makespan;
      result_.partition = schedule.partition;
    }
  }

  const TaskGraph& graph_;
  std::int64_t num_pes_;
  std::int64_t max_candidates_;
  std::vector<NodeId> order_;
  std::vector<std::int32_t> assignment_;
  std::vector<std::int64_t> block_sizes_;
  OptimalPartitionResult result_;
};

}  // namespace

OptimalPartitionResult optimal_partition_exhaustive(const TaskGraph& graph,
                                                    std::int64_t num_pes,
                                                    std::int64_t max_candidates) {
  if (num_pes <= 0) throw std::invalid_argument("optimal_partition: num_pes must be > 0");
  Search search(graph, num_pes, max_candidates);
  return search.run();
}

}  // namespace sts
