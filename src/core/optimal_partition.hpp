#pragma once

#include <cstdint>

#include "core/partition.hpp"
#include "core/streaming_schedule.hpp"
#include "graph/task_graph.hpp"

namespace sts {

/// Result of the exhaustive spatial-block partition search.
struct OptimalPartitionResult {
  SpatialPartition partition;      ///< best partition found
  std::int64_t makespan = 0;       ///< its streaming makespan
  std::int64_t explored = 0;       ///< complete partitions evaluated
  bool exhausted = false;          ///< search space fully enumerated
};

/// Exhaustive branch-and-bound search over all valid spatial-block
/// partitions (assignments of PE tasks to temporally ordered blocks of at
/// most `num_pes` tasks, with dependencies pointing forward), scoring each
/// by the exact within-block schedule of Section 5.1.
///
/// The underlying problem is NP-hard (the paper reduces it to sum-of-max
/// partition under a knapsack constraint), so this is only feasible for
/// small graphs — it exists to measure how far the SB-LTS/SB-RLX greedy
/// heuristics are from the true optimum. `max_candidates` bounds the number
/// of complete partitions evaluated; when the bound trips, `exhausted` is
/// false and the result is the best partition seen so far.
///
/// With a Workspace, complete candidates are collected into batches whose
/// streaming makespans are evaluated in parallel (each evaluation is pure);
/// the best-so-far scan then runs serially in enumeration order, so the
/// winner — first strict minimum — is identical to the serial search at
/// every lane count.
[[nodiscard]] OptimalPartitionResult optimal_partition_exhaustive(
    const TaskGraph& graph, std::int64_t num_pes, std::int64_t max_candidates = 2'000'000,
    Workspace* ws = nullptr);

}  // namespace sts
