#include "core/partition.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "support/rational.hpp"

namespace sts {

namespace {

constexpr std::int64_t kNoConstraint = std::numeric_limits<std::int64_t>::max();

/// Shared machinery of the greedy partitioners: incremental ready set,
/// automatic (block-less) assignment of buffer nodes, block bookkeeping.
/// All O(n) scratch comes from the workspace arena, so building a partition
/// costs no per-node heap allocations (the result containers aside).
class PartitionBuilder {
 public:
  PartitionBuilder(const TaskGraph& graph, std::int64_t num_pes, Workspace& ws)
      : graph_(graph), num_pes_(num_pes),
        pending_in_(ws.arena.alloc_array<std::size_t>(graph.node_count())),
        ready_pos_(ws.arena.alloc_array<std::int32_t>(graph.node_count())),
        ready_storage_(ws.arena.alloc_array<NodeId>(graph.node_count())),
        chain_min_(ws.arena.alloc_array<std::int64_t>(graph.node_count())) {
    if (num_pes <= 0) throw std::invalid_argument("partition: num_pes must be > 0");
    partition_.block_of.assign(graph.node_count(), -1);
    for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
      pending_in_[static_cast<std::size_t>(v)] = graph.in_degree(v);
      ready_pos_[static_cast<std::size_t>(v)] = -1;
      chain_min_[static_cast<std::size_t>(v)] = kNoConstraint;
      if (graph.occupies_pe(v)) ++remaining_;
    }
  }

  /// Activates one connected partition: its in-degree-0 nodes enter the ready
  /// set (components are edge-closed, so nothing else can be pending-free).
  /// Callers drive components one at a time; the ready set only ever holds
  /// nodes of the active one.
  void seed(std::span<const NodeId> nodes) {
    for (const NodeId v : nodes) {
      if (pending_in_[static_cast<std::size_t>(v)] == 0) on_ready(v);
    }
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return remaining_; }
  [[nodiscard]] bool done() const noexcept { return remaining_ == 0; }
  [[nodiscard]] std::span<const NodeId> ready() const noexcept {
    return ready_storage_.subspan(0, ready_size_);
  }
  [[nodiscard]] std::int32_t open_block() const noexcept { return open_block_; }
  [[nodiscard]] bool block_open_and_nonempty() const noexcept {
    return open_block_ >= 0 &&
           !partition_.blocks[static_cast<std::size_t>(open_block_)].empty();
  }

  /// Min output volume over the open-block sources `v` transitively depends
  /// on via direct (non-buffer) edges; kNoConstraint if v has no predecessor
  /// in the open block (it would start a fresh stream component).
  [[nodiscard]] std::int64_t source_volume_bound(NodeId v) const {
    std::int64_t bound = kNoConstraint;
    for (const EdgeId e : graph_.in_edges(v)) {
      const NodeId u = graph_.edge(e).src;
      if (graph_.kind(u) == NodeKind::kBuffer) continue;  // memory boundary
      if (open_block_ >= 0 && partition_.block_of[static_cast<std::size_t>(u)] == open_block_) {
        bound = std::min(bound, chain_min_[static_cast<std::size_t>(u)]);
      }
    }
    return bound;
  }

  void assign(NodeId v) {
    if (open_block_ < 0) {
      open_block_ = static_cast<std::int32_t>(partition_.blocks.size());
      partition_.blocks.emplace_back();
    }
    // Chain value: the smallest block-source volume v depends on; block
    // sources anchor the chain with their own produced volume.
    const std::int64_t bound = source_volume_bound(v);
    chain_min_[static_cast<std::size_t>(v)] =
        bound == kNoConstraint ? graph_.output_volume(v) : bound;
    partition_.block_of[static_cast<std::size_t>(v)] = open_block_;
    partition_.blocks[static_cast<std::size_t>(open_block_)].push_back(v);
    remove_ready(v);
    --remaining_;
    release_successors(v);
    if (static_cast<std::int64_t>(
            partition_.blocks[static_cast<std::size_t>(open_block_)].size()) >= num_pes_) {
      close_block();
    }
  }

  void close_block() { open_block_ = -1; }

  [[nodiscard]] SpatialPartition take() {
    // Drop a trailing empty block if one was opened but never filled.
    while (!partition_.blocks.empty() && partition_.blocks.back().empty()) {
      partition_.blocks.pop_back();
    }
    return std::move(partition_);
  }

 private:
  void on_ready(NodeId v) {
    if (graph_.kind(v) == NodeKind::kBuffer) {
      // Buffer nodes are backing memory, not tasks: absorb them as soon as
      // all producers are placed; they never consume a PE slot.
      release_successors(v);
    } else {
      ready_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(ready_size_);
      ready_storage_[ready_size_++] = v;
    }
  }

  void release_successors(NodeId v) {
    for (const EdgeId e : graph_.out_edges(v)) {
      const NodeId w = graph_.edge(e).dst;
      if (--pending_in_[static_cast<std::size_t>(w)] == 0) on_ready(w);
    }
  }

  // O(1) swap-remove via the node -> ready-index map (the former linear
  // std::find scan dominated partitioning time on wide graphs).
  void remove_ready(NodeId v) {
    const std::int32_t pos = ready_pos_[static_cast<std::size_t>(v)];
    if (pos < 0) return;
    const NodeId moved = ready_storage_[ready_size_ - 1];
    ready_storage_[static_cast<std::size_t>(pos)] = moved;
    ready_pos_[static_cast<std::size_t>(moved)] = pos;
    --ready_size_;
    ready_pos_[static_cast<std::size_t>(v)] = -1;
  }

  const TaskGraph& graph_;
  std::int64_t num_pes_;
  SpatialPartition partition_;
  std::span<std::size_t> pending_in_;
  std::span<std::int32_t> ready_pos_;  ///< node -> index in ready set; -1 if absent
  std::span<NodeId> ready_storage_;    ///< first ready_size_ slots hold the ready set
  std::span<std::int64_t> chain_min_;
  std::size_t ready_size_ = 0;
  std::int32_t open_block_ = -1;
  std::size_t remaining_ = 0;
};

/// Grain for the ready-set argmin fan-out: below this many candidates the
/// scan stays on the calling thread (fork-join overhead would dominate).
/// 256 elements cost a few microseconds per chunk — enough to amortise the
/// pool's fork-join latency while still splitting a layer-wide ready set
/// (a few thousand candidates) across all four lanes of the latency gate.
constexpr std::int64_t kArgminGrain = 256;

std::size_t pe_node_count(const TaskGraph& graph, std::span<const NodeId> nodes) {
  std::size_t count = 0;
  for (const NodeId v : nodes) {
    if (graph.occupies_pe(v)) ++count;
  }
  return count;
}

}  // namespace

const char* to_string(PartitionVariant variant) noexcept {
  return variant == PartitionVariant::kLTS ? "SB-LTS" : "SB-RLX";
}

SpatialPartition partition_spatial_blocks(const TaskGraph& graph, std::int64_t num_pes,
                                          PartitionVariant variant, Workspace* ws,
                                          const CanonicalPartitionIndex* index) {
  Workspace local;
  Workspace& work = ws ? *ws : local;
  PartitionBuilder builder(graph, num_pes, work);
  const std::vector<Rational> level = node_levels(graph, &work);
  CanonicalPartitionIndex owned_index;
  if (!index) {
    owned_index = canonical_partition_index(graph);
    index = &owned_index;
  }
  const std::vector<std::int32_t>& rank = index->rank;

  // Strict-total-order comparators ("does v beat the incumbent b?"). The
  // serial loop's first-then-strict-improve scan computes the unique minimum
  // under these orders, so reducing per-chunk winners in any grouping yields
  // the same node — the parallel argmin is bit-identical to serial.
  const auto eligible_beats = [&](NodeId v, NodeId b) {
    if (b == kInvalidNode) return v != kInvalidNode;
    if (v == kInvalidNode) return false;
    // Primary criterion per Algorithm 1; ties broken by node level, then
    // produced volume, then canonical rank (deterministic AND invariant
    // under node-id renumbering — candidates are always same-component, so
    // ranks never collide).
    const auto& lv = level[static_cast<std::size_t>(v)];
    const auto& lb = level[static_cast<std::size_t>(b)];
    if (lv != lb) return lv < lb;
    const auto ov = graph.output_volume(v);
    const auto ob = graph.output_volume(b);
    if (ov != ob) return ov < ob;
    return rank[static_cast<std::size_t>(v)] < rank[static_cast<std::size_t>(b)];
  };
  const auto relaxed_beats = [&](NodeId v, NodeId b) {
    if (b == kInvalidNode) return v != kInvalidNode;
    if (v == kInvalidNode) return false;
    // SB-RLX fallback: least produced volume, then level, then rank.
    const auto ov = graph.output_volume(v);
    const auto ob = graph.output_volume(b);
    if (ov != ob) return ov < ob;
    const auto& lv = level[static_cast<std::size_t>(v)];
    const auto& lb = level[static_cast<std::size_t>(b)];
    if (lv != lb) return lv < lb;
    return rank[static_cast<std::size_t>(v)] < rank[static_cast<std::size_t>(b)];
  };

  struct Best {
    NodeId eligible = kInvalidNode;
    NodeId relaxed = kInvalidNode;
  };
  for (std::int32_t c = 0; c < index->count; ++c) {
    const std::span<const NodeId> component = index->nodes(c);
    builder.seed(component);
    const std::size_t target = builder.remaining() - pe_node_count(graph, component);
    while (builder.remaining() > target) {
      const std::span<const NodeId> ready = builder.ready();
      if (ready.empty()) {
        throw std::logic_error("partition: no ready node (cyclic graph?)");
      }
      const Best best = work.parallel.map_reduce(
          static_cast<std::int64_t>(ready.size()), kArgminGrain, Best{},
          [&](std::int64_t lo, std::int64_t hi, Best& acc) {
            for (std::int64_t i = lo; i < hi; ++i) {
              const NodeId v = ready[static_cast<std::size_t>(i)];
              const std::int64_t bound = builder.source_volume_bound(v);
              if (bound == kNoConstraint || graph.output_volume(v) <= bound) {
                if (eligible_beats(v, acc.eligible)) acc.eligible = v;
              } else if (variant == PartitionVariant::kRLX) {
                if (relaxed_beats(v, acc.relaxed)) acc.relaxed = v;
              }
            }
          },
          [&](Best& into, const Best& from) {
            if (eligible_beats(from.eligible, into.eligible)) into.eligible = from.eligible;
            if (relaxed_beats(from.relaxed, into.relaxed)) into.relaxed = from.relaxed;
          });
      if (best.eligible != kInvalidNode) {
        builder.assign(best.eligible);
      } else if (variant == PartitionVariant::kRLX && best.relaxed != kInvalidNode) {
        builder.assign(best.relaxed);
      } else {
        // SB-LTS: nothing safe to add; seal the block and start a fresh one
        // (every candidate is then a block source and becomes eligible).
        builder.close_block();
      }
    }
    // Component boundary: blocks never span components, so the per-component
    // schedule fragments downstream stay independently reusable.
    builder.close_block();
  }
  return builder.take();
}

SpatialPartition partition_by_work(const TaskGraph& graph, std::int64_t num_pes, Workspace* ws,
                                   const CanonicalPartitionIndex* index) {
  Workspace local;
  Workspace& work = ws ? *ws : local;
  PartitionBuilder builder(graph, num_pes, work);
  const std::vector<Rational> level = node_levels(graph, &work);
  CanonicalPartitionIndex owned_index;
  if (!index) {
    owned_index = canonical_partition_index(graph);
    index = &owned_index;
  }
  const std::vector<std::int32_t>& rank = index->rank;

  // Highest work first, ties by lowest level then canonical rank — a strict
  // total order, so the chunked reduction is exact (see
  // partition_spatial_blocks).
  const auto beats = [&](NodeId v, NodeId b) {
    if (b == kInvalidNode) return v != kInvalidNode;
    if (v == kInvalidNode) return false;
    const std::int64_t wv = graph.work(v);
    const std::int64_t wb = graph.work(b);
    if (wv != wb) return wv > wb;
    const auto& lv = level[static_cast<std::size_t>(v)];
    const auto& lb = level[static_cast<std::size_t>(b)];
    if (lv != lb) return lv < lb;
    return rank[static_cast<std::size_t>(v)] < rank[static_cast<std::size_t>(b)];
  };

  for (std::int32_t c = 0; c < index->count; ++c) {
    const std::span<const NodeId> component = index->nodes(c);
    builder.seed(component);
    const std::size_t target = builder.remaining() - pe_node_count(graph, component);
    while (builder.remaining() > target) {
      const std::span<const NodeId> ready = builder.ready();
      if (ready.empty()) {
        throw std::logic_error("partition_by_work: no ready node (cyclic graph?)");
      }
      const NodeId best = work.parallel.map_reduce(
          static_cast<std::int64_t>(ready.size()), kArgminGrain, kInvalidNode,
          [&](std::int64_t lo, std::int64_t hi, NodeId& acc) {
            for (std::int64_t i = lo; i < hi; ++i) {
              const NodeId v = ready[static_cast<std::size_t>(i)];
              if (beats(v, acc)) acc = v;
            }
          },
          [&](NodeId& into, const NodeId& from) {
            if (beats(from, into)) into = from;
          });
      builder.assign(best);  // blocks cut automatically every num_pes nodes
    }
    builder.close_block();  // blocks never span components
  }
  return builder.take();
}

bool partition_is_valid(const TaskGraph& graph, const SpatialPartition& partition,
                        std::int64_t num_pes) {
  if (partition.block_of.size() != graph.node_count()) return false;
  std::vector<std::size_t> seen(partition.blocks.size(), 0);
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    const auto block = partition.block_of[static_cast<std::size_t>(v)];
    if (graph.occupies_pe(v)) {
      if (block < 0 || static_cast<std::size_t>(block) >= partition.blocks.size()) return false;
      ++seen[static_cast<std::size_t>(block)];
    } else if (block != -1) {
      return false;  // buffer nodes carry no block
    }
  }
  for (std::size_t b = 0; b < partition.blocks.size(); ++b) {
    if (partition.blocks[b].empty()) return false;
    if (static_cast<std::int64_t>(partition.blocks[b].size()) > num_pes) return false;
    if (seen[b] != partition.blocks[b].size()) return false;
  }
  // Dependencies must not point backwards across blocks; buffer nodes relay
  // the max block of their producers.
  std::vector<std::int32_t> effective(partition.block_of.begin(), partition.block_of.end());
  for (const NodeId v : topological_order(graph)) {
    const auto idx = static_cast<std::size_t>(v);
    if (graph.kind(v) == NodeKind::kBuffer) {
      std::int32_t max_pred = 0;
      for (const EdgeId e : graph.in_edges(v)) {
        max_pred = std::max(max_pred, effective[static_cast<std::size_t>(graph.edge(e).src)]);
      }
      effective[idx] = max_pred;
      continue;
    }
    for (const EdgeId e : graph.in_edges(v)) {
      if (effective[static_cast<std::size_t>(graph.edge(e).src)] > effective[idx]) return false;
    }
  }
  return true;
}

}  // namespace sts
