#pragma once

#include <cstdint>
#include <vector>

#include "graph/serialization.hpp"
#include "graph/task_graph.hpp"
#include "support/workspace.hpp"

namespace sts {

/// Variants of the greedy spatial-block partitioning heuristic (Algorithm 1).
enum class PartitionVariant : std::uint8_t {
  /// SB-LTS: a node joins the open block only if streaming through it cannot
  /// slow the block's sources (its output volume does not exceed the volume
  /// produced by the block sources it depends on). Blocks may stay under P.
  kLTS,
  /// SB-RLX: when no volume-safe candidate exists, admit the ready node with
  /// the smallest produced volume anyway; every block (except the last) holds
  /// exactly P tasks.
  kRLX,
};

[[nodiscard]] const char* to_string(PartitionVariant variant) noexcept;

/// Partition of a canonical task graph into temporally multiplexed spatial
/// blocks of at most P PE-occupying tasks (paper Section 5).
struct SpatialPartition {
  /// PE-occupying nodes of each block in assignment order (order == PE index).
  std::vector<std::vector<NodeId>> blocks;
  /// Per node: owning block, or -1 for buffer nodes (backing memory, no PE).
  std::vector<std::int32_t> block_of;

  [[nodiscard]] std::size_t block_count() const noexcept { return blocks.size(); }
};

/// Greedy spatial-block partitioning (Algorithm 1). Guarantees by
/// construction that inter-block dependencies are acyclic: a node becomes a
/// candidate only after all its predecessors were assigned.
///
/// Eligibility (see DESIGN.md §2.7): a candidate with no direct (non-buffer)
/// predecessor in the open block always qualifies; otherwise its output
/// volume must not exceed the smallest output volume among the open block's
/// sources it depends on. Ties break by (level, volume, canonical rank).
///
/// Both partitioners process the graph's connected partitions (weakly
/// connected components, see canonical_partition_index) one at a time in
/// minimal-node-id order, sealing the open block at every component
/// boundary: blocks never mix components. Together with canonical-rank
/// (renumbering-invariant) tie-breaking this makes the partition — and every
/// downstream pipeline stage — compose per component, which is what lets the
/// SubgraphCache assemble whole-graph results from per-component fragments
/// bit-identically to a cold run. Pass a precomputed `index` to skip the
/// internal canonicalization (it must describe `graph`).
///
/// When a Workspace is given, its arena backs the builder scratch (no
/// per-node heap allocations) and its lanes fan out the per-iteration argmin
/// scan over the ready set. The scan reduces under a strict total order, so
/// the unique winner — and the whole partition — is bit-identical to the
/// serial path at every lane count.
[[nodiscard]] SpatialPartition partition_spatial_blocks(const TaskGraph& graph,
                                                        std::int64_t num_pes,
                                                        PartitionVariant variant,
                                                        Workspace* ws = nullptr,
                                                        const CanonicalPartitionIndex* index = nullptr);

/// Work-ordered partitioning for graphs of element-wise and downsampler
/// nodes (Algorithm 2, Appendix A.2): repeatedly pick the ready node with the
/// highest work (ties by lowest level), cutting blocks every P nodes within
/// each connected partition (same component-sequential order as
/// partition_spatial_blocks). Carries the
/// T_P <= T1/P + T_s_inf + min(n-1, (x-1)(L-1)) guarantee per component.
[[nodiscard]] SpatialPartition partition_by_work(const TaskGraph& graph, std::int64_t num_pes,
                                                 Workspace* ws = nullptr,
                                                 const CanonicalPartitionIndex* index = nullptr);

/// Checks structural sanity of a partition (used by tests and assertions):
/// every PE node in exactly one block, capacity respected, dependencies flow
/// forward (block_of[u] <= block_of[v] for every edge ignoring buffers).
[[nodiscard]] bool partition_is_valid(const TaskGraph& graph, const SpatialPartition& partition,
                                      std::int64_t num_pes);

}  // namespace sts
