#include "core/schedule_export.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

namespace sts {

void write_gantt(std::ostream& os, const TaskGraph& graph, const StreamingSchedule& schedule,
                 int width) {
  if (schedule.makespan <= 0 || width < 10) {
    os << "(empty schedule)\n";
    return;
  }
  const double scale = static_cast<double>(width) / static_cast<double>(schedule.makespan);
  const auto column = [&](std::int64_t t) {
    return std::min<int>(width - 1, static_cast<int>(static_cast<double>(t) * scale));
  };

  os << "time 0 .. " << schedule.makespan << " (one column ~ "
     << static_cast<double>(schedule.makespan) / width << " units)\n";
  for (std::size_t b = 0; b < schedule.partition.blocks.size(); ++b) {
    os << "block " << b << " [" << schedule.block_start[b] << ", " << schedule.block_end[b]
       << ")\n";
    for (const NodeId v : schedule.partition.blocks[b]) {
      const TaskTiming& t = schedule.at(v);
      std::string row(static_cast<std::size_t>(width), '.');
      const int from = column(t.start);
      const int to = std::max(from, column(t.last_out));
      for (int c = from; c <= to; ++c) row[static_cast<std::size_t>(c)] = '#';
      const int fo = column(t.first_out);
      row[static_cast<std::size_t>(fo)] = 'F';
      std::ostringstream name;
      name << "pe" << std::setw(3) << t.pe << " "
           << (graph.name(v).empty() ? "n" + std::to_string(v) : graph.name(v));
      os << std::left << std::setw(16) << name.str() << "|" << row << "|\n";
    }
  }
}

std::string to_gantt(const TaskGraph& graph, const StreamingSchedule& schedule, int width) {
  std::ostringstream os;
  write_gantt(os, graph, schedule, width);
  return os.str();
}

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_schedule_json(std::ostream& os, const TaskGraph& graph,
                         const StreamingSchedule& schedule, const BufferPlan* buffers) {
  os << "{\n  \"makespan\": " << schedule.makespan << ",\n  \"blocks\": [";
  for (std::size_t b = 0; b < schedule.partition.blocks.size(); ++b) {
    os << (b == 0 ? "" : ", ") << "{\"start\": " << schedule.block_start[b]
       << ", \"end\": " << schedule.block_end[b] << "}";
  }
  os << "],\n  \"tasks\": [\n";
  bool first = true;
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    const TaskTiming& t = schedule.at(v);
    if (!first) os << ",\n";
    first = false;
    os << "    {\"id\": " << v << ", \"name\": \"" << json_escape(graph.name(v))
       << "\", \"kind\": \"" << to_string(graph.kind(v)) << "\", \"block\": " << t.block
       << ", \"pe\": " << t.pe << ", \"st\": " << t.start << ", \"fo\": " << t.first_out
       << ", \"lo\": " << t.last_out << ", \"s_in\": \"" << t.s_in.to_string()
       << "\", \"s_out\": \"" << t.s_out.to_string() << "\"}";
  }
  os << "\n  ]";
  if (buffers != nullptr) {
    os << ",\n  \"channels\": [\n";
    first = true;
    for (const ChannelPlan& c : buffers->channels) {
      const Edge& e = graph.edge(c.edge);
      if (!first) os << ",\n";
      first = false;
      os << "    {\"src\": " << e.src << ", \"dst\": " << e.dst << ", \"volume\": " << e.volume
         << ", \"capacity\": " << c.capacity
         << ", \"on_cycle\": " << (c.on_undirected_cycle ? "true" : "false") << "}";
    }
    os << "\n  ],\n  \"total_buffer_space\": " << buffers->total_capacity;
  }
  os << "\n}\n";
}

std::string to_schedule_json(const TaskGraph& graph, const StreamingSchedule& schedule,
                             const BufferPlan* buffers) {
  std::ostringstream os;
  write_schedule_json(os, graph, schedule, buffers);
  return os.str();
}

}  // namespace sts
