#pragma once

#include <ostream>
#include <string>

#include "core/buffer_sizing.hpp"
#include "core/streaming_schedule.hpp"
#include "graph/task_graph.hpp"

namespace sts {

/// Renders a streaming schedule as an ASCII Gantt chart: one row per
/// (block, PE) pair, time flowing right; each task paints its [ST, LO]
/// occupancy. `width` is the number of character columns for the time axis.
void write_gantt(std::ostream& os, const TaskGraph& graph, const StreamingSchedule& schedule,
                 int width = 80);

[[nodiscard]] std::string to_gantt(const TaskGraph& graph, const StreamingSchedule& schedule,
                                   int width = 80);

/// Serializes a schedule (+ optional buffer plan) as JSON for downstream
/// tooling: per-task block/PE/ST/FO/LO/intervals, block boundaries, FIFO
/// capacities, and the makespan.
void write_schedule_json(std::ostream& os, const TaskGraph& graph,
                         const StreamingSchedule& schedule,
                         const BufferPlan* buffers = nullptr);

[[nodiscard]] std::string to_schedule_json(const TaskGraph& graph,
                                           const StreamingSchedule& schedule,
                                           const BufferPlan* buffers = nullptr);

}  // namespace sts
