#include "core/streaming_intervals.hpp"

#include <algorithm>
#include <numeric>

namespace sts {

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

StreamContext compute_stream_context(const TaskGraph& graph,
                                     std::span<const std::int32_t> block_of,
                                     std::int32_t block_id) {
  const std::size_t n = graph.node_count();
  const auto is_member = [&](NodeId v) {
    if (graph.kind(v) == NodeKind::kBuffer) return false;
    return block_id == kWholeGraph || block_of[static_cast<std::size_t>(v)] == block_id;
  };

  // Components over member-to-member edges only (buffer-incident edges are
  // independent memory streams).
  UnionFind uf(n);
  for (EdgeId e = 0; static_cast<std::size_t>(e) < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    if (is_member(edge.src) && is_member(edge.dst)) {
      uf.unite(static_cast<std::size_t>(edge.src), static_cast<std::size_t>(edge.dst));
    }
  }

  StreamContext ctx;
  ctx.node_wcc.assign(n, -1);
  std::vector<std::int32_t> compact(n, -1);
  std::int32_t next = 0;
  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    if (!is_member(v)) continue;
    const std::size_t root = uf.find(static_cast<std::size_t>(v));
    if (compact[root] < 0) compact[root] = next++;
    ctx.node_wcc[static_cast<std::size_t>(v)] = compact[root];
  }
  ctx.wcc_max.assign(static_cast<std::size_t>(next), 0);

  const auto raise = [&](std::int32_t wcc, std::int64_t volume) {
    if (wcc >= 0) {
      auto& slot = ctx.wcc_max[static_cast<std::size_t>(wcc)];
      slot = std::max(slot, volume);
    }
  };

  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    const auto idx = static_cast<std::size_t>(v);
    if (!is_member(v)) continue;
    raise(ctx.node_wcc[idx], graph.output_volume(v));
    // Block-source / buffer-fed ingestion: streams arriving from memory join
    // the component's steady state with their per-edge volume.
    bool direct_stream_pred = false;
    for (const EdgeId e : graph.in_edges(v)) {
      const NodeId u = graph.edge(e).src;
      if (graph.kind(u) == NodeKind::kBuffer) {
        raise(ctx.node_wcc[idx], graph.output_volume(u));  // head replay
      } else if (is_member(u)) {
        direct_stream_pred = true;
      }
    }
    if (!direct_stream_pred && graph.in_degree(v) > 0 && graph.input_volume(v) > 0) {
      raise(ctx.node_wcc[idx], graph.input_volume(v));
    }
  }

  ctx.s_in.assign(n, Rational(0));
  ctx.s_out.assign(n, Rational(0));
  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    const auto idx = static_cast<std::size_t>(v);
    if (is_member(v)) {
      const std::int64_t maxvol = ctx.wcc_max[static_cast<std::size_t>(ctx.node_wcc[idx])];
      if (graph.input_volume(v) > 0) ctx.s_in[idx] = Rational(maxvol, graph.input_volume(v));
      if (graph.output_volume(v) > 0) ctx.s_out[idx] = Rational(maxvol, graph.output_volume(v));
    } else if (graph.kind(v) == NodeKind::kBuffer && graph.output_volume(v) > 0) {
      // Report the slowest per-edge emission interval towards members.
      Rational slowest(0);
      for (const EdgeId e : graph.out_edges(v)) {
        const NodeId w = graph.edge(e).dst;
        const auto wcc = ctx.node_wcc[static_cast<std::size_t>(w)];
        if (wcc < 0) continue;
        slowest = std::max(slowest, Rational(ctx.wcc_max[static_cast<std::size_t>(wcc)],
                                             graph.output_volume(v)));
      }
      ctx.s_out[idx] = slowest;
    }
  }
  return ctx;
}

StreamContext streaming_intervals(const TaskGraph& graph) {
  return compute_stream_context(graph, {}, kWholeGraph);
}

}  // namespace sts
