#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/task_graph.hpp"
#include "support/rational.hpp"

namespace sts {

/// Steady-state streaming intervals of a (sub-)graph (paper Section 4.1).
///
/// Theorem 4.1: within a weakly connected component of the buffer-split
/// graph, S_o(v) = max_{u in WCC} O(u) / O(v). Components are formed by the
/// direct (non-buffer) edges between co-scheduled tasks: buffer nodes are
/// backing memory, and every buffer-incident edge is an independent stream
/// attached to its non-buffer endpoint's component.
///
/// Two extensions make the analysis exact for spatial blocks:
///  - a block source (all stream predecessors in earlier blocks) reads its
///    I(v) elements from global memory; that stream joins the component's
///    steady state, otherwise the node could be scheduled to emit faster
///    than it can ingest;
///  - a buffer head feeding a member contributes its per-edge emission
///    volume O(b) to the consumer's component for the same reason.
/// For a whole graph analyzed as one block these rules reduce exactly to
/// Theorem 4.1.
struct StreamContext {
  /// Per node: S_i(v) = maxvol(WCC)/I(v); 0 when I(v) == 0 or not a member.
  std::vector<Rational> s_in;
  /// Per node: S_o(v) = maxvol(WCC)/O(v); for a buffer node, the slowest of
  /// its per-edge emission intervals (buffer replays are per-edge streams;
  /// the per-edge interval equals the consumer's S_i). 0 when undefined.
  std::vector<Rational> s_out;
  /// WCC id per member node; -1 for buffers and non-members.
  std::vector<std::int32_t> node_wcc;
  /// Per WCC: the dominating volume (max of member O, block-source I, and
  /// incoming buffer-head O).
  std::vector<std::int64_t> wcc_max;

  [[nodiscard]] bool in_context(NodeId v) const {
    return node_wcc[static_cast<std::size_t>(v)] >= 0;
  }
};

/// Computes streaming intervals for the members of spatial block `block_id`
/// under assignment `block_of` (one entry per node; buffer nodes use -1 and
/// are handled through their incident edges).
///
/// Passing block_id == kWholeGraph treats every PE-occupying node as
/// co-scheduled, which is the infinite-PE analysis of Section 4.
inline constexpr std::int32_t kWholeGraph = -2;

[[nodiscard]] StreamContext compute_stream_context(const TaskGraph& graph,
                                                   std::span<const std::int32_t> block_of,
                                                   std::int32_t block_id);

/// Whole-graph streaming intervals (Theorem 4.1).
[[nodiscard]] StreamContext streaming_intervals(const TaskGraph& graph);

}  // namespace sts
