#include "core/streaming_schedule.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace sts {

namespace {

/// Head latency: time between a node's start and its first output element.
/// Downsamplers accumulate 1/R inputs first, arriving at interval s_in.
std::int64_t head_latency(const TaskGraph& graph, NodeId v, const Rational& s_in) {
  if (graph.kind(v) == NodeKind::kCompute && graph.input_volume(v) > 0) {
    const Rational rate = graph.rate(v);
    if (rate < Rational(1)) {
      return ceil_mul(1, (rate.reciprocal() - Rational(1)) * s_in) + 1;
    }
  }
  return 1;
}

/// Extra time an upsampler needs after its last input to flush its
/// remaining outputs.
std::int64_t tail_extra(const TaskGraph& graph, NodeId v, const Rational& s_out) {
  if (graph.kind(v) == NodeKind::kCompute && graph.input_volume(v) > 0) {
    const Rational rate = graph.rate(v);
    if (rate > Rational(1)) {
      return ((rate - Rational(1)) * s_out).ceil();
    }
  }
  return 0;
}

std::size_t find_root(std::span<std::int32_t> parent, std::size_t x) {
  while (parent[x] != static_cast<std::int32_t>(x)) {
    parent[x] = parent[static_cast<std::size_t>(parent[x])];  // path halving
    x = static_cast<std::size_t>(parent[x]);
  }
  return x;
}

}  // namespace

StreamingSchedule schedule_streaming(const TaskGraph& graph, SpatialPartition partition,
                                     Workspace* ws) {
  Workspace local;
  Workspace& work = ws ? *ws : local;
  Arena& arena = work.arena;

  StreamingSchedule sched;
  sched.timing.assign(graph.node_count(), TaskTiming{});
  const std::size_t n = graph.node_count();
  const std::size_t num_blocks = partition.blocks.size();
  const std::vector<NodeId> topo = topological_order(graph);

  // ---- Per-block active sets -------------------------------------------
  // Block k only ever touches its members plus the buffers feeding them.
  // Visiting exactly that set (instead of rescanning the whole graph per
  // block, the former O(blocks * (N + E)) behavior) makes the sweep O(N + E)
  // total: a member is active in one block; a buffer in at most out-degree
  // many. Two passes over topo order (count, then fill) leave each block's
  // active list in topological order, which the timing recurrences need.
  const std::span<std::size_t> active_offset = arena.alloc_zeroed<std::size_t>(num_blocks + 1);
  const std::span<std::int32_t> stamp = arena.alloc_array<std::int32_t>(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) stamp[b] = -1;

  // A buffer serves every block holding one of its consumers (consumers are
  // non-buffer: buffer chains are rejected by validation). The stamp array
  // dedups multiple consumers in one block.
  const auto for_each_serving_block = [&](NodeId buffer, auto&& fn) {
    for (const EdgeId e : graph.out_edges(buffer)) {
      const auto blk = partition.block_of[static_cast<std::size_t>(graph.edge(e).dst)];
      if (blk < 0) continue;
      if (stamp[static_cast<std::size_t>(blk)] == buffer) continue;
      stamp[static_cast<std::size_t>(blk)] = buffer;
      fn(static_cast<std::size_t>(blk));
    }
  };

  for (const NodeId v : topo) {
    if (graph.kind(v) == NodeKind::kBuffer) {
      for_each_serving_block(v, [&](std::size_t blk) { ++active_offset[blk + 1]; });
    } else {
      const auto blk = partition.block_of[static_cast<std::size_t>(v)];
      if (blk >= 0) ++active_offset[static_cast<std::size_t>(blk) + 1];
    }
  }
  for (std::size_t b = 0; b < num_blocks; ++b) active_offset[b + 1] += active_offset[b];
  const std::span<NodeId> active_nodes = arena.alloc_array<NodeId>(active_offset[num_blocks]);
  {
    const std::span<std::size_t> cursor = arena.alloc_array<std::size_t>(num_blocks);
    for (std::size_t b = 0; b < num_blocks; ++b) {
      cursor[b] = active_offset[b];
      stamp[b] = -1;  // reuse for the fill pass
    }
    for (const NodeId v : topo) {
      if (graph.kind(v) == NodeKind::kBuffer) {
        for_each_serving_block(v, [&](std::size_t blk) { active_nodes[cursor[blk]++] = v; });
      } else {
        const auto blk = partition.block_of[static_cast<std::size_t>(v)];
        if (blk >= 0) active_nodes[cursor[static_cast<std::size_t>(blk)]++] = v;
      }
    }
  }

  // ---- Block-local stream-context scratch ------------------------------
  // Same recurrences as compute_stream_context, restricted to one block's
  // active set: union-find over member-member edges, component maxima from
  // member output volumes, buffer head replays, and block-source ingestion.
  // All arrays persist across blocks; only active slots are (re)written, so
  // no per-block O(N) clearing either.
  const std::span<std::int32_t> parent = arena.alloc_array<std::int32_t>(n);
  const std::span<std::int64_t> root_max = arena.alloc_array<std::int64_t>(n);
  const std::span<Rational> s_in = arena.alloc_array<Rational>(n);
  const std::span<Rational> s_out = arena.alloc_array<Rational>(n);

  // Per-block buffer head release: FO(buffer) = max predecessors' LO + 1,
  // clamped to the serving block's release (a buffer may feed several
  // blocks; every consumer edge re-streams from memory independently).
  const std::span<std::int64_t> head_fo = arena.alloc_zeroed<std::int64_t>(n);
  const std::span<std::uint8_t> buffer_timed = arena.alloc_zeroed<std::uint8_t>(n);

  std::int64_t block_release = 0;
  for (std::size_t k = 0; k < num_blocks; ++k) {
    const auto block_id = static_cast<std::int32_t>(k);
    const std::span<const NodeId> active =
        active_nodes.subspan(active_offset[k], active_offset[k + 1] - active_offset[k]);
    const auto is_member = [&](NodeId u) {
      return graph.kind(u) != NodeKind::kBuffer &&
             partition.block_of[static_cast<std::size_t>(u)] == block_id;
    };

    // Union member-member edges (each appears once as an in-edge of its
    // member head), then accumulate component maxima at the roots.
    for (const NodeId v : active) {
      if (!is_member(v)) continue;
      parent[static_cast<std::size_t>(v)] = v;
      root_max[static_cast<std::size_t>(v)] = 0;
    }
    for (const NodeId v : active) {
      if (!is_member(v)) continue;
      for (const EdgeId e : graph.in_edges(v)) {
        const NodeId u = graph.edge(e).src;
        if (graph.kind(u) != NodeKind::kBuffer && is_member(u)) {
          const std::size_t ru = find_root(parent, static_cast<std::size_t>(u));
          const std::size_t rv = find_root(parent, static_cast<std::size_t>(v));
          if (ru != rv) parent[ru] = static_cast<std::int32_t>(rv);
        }
      }
    }
    const auto raise = [&](NodeId v, std::int64_t volume) {
      auto& slot = root_max[find_root(parent, static_cast<std::size_t>(v))];
      slot = std::max(slot, volume);
    };
    for (const NodeId v : active) {
      if (!is_member(v)) continue;
      raise(v, graph.output_volume(v));
      // Block-source / buffer-fed ingestion: streams arriving from memory
      // join the component's steady state with their per-edge volume.
      bool direct_stream_pred = false;
      for (const EdgeId e : graph.in_edges(v)) {
        const NodeId u = graph.edge(e).src;
        if (graph.kind(u) == NodeKind::kBuffer) {
          raise(v, graph.output_volume(u));  // head replay
        } else if (is_member(u)) {
          direct_stream_pred = true;
        }
      }
      if (!direct_stream_pred && graph.in_degree(v) > 0 && graph.input_volume(v) > 0) {
        raise(v, graph.input_volume(v));
      }
    }
    for (const NodeId v : active) {
      const auto idx = static_cast<std::size_t>(v);
      if (is_member(v)) {
        const std::int64_t maxvol = root_max[find_root(parent, idx)];
        s_in[idx] = graph.input_volume(v) > 0 ? Rational(maxvol, graph.input_volume(v))
                                              : Rational(0);
        s_out[idx] = graph.output_volume(v) > 0 ? Rational(maxvol, graph.output_volume(v))
                                                : Rational(0);
      } else if (graph.output_volume(v) > 0) {
        // Buffer: the slowest per-edge emission interval towards this
        // block's members (buffer replays are per-edge streams; the
        // per-edge interval equals the consumer's S_i).
        Rational slowest(0);
        for (const EdgeId e : graph.out_edges(v)) {
          const NodeId w = graph.edge(e).dst;
          if (!is_member(w)) continue;
          slowest = std::max(
              slowest,
              Rational(root_max[find_root(parent, static_cast<std::size_t>(w))],
                       graph.output_volume(v)));
        }
        s_out[idx] = slowest;
      } else {
        s_out[idx] = Rational(0);
      }
    }

    // ---- Timing recurrences over the active set (topological order) ----
    std::int64_t block_finish = block_release;
    for (const NodeId v : active) {
      const auto idx = static_cast<std::size_t>(v);

      if (graph.kind(v) == NodeKind::kBuffer) {
        std::int64_t ready = block_release;
        for (const EdgeId e : graph.in_edges(v)) {
          ready = std::max(ready,
                           sched.timing[static_cast<std::size_t>(graph.edge(e).src)].last_out);
        }
        head_fo[idx] = ready + 1;
        if (!buffer_timed[idx]) {
          buffer_timed[idx] = 1;
          TaskTiming& t = sched.timing[idx];
          t.start = head_fo[idx] - 1;
          t.first_out = head_fo[idx];
          t.s_out = s_out[idx];
          t.last_out = head_fo[idx] + ceil_mul(graph.output_volume(v) - 1, s_out[idx]);
          t.block = -1;
          t.pe = -1;
        }
        continue;
      }

      TaskTiming& t = sched.timing[idx];
      t.block = block_id;
      t.s_in = s_in[idx];
      t.s_out = s_out[idx];

      // Streaming predecessors: same-block members and buffer heads. Other
      // predecessors finished in earlier blocks; their data sits in memory
      // and is read at full rate.
      std::int64_t start = block_release;
      bool member_pred = false;
      bool buffer_pred = false;
      for (const EdgeId e : graph.in_edges(v)) {
        const NodeId u = graph.edge(e).src;
        const auto uidx = static_cast<std::size_t>(u);
        if (graph.kind(u) == NodeKind::kBuffer) {
          buffer_pred = true;
          start = std::max(start, head_fo[uidx]);
        } else if (partition.block_of[uidx] == block_id) {
          member_pred = true;
          start = std::max(start, sched.timing[uidx].first_out);
        }
      }
      const bool block_source = !member_pred && !buffer_pred;
      t.start = block_source ? block_release : start;

      // Block sources read global memory at full rate (one element per unit
      // per port); everything else ingests at the component's steady-state
      // interval.
      const Rational ingest_interval = block_source ? Rational(1) : t.s_in;
      t.first_out = t.start + head_latency(graph, v, ingest_interval);

      // LO(v): the Section 5.1 recurrence over streaming predecessors plus
      // the pacing bounds for memory-fed nodes.
      std::int64_t lo = 0;
      const std::int64_t tail1 = 1 + tail_extra(graph, v, t.s_out);
      for (const EdgeId e : graph.in_edges(v)) {
        const NodeId u = graph.edge(e).src;
        const auto uidx = static_cast<std::size_t>(u);
        if (graph.kind(u) == NodeKind::kBuffer) {
          // Per-edge head replay: O(b) elements at the consumer's interval.
          const std::int64_t head_lo =
              head_fo[uidx] + ceil_mul(graph.output_volume(u) - 1, t.s_in);
          lo = std::max(lo, head_lo + tail1);
        } else if (partition.block_of[uidx] == block_id) {
          lo = std::max(lo, sched.timing[uidx].last_out + tail1);
        }
      }
      if (block_source) {
        // Output-paced: O elements at S_o after the first; plus the rate-1
        // ingestion floor.
        if (graph.output_volume(v) > 0) {
          lo = std::max(lo, t.first_out + ceil_mul(graph.output_volume(v) - 1, t.s_out));
        }
        if (graph.input_volume(v) > 0) {
          lo = std::max(lo, t.start + graph.input_volume(v));
        }
      } else if (graph.input_volume(v) > 0) {
        // Steady-state ingestion bound (covers mixed memory/stream inputs).
        lo = std::max(lo, t.start + ceil_mul(graph.input_volume(v) - 1, t.s_in) +
                              tail_extra(graph, v, t.s_out) + 1);
      }
      t.last_out = lo;
      if (graph.kind(v) == NodeKind::kSink) t.first_out = t.start + 1;

      block_finish = std::max(block_finish, t.last_out);
    }

    // PE assignment: position within the block.
    const auto& members = partition.blocks[k];
    for (std::size_t i = 0; i < members.size(); ++i) {
      sched.timing[static_cast<std::size_t>(members[i])].pe = static_cast<std::int32_t>(i);
    }

    sched.block_start.push_back(block_release);
    sched.block_end.push_back(block_finish);
    block_release = block_finish;
  }

  sched.makespan = sched.block_end.empty() ? 0 : sched.block_end.back();
  sched.partition = std::move(partition);
  return sched;
}

}  // namespace sts
