#include "core/streaming_schedule.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace sts {

namespace {

/// Head latency: time between a node's start and its first output element.
/// Downsamplers accumulate 1/R inputs first, arriving at interval s_in.
std::int64_t head_latency(const TaskGraph& graph, NodeId v, const Rational& s_in) {
  if (graph.kind(v) == NodeKind::kCompute && graph.input_volume(v) > 0) {
    const Rational rate = graph.rate(v);
    if (rate < Rational(1)) {
      return ceil_mul(1, (rate.reciprocal() - Rational(1)) * s_in) + 1;
    }
  }
  return 1;
}

/// Extra time an upsampler needs after its last input to flush its
/// remaining outputs.
std::int64_t tail_extra(const TaskGraph& graph, NodeId v, const Rational& s_out) {
  if (graph.kind(v) == NodeKind::kCompute && graph.input_volume(v) > 0) {
    const Rational rate = graph.rate(v);
    if (rate > Rational(1)) {
      return ((rate - Rational(1)) * s_out).ceil();
    }
  }
  return 0;
}

}  // namespace

StreamingSchedule schedule_streaming(const TaskGraph& graph, SpatialPartition partition) {
  StreamingSchedule sched;
  sched.timing.assign(graph.node_count(), TaskTiming{});
  const std::vector<NodeId> topo = topological_order(graph);

  // Per-block buffer head release: FO(buffer) = max predecessors' LO + 1,
  // clamped to the serving block's release (a buffer may feed several
  // blocks; every consumer edge re-streams from memory independently).
  std::vector<std::int64_t> head_fo(graph.node_count(), 0);
  std::vector<bool> buffer_timed(graph.node_count(), false);

  std::int64_t block_release = 0;
  for (std::size_t k = 0; k < partition.blocks.size(); ++k) {
    const auto block_id = static_cast<std::int32_t>(k);
    const StreamContext ctx = compute_stream_context(graph, partition.block_of, block_id);

    std::int64_t block_finish = block_release;
    for (const NodeId v : topo) {
      const auto idx = static_cast<std::size_t>(v);

      if (graph.kind(v) == NodeKind::kBuffer) {
        // Active in this block iff it feeds one of its members.
        bool serves_block = false;
        for (const EdgeId e : graph.out_edges(v)) {
          if (ctx.in_context(graph.edge(e).dst)) {
            serves_block = true;
            break;
          }
        }
        if (!serves_block) continue;
        std::int64_t ready = block_release;
        for (const EdgeId e : graph.in_edges(v)) {
          ready = std::max(ready,
                           sched.timing[static_cast<std::size_t>(graph.edge(e).src)].last_out);
        }
        head_fo[idx] = ready + 1;
        if (!buffer_timed[idx]) {
          buffer_timed[idx] = true;
          TaskTiming& t = sched.timing[idx];
          t.start = head_fo[idx] - 1;
          t.first_out = head_fo[idx];
          t.s_out = ctx.s_out[idx];
          t.last_out = head_fo[idx] + ceil_mul(graph.output_volume(v) - 1, ctx.s_out[idx]);
          t.block = -1;
          t.pe = -1;
        }
        continue;
      }

      if (partition.block_of[idx] != block_id) continue;

      TaskTiming& t = sched.timing[idx];
      t.block = block_id;
      t.s_in = ctx.s_in[idx];
      t.s_out = ctx.s_out[idx];

      // Streaming predecessors: same-block members and buffer heads. Other
      // predecessors finished in earlier blocks; their data sits in memory
      // and is read at full rate.
      std::int64_t start = block_release;
      bool member_pred = false;
      bool buffer_pred = false;
      for (const EdgeId e : graph.in_edges(v)) {
        const NodeId u = graph.edge(e).src;
        const auto uidx = static_cast<std::size_t>(u);
        if (graph.kind(u) == NodeKind::kBuffer) {
          buffer_pred = true;
          start = std::max(start, head_fo[uidx]);
        } else if (partition.block_of[uidx] == block_id) {
          member_pred = true;
          start = std::max(start, sched.timing[uidx].first_out);
        }
      }
      const bool block_source = !member_pred && !buffer_pred;
      t.start = block_source ? block_release : start;

      // Block sources read global memory at full rate (one element per unit
      // per port); everything else ingests at the component's steady-state
      // interval.
      const Rational ingest_interval = block_source ? Rational(1) : t.s_in;
      t.first_out = t.start + head_latency(graph, v, ingest_interval);

      // LO(v): the Section 5.1 recurrence over streaming predecessors plus
      // the pacing bounds for memory-fed nodes.
      std::int64_t lo = 0;
      const std::int64_t tail1 = 1 + tail_extra(graph, v, t.s_out);
      for (const EdgeId e : graph.in_edges(v)) {
        const NodeId u = graph.edge(e).src;
        const auto uidx = static_cast<std::size_t>(u);
        if (graph.kind(u) == NodeKind::kBuffer) {
          // Per-edge head replay: O(b) elements at the consumer's interval.
          const std::int64_t head_lo =
              head_fo[uidx] + ceil_mul(graph.output_volume(u) - 1, t.s_in);
          lo = std::max(lo, head_lo + tail1);
        } else if (partition.block_of[uidx] == block_id) {
          lo = std::max(lo, sched.timing[uidx].last_out + tail1);
        }
      }
      if (block_source) {
        // Output-paced: O elements at S_o after the first; plus the rate-1
        // ingestion floor.
        if (graph.output_volume(v) > 0) {
          lo = std::max(lo, t.first_out + ceil_mul(graph.output_volume(v) - 1, t.s_out));
        }
        if (graph.input_volume(v) > 0) {
          lo = std::max(lo, t.start + graph.input_volume(v));
        }
      } else if (graph.input_volume(v) > 0) {
        // Steady-state ingestion bound (covers mixed memory/stream inputs).
        lo = std::max(lo, t.start + ceil_mul(graph.input_volume(v) - 1, t.s_in) +
                              tail_extra(graph, v, t.s_out) + 1);
      }
      t.last_out = lo;
      if (graph.kind(v) == NodeKind::kSink) t.first_out = t.start + 1;

      block_finish = std::max(block_finish, t.last_out);
    }

    // PE assignment: position within the block.
    const auto& members = partition.blocks[k];
    for (std::size_t i = 0; i < members.size(); ++i) {
      sched.timing[static_cast<std::size_t>(members[i])].pe = static_cast<std::int32_t>(i);
    }

    sched.block_start.push_back(block_release);
    sched.block_end.push_back(block_finish);
    block_release = block_finish;
  }

  sched.makespan = sched.block_end.empty() ? 0 : sched.block_end.back();
  sched.partition = std::move(partition);
  return sched;
}

}  // namespace sts
