#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.hpp"
#include "core/streaming_intervals.hpp"
#include "graph/task_graph.hpp"
#include "support/rational.hpp"

namespace sts {

/// Timing of one task in the streaming schedule (paper Section 5.1).
struct TaskTiming {
  std::int64_t start = 0;      ///< ST(v): when the task begins holding its PE
  std::int64_t first_out = 0;  ///< FO(v): when the first element leaves v
  std::int64_t last_out = 0;   ///< LO(v): when the last element leaves v
  Rational s_in{0};            ///< steady-state input interval within the block
  Rational s_out{0};           ///< steady-state output interval within the block
  std::int32_t pe = -1;        ///< PE index within the block; -1 for buffers
  std::int32_t block = -1;     ///< owning spatial block; -1 for buffers
};

/// A complete streaming schedule: spatial blocks executed back-to-back, tasks
/// inside a block co-scheduled with pipelined (streamed) communication.
struct StreamingSchedule {
  SpatialPartition partition;
  std::vector<TaskTiming> timing;        ///< indexed by NodeId
  std::vector<std::int64_t> block_start; ///< BS_i: release time of block i
  std::vector<std::int64_t> block_end;   ///< max LO over block i members
  std::int64_t makespan = 0;             ///< max finishing time of any exit node

  [[nodiscard]] const TaskTiming& at(NodeId v) const {
    return timing[static_cast<std::size_t>(v)];
  }
};

/// Computes ST/FO/LO for every task of every spatial block, scheduling the
/// blocks one after the other (Section 5.1). The recurrences extend the
/// paper's formulas to block sources that ingest from global memory; they
/// reproduce the paper's Figure 8 and Figure 9 tables exactly (see tests).
///
/// Preconditions: `graph.validate()` is clean and `partition` is valid.
///
/// Runs in O(N + E) total across all blocks: each block only visits its
/// active set (members plus the buffers feeding them) with a block-local
/// stream-context computation over persistent arena scratch, instead of
/// rescanning the whole graph per block. A Workspace supplies that arena
/// (and the wave-parallel node-level phase upstream); pass nullptr for a
/// self-contained local workspace. Results are identical either way.
[[nodiscard]] StreamingSchedule schedule_streaming(const TaskGraph& graph,
                                                   SpatialPartition partition,
                                                   Workspace* ws = nullptr);

}  // namespace sts
