#include "core/streaming_scheduler.hpp"

#include <utility>

#include "pipeline/registry.hpp"

namespace sts {

StreamingSchedulerResult schedule_streaming_graph(const TaskGraph& graph, std::int64_t num_pes,
                                                  PartitionVariant variant) {
  MachineConfig machine;
  machine.num_pes = num_pes;
  ScheduleResult result = schedule_by_name(
      variant == PartitionVariant::kLTS ? "streaming-lts" : "streaming-rlx", graph, machine);
  return StreamingSchedulerResult{std::move(*result.streaming), std::move(*result.buffers)};
}

}  // namespace sts
