#include "core/streaming_scheduler.hpp"

namespace sts {

StreamingSchedulerResult schedule_streaming_graph(const TaskGraph& graph, std::int64_t num_pes,
                                                  PartitionVariant variant) {
  StreamingSchedulerResult result;
  result.schedule = schedule_streaming(graph, partition_spatial_blocks(graph, num_pes, variant));
  result.buffers = compute_buffer_plan(graph, result.schedule);
  return result;
}

}  // namespace sts
