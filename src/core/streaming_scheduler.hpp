#pragma once

#include <cstdint>

#include "core/buffer_sizing.hpp"
#include "core/partition.hpp"
#include "core/streaming_schedule.hpp"
#include "graph/task_graph.hpp"

namespace sts {

/// One-call driver for the full streaming scheduling pipeline of the paper:
/// spatial-block partitioning (Section 5.2), within-block scheduling
/// (Section 5.1), and deadlock-free FIFO sizing (Section 6).
///
/// This is a thin convenience wrapper over the pass-based pipeline API
/// (pipeline/registry.hpp): it resolves the `streaming-lts` /
/// `streaming-rlx` scheduler from the SchedulerRegistry and unwraps the
/// streaming artifacts. Use the registry directly for the other schedulers
/// (work-ordered partitioning, HEFT, list, CSDF), pass timings, metrics,
/// placement, or memoization through ScheduleCache.
struct StreamingSchedulerResult {
  StreamingSchedule schedule;
  BufferPlan buffers;
};

/// Schedules `graph` on `num_pes` homogeneous PEs with the given Algorithm 1
/// variant. Validates its inputs: throws std::invalid_argument listing every
/// canonicity violation when the graph does not validate, or when
/// `num_pes <= 0`.
[[nodiscard]] StreamingSchedulerResult schedule_streaming_graph(const TaskGraph& graph,
                                                                std::int64_t num_pes,
                                                                PartitionVariant variant);

}  // namespace sts
