#pragma once

#include <cstdint>

#include "core/buffer_sizing.hpp"
#include "core/partition.hpp"
#include "core/streaming_schedule.hpp"
#include "graph/task_graph.hpp"

namespace sts {

/// One-call driver for the full streaming scheduling pipeline of the paper:
/// spatial-block partitioning (Section 5.2), within-block scheduling
/// (Section 5.1), and deadlock-free FIFO sizing (Section 6).
struct StreamingSchedulerResult {
  StreamingSchedule schedule;
  BufferPlan buffers;
};

/// Schedules `graph` on `num_pes` homogeneous PEs with the given Algorithm 1
/// variant. The graph must validate as a canonical task graph.
[[nodiscard]] StreamingSchedulerResult schedule_streaming_graph(const TaskGraph& graph,
                                                                std::int64_t num_pes,
                                                                PartitionVariant variant);

}  // namespace sts
