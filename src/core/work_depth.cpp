#include "core/work_depth.hpp"

#include <algorithm>
#include <vector>

#include "graph/algorithms.hpp"

namespace sts {

WorkDepth analyze_work_depth(const TaskGraph& graph) {
  WorkDepth result;
  result.work = graph.total_work();
  result.levels = graph_level(graph);

  const std::size_t n = graph.node_count();
  const BufferSplitWccs wccs = buffer_split_wccs(graph);
  const auto wcc_count = static_cast<std::size_t>(wccs.count);

  // Per-WCC level of the buffer-split graph: consumers of a buffer restart
  // at level 1 (streaming cannot cross a buffer); every other node adds
  // max(R,1) above its in-WCC predecessors.
  std::vector<Rational> split_level(n, Rational(0));
  std::vector<Rational> wcc_level(wcc_count, Rational(0));
  std::vector<std::int64_t> wcc_max_vol(wcc_count, 0);

  for (const NodeId v : topological_order(graph)) {
    const auto idx = static_cast<std::size_t>(v);
    if (graph.kind(v) == NodeKind::kBuffer) {
      // The head contributes its per-edge replay volume to each consumer's
      // component; it adds no level (a fresh source of that component).
      for (const EdgeId e : graph.out_edges(v)) {
        const auto wcc = wccs.node_wcc[static_cast<std::size_t>(graph.edge(e).dst)];
        if (wcc >= 0) {
          wcc_max_vol[static_cast<std::size_t>(wcc)] = std::max(
              wcc_max_vol[static_cast<std::size_t>(wcc)], graph.output_volume(v));
        }
      }
      continue;
    }

    Rational best(0);
    for (const EdgeId e : graph.in_edges(v)) {
      const NodeId u = graph.edge(e).src;
      const Rational contrib = graph.kind(u) == NodeKind::kBuffer
                                   ? Rational(1)
                                   : split_level[static_cast<std::size_t>(u)];
      best = std::max(best, contrib);
    }
    if (graph.in_degree(v) == 0) {
      split_level[idx] = Rational(1);
    } else {
      const Rational step = graph.kind(v) == NodeKind::kCompute
                                ? std::max(graph.rate(v), Rational(1))
                                : Rational(1);  // sinks
      split_level[idx] = best + step;
    }

    const auto wcc = wccs.node_wcc[idx];
    if (wcc >= 0) {
      wcc_level[static_cast<std::size_t>(wcc)] =
          std::max(wcc_level[static_cast<std::size_t>(wcc)], split_level[idx]);
      wcc_max_vol[static_cast<std::size_t>(wcc)] = std::max(
          wcc_max_vol[static_cast<std::size_t>(wcc)], graph.output_volume(v));
    }
  }

  // Supernode DAG H: one node per WCC with weight L(WCC) + maxO(WCC)
  // (Equation 4); an edge per buffer from each writer WCC to each reader
  // WCC. The streaming depth bound is the heaviest path weight in H.
  std::vector<Rational> wcc_weight(wcc_count, Rational(0));
  for (std::size_t c = 0; c < wcc_count; ++c) {
    wcc_weight[c] = wcc_level[c] + Rational(wcc_max_vol[c]);
  }

  std::vector<std::vector<std::int32_t>> adj(wcc_count);
  std::vector<std::size_t> deg(wcc_count, 0);
  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    if (graph.kind(v) != NodeKind::kBuffer) continue;
    for (const EdgeId in : graph.in_edges(v)) {
      const auto tail = wccs.node_wcc[static_cast<std::size_t>(graph.edge(in).src)];
      if (tail < 0) continue;
      for (const EdgeId out : graph.out_edges(v)) {
        const auto head = wccs.node_wcc[static_cast<std::size_t>(graph.edge(out).dst)];
        if (head < 0 || head == tail) continue;
        adj[static_cast<std::size_t>(tail)].push_back(head);
        ++deg[static_cast<std::size_t>(head)];
      }
    }
  }
  std::vector<Rational> path(wcc_weight);
  std::vector<std::int32_t> stack;
  for (std::size_t c = 0; c < wcc_count; ++c) {
    if (deg[c] == 0) stack.push_back(static_cast<std::int32_t>(c));
  }
  Rational deepest(0);
  while (!stack.empty()) {
    const auto u = stack.back();
    stack.pop_back();
    deepest = std::max(deepest, path[static_cast<std::size_t>(u)]);
    for (const auto w : adj[static_cast<std::size_t>(u)]) {
      path[static_cast<std::size_t>(w)] =
          std::max(path[static_cast<std::size_t>(w)],
                   path[static_cast<std::size_t>(u)] + wcc_weight[static_cast<std::size_t>(w)]);
      if (--deg[static_cast<std::size_t>(w)] == 0) stack.push_back(w);
    }
  }
  result.streaming_depth = deepest;
  return result;
}

Rational streaming_depth(const TaskGraph& graph) {
  return analyze_work_depth(graph).streaming_depth;
}

}  // namespace sts
