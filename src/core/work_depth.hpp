#pragma once

#include <cstdint>

#include "graph/task_graph.hpp"
#include "support/rational.hpp"

namespace sts {

/// Work and depth analysis of a canonical task graph (paper Section 4.2).
struct WorkDepth {
  /// T1: sum of W(v) = max(I,O) over PE-occupying nodes — the sequential
  /// execution time of the DAG on one processor.
  std::int64_t work = 0;

  /// T_s_inf: the streaming depth bound of Section 4.2.3 — per buffer-split
  /// WCC, L(G_wcc) + max_u O(u) (Equation 4), summed along the deepest path
  /// of the supernode DAG H. For graphs without buffer nodes this is
  /// L(G) + max O(u).
  Rational streaming_depth{0};

  /// Number of levels L(G) with the generalized level function.
  Rational levels{0};
};

[[nodiscard]] WorkDepth analyze_work_depth(const TaskGraph& graph);

/// Convenience: T_s_inf only.
[[nodiscard]] Rational streaming_depth(const TaskGraph& graph);

}  // namespace sts
