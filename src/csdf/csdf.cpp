#include "csdf/csdf.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace sts {

std::int32_t CsdfGraph::add_actor(CsdfActor actor) {
  if (actor.phase_count <= 0 || actor.repetitions < 0) {
    throw std::invalid_argument("CsdfGraph::add_actor: bad phase/repetition count");
  }
  actors_.push_back(std::move(actor));
  return static_cast<std::int32_t>(actors_.size() - 1);
}

void CsdfGraph::add_channel(CsdfChannel channel) {
  if (channel.src < 0 || static_cast<std::size_t>(channel.src) >= actors_.size() ||
      channel.dst < 0 || static_cast<std::size_t>(channel.dst) >= actors_.size()) {
    throw std::out_of_range("CsdfGraph::add_channel: bad actor id");
  }
  if (channel.production.size() !=
          static_cast<std::size_t>(actors_[static_cast<std::size_t>(channel.src)].phase_count) ||
      channel.consumption.size() !=
          static_cast<std::size_t>(actors_[static_cast<std::size_t>(channel.dst)].phase_count)) {
    throw std::invalid_argument("CsdfGraph::add_channel: pattern length != phase count");
  }
  channels_.push_back(std::move(channel));
}

std::int64_t CsdfGraph::total_firings() const {
  std::int64_t total = 0;
  for (const CsdfActor& a : actors_) total += a.repetitions;
  return total;
}

namespace {

/// Spreads `count` unit-operations over `length` phases as evenly as
/// possible. Consumption is front-loaded (reads happen before the enabled
/// writes: an upsampler consumes in phase 1 then emits), production is
/// back-loaded (a downsampler emits after accumulating its inputs).
std::vector<std::int64_t> spread_front(std::int64_t count, std::int64_t length) {
  std::vector<std::int64_t> pattern(static_cast<std::size_t>(length));
  for (std::int64_t i = 1; i <= length; ++i) {
    const auto hi = (i * count + length - 1) / length;
    const auto lo = ((i - 1) * count + length - 1) / length;
    pattern[static_cast<std::size_t>(i - 1)] = hi - lo;
  }
  return pattern;
}

std::vector<std::int64_t> spread_back(std::int64_t count, std::int64_t length) {
  std::vector<std::int64_t> pattern(static_cast<std::size_t>(length));
  for (std::int64_t i = 1; i <= length; ++i) {
    pattern[static_cast<std::size_t>(i - 1)] = i * count / length - (i - 1) * count / length;
  }
  return pattern;
}

struct ActorShape {
  std::int64_t phases = 1;
  std::int64_t consume_per_cycle = 0;  // b
  std::int64_t produce_per_cycle = 0;  // a
};

ActorShape shape_of(const TaskGraph& graph, NodeId v) {
  ActorShape s;
  switch (graph.kind(v)) {
    case NodeKind::kSource:
      s.phases = 1;
      s.produce_per_cycle = 1;
      return s;
    case NodeKind::kSink:
      s.phases = 1;
      s.consume_per_cycle = 1;
      return s;
    case NodeKind::kCompute: {
      const Rational rate = graph.rate(v);  // a/b reduced
      s.produce_per_cycle = rate.num();
      s.consume_per_cycle = rate.den();
      s.phases = std::max(rate.num(), rate.den());
      return s;
    }
    case NodeKind::kBuffer:
      throw std::invalid_argument(
          "csdf_from_canonical: buffer nodes are not representable in CSDF");
  }
  return s;
}

}  // namespace

CsdfGraph csdf_from_canonical(const TaskGraph& graph) {
  CsdfGraph csdf;
  std::vector<ActorShape> shapes(graph.node_count());
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    const ActorShape s = shape_of(graph, v);
    shapes[static_cast<std::size_t>(v)] = s;
    CsdfActor actor;
    actor.name = graph.name(v).empty() ? "n" + std::to_string(v) : graph.name(v);
    actor.phase_count = s.phases;
    // Firings of one iteration: cycles * phases, where a cycle moves
    // consume_per_cycle inputs / produce_per_cycle outputs.
    std::int64_t cycles = 0;
    if (s.consume_per_cycle > 0) {
      cycles = graph.input_volume(v) / s.consume_per_cycle;
    } else {
      cycles = graph.output_volume(v);  // source: one element per firing
    }
    actor.repetitions = cycles * s.phases;
    csdf.add_actor(actor);
  }
  for (EdgeId e = 0; static_cast<std::size_t>(e) < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    const ActorShape& ps = shapes[static_cast<std::size_t>(edge.src)];
    const ActorShape& cs = shapes[static_cast<std::size_t>(edge.dst)];
    CsdfChannel channel;
    channel.src = edge.src;
    channel.dst = edge.dst;
    channel.production = spread_back(ps.produce_per_cycle, ps.phases);
    channel.consumption = spread_front(cs.consume_per_cycle, cs.phases);
    csdf.add_channel(channel);
  }
  return csdf;
}

namespace {

/// Shared self-timed execution core: runs `iterations` graph iterations with
/// optional source gating (the sink->source back edge with one initial
/// token: sources may not enter iteration k+1 before iteration k completed).
/// Records the completion time of every iteration.
struct ExecutionTrace {
  std::vector<std::int64_t> iteration_end;
  std::int64_t firings = 0;
  bool timed_out = false;
  bool deadlocked = false;
};

ExecutionTrace run_self_timed(const CsdfGraph& graph, int iterations, bool gate_sources,
                              std::int64_t max_firings) {
  ExecutionTrace trace;
  const std::size_t n = graph.actor_count();

  std::vector<std::int64_t> tokens(graph.channel_count(), 0);
  for (std::size_t c = 0; c < graph.channel_count(); ++c) {
    tokens[c] = graph.channel(c).initial_tokens;
  }
  std::vector<std::int64_t> fired(n, 0);
  std::vector<std::vector<std::int32_t>> in_channels(n);
  std::vector<std::vector<std::int32_t>> out_channels(n);
  for (std::size_t c = 0; c < graph.channel_count(); ++c) {
    in_channels[static_cast<std::size_t>(graph.channel(c).dst)].push_back(
        static_cast<std::int32_t>(c));
    out_channels[static_cast<std::size_t>(graph.channel(c).src)].push_back(
        static_cast<std::int32_t>(c));
  }

  // Iteration bookkeeping: iteration k completes when every actor reached
  // k * repetitions firings.
  std::int64_t completed_iterations = 0;
  std::size_t actors_done_this_iteration = 0;
  std::int64_t remaining = 0;
  for (std::size_t a = 0; a < n; ++a) {
    remaining += graph.actor(static_cast<std::int32_t>(a)).repetitions;
  }
  remaining *= iterations;

  using Event = std::pair<std::int64_t, std::int32_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::vector<std::int64_t> queued_at(n, -1);
  const auto wake = [&](std::int32_t a, std::int64_t tick) {
    if (queued_at[static_cast<std::size_t>(a)] != tick) {
      queued_at[static_cast<std::size_t>(a)] = tick;
      queue.emplace(tick, a);
    }
  };
  for (std::size_t a = 0; a < n; ++a) wake(static_cast<std::int32_t>(a), 1);

  std::vector<std::int32_t> batch;
  std::vector<std::pair<std::int32_t, std::int64_t>> staged;
  while (!queue.empty() && remaining > 0) {
    const std::int64_t now = queue.top().first;
    batch.clear();
    staged.clear();
    bool iteration_boundary = false;
    for (std::size_t bi = 0; !queue.empty() && queue.top().first == now; ) {
      (void)bi;
      batch.push_back(queue.top().second);
      queue.pop();
    }
    for (const std::int32_t a : batch) {
      const auto idx = static_cast<std::size_t>(a);
      const CsdfActor& actor = graph.actor(a);
      const std::int64_t target = actor.repetitions * iterations;
      if (fired[idx] >= target) continue;
      // Back-edge gating: a source actor (no input channels) holds the
      // single inter-iteration token; it cannot run ahead of the sinks.
      if (gate_sources && in_channels[idx].empty() &&
          fired[idx] >= actor.repetitions * (completed_iterations + 1)) {
        continue;
      }
      const auto phase = static_cast<std::size_t>(fired[idx] % actor.phase_count);
      bool ready = true;
      for (const std::int32_t c : in_channels[idx]) {
        const CsdfChannel& ch = graph.channel(static_cast<std::size_t>(c));
        if (tokens[static_cast<std::size_t>(c)] < ch.consumption[phase]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      for (const std::int32_t c : in_channels[idx]) {
        tokens[static_cast<std::size_t>(c)] -=
            graph.channel(static_cast<std::size_t>(c)).consumption[phase];
      }
      for (const std::int32_t c : out_channels[idx]) {
        const CsdfChannel& ch = graph.channel(static_cast<std::size_t>(c));
        if (ch.production[phase] > 0) {
          staged.emplace_back(c, ch.production[phase]);
          wake(ch.dst, now + 1);
        }
      }
      ++fired[idx];
      --remaining;
      ++trace.firings;
      if (fired[idx] < target) wake(a, now + 1);
      if (fired[idx] == actor.repetitions * (completed_iterations + 1)) {
        if (++actors_done_this_iteration == n) iteration_boundary = true;
      }
      if (trace.firings >= max_firings) {
        trace.timed_out = true;
        return trace;
      }
    }
    for (const auto& [channel, amount] : staged) {
      tokens[static_cast<std::size_t>(channel)] += amount;
    }
    if (iteration_boundary) {
      trace.iteration_end.push_back(now);
      ++completed_iterations;
      actors_done_this_iteration = 0;
      // Count actors that already crossed into the next iteration (without
      // gating, fast actors may run ahead).
      for (std::size_t a = 0; a < n; ++a) {
        if (fired[a] >= graph.actor(static_cast<std::int32_t>(a)).repetitions *
                            (completed_iterations + 1)) {
          ++actors_done_this_iteration;
        }
      }
      if (gate_sources) {
        // Release the inter-iteration token: sources may fire again.
        for (std::size_t a = 0; a < n; ++a) {
          if (in_channels[a].empty()) wake(static_cast<std::int32_t>(a), now + 1);
        }
      }
    }
  }
  trace.deadlocked = remaining > 0 && !trace.timed_out;
  return trace;
}

}  // namespace

CsdfAnalysis analyze_self_timed(const CsdfGraph& graph, std::int64_t max_firings) {
  CsdfAnalysis analysis;
  const ExecutionTrace trace =
      run_self_timed(graph, /*iterations=*/1, /*gate_sources=*/false, max_firings);
  analysis.firings = trace.firings;
  analysis.timed_out = trace.timed_out;
  analysis.deadlocked = trace.deadlocked;
  analysis.makespan = trace.iteration_end.empty() ? 0 : trace.iteration_end.front();
  return analysis;
}

CsdfThroughput analyze_throughput(const CsdfGraph& graph, int max_iterations,
                                  std::int64_t max_firings) {
  CsdfThroughput result;
  const ExecutionTrace trace =
      run_self_timed(graph, max_iterations, /*gate_sources=*/true, max_firings);
  result.firings = trace.firings;
  result.timed_out = trace.timed_out;
  result.deadlocked = trace.deadlocked;
  result.iterations_executed = static_cast<int>(trace.iteration_end.size());
  if (!trace.iteration_end.empty()) {
    result.first_iteration_makespan = trace.iteration_end.front();
  }
  // Steady-state period: difference between consecutive iteration ends once
  // it stabilizes (state recurrence).
  for (std::size_t k = 1; k < trace.iteration_end.size(); ++k) {
    const std::int64_t period = trace.iteration_end[k] - trace.iteration_end[k - 1];
    if (result.period == period) {
      result.converged = true;
      break;
    }
    result.period = period;
  }
  if (result.period == 0) result.period = result.first_iteration_makespan;
  return result;
}

}  // namespace sts
