#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"

namespace sts {

/// A cyclo-static dataflow actor: fires through a cyclic sequence of phases;
/// every firing takes one time unit (the canonical model's element
/// operation). `repetitions` is the firing count for one graph iteration.
struct CsdfActor {
  std::string name;
  std::int64_t phase_count = 1;
  std::int64_t repetitions = 1;
};

/// A FIFO channel between CSDF actors. `production[p]` tokens are produced
/// at the end of the producer's phase p; `consumption[p]` tokens are needed
/// at the start of the consumer's phase p. Patterns repeat cyclically.
struct CsdfChannel {
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::vector<std::int64_t> production;
  std::vector<std::int64_t> consumption;
  std::int64_t initial_tokens = 0;
};

/// Cyclo-static dataflow graph (Engels et al. [10] in the paper), the model
/// of computation the paper compares canonical task graphs against
/// (Section 7.2).
class CsdfGraph {
 public:
  std::int32_t add_actor(CsdfActor actor);
  void add_channel(CsdfChannel channel);

  [[nodiscard]] std::size_t actor_count() const noexcept { return actors_.size(); }
  [[nodiscard]] std::size_t channel_count() const noexcept { return channels_.size(); }
  [[nodiscard]] const CsdfActor& actor(std::int32_t a) const {
    return actors_[static_cast<std::size_t>(a)];
  }
  [[nodiscard]] const CsdfChannel& channel(std::size_t c) const { return channels_[c]; }
  [[nodiscard]] const std::vector<CsdfChannel>& channels() const noexcept { return channels_; }

  /// Total firings of one graph iteration (sum over actors of repetitions).
  [[nodiscard]] std::int64_t total_firings() const;

 private:
  std::vector<CsdfActor> actors_;
  std::vector<CsdfChannel> channels_;
};

/// Converts a buffer-free canonical task graph into the equivalent CSDFG
/// (Section 7.2): a canonical node with rate a/b becomes an actor with
/// max(a,b) phases whose consumption spreads b unit-reads and whose
/// production spreads a unit-writes across the cycle; sources/sinks become
/// single-phase producers/consumers. Throws if the graph has buffer nodes
/// (not representable in CSDF, as the paper notes).
[[nodiscard]] CsdfGraph csdf_from_canonical(const TaskGraph& graph);

/// Result of self-timed execution analysis.
struct CsdfAnalysis {
  std::int64_t makespan = 0;       ///< completion time of one graph iteration
  std::int64_t firings = 0;        ///< firings executed
  bool timed_out = false;          ///< firing budget exhausted
  bool deadlocked = false;         ///< no actor could fire before completion
};

/// Self-timed (ASAP, auto-concurrency-free) execution of one iteration:
/// every actor fires as soon as its tokens are available, one firing per
/// time unit per actor. For a consistent, live CSDFG this attains the
/// optimal single-iteration makespan that SDF3/Kiter compute symbolically;
/// like those tools the analysis walks token-by-token and is orders of
/// magnitude more expensive than the canonical steady-state analysis.
[[nodiscard]] CsdfAnalysis analyze_self_timed(const CsdfGraph& graph,
                                              std::int64_t max_firings = 200'000'000);

/// Steady-state throughput analysis in the paper's setup (Section 7.2):
/// repeated self-timed execution with a token-carrying back edge from the
/// sinks to the sources, so only one graph iteration is in flight; the
/// analysis runs iterations until the per-iteration period stabilizes (the
/// state-recurrence criterion of SDF3's symbolic execution). The makespan of
/// the implied optimal schedule is the inverse throughput, i.e. the period.
struct CsdfThroughput {
  std::int64_t first_iteration_makespan = 0;
  std::int64_t period = 0;  ///< steady-state time per iteration (1/throughput)
  int iterations_executed = 0;
  bool converged = false;
  bool timed_out = false;
  bool deadlocked = false;
  std::int64_t firings = 0;
};

[[nodiscard]] CsdfThroughput analyze_throughput(const CsdfGraph& graph, int max_iterations = 6,
                                                std::int64_t max_firings = 400'000'000);

}  // namespace sts
