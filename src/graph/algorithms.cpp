#include "graph/algorithms.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace sts {

namespace {

/// Union-find with path halving; small utility local to this TU.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

std::vector<std::size_t> in_degrees(const TaskGraph& graph) {
  std::vector<std::size_t> deg(graph.node_count());
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    deg[static_cast<std::size_t>(v)] = graph.in_degree(v);
  }
  return deg;
}

}  // namespace

bool is_acyclic(const TaskGraph& graph) {
  auto deg = in_degrees(graph);
  std::vector<NodeId> stack;
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    if (deg[static_cast<std::size_t>(v)] == 0) stack.push_back(v);
  }
  std::size_t seen = 0;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    ++seen;
    for (const EdgeId e : graph.out_edges(u)) {
      const NodeId w = graph.edge(e).dst;
      if (--deg[static_cast<std::size_t>(w)] == 0) stack.push_back(w);
    }
  }
  return seen == graph.node_count();
}

std::vector<NodeId> topological_order(const TaskGraph& graph) {
  auto deg = in_degrees(graph);
  // Min-heap on node id keeps the order deterministic and stable across runs.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    if (deg[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }
  std::vector<NodeId> order;
  order.reserve(graph.node_count());
  while (!ready.empty()) {
    const NodeId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (const EdgeId e : graph.out_edges(u)) {
      const NodeId w = graph.edge(e).dst;
      if (--deg[static_cast<std::size_t>(w)] == 0) ready.push(w);
    }
  }
  if (order.size() != graph.node_count()) {
    throw std::invalid_argument("topological_order: graph contains a cycle");
  }
  return order;
}

TopoWaves topological_waves(const TaskGraph& graph, bool reverse) {
  const std::size_t n = graph.node_count();
  std::vector<std::size_t> deg(n);
  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    deg[static_cast<std::size_t>(v)] = reverse ? graph.out_degree(v) : graph.in_degree(v);
  }
  TopoWaves waves;
  waves.order.reserve(n);
  waves.offsets.push_back(0);
  std::vector<NodeId> frontier;
  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    if (deg[static_cast<std::size_t>(v)] == 0) frontier.push_back(v);
  }
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    // Frontiers are discovered from the previous wave in ascending order and
    // the initial frontier is built by an id sweep, but decrement order
    // within a wave is arbitrary, so sort for a deterministic layout.
    std::sort(frontier.begin(), frontier.end());
    waves.order.insert(waves.order.end(), frontier.begin(), frontier.end());
    waves.offsets.push_back(waves.order.size());
    next.clear();
    for (const NodeId u : frontier) {
      const auto edges = reverse ? graph.in_edges(u) : graph.out_edges(u);
      for (const EdgeId e : edges) {
        const NodeId w = reverse ? graph.edge(e).src : graph.edge(e).dst;
        if (--deg[static_cast<std::size_t>(w)] == 0) next.push_back(w);
      }
    }
    frontier.swap(next);
  }
  if (waves.order.size() != n) {
    throw std::invalid_argument("topological_waves: graph contains a cycle");
  }
  return waves;
}

std::vector<Rational> node_levels(const TaskGraph& graph) { return node_levels(graph, nullptr); }

std::vector<Rational> node_levels(const TaskGraph& graph, Workspace* ws) {
  std::vector<Rational> level(graph.node_count(), Rational(0));
  const TopoWaves waves = topological_waves(graph);
  const Parallel parallel = ws ? ws->parallel : Parallel();
  for (std::size_t w = 0; w + 1 < waves.offsets.size(); ++w) {
    const std::size_t begin = waves.offsets[w];
    const std::size_t end = waves.offsets[w + 1];
    // Every predecessor lives in an earlier wave, so nodes of one wave are
    // independent: each lane writes a disjoint set of level slots and the
    // result is bit-identical to the serial sweep.
    parallel.for_range(static_cast<std::int64_t>(end - begin), 128, [&](std::int64_t lo,
                                                                        std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        const NodeId v = waves.order[begin + static_cast<std::size_t>(i)];
        const auto ins = graph.in_edges(v);
        if (ins.empty()) {
          level[static_cast<std::size_t>(v)] = Rational(1);
          continue;
        }
        Rational best(0);
        for (const EdgeId e : ins) {
          best = std::max(best, level[static_cast<std::size_t>(graph.edge(e).src)]);
        }
        const Rational step = std::max(graph.rate(v), Rational(1));
        level[static_cast<std::size_t>(v)] = best + step;
      }
    });
  }
  return level;
}

Rational graph_level(const TaskGraph& graph) {
  Rational best(0);
  for (const Rational& l : node_levels(graph)) best = std::max(best, l);
  return best;
}

BufferSplitWccs buffer_split_wccs(const TaskGraph& graph) {
  const std::size_t n = graph.node_count();
  UnionFind uf(n);
  for (EdgeId e = 0; static_cast<std::size_t>(e) < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    if (graph.kind(edge.src) != NodeKind::kBuffer && graph.kind(edge.dst) != NodeKind::kBuffer) {
      uf.unite(static_cast<std::size_t>(edge.src), static_cast<std::size_t>(edge.dst));
    }
  }
  BufferSplitWccs result;
  result.node_wcc.assign(n, -1);
  std::vector<std::int32_t> compact(n, -1);
  std::int32_t next = 0;
  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    if (graph.kind(v) == NodeKind::kBuffer) continue;
    const std::size_t root = uf.find(static_cast<std::size_t>(v));
    if (compact[root] < 0) compact[root] = next++;
    result.node_wcc[static_cast<std::size_t>(v)] = compact[root];
  }
  result.count = next;
  return result;
}

bool buffer_supernode_dag_is_acyclic(const TaskGraph& graph) {
  const BufferSplitWccs wccs = buffer_split_wccs(graph);
  const auto n = static_cast<std::size_t>(wccs.count);
  std::vector<std::vector<std::int32_t>> adj(n);
  std::vector<std::size_t> deg(n, 0);
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    if (graph.kind(v) != NodeKind::kBuffer) continue;
    // One supernode edge per (writer WCC, reader WCC) pair of this buffer.
    for (const EdgeId in : graph.in_edges(v)) {
      const NodeId writer = graph.edge(in).src;
      if (graph.kind(writer) == NodeKind::kBuffer) return false;  // buffer chain
      const auto tail = wccs.node_wcc[static_cast<std::size_t>(writer)];
      for (const EdgeId out : graph.out_edges(v)) {
        const NodeId reader = graph.edge(out).dst;
        if (graph.kind(reader) == NodeKind::kBuffer) return false;
        const auto head = wccs.node_wcc[static_cast<std::size_t>(reader)];
        if (tail == head) return false;  // cycle within one WCC
        adj[static_cast<std::size_t>(tail)].push_back(head);
        ++deg[static_cast<std::size_t>(head)];
      }
    }
  }
  std::vector<std::int32_t> stack;
  for (std::size_t i = 0; i < n; ++i) {
    if (deg[i] == 0) stack.push_back(static_cast<std::int32_t>(i));
  }
  std::size_t seen = 0;
  while (!stack.empty()) {
    const auto u = stack.back();
    stack.pop_back();
    ++seen;
    for (const auto w : adj[static_cast<std::size_t>(u)]) {
      if (--deg[static_cast<std::size_t>(w)] == 0) stack.push_back(w);
    }
  }
  return seen == n;
}

std::vector<bool> edges_on_undirected_cycles(
    std::size_t n, std::span<const std::pair<std::int32_t, std::int32_t>> edges) {
  // Iterative Tarjan bridge finding on the undirected multigraph. Parallel
  // edges are handled naturally: the second copy of a parallel edge is a
  // back edge, so both copies end up on a cycle.
  struct Half {
    std::int32_t to;
    std::int32_t edge;
  };
  std::vector<std::vector<Half>> adj(n);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto [u, v] = edges[i];
    adj[static_cast<std::size_t>(u)].push_back({v, static_cast<std::int32_t>(i)});
    adj[static_cast<std::size_t>(v)].push_back({u, static_cast<std::int32_t>(i)});
  }

  std::vector<bool> on_cycle(edges.size(), false);
  std::vector<std::int32_t> disc(n, -1);
  std::vector<std::int32_t> low(n, 0);
  std::int32_t timer = 0;

  struct Frame {
    std::int32_t node;
    std::int32_t parent_edge;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack;
  for (std::size_t root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    stack.push_back({static_cast<std::int32_t>(root), -1});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto u = static_cast<std::size_t>(frame.node);
      if (frame.next_child < adj[u].size()) {
        const Half half = adj[u][frame.next_child++];
        if (half.edge == frame.parent_edge) continue;
        const auto w = static_cast<std::size_t>(half.to);
        if (disc[w] == -1) {
          disc[w] = low[w] = timer++;
          stack.push_back({half.to, half.edge});
        } else {
          // Back edge: lies on a cycle.
          low[u] = std::min(low[u], disc[w]);
          on_cycle[static_cast<std::size_t>(half.edge)] = true;
        }
      } else {
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent = stack.back();
          const auto p = static_cast<std::size_t>(parent.node);
          low[p] = std::min(low[p], low[u]);
          // Tree edge (p -> u) is a bridge iff low[u] > disc[p].
          if (low[u] <= disc[p]) {
            on_cycle[static_cast<std::size_t>(frame.parent_edge)] = true;
          }
        }
      }
    }
  }
  return on_cycle;
}

std::vector<NodeId> alive_sources(const TaskGraph& graph, const std::vector<bool>& alive) {
  std::vector<NodeId> sources;
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    if (!alive[static_cast<std::size_t>(v)]) continue;
    bool ready = true;
    for (const EdgeId e : graph.in_edges(v)) {
      if (alive[static_cast<std::size_t>(graph.edge(e).src)]) {
        ready = false;
        break;
      }
    }
    if (ready) sources.push_back(v);
  }
  return sources;
}

}  // namespace sts
