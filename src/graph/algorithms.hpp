#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/task_graph.hpp"
#include "support/rational.hpp"
#include "support/workspace.hpp"

namespace sts {

/// True iff the directed graph has no cycle.
[[nodiscard]] bool is_acyclic(const TaskGraph& graph);

/// Kahn topological order; throws std::invalid_argument if the graph is
/// cyclic. Ties are resolved by node id, making the order deterministic.
[[nodiscard]] std::vector<NodeId> topological_order(const TaskGraph& graph);

/// Kahn wave decomposition: `order` lists every node grouped into waves
/// (wave w = nodes whose longest dependency chain from a source — or from a
/// sink, when `reverse` — has exactly w hops), with wave w occupying
/// order[offsets[w] .. offsets[w+1]). Every dependency of a node lies in a
/// strictly earlier wave, so any per-node value defined as a function of the
/// node and its direct predecessors (levels, bottom levels, upward ranks)
/// can be computed for a whole wave in parallel with a result independent of
/// intra-wave order. Within each wave, nodes are sorted by id; concatenating
/// the waves therefore yields a valid (BFS-flavored) topological order,
/// though not the same order as topological_order (which is globally
/// min-id-first). Throws std::invalid_argument on a cyclic graph.
struct TopoWaves {
  std::vector<NodeId> order;          ///< all nodes, grouped wave by wave
  std::vector<std::size_t> offsets;   ///< wave w = order[offsets[w], offsets[w+1])

  [[nodiscard]] std::size_t wave_count() const noexcept {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
};

[[nodiscard]] TopoWaves topological_waves(const TaskGraph& graph, bool reverse = false);

/// Generalized node levels (paper Section 4.2.3):
///   L(v) = 1 if v has no parent, else max(R(v), 1) + max over parents L(u).
/// The level is the time for the last element leaving a source to reach and
/// be processed by v, accounting for upsampler fan-out; it is rational when
/// production rates are.
///
/// The Workspace overload computes levels wave-parallel (see TopoWaves: a
/// node's level depends only on strictly earlier waves, so intra-wave order
/// cannot matter and the result is bit-identical to the serial path at every
/// lane count). Pass nullptr for the serial single-thread path.
[[nodiscard]] std::vector<Rational> node_levels(const TaskGraph& graph);
[[nodiscard]] std::vector<Rational> node_levels(const TaskGraph& graph, Workspace* ws);

/// L(G) = max over nodes of L(v).
[[nodiscard]] Rational graph_level(const TaskGraph& graph);

/// Weakly connected components of the buffer-split transform (Section 4.1):
/// every buffer node is split so that streaming cannot cross it. Because a
/// buffer is backing memory, each of its incident edges is an *independent*
/// stream (two consumers re-reading the same buffer are not rate-coupled),
/// so the split is per edge: components are formed by direct non-buffer
/// edges only, and a buffer-incident edge belongs to the component of its
/// non-buffer endpoint.
struct BufferSplitWccs {
  std::vector<std::int32_t> node_wcc;  ///< per node; -1 for buffer nodes
  std::int32_t count = 0;

  /// WCC the edge belongs to (that of its non-buffer endpoint; buffer-to-
  /// buffer edges are rejected by validation).
  [[nodiscard]] std::int32_t edge_wcc(const TaskGraph& graph, EdgeId e) const {
    const Edge& edge = graph.edge(e);
    const NodeId anchor = graph.kind(edge.src) == NodeKind::kBuffer ? edge.dst : edge.src;
    return node_wcc[static_cast<std::size_t>(anchor)];
  }
};

[[nodiscard]] BufferSplitWccs buffer_split_wccs(const TaskGraph& graph);

/// Checks the buffer placement rule of Section 4.2.3: the supernode DAG H
/// (one supernode per buffer-split WCC, edges from each WCC writing into a
/// buffer to each WCC reading from it) must be acyclic; a cycle would demand
/// unbounded "implicit" buffering.
[[nodiscard]] bool buffer_supernode_dag_is_acyclic(const TaskGraph& graph);

/// Bridge detection on an undirected multigraph given as an edge list over
/// `n` vertices. Returns one flag per edge: true iff the edge lies on an
/// undirected cycle (i.e., is NOT a bridge). Used by the deadlock analysis
/// of Section 6: only streaming edges on undirected cycles can deadlock.
[[nodiscard]] std::vector<bool> edges_on_undirected_cycles(
    std::size_t n, std::span<const std::pair<std::int32_t, std::int32_t>> edges);

/// Current sources of a graph restricted to `alive` nodes: alive nodes all of
/// whose predecessors are dead (already scheduled). Helper for Algorithm 1/2.
[[nodiscard]] std::vector<NodeId> alive_sources(const TaskGraph& graph,
                                                const std::vector<bool>& alive);

}  // namespace sts
