#include "graph/dot_export.hpp"

#include <sstream>

namespace sts {

namespace {

std::string node_label(const TaskGraph& graph, NodeId v, const DotOptions& options) {
  std::ostringstream label;
  if (graph.name(v).empty()) {
    label << "n" << v;
  } else {
    label << graph.name(v);
  }
  switch (graph.kind(v)) {
    case NodeKind::kSource:
      label << "\\nsource O=" << graph.output_volume(v);
      break;
    case NodeKind::kSink:
      label << "\\nsink I=" << graph.input_volume(v);
      break;
    case NodeKind::kBuffer:
      label << "\\nB[" << graph.input_volume(v) << "]";
      break;
    case NodeKind::kCompute:
      if (options.show_rates) {
        const Rational r = graph.rate(v);
        const char tag = r == Rational(1) ? 'E' : (r < Rational(1) ? 'D' : 'U');
        label << "\\n" << tag << " R=" << r.to_string();
      }
      break;
  }
  return label.str();
}

const char* node_shape(NodeKind kind) {
  switch (kind) {
    case NodeKind::kBuffer: return "box";
    case NodeKind::kSource: return "doublecircle";
    case NodeKind::kSink: return "doublecircle";
    case NodeKind::kCompute: return "ellipse";
  }
  return "ellipse";
}

}  // namespace

void write_dot(std::ostream& os, const TaskGraph& graph, const DotOptions& options) {
  os << "digraph " << options.graph_name << " {\n";
  os << "  rankdir=TB;\n";
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    os << "  n" << v << " [shape=" << node_shape(graph.kind(v)) << ", label=\""
       << node_label(graph, v, options) << "\"";
    if (graph.kind(v) == NodeKind::kBuffer) os << ", style=filled, fillcolor=palegreen";
    os << "];\n";
  }
  for (EdgeId e = 0; static_cast<std::size_t>(e) < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    os << "  n" << edge.src << " -> n" << edge.dst;
    if (options.show_volumes) os << " [label=\"" << edge.volume << "\"]";
    os << ";\n";
  }
  os << "}\n";
}

std::string to_dot(const TaskGraph& graph, const DotOptions& options) {
  std::ostringstream os;
  write_dot(os, graph, options);
  return os.str();
}

}  // namespace sts
