#pragma once

#include <ostream>
#include <string>

#include "graph/task_graph.hpp"

namespace sts {

/// Options for Graphviz DOT rendering of a canonical task graph.
struct DotOptions {
  bool show_volumes = true;   ///< edge labels with data volumes
  bool show_rates = true;     ///< node labels with R(v) for compute nodes
  std::string graph_name = "canonical_task_graph";
};

/// Writes the task graph in Graphviz DOT format, using the paper's visual
/// conventions: squares for buffer nodes, double circles for sources/sinks,
/// plain circles for computational tasks (annotated E/D/U for element-wise,
/// downsampler, upsampler).
void write_dot(std::ostream& os, const TaskGraph& graph, const DotOptions& options = {});

/// Convenience: DOT as a string.
[[nodiscard]] std::string to_dot(const TaskGraph& graph, const DotOptions& options = {});

}  // namespace sts
