#include "graph/graph_edit.hpp"

#include <cstddef>
#include <stdexcept>
#include <string_view>

#include "support/text.hpp"

namespace sts {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("graph edit: " + what);
}

std::string_view op_name(GraphEdit::Op op) {
  switch (op) {
    case GraphEdit::Op::kAddNode: return "add_node";
    case GraphEdit::Op::kRemoveNode: return "remove_node";
    case GraphEdit::Op::kAddEdge: return "add_edge";
    case GraphEdit::Op::kRemoveEdge: return "remove_edge";
    case GraphEdit::Op::kSetOutput: return "set_output";
    case GraphEdit::Op::kSetEdgeVolume: return "set_edge_volume";
  }
  fail("unknown op enum");
}

std::string_view kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSource: return "source";
    case NodeKind::kSink: return "sink";
    case NodeKind::kCompute: return "compute";
    case NodeKind::kBuffer: return "buffer";
  }
  fail("unknown node kind enum");
}

NodeKind kind_from(const std::string& token) {
  if (token == "source") return NodeKind::kSource;
  if (token == "sink") return NodeKind::kSink;
  if (token == "compute") return NodeKind::kCompute;
  if (token == "buffer") return NodeKind::kBuffer;
  fail("unknown node kind '" + token + "'");
}

NodeId node_from(const JsonValue& json, std::string_view key) {
  const std::int64_t value = json.at(key).as_int();
  if (value < 0 || value > INT32_MAX) {
    fail("member '" + std::string(key) + "' out of NodeId range");
  }
  return static_cast<NodeId>(value);
}

}  // namespace

void append_graph_edit_json(std::string& out, const GraphEdit& edit) {
  out += "{\"op\": \"";
  out += op_name(edit.op);
  out += '"';
  switch (edit.op) {
    case GraphEdit::Op::kAddNode:
      out += ", \"kind\": \"";
      out += kind_name(edit.kind);
      out += '"';
      if (edit.volume != 0) {
        out += ", \"output\": ";
        append_number(out, edit.volume);
      }
      if (!edit.name.empty()) {
        out += ", \"name\": ";
        append_json_quoted(out, edit.name);
      }
      break;
    case GraphEdit::Op::kRemoveNode:
      out += ", \"node\": ";
      append_number(out, edit.node);
      break;
    case GraphEdit::Op::kAddEdge:
    case GraphEdit::Op::kSetEdgeVolume:
      out += ", \"src\": ";
      append_number(out, edit.src);
      out += ", \"dst\": ";
      append_number(out, edit.dst);
      out += ", \"volume\": ";
      append_number(out, edit.volume);
      break;
    case GraphEdit::Op::kRemoveEdge:
      out += ", \"src\": ";
      append_number(out, edit.src);
      out += ", \"dst\": ";
      append_number(out, edit.dst);
      break;
    case GraphEdit::Op::kSetOutput:
      out += ", \"node\": ";
      append_number(out, edit.node);
      out += ", \"volume\": ";
      append_number(out, edit.volume);
      break;
  }
  out += '}';
}

GraphEdit graph_edit_from_json(const JsonValue& json) {
  GraphEdit edit;
  const std::string& op = json.at("op").as_string();
  if (op == "add_node") {
    reject_unknown_members(json, {"op", "kind", "output", "name"}, "graph edit", "add_node");
    edit.op = GraphEdit::Op::kAddNode;
    edit.kind = kind_from(json.at("kind").as_string());
    if (const JsonValue* output = json.find("output")) {
      edit.volume = output->as_int();
      if (edit.volume <= 0) fail("add_node output must be positive");
    }
    if (const JsonValue* name = json.find("name")) edit.name = name->as_string();
  } else if (op == "remove_node") {
    reject_unknown_members(json, {"op", "node"}, "graph edit", "remove_node");
    edit.op = GraphEdit::Op::kRemoveNode;
    edit.node = node_from(json, "node");
  } else if (op == "add_edge") {
    reject_unknown_members(json, {"op", "src", "dst", "volume"}, "graph edit", "add_edge");
    edit.op = GraphEdit::Op::kAddEdge;
    edit.src = node_from(json, "src");
    edit.dst = node_from(json, "dst");
    edit.volume = json.at("volume").as_int();
    if (edit.volume <= 0) fail("add_edge volume must be positive");
  } else if (op == "remove_edge") {
    reject_unknown_members(json, {"op", "src", "dst"}, "graph edit", "remove_edge");
    edit.op = GraphEdit::Op::kRemoveEdge;
    edit.src = node_from(json, "src");
    edit.dst = node_from(json, "dst");
  } else if (op == "set_output") {
    reject_unknown_members(json, {"op", "node", "volume"}, "graph edit", "set_output");
    edit.op = GraphEdit::Op::kSetOutput;
    edit.node = node_from(json, "node");
    edit.volume = json.at("volume").as_int();
    if (edit.volume <= 0) fail("set_output volume must be positive");
  } else if (op == "set_edge_volume") {
    reject_unknown_members(json, {"op", "src", "dst", "volume"}, "graph edit",
                           "set_edge_volume");
    edit.op = GraphEdit::Op::kSetEdgeVolume;
    edit.src = node_from(json, "src");
    edit.dst = node_from(json, "dst");
    edit.volume = json.at("volume").as_int();
    if (edit.volume <= 0) fail("set_edge_volume volume must be positive");
  } else {
    fail("unknown op '" + op + "'");
  }
  return edit;
}

TaskGraph apply_graph_edits(const TaskGraph& base, std::span<const GraphEdit> edits) {
  struct NodeDraft {
    NodeKind kind;
    std::string name;
    std::int64_t declared_output;
    bool alive;
  };
  struct EdgeDraft {
    NodeId src;
    NodeId dst;
    std::int64_t volume;
    bool alive;
  };

  std::vector<NodeDraft> nodes;
  nodes.reserve(base.node_count() + edits.size());
  for (NodeId v = 0; static_cast<std::size_t>(v) < base.node_count(); ++v) {
    nodes.push_back({base.kind(v), base.name(v), base.declared_output(v), true});
  }
  std::vector<EdgeDraft> edges;
  edges.reserve(base.edge_count() + edits.size());
  for (const Edge& edge : base.edges()) {
    edges.push_back({edge.src, edge.dst, edge.volume, true});
  }

  const auto check_alive = [&nodes](NodeId v, const char* role) {
    if (v < 0 || static_cast<std::size_t>(v) >= nodes.size()) {
      fail(std::string(role) + " node " + std::to_string(v) + " out of range");
    }
    if (!nodes[static_cast<std::size_t>(v)].alive) {
      fail(std::string(role) + " node " + std::to_string(v) + " was removed");
    }
  };
  // First not-yet-removed edge with the given endpoints, in insertion order.
  const auto find_edge = [&edges](NodeId src, NodeId dst) -> EdgeDraft* {
    for (EdgeDraft& edge : edges) {
      if (edge.alive && edge.src == src && edge.dst == dst) return &edge;
    }
    return nullptr;
  };

  for (const GraphEdit& edit : edits) {
    switch (edit.op) {
      case GraphEdit::Op::kAddNode:
        if (edit.kind == NodeKind::kSource && edit.volume <= 0) {
          fail("add_node source requires a positive output");
        }
        nodes.push_back({edit.kind, edit.name, edit.volume, true});
        break;
      case GraphEdit::Op::kRemoveNode:
        check_alive(edit.node, "remove_node");
        nodes[static_cast<std::size_t>(edit.node)].alive = false;
        for (EdgeDraft& edge : edges) {
          if (edge.src == edit.node || edge.dst == edit.node) edge.alive = false;
        }
        break;
      case GraphEdit::Op::kAddEdge:
        check_alive(edit.src, "add_edge src");
        check_alive(edit.dst, "add_edge dst");
        edges.push_back({edit.src, edit.dst, edit.volume, true});
        break;
      case GraphEdit::Op::kRemoveEdge: {
        check_alive(edit.src, "remove_edge src");
        check_alive(edit.dst, "remove_edge dst");
        EdgeDraft* edge = find_edge(edit.src, edit.dst);
        if (!edge) {
          fail("remove_edge: no edge " + std::to_string(edit.src) + " -> " +
               std::to_string(edit.dst));
        }
        edge->alive = false;
        break;
      }
      case GraphEdit::Op::kSetOutput:
        check_alive(edit.node, "set_output");
        nodes[static_cast<std::size_t>(edit.node)].declared_output = edit.volume;
        break;
      case GraphEdit::Op::kSetEdgeVolume: {
        check_alive(edit.src, "set_edge_volume src");
        check_alive(edit.dst, "set_edge_volume dst");
        EdgeDraft* edge = find_edge(edit.src, edit.dst);
        if (!edge) {
          fail("set_edge_volume: no edge " + std::to_string(edit.src) + " -> " +
               std::to_string(edit.dst));
        }
        edge->volume = edit.volume;
        break;
      }
    }
  }

  // Dense renumbering in draft order; dead nodes drop out, everything else
  // keeps its relative position so an undo list round-trips exactly.
  std::vector<NodeId> remap(nodes.size(), -1);
  TaskGraph out;
  for (std::size_t v = 0; v < nodes.size(); ++v) {
    const NodeDraft& draft = nodes[v];
    if (!draft.alive) continue;
    NodeId mapped = -1;
    switch (draft.kind) {
      case NodeKind::kSource:
        if (draft.declared_output <= 0) {
          fail("node " + std::to_string(v) + ": source lost its declared output");
        }
        mapped = out.add_source(draft.declared_output, draft.name);
        break;
      case NodeKind::kCompute:
        mapped = out.add_compute(draft.name);
        if (draft.declared_output > 0) out.declare_output(mapped, draft.declared_output);
        break;
      case NodeKind::kBuffer:
        mapped = out.add_buffer(draft.name);
        if (draft.declared_output > 0) out.declare_output(mapped, draft.declared_output);
        break;
      case NodeKind::kSink:
        mapped = out.add_sink(draft.name);
        break;
    }
    remap[v] = mapped;
  }
  for (const EdgeDraft& edge : edges) {
    if (!edge.alive) continue;
    out.add_edge(remap[static_cast<std::size_t>(edge.src)],
                 remap[static_cast<std::size_t>(edge.dst)], edge.volume);
  }
  return out;
}

}  // namespace sts
