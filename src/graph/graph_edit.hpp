#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "support/json.hpp"

namespace sts {

/// One mutation of a canonical task graph, expressed against the node ids of
/// a base graph. Edits in a list apply in order; `kAddNode` extends the id
/// space (the first added node gets id == base node_count, the next one
/// base+1, ...), so later edits can wire up nodes added earlier. Node
/// removal drops every incident edge; surviving nodes are renumbered densely
/// in ascending order only once, when the whole list is materialized.
///
/// JSON shape (ScheduleRequest `edits` array elements):
///
///     {"op": "add_node", "kind": "compute", "output": 16, "name": "x"}
///     {"op": "remove_node", "node": 5}
///     {"op": "add_edge", "src": 1, "dst": 2, "volume": 16}
///     {"op": "remove_edge", "src": 1, "dst": 2}
///     {"op": "set_output", "node": 3, "volume": 32}
///     {"op": "set_edge_volume", "src": 1, "dst": 2, "volume": 8}
///
/// `remove_edge` / `set_edge_volume` address the first not-yet-removed edge
/// with the given endpoints, in insertion order (relevant only to
/// multigraphs). `set_output` (re)declares the output volume record — the
/// retune knob for sources, exits, and buffers; it must stay consistent with
/// out-edge volumes, which materialization's validate() enforces later.
struct GraphEdit {
  enum class Op : std::uint8_t {
    kAddNode,
    kRemoveNode,
    kAddEdge,
    kRemoveEdge,
    kSetOutput,
    kSetEdgeVolume,
  };

  Op op = Op::kAddNode;
  NodeKind kind = NodeKind::kCompute;  ///< kAddNode only
  NodeId node = -1;                    ///< kRemoveNode / kSetOutput
  NodeId src = -1;                     ///< edge ops
  NodeId dst = -1;                     ///< edge ops
  std::int64_t volume = 0;             ///< add_edge/set_edge_volume; declared
                                       ///< output for add_node/set_output
  std::string name;                    ///< kAddNode only

  [[nodiscard]] bool operator==(const GraphEdit&) const = default;
};

/// Appends the JSON object for one edit (shape above) to `out`.
void append_graph_edit_json(std::string& out, const GraphEdit& edit);

/// Parses one edit object. Throws std::invalid_argument on unknown ops,
/// unknown members, or members that do not belong to the op (strict, same
/// policy as the request envelope).
[[nodiscard]] GraphEdit graph_edit_from_json(const JsonValue& json);

/// Applies the edit list to `base` and returns the materialized graph:
/// surviving base nodes first (ascending id), then surviving added nodes, all
/// renumbered densely; surviving base edges keep their relative insertion
/// order and added edges append in apply order — so an edit list that undoes
/// itself reproduces the base graph's canonical_fingerprint exactly. Throws
/// std::invalid_argument when an edit references an out-of-range or removed
/// node, removes a nonexistent edge, or gives a non-positive volume where one
/// is required. The result is NOT validated here; scheduling validates it.
[[nodiscard]] TaskGraph apply_graph_edits(const TaskGraph& base,
                                          std::span<const GraphEdit> edits);

}  // namespace sts
