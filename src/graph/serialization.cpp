#include "graph/serialization.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "support/text.hpp"

namespace sts {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("load_task_graph: line " + std::to_string(line) + ": " + what);
}

NodeKind kind_from(const std::string& token, std::size_t line) {
  if (token == "source") return NodeKind::kSource;
  if (token == "sink") return NodeKind::kSink;
  if (token == "compute") return NodeKind::kCompute;
  if (token == "buffer") return NodeKind::kBuffer;
  fail(line, "unknown node kind '" + token + "'");
}

}  // namespace

TaskGraph load_task_graph(std::istream& input) {
  TaskGraph graph;
  // Declared outputs may precede edges; sources need theirs at creation, so
  // records are processed in two passes over buffered lines.
  struct PendingNode {
    NodeKind kind;
    std::string name;
  };
  struct PendingEdge {
    NodeId src;
    NodeId dst;
    std::int64_t volume;
  };
  std::vector<PendingNode> nodes;
  std::vector<std::pair<NodeId, std::int64_t>> outputs;
  std::vector<PendingEdge> edges;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(input, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string record;
    if (!(fields >> record)) continue;  // blank / comment-only line
    if (record == "node") {
      std::int64_t id = -1;
      std::string kind;
      if (!(fields >> id >> kind)) fail(line_no, "expected 'node <id> <kind> [name]'");
      if (id != static_cast<std::int64_t>(nodes.size())) {
        fail(line_no, "node ids must be dense and ascending (got " + std::to_string(id) +
                          ", expected " + std::to_string(nodes.size()) + ")");
      }
      std::string name;
      fields >> name;  // optional
      nodes.push_back(PendingNode{kind_from(kind, line_no), name});
    } else if (record == "output") {
      std::int64_t id = -1;
      std::int64_t volume = 0;
      if (!(fields >> id >> volume)) fail(line_no, "expected 'output <id> <volume>'");
      outputs.emplace_back(static_cast<NodeId>(id), volume);
    } else if (record == "edge") {
      PendingEdge edge{};
      if (!(fields >> edge.src >> edge.dst >> edge.volume)) {
        fail(line_no, "expected 'edge <src> <dst> <volume>'");
      }
      edges.push_back(edge);
    } else {
      fail(line_no, "unknown record '" + record + "'");
    }
  }

  std::vector<std::int64_t> declared(nodes.size(), 0);
  for (const auto& [id, volume] : outputs) {
    if (id < 0 || static_cast<std::size_t>(id) >= nodes.size()) {
      throw std::invalid_argument("load_task_graph: output record for unknown node " +
                                  std::to_string(id));
    }
    declared[static_cast<std::size_t>(id)] = volume;
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    switch (nodes[i].kind) {
      case NodeKind::kSource:
        if (declared[i] <= 0) {
          throw std::invalid_argument("load_task_graph: source node " + std::to_string(i) +
                                      " needs an 'output' record");
        }
        graph.add_source(declared[i], nodes[i].name);
        break;
      case NodeKind::kSink:
        graph.add_sink(nodes[i].name);
        break;
      case NodeKind::kCompute: {
        const NodeId v = graph.add_compute(nodes[i].name);
        if (declared[i] > 0) graph.declare_output(v, declared[i]);
        break;
      }
      case NodeKind::kBuffer: {
        const NodeId v = graph.add_buffer(nodes[i].name);
        if (declared[i] > 0) graph.declare_output(v, declared[i]);
        break;
      }
    }
  }
  for (const auto& edge : edges) {
    graph.add_edge(edge.src, edge.dst, edge.volume);
  }
  return graph;
}

TaskGraph load_task_graph_from_string(const std::string& text) {
  std::istringstream input(text);
  return load_task_graph(input);
}

void save_task_graph(std::ostream& output, const TaskGraph& graph) {
  output << save_task_graph_to_string(graph);
}

std::string save_task_graph_to_string(const TaskGraph& graph) {
  // Built with plain string appends + to_chars rather than iostreams: this
  // serialization doubles as the ScheduleCache key, so it sits on the
  // cache-hit path and must stay much cheaper than scheduling itself.
  std::string out;
  out.reserve(64 + 28 * graph.node_count() + 32 * graph.edge_count());
  out += "# canonical task graph: ";
  append_number(out, static_cast<std::int64_t>(graph.node_count()));
  out += " nodes, ";
  append_number(out, static_cast<std::int64_t>(graph.edge_count()));
  out += " edges\n";
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    out += "node ";
    append_number(out, v);
    out += ' ';
    out += to_string(graph.kind(v));
    if (!graph.name(v).empty()) {
      out += ' ';
      out += graph.name(v);
    }
    out += '\n';
    const bool is_exit = graph.out_degree(v) == 0 && graph.kind(v) != NodeKind::kSink;
    if (graph.kind(v) == NodeKind::kSource || is_exit ||
        (graph.kind(v) == NodeKind::kBuffer && graph.output_volume(v) > 0)) {
      if (graph.output_volume(v) > 0) {
        out += "output ";
        append_number(out, v);
        out += ' ';
        append_number(out, graph.output_volume(v));
        out += '\n';
      }
    }
  }
  for (EdgeId e = 0; static_cast<std::size_t>(e) < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    out += "edge ";
    append_number(out, edge.src);
    out += ' ';
    append_number(out, edge.dst);
    out += ' ';
    append_number(out, edge.volume);
    out += '\n';
  }
  return out;
}

void append_task_graph_json(std::string& out, const TaskGraph& graph) {
  out += "{\"nodes\": [";
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    if (v > 0) out += ", ";
    out += "{\"kind\": \"";
    out += to_string(graph.kind(v));
    out += '"';
    // Output records mirror the text serializer exactly: sources, exit
    // computes, and buffers with a declared volume. Derived volumes are not
    // written, so parse(append(g)) fingerprints identically to g.
    const bool is_exit = graph.out_degree(v) == 0 && graph.kind(v) != NodeKind::kSink;
    if ((graph.kind(v) == NodeKind::kSource || is_exit ||
         graph.kind(v) == NodeKind::kBuffer) &&
        graph.output_volume(v) > 0) {
      out += ", \"output\": ";
      append_number(out, graph.output_volume(v));
    }
    if (!graph.name(v).empty()) {
      out += ", \"name\": ";
      append_json_quoted(out, graph.name(v));
    }
    out += '}';
  }
  out += "], \"edges\": [";
  for (EdgeId e = 0; static_cast<std::size_t>(e) < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    if (e > 0) out += ", ";
    out += '[';
    append_number(out, edge.src);
    out += ", ";
    append_number(out, edge.dst);
    out += ", ";
    append_number(out, edge.volume);
    out += ']';
  }
  out += "]}";
}

TaskGraph task_graph_from_json(const JsonValue& json) {
  const auto reject_unknown = [](const JsonValue& object,
                                 std::initializer_list<std::string_view> allowed,
                                 const char* what) {
    reject_unknown_members(object, allowed, "task_graph_from_json", what);
  };
  reject_unknown(json, {"nodes", "edges"}, "graph");

  TaskGraph graph;
  for (const JsonValue& node : json.at("nodes").items()) {
    reject_unknown(node, {"kind", "output", "name"}, "node");
    const std::string& kind = node.at("kind").as_string();
    std::string name;
    if (const JsonValue* n = node.find("name")) name = n->as_string();
    std::int64_t output = 0;
    if (const JsonValue* o = node.find("output")) output = o->as_int();
    if (kind == "source") {
      if (output <= 0) {
        throw std::invalid_argument("task_graph_from_json: source node " +
                                    std::to_string(graph.node_count()) +
                                    " needs a positive 'output'");
      }
      graph.add_source(output, std::move(name));
    } else if (kind == "sink") {
      if (output > 0) {
        throw std::invalid_argument("task_graph_from_json: sink node cannot declare 'output'");
      }
      graph.add_sink(std::move(name));
    } else if (kind == "compute") {
      const NodeId v = graph.add_compute(std::move(name));
      if (output > 0) graph.declare_output(v, output);
    } else if (kind == "buffer") {
      const NodeId v = graph.add_buffer(std::move(name));
      if (output > 0) graph.declare_output(v, output);
    } else {
      throw std::invalid_argument("task_graph_from_json: unknown node kind '" + kind + "'");
    }
  }
  for (const JsonValue& edge : json.at("edges").items()) {
    const std::vector<JsonValue>& fields = edge.items();
    if (fields.size() != 3) {
      throw std::invalid_argument("task_graph_from_json: edge must be [src, dst, volume]");
    }
    const std::int64_t src = fields[0].as_int();
    const std::int64_t dst = fields[1].as_int();
    const auto in_range = [&graph](std::int64_t v) {
      return v >= 0 && static_cast<std::size_t>(v) < graph.node_count();
    };
    if (!in_range(src) || !in_range(dst)) {
      throw std::invalid_argument("task_graph_from_json: edge endpoint out of range");
    }
    graph.add_edge(static_cast<NodeId>(src), static_cast<NodeId>(dst), fields[2].as_int());
  }
  return graph;
}

std::string canonical_fingerprint(const TaskGraph& graph) {
  const std::size_t nodes = graph.node_count();
  const std::size_t edges = graph.edge_count();
  std::string out;
  out.resize(16 + nodes * 9 + edges * 24);
  char* p = out.data();
  const auto put64 = [&p](std::int64_t value) {
    std::memcpy(p, &value, 8);
    p += 8;
  };
  put64(static_cast<std::int64_t>(nodes));
  put64(static_cast<std::int64_t>(edges));
  for (NodeId v = 0; static_cast<std::size_t>(v) < nodes; ++v) {
    *p++ = static_cast<char>(graph.kind(v));
    put64(graph.output_volume(v));
  }
  for (EdgeId e = 0; static_cast<std::size_t>(e) < edges; ++e) {
    const Edge& edge = graph.edge(e);
    put64(edge.src);
    put64(edge.dst);
    put64(edge.volume);
  }
  return out;
}

}  // namespace sts
