#include "graph/serialization.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/algorithms.hpp"
#include "support/text.hpp"

namespace sts {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("load_task_graph: line " + std::to_string(line) + ": " + what);
}

NodeKind kind_from(const std::string& token, std::size_t line) {
  if (token == "source") return NodeKind::kSource;
  if (token == "sink") return NodeKind::kSink;
  if (token == "compute") return NodeKind::kCompute;
  if (token == "buffer") return NodeKind::kBuffer;
  fail(line, "unknown node kind '" + token + "'");
}

}  // namespace

TaskGraph load_task_graph(std::istream& input) {
  TaskGraph graph;
  // Declared outputs may precede edges; sources need theirs at creation, so
  // records are processed in two passes over buffered lines.
  struct PendingNode {
    NodeKind kind;
    std::string name;
  };
  struct PendingEdge {
    NodeId src;
    NodeId dst;
    std::int64_t volume;
  };
  std::vector<PendingNode> nodes;
  std::vector<std::pair<NodeId, std::int64_t>> outputs;
  std::vector<PendingEdge> edges;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(input, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string record;
    if (!(fields >> record)) continue;  // blank / comment-only line
    if (record == "node") {
      std::int64_t id = -1;
      std::string kind;
      if (!(fields >> id >> kind)) fail(line_no, "expected 'node <id> <kind> [name]'");
      if (id != static_cast<std::int64_t>(nodes.size())) {
        fail(line_no, "node ids must be dense and ascending (got " + std::to_string(id) +
                          ", expected " + std::to_string(nodes.size()) + ")");
      }
      std::string name;
      fields >> name;  // optional
      nodes.push_back(PendingNode{kind_from(kind, line_no), name});
    } else if (record == "output") {
      std::int64_t id = -1;
      std::int64_t volume = 0;
      if (!(fields >> id >> volume)) fail(line_no, "expected 'output <id> <volume>'");
      outputs.emplace_back(static_cast<NodeId>(id), volume);
    } else if (record == "edge") {
      PendingEdge edge{};
      if (!(fields >> edge.src >> edge.dst >> edge.volume)) {
        fail(line_no, "expected 'edge <src> <dst> <volume>'");
      }
      edges.push_back(edge);
    } else {
      fail(line_no, "unknown record '" + record + "'");
    }
  }

  std::vector<std::int64_t> declared(nodes.size(), 0);
  for (const auto& [id, volume] : outputs) {
    if (id < 0 || static_cast<std::size_t>(id) >= nodes.size()) {
      throw std::invalid_argument("load_task_graph: output record for unknown node " +
                                  std::to_string(id));
    }
    declared[static_cast<std::size_t>(id)] = volume;
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    switch (nodes[i].kind) {
      case NodeKind::kSource:
        if (declared[i] <= 0) {
          throw std::invalid_argument("load_task_graph: source node " + std::to_string(i) +
                                      " needs an 'output' record");
        }
        graph.add_source(declared[i], nodes[i].name);
        break;
      case NodeKind::kSink:
        graph.add_sink(nodes[i].name);
        break;
      case NodeKind::kCompute: {
        const NodeId v = graph.add_compute(nodes[i].name);
        if (declared[i] > 0) graph.declare_output(v, declared[i]);
        break;
      }
      case NodeKind::kBuffer: {
        const NodeId v = graph.add_buffer(nodes[i].name);
        if (declared[i] > 0) graph.declare_output(v, declared[i]);
        break;
      }
    }
  }
  for (const auto& edge : edges) {
    graph.add_edge(edge.src, edge.dst, edge.volume);
  }
  return graph;
}

TaskGraph load_task_graph_from_string(const std::string& text) {
  std::istringstream input(text);
  return load_task_graph(input);
}

void save_task_graph(std::ostream& output, const TaskGraph& graph) {
  output << save_task_graph_to_string(graph);
}

std::string save_task_graph_to_string(const TaskGraph& graph) {
  // Built with plain string appends + to_chars rather than iostreams: this
  // serialization doubles as the ScheduleCache key, so it sits on the
  // cache-hit path and must stay much cheaper than scheduling itself.
  std::string out;
  out.reserve(64 + 28 * graph.node_count() + 32 * graph.edge_count());
  out += "# canonical task graph: ";
  append_number(out, static_cast<std::int64_t>(graph.node_count()));
  out += " nodes, ";
  append_number(out, static_cast<std::int64_t>(graph.edge_count()));
  out += " edges\n";
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    out += "node ";
    append_number(out, v);
    out += ' ';
    out += to_string(graph.kind(v));
    if (!graph.name(v).empty()) {
      out += ' ';
      out += graph.name(v);
    }
    out += '\n';
    const bool is_exit = graph.out_degree(v) == 0 && graph.kind(v) != NodeKind::kSink;
    if (graph.kind(v) == NodeKind::kSource || is_exit ||
        (graph.kind(v) == NodeKind::kBuffer && graph.output_volume(v) > 0)) {
      if (graph.output_volume(v) > 0) {
        out += "output ";
        append_number(out, v);
        out += ' ';
        append_number(out, graph.output_volume(v));
        out += '\n';
      }
    }
  }
  for (EdgeId e = 0; static_cast<std::size_t>(e) < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    out += "edge ";
    append_number(out, edge.src);
    out += ' ';
    append_number(out, edge.dst);
    out += ' ';
    append_number(out, edge.volume);
    out += '\n';
  }
  return out;
}

void append_task_graph_json(std::string& out, const TaskGraph& graph) {
  out += "{\"nodes\": [";
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    if (v > 0) out += ", ";
    out += "{\"kind\": \"";
    out += to_string(graph.kind(v));
    out += '"';
    // Output records mirror the text serializer exactly: sources, exit
    // computes, and buffers with a declared volume. Derived volumes are not
    // written, so parse(append(g)) fingerprints identically to g.
    const bool is_exit = graph.out_degree(v) == 0 && graph.kind(v) != NodeKind::kSink;
    if ((graph.kind(v) == NodeKind::kSource || is_exit ||
         graph.kind(v) == NodeKind::kBuffer) &&
        graph.output_volume(v) > 0) {
      out += ", \"output\": ";
      append_number(out, graph.output_volume(v));
    }
    if (!graph.name(v).empty()) {
      out += ", \"name\": ";
      append_json_quoted(out, graph.name(v));
    }
    out += '}';
  }
  out += "], \"edges\": [";
  for (EdgeId e = 0; static_cast<std::size_t>(e) < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    if (e > 0) out += ", ";
    out += '[';
    append_number(out, edge.src);
    out += ", ";
    append_number(out, edge.dst);
    out += ", ";
    append_number(out, edge.volume);
    out += ']';
  }
  out += "]}";
}

TaskGraph task_graph_from_json(const JsonValue& json) {
  const auto reject_unknown = [](const JsonValue& object,
                                 std::initializer_list<std::string_view> allowed,
                                 const char* what) {
    reject_unknown_members(object, allowed, "task_graph_from_json", what);
  };
  reject_unknown(json, {"nodes", "edges"}, "graph");

  TaskGraph graph;
  for (const JsonValue& node : json.at("nodes").items()) {
    reject_unknown(node, {"kind", "output", "name"}, "node");
    const std::string& kind = node.at("kind").as_string();
    std::string name;
    if (const JsonValue* n = node.find("name")) name = n->as_string();
    std::int64_t output = 0;
    if (const JsonValue* o = node.find("output")) output = o->as_int();
    if (kind == "source") {
      if (output <= 0) {
        throw std::invalid_argument("task_graph_from_json: source node " +
                                    std::to_string(graph.node_count()) +
                                    " needs a positive 'output'");
      }
      graph.add_source(output, std::move(name));
    } else if (kind == "sink") {
      if (output > 0) {
        throw std::invalid_argument("task_graph_from_json: sink node cannot declare 'output'");
      }
      graph.add_sink(std::move(name));
    } else if (kind == "compute") {
      const NodeId v = graph.add_compute(std::move(name));
      if (output > 0) graph.declare_output(v, output);
    } else if (kind == "buffer") {
      const NodeId v = graph.add_buffer(std::move(name));
      if (output > 0) graph.declare_output(v, output);
    } else {
      throw std::invalid_argument("task_graph_from_json: unknown node kind '" + kind + "'");
    }
  }
  for (const JsonValue& edge : json.at("edges").items()) {
    const std::vector<JsonValue>& fields = edge.items();
    if (fields.size() != 3) {
      throw std::invalid_argument("task_graph_from_json: edge must be [src, dst, volume]");
    }
    const std::int64_t src = fields[0].as_int();
    const std::int64_t dst = fields[1].as_int();
    const auto in_range = [&graph](std::int64_t v) {
      return v >= 0 && static_cast<std::size_t>(v) < graph.node_count();
    };
    if (!in_range(src) || !in_range(dst)) {
      throw std::invalid_argument("task_graph_from_json: edge endpoint out of range");
    }
    graph.add_edge(static_cast<NodeId>(src), static_cast<NodeId>(dst), fields[2].as_int());
  }
  return graph;
}

std::string canonical_fingerprint(const TaskGraph& graph) {
  const std::size_t nodes = graph.node_count();
  const std::size_t edges = graph.edge_count();
  std::string out;
  out.resize(16 + nodes * 9 + edges * 24);
  char* p = out.data();
  const auto put64 = [&p](std::int64_t value) {
    std::memcpy(p, &value, 8);
    p += 8;
  };
  put64(static_cast<std::int64_t>(nodes));
  put64(static_cast<std::int64_t>(edges));
  for (NodeId v = 0; static_cast<std::size_t>(v) < nodes; ++v) {
    *p++ = static_cast<char>(graph.kind(v));
    put64(graph.output_volume(v));
  }
  for (EdgeId e = 0; static_cast<std::size_t>(e) < edges; ++e) {
    const Edge& edge = graph.edge(e);
    put64(edge.src);
    put64(edge.dst);
    put64(edge.volume);
  }
  return out;
}

namespace {

// splitmix64 finalizer: every input bit flips every output bit with ~1/2
// probability, which is what lets sorted-signature folding stand in for a
// multiset hash.
constexpr std::uint64_t avalanche(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t w) noexcept {
  return avalanche(h ^ (w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

// Distinct hash values among the partition's nodes; the refinement loop stops
// when this stops growing (a fixed point of the refinement operator).
std::size_t distinct_classes(std::span<const NodeId> nodes,
                             const std::vector<std::uint64_t>& hash,
                             std::vector<std::uint64_t>& scratch) {
  scratch.clear();
  for (const NodeId v : nodes) scratch.push_back(hash[static_cast<std::size_t>(v)]);
  std::sort(scratch.begin(), scratch.end());
  return static_cast<std::size_t>(
      std::unique(scratch.begin(), scratch.end()) - scratch.begin());
}

// 8-bytes-at-a-time content digest used to bucket memo entries; probes
// compare the full raw bytes, so this only has to spread, not to be
// collision-free.
std::uint64_t digest_bytes(const std::string& bytes) {
  std::uint64_t h = avalanche(0x706d656dULL);  // arbitrary fixed seed
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, bytes.data() + i, 8);
    h = hash_combine(h, chunk);
  }
  if (i < bytes.size()) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, bytes.data() + i, bytes.size() - i);
    h = hash_combine(h, tail);
  }
  return hash_combine(h, bytes.size());
}

// Union-find weakly connected components + min-original-id labeling +
// ascending-id grouping: the prefix shared by both canonical_partition_index
// overloads. Leaves `order` grouped by partition with ascending original ids
// inside each group (refinement re-sorts the groups into canonical order).
void build_partition_groups(const TaskGraph& graph, CanonicalPartitionIndex& index) {
  const std::size_t n = graph.node_count();
  index.component.assign(n, -1);
  index.node_hash.assign(n, 0);
  index.rank.assign(n, 0);
  index.order.resize(n);

  // Weakly connected components over ALL edges (buffer edges included):
  // union-find with path halving.
  std::vector<NodeId> parent(n);
  for (std::size_t v = 0; v < n; ++v) parent[v] = static_cast<NodeId>(v);
  const auto find = [&parent](NodeId v) {
    while (parent[static_cast<std::size_t>(v)] != v) {
      parent[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
      v = parent[static_cast<std::size_t>(v)];
    }
    return v;
  };
  for (const Edge& edge : graph.edges()) {
    const NodeId a = find(edge.src);
    const NodeId b = find(edge.dst);
    if (a != b) parent[static_cast<std::size_t>(b)] = a;
  }

  // Label partitions in order of their minimal original node id: the ascending
  // scan reaches each root's first member before any other, so labels are
  // assigned in that order.
  std::int32_t count = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const auto r = static_cast<std::size_t>(find(static_cast<NodeId>(v)));
    if (index.component[r] < 0) index.component[r] = count++;
    index.component[v] = index.component[r];
  }
  index.count = count;

  // Group nodes by partition (counting sort keeps ascending id order within
  // each group, the order the refinement loop iterates).
  index.offsets.assign(static_cast<std::size_t>(count) + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    ++index.offsets[static_cast<std::size_t>(index.component[v]) + 1];
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(count); ++c) {
    index.offsets[c + 1] += index.offsets[c];
  }
  std::vector<std::size_t> cursor(index.offsets.begin(), index.offsets.end() - 1);
  for (std::size_t v = 0; v < n; ++v) {
    index.order[cursor[static_cast<std::size_t>(index.component[v])]++] =
        static_cast<NodeId>(v);
  }
}

// Seed hash from per-node intrinsic structure. The generalized level
// (Eq. level recurrence) is included because it separates long chains
// immediately — pure neighbor-multiset refinement would need O(diameter)
// rounds for those.
std::uint64_t seed_hash(const TaskGraph& graph, NodeId v, const Rational& level) {
  std::uint64_t h = avalanche(0x73747347ULL);  // arbitrary fixed seed
  h = hash_combine(h, static_cast<std::uint64_t>(graph.kind(v)));
  h = hash_combine(h, static_cast<std::uint64_t>(graph.output_volume(v)));
  h = hash_combine(h, static_cast<std::uint64_t>(graph.input_volume(v)));
  h = hash_combine(h, static_cast<std::uint64_t>(graph.in_degree(v)));
  h = hash_combine(h, static_cast<std::uint64_t>(graph.out_degree(v)));
  h = hash_combine(h, static_cast<std::uint64_t>(level.num()));
  h = hash_combine(h, static_cast<std::uint64_t>(level.den()));
  return h;
}

struct RefineScratch {
  std::vector<std::uint64_t> next;  ///< node-indexed, sized once per graph
  std::vector<std::uint64_t> sig;
  std::vector<std::uint64_t> scratch;
};

// Weisfeiler-Leman refinement + canonical (hash, original id) sort + rank
// assignment for partition c. index.node_hash must hold the seed hashes of
// the partition's nodes. Everything the loop reads — seeds, neighbor
// volumes/hashes, the stop rule — is intrinsic to the partition, so running
// it on the whole graph and on an extracted partition yields identical
// hashes (the invariance canonical_partition_form needs).
void refine_partition(const TaskGraph& graph, CanonicalPartitionIndex& index,
                      std::int32_t c, RefineScratch& rs) {
  constexpr int kMaxRounds = 32;
  const std::span<const NodeId> nodes = index.nodes(c);
  std::size_t classes = distinct_classes(nodes, index.node_hash, rs.scratch);
  for (int round = 0; round < kMaxRounds && classes < nodes.size(); ++round) {
    for (const NodeId v : nodes) {
      rs.sig.clear();
      for (const EdgeId e : graph.in_edges(v)) {
        const Edge& edge = graph.edge(e);
        rs.sig.push_back(hash_combine(
            hash_combine(1, static_cast<std::uint64_t>(edge.volume)),
            index.node_hash[static_cast<std::size_t>(edge.src)]));
      }
      for (const EdgeId e : graph.out_edges(v)) {
        const Edge& edge = graph.edge(e);
        rs.sig.push_back(hash_combine(
            hash_combine(2, static_cast<std::uint64_t>(edge.volume)),
            index.node_hash[static_cast<std::size_t>(edge.dst)]));
      }
      // Sorting makes the fold order-free: the signature hashes a multiset
      // of (direction, volume, neighbor class), never edge-id order.
      std::sort(rs.sig.begin(), rs.sig.end());
      std::uint64_t h = index.node_hash[static_cast<std::size_t>(v)];
      for (const std::uint64_t s : rs.sig) h = hash_combine(h, s);
      rs.next[static_cast<std::size_t>(v)] = hash_combine(h, rs.sig.size());
    }
    for (const NodeId v : nodes) {
      index.node_hash[static_cast<std::size_t>(v)] =
          rs.next[static_cast<std::size_t>(v)];
    }
    const std::size_t refined = distinct_classes(nodes, index.node_hash, rs.scratch);
    if (refined == classes) break;
    classes = refined;
  }

  // Canonical order: (stabilized hash, original id) within the partition;
  // ranks are positions in that order.
  const auto begin = index.order.begin() + static_cast<std::ptrdiff_t>(
                                               index.offsets[static_cast<std::size_t>(c)]);
  const auto end = index.order.begin() + static_cast<std::ptrdiff_t>(
                                             index.offsets[static_cast<std::size_t>(c) + 1]);
  std::sort(begin, end, [&index](NodeId a, NodeId b) {
    const std::uint64_t ha = index.node_hash[static_cast<std::size_t>(a)];
    const std::uint64_t hb = index.node_hash[static_cast<std::size_t>(b)];
    if (ha != hb) return ha < hb;
    return a < b;
  });
  for (auto it = begin; it != end; ++it) {
    index.rank[static_cast<std::size_t>(*it)] = static_cast<std::int32_t>(it - begin);
  }
}

// Raw positional content of partition c while its order slice is still in
// ascending-original-id order: the PartitionCanonMemo key. Same layout as
// canonical_partition_form except destinations are recorded by position
// within the id-ordered node list (`pos`) instead of canonical rank — ranks
// are exactly what a memo probe does not yet know. Writes into `out` so the
// per-partition loop reuses one buffer instead of allocating per probe.
void partition_raw_form(const TaskGraph& graph, std::span<const NodeId> nodes,
                        const std::vector<std::int32_t>& pos, std::string& out) {
  std::size_t local_edges = 0;
  for (const NodeId v : nodes) local_edges += graph.out_degree(v);

  out.resize(16 + nodes.size() * 17 + local_edges * 16);
  char* p = out.data();
  const auto put64 = [&p](std::int64_t value) {
    std::memcpy(p, &value, 8);
    p += 8;
  };
  put64(static_cast<std::int64_t>(nodes.size()));
  put64(static_cast<std::int64_t>(local_edges));
  for (const NodeId v : nodes) {
    *p++ = static_cast<char>(graph.kind(v));
    put64(graph.output_volume(v));
  }
  for (const NodeId v : nodes) {
    put64(static_cast<std::int64_t>(graph.out_degree(v)));
    for (const EdgeId e : graph.out_edges(v)) {
      const Edge& edge = graph.edge(e);
      put64(pos[static_cast<std::size_t>(edge.dst)]);
      put64(edge.volume);
    }
  }
  }

}  // namespace

CanonicalPartitionIndex canonical_partition_index(const TaskGraph& graph) {
  const std::size_t n = graph.node_count();
  CanonicalPartitionIndex index;
  build_partition_groups(graph, index);

  const std::vector<Rational> level = node_levels(graph);
  for (std::size_t v = 0; v < n; ++v) {
    index.node_hash[v] = seed_hash(graph, static_cast<NodeId>(v), level[v]);
  }

  RefineScratch rs;
  rs.next.resize(n);
  for (std::int32_t c = 0; c < index.count; ++c) refine_partition(graph, index, c, rs);
  return index;
}

CanonicalPartitionIndex canonical_partition_index(
    const TaskGraph& graph, PartitionCanonMemo* memo,
    std::vector<std::shared_ptr<const PartitionCanonMemo::Ranks>>* entries) {
  if (memo == nullptr) return canonical_partition_index(graph);

  const std::size_t n = graph.node_count();
  CanonicalPartitionIndex index;
  build_partition_groups(graph, index);
  if (entries) entries->assign(static_cast<std::size_t>(index.count), nullptr);

  // Position of each node within its partition's ascending-id listing — the
  // coordinate system of the memo key.
  std::vector<std::int32_t> pos(n, 0);
  for (std::int32_t c = 0; c < index.count; ++c) {
    const std::span<const NodeId> nodes = index.nodes(c);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      pos[static_cast<std::size_t>(nodes[i])] = static_cast<std::int32_t>(i);
    }
  }

  // Scratch for the miss path, sized lazily: an all-hit pass (the delta /
  // shared-stream steady state) never touches levels or refinement at all.
  RefineScratch rs;
  std::vector<Rational> level;
  std::vector<std::int32_t> indeg;
  std::vector<NodeId> ready;
  std::vector<NodeId> ids;  // ascending-id snapshot of the current slice
  std::string raw_buf;      // reused across partitions; copied only on a miss

  for (std::int32_t c = 0; c < index.count; ++c) {
    NodeId* const slice = index.order.data() + index.offsets[static_cast<std::size_t>(c)];
    const std::size_t size = index.offsets[static_cast<std::size_t>(c) + 1] -
                             index.offsets[static_cast<std::size_t>(c)];
    ids.assign(slice, slice + size);
    partition_raw_form(graph, {slice, size}, pos, raw_buf);

    if (auto hit = memo->find(raw_buf)) {
      for (std::size_t i = 0; i < size; ++i) {
        const NodeId v = ids[i];
        index.node_hash[static_cast<std::size_t>(v)] = hit->hash[i];
        index.rank[static_cast<std::size_t>(v)] = hit->rank[i];
        slice[hit->rank[i]] = v;
      }
      if (entries) (*entries)[static_cast<std::size_t>(c)] = std::move(hit);
      continue;
    }

    if (level.empty()) {
      rs.next.resize(n);
      level.assign(n, Rational(0));
      indeg.assign(n, 0);
    }
    // Partition-local generalized levels, mirroring the node_levels
    // recurrence: L(v) = 1 for nodes without inputs, else
    // max parent level + max(R(v), 1). Every in-edge of a partition node
    // lies inside the partition (components span ALL edges), so these equal
    // the whole-graph levels and the seeds match the plain overload's.
    ready.clear();
    for (const NodeId v : ids) {
      indeg[static_cast<std::size_t>(v)] =
          static_cast<std::int32_t>(graph.in_degree(v));
      if (indeg[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
    std::size_t popped = 0;
    while (!ready.empty()) {
      const NodeId v = ready.back();
      ready.pop_back();
      ++popped;
      const auto ins = graph.in_edges(v);
      if (ins.empty()) {
        level[static_cast<std::size_t>(v)] = Rational(1);
      } else {
        Rational best(0);
        for (const EdgeId e : ins) {
          best = std::max(best, level[static_cast<std::size_t>(graph.edge(e).src)]);
        }
        level[static_cast<std::size_t>(v)] = best + std::max(graph.rate(v), Rational(1));
      }
      for (const EdgeId e : graph.out_edges(v)) {
        const NodeId w = graph.edge(e).dst;
        if (--indeg[static_cast<std::size_t>(w)] == 0) ready.push_back(w);
      }
    }
    if (popped != size) {
      throw std::invalid_argument("canonical_partition_index: graph contains a cycle");
    }

    for (const NodeId v : ids) {
      index.node_hash[static_cast<std::size_t>(v)] =
          seed_hash(graph, v, level[static_cast<std::size_t>(v)]);
    }
    refine_partition(graph, index, c, rs);

    PartitionCanonMemo::Ranks ranks;
    ranks.hash.reserve(size);
    ranks.rank.reserve(size);
    for (const NodeId v : ids) {
      ranks.hash.push_back(index.node_hash[static_cast<std::size_t>(v)]);
      ranks.rank.push_back(index.rank[static_cast<std::size_t>(v)]);
    }
    ranks.form = canonical_partition_form(graph, index, c);
    ranks.form_digest = digest_bytes(ranks.form);
    auto resident = memo->insert(raw_buf, std::move(ranks));
    if (entries) (*entries)[static_cast<std::size_t>(c)] = std::move(resident);
  }
  return index;
}

std::shared_ptr<const PartitionCanonMemo::Ranks> PartitionCanonMemo::find(
    const std::string& raw) {
  const std::uint64_t digest = digest_bytes(raw);
  const MutexLock lock(mutex_);
  if (const auto bucket = buckets_.find(digest); bucket != buckets_.end()) {
    for (const auto it : bucket->second) {
      if (it->raw == raw) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it);
        return it->ranks;
      }
    }
  }
  ++stats_.misses;
  return nullptr;
}

std::shared_ptr<const PartitionCanonMemo::Ranks> PartitionCanonMemo::insert(std::string raw,
                                                                            Ranks ranks) {
  const std::size_t weight = ranks.hash.size();
  auto owned = std::make_shared<const Ranks>(std::move(ranks));
  const std::uint64_t digest = digest_bytes(raw);
  const MutexLock lock(mutex_);
  auto& bucket = buckets_[digest];
  for (const auto it : bucket) {
    if (it->raw == raw) return it->ranks;  // lost a benign compute race
  }
  if (weight > capacity_) return owned;  // would evict everything: refuse
  lru_.push_front(Entry{digest, std::move(raw), weight, owned});
  bucket.push_back(lru_.begin());
  weight_ += weight;
  evict_to_capacity_locked();
  return owned;
}

void PartitionCanonMemo::evict_to_capacity_locked() {
  while (weight_ > capacity_ && !lru_.empty()) {
    const auto victim = std::prev(lru_.end());
    auto& bucket = buckets_[victim->digest];
    std::erase_if(bucket, [&victim](const auto it) { return it == victim; });
    if (bucket.empty()) buckets_.erase(victim->digest);
    weight_ -= victim->weight;
    lru_.pop_back();
  }
}

PartitionCanonMemo::Stats PartitionCanonMemo::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

std::size_t PartitionCanonMemo::size() const {
  const MutexLock lock(mutex_);
  return lru_.size();
}

std::size_t PartitionCanonMemo::total_weight() const {
  const MutexLock lock(mutex_);
  return weight_;
}

std::string canonical_partition_form(const TaskGraph& graph,
                                     const CanonicalPartitionIndex& index,
                                     std::int32_t c) {
  const std::span<const NodeId> nodes = index.nodes(c);
  std::size_t local_edges = 0;
  for (const NodeId v : nodes) local_edges += graph.out_degree(v);

  std::string out;
  out.resize(16 + nodes.size() * 17 + local_edges * 16);
  char* p = out.data();
  const auto put64 = [&p](std::int64_t value) {
    std::memcpy(p, &value, 8);
    p += 8;
  };
  put64(static_cast<std::int64_t>(nodes.size()));
  put64(static_cast<std::int64_t>(local_edges));
  for (const NodeId v : nodes) {
    *p++ = static_cast<char>(graph.kind(v));
    put64(graph.output_volume(v));
  }
  for (const NodeId v : nodes) {
    put64(static_cast<std::int64_t>(graph.out_degree(v)));
    for (const EdgeId e : graph.out_edges(v)) {
      const Edge& edge = graph.edge(e);
      put64(index.rank[static_cast<std::size_t>(edge.dst)]);
      put64(edge.volume);
    }
  }
  return out;
}

TaskGraph materialize_partition(const TaskGraph& graph,
                                const CanonicalPartitionIndex& index,
                                std::int32_t c,
                                std::vector<EdgeId>* edge_ids) {
  const std::span<const NodeId> nodes = index.nodes(c);
  TaskGraph local;
  for (const NodeId v : nodes) {
    switch (graph.kind(v)) {
      case NodeKind::kSource:
        local.add_source(graph.declared_output(v));
        break;
      case NodeKind::kCompute: {
        const NodeId lv = local.add_compute();
        if (graph.declared_output(v) > 0) local.declare_output(lv, graph.declared_output(v));
        break;
      }
      case NodeKind::kBuffer: {
        const NodeId lv = local.add_buffer();
        if (graph.declared_output(v) > 0) local.declare_output(lv, graph.declared_output(v));
        break;
      }
      case NodeKind::kSink:
        local.add_sink();
        break;
    }
  }
  if (edge_ids) edge_ids->clear();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const EdgeId e : graph.out_edges(nodes[i])) {
      const Edge& edge = graph.edge(e);
      local.add_edge(static_cast<NodeId>(i),
                     index.rank[static_cast<std::size_t>(edge.dst)], edge.volume);
      if (edge_ids) edge_ids->push_back(e);
    }
  }
  return local;
}

}  // namespace sts
