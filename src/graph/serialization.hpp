#pragma once

#include <iosfwd>
#include <string>

#include "graph/task_graph.hpp"

namespace sts {

/// Plain-text serialization of canonical task graphs.
///
/// Format (one record per line, `#` comments, blank lines ignored):
///
///     node <id> <kind> [name]        kind in {source, sink, compute, buffer}
///     output <id> <volume>           declared output volume (sources, exits,
///                                    buffers)
///     edge <src> <dst> <volume>
///
/// Node ids must be dense and ascending starting at 0 (they map directly to
/// NodeId). `save_task_graph` always writes that shape, so round-trips are
/// exact.
[[nodiscard]] TaskGraph load_task_graph(std::istream& input);
[[nodiscard]] TaskGraph load_task_graph_from_string(const std::string& text);

void save_task_graph(std::ostream& output, const TaskGraph& graph);
[[nodiscard]] std::string save_task_graph_to_string(const TaskGraph& graph);

}  // namespace sts
