#pragma once

#include <iosfwd>
#include <string>

#include "graph/task_graph.hpp"
#include "support/json.hpp"

namespace sts {

/// Plain-text serialization of canonical task graphs.
///
/// Format (one record per line, `#` comments, blank lines ignored):
///
///     node <id> <kind> [name]        kind in {source, sink, compute, buffer}
///     output <id> <volume>           declared output volume (sources, exits,
///                                    buffers)
///     edge <src> <dst> <volume>
///
/// Node ids must be dense and ascending starting at 0 (they map directly to
/// NodeId). `save_task_graph` always writes that shape, so round-trips are
/// exact.
[[nodiscard]] TaskGraph load_task_graph(std::istream& input);
[[nodiscard]] TaskGraph load_task_graph_from_string(const std::string& text);

void save_task_graph(std::ostream& output, const TaskGraph& graph);
[[nodiscard]] std::string save_task_graph_to_string(const TaskGraph& graph);

/// Compact binary encoding of the scheduling-relevant canonical structure:
/// node/edge counts, per-node kind + output volume, per-edge (src, dst,
/// volume). Node names are excluded — they never influence a schedule, so
/// graphs differing only in names encode identically. Two graphs produce the
/// same fingerprint iff their text serializations (minus names) match; a
/// single pre-sized buffer keeps it an order of magnitude cheaper than
/// `save_task_graph_to_string`, which matters because this is the
/// ScheduleCache key built on every (including cache-hit) scheduling query.
[[nodiscard]] std::string canonical_fingerprint(const TaskGraph& graph);

/// JSON rendering of a canonical task graph, the shape embedded in
/// ScheduleRequest envelopes (service/request.hpp):
///
///     {"nodes": [{"kind": "source", "output": 16, "name": "src"}, ...],
///      "edges": [[src, dst, volume], ...]}
///
/// Node index in the array is the NodeId. `name` is omitted when empty and
/// `output` when the node carries no declared output record (same rule as
/// the text format, so text and JSON round-trips agree bit-for-bit on the
/// canonical_fingerprint). Appends to `out` with the same to_chars fast
/// paths as the text serializer.
void append_task_graph_json(std::string& out, const TaskGraph& graph);

/// Rebuilds a task graph from the JSON shape above. Throws
/// std::invalid_argument on unknown kinds, missing source outputs,
/// non-integer volumes, out-of-range edge endpoints, or unknown members
/// (strict: a typo must not silently change the scenario).
[[nodiscard]] TaskGraph task_graph_from_json(const JsonValue& json);

}  // namespace sts
