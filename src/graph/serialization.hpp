#pragma once

#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/task_graph.hpp"
#include "support/json.hpp"
#include "support/thread_annotations.hpp"

namespace sts {

/// Plain-text serialization of canonical task graphs.
///
/// Format (one record per line, `#` comments, blank lines ignored):
///
///     node <id> <kind> [name]        kind in {source, sink, compute, buffer}
///     output <id> <volume>           declared output volume (sources, exits,
///                                    buffers)
///     edge <src> <dst> <volume>
///
/// Node ids must be dense and ascending starting at 0 (they map directly to
/// NodeId). `save_task_graph` always writes that shape, so round-trips are
/// exact.
[[nodiscard]] TaskGraph load_task_graph(std::istream& input);
[[nodiscard]] TaskGraph load_task_graph_from_string(const std::string& text);

void save_task_graph(std::ostream& output, const TaskGraph& graph);
[[nodiscard]] std::string save_task_graph_to_string(const TaskGraph& graph);

/// Compact binary encoding of the scheduling-relevant canonical structure:
/// node/edge counts, per-node kind + output volume, per-edge (src, dst,
/// volume). Node names are excluded — they never influence a schedule, so
/// graphs differing only in names encode identically. Two graphs produce the
/// same fingerprint iff their text serializations (minus names) match; a
/// single pre-sized buffer keeps it an order of magnitude cheaper than
/// `save_task_graph_to_string`, which matters because this is the
/// ScheduleCache key built on every (including cache-hit) scheduling query.
[[nodiscard]] std::string canonical_fingerprint(const TaskGraph& graph);

/// JSON rendering of a canonical task graph, the shape embedded in
/// ScheduleRequest envelopes (service/request.hpp):
///
///     {"nodes": [{"kind": "source", "output": 16, "name": "src"}, ...],
///      "edges": [[src, dst, volume], ...]}
///
/// Node index in the array is the NodeId. `name` is omitted when empty and
/// `output` when the node carries no declared output record (same rule as
/// the text format, so text and JSON round-trips agree bit-for-bit on the
/// canonical_fingerprint). Appends to `out` with the same to_chars fast
/// paths as the text serializer.
void append_task_graph_json(std::string& out, const TaskGraph& graph);

/// Rebuilds a task graph from the JSON shape above. Throws
/// std::invalid_argument on unknown kinds, missing source outputs,
/// non-integer volumes, out-of-range edge endpoints, or unknown members
/// (strict: a typo must not silently change the scenario).
[[nodiscard]] TaskGraph task_graph_from_json(const JsonValue& json);

/// Partition-local canonicalization: the connected partitions of a graph
/// (weakly connected components over ALL edges, buffers included — the
/// independent subproblems every pipeline stage composes over) together with
/// a renumbering-invariant canonical order of each partition's nodes.
///
/// Canonical ranks come from iterated structural refinement (a
/// Weisfeiler-Leman-style hash seeded with kind, I/O volumes, degrees, and
/// the generalized node level, then refined over sorted neighbor
/// (direction, volume, hash) signatures until the partition's class count
/// stabilizes). The refinement is computed per partition from its own
/// structure only, so ranking a partition inside a larger graph and ranking
/// its extracted subgraph agree — the property the SubgraphCache's fragment
/// reuse rests on. Nodes whose hashes still tie (structurally symmetric
/// families) fall back to original-id order; such partitions remain correct
/// to schedule but may miss the fragment cache under renumbering.
struct CanonicalPartitionIndex {
  std::int32_t count = 0;                ///< number of connected partitions
  std::vector<std::int32_t> component;   ///< per node: owning partition,
                                         ///< numbered by minimal original id
  std::vector<std::uint64_t> node_hash;  ///< stabilized structural hash
  std::vector<NodeId> order;             ///< all nodes grouped by partition,
                                         ///< each sorted by (hash, orig id)
  std::vector<std::int32_t> rank;        ///< per node: its position within its
                                         ///< partition's canonical order
  std::vector<std::size_t> offsets;      ///< partition c spans
                                         ///< order[offsets[c], offsets[c+1])

  [[nodiscard]] std::span<const NodeId> nodes(std::int32_t c) const {
    const auto i = static_cast<std::size_t>(c);
    return {order.data() + offsets[i], order.data() + offsets[i + 1]};
  }
};

[[nodiscard]] CanonicalPartitionIndex canonical_partition_index(const TaskGraph& graph);

/// Content-addressed memo of per-partition canonicalizations. Structural
/// refinement is the dominant cost of canonical_partition_index on large
/// graphs, yet across a delta request — or a stream of requests sharing
/// partitions — almost every partition's structure is unchanged. The memo
/// keys each partition by its raw positional content: node count, edge
/// count, per-node (kind, declared output) in ascending-original-id order,
/// then per node its out-edges in insertion order as (destination position,
/// volume). Positions are offsets within the partition's own id-ordered
/// node list, so the key is invariant under the id shifts partitions acquire
/// when graphs are edited or appended. Identical raw bytes imply the two
/// partitions are isomorphic under the positional map with per-node edge
/// insertion order preserved, so the stored per-position hashes and
/// canonical ranks transfer verbatim and seeding + refinement are skipped.
///
/// Probes compare the full raw bytes (same collision discipline as the
/// fragment cache: a digest collision degrades to a miss, never to a wrong
/// canonicalization). Thread-safe bounded LRU; weight = partition node
/// count.
class PartitionCanonMemo {
 public:
  /// Canonicalization of one partition, stored positionally: hash[i] and
  /// rank[i] belong to the node at ascending-original-id position i. `form`
  /// is the partition's canonical_partition_form bytes and `form_digest` a
  /// 64-bit content digest of it — pure functions of the raw content, kept
  /// here so memo hits hand the fragment-cache key material over without
  /// re-walking the partition's edges or re-hashing kilobytes of form.
  struct Ranks {
    std::vector<std::uint64_t> hash;
    std::vector<std::int32_t> rank;
    std::string form;
    std::uint64_t form_digest = 0;
  };

  struct Stats {
    std::uint64_t hits = 0;    ///< partitions whose refinement was skipped
    std::uint64_t misses = 0;  ///< partitions refined from scratch
  };

  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit PartitionCanonMemo(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  PartitionCanonMemo(const PartitionCanonMemo&) = delete;
  PartitionCanonMemo& operator=(const PartitionCanonMemo&) = delete;

  /// Looks up a partition's canonicalization by raw content; counts a hit or
  /// a miss.
  [[nodiscard]] std::shared_ptr<const Ranks> find(const std::string& raw)
      EXCLUDES(mutex_);

  /// Inserts a canonicalization computed after a find() miss and returns the
  /// resident entry (the already-cached one if a concurrent insert won the
  /// race; the caller's own, uncached, if it outweighs the whole memo).
  [[nodiscard]] std::shared_ptr<const Ranks> insert(std::string raw, Ranks ranks)
      EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t total_weight() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::uint64_t digest = 0;
    std::string raw;
    std::size_t weight = 0;
    std::shared_ptr<const Ranks> ranks;
  };

  void evict_to_capacity_locked() REQUIRES(mutex_);

  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::list<Entry> lru_ GUARDED_BY(mutex_);  ///< front = most recent
  std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>> buckets_
      GUARDED_BY(mutex_);
  std::size_t weight_ GUARDED_BY(mutex_) = 0;
  Stats stats_ GUARDED_BY(mutex_);
};

/// As above, but reuses (and fills) `memo` so partitions whose raw content
/// was canonicalized before skip level computation and refinement entirely —
/// the fast path that makes delta rescheduling and shared-partition request
/// streams cheap. `nullptr` falls back to the plain overload. The returned
/// index is identical to canonical_partition_index(graph) for every graph
/// and every memo state. When `entries` is non-null it receives the resident
/// memo entry of each partition (entries[c] for partition c), giving callers
/// the canonical form bytes without another edge walk.
[[nodiscard]] CanonicalPartitionIndex canonical_partition_index(
    const TaskGraph& graph, PartitionCanonMemo* memo,
    std::vector<std::shared_ptr<const PartitionCanonMemo::Ranks>>* entries = nullptr);

/// Compact binary canonical form of one connected partition: node count,
/// edge count, per-node (kind, output volume) in canonical-rank order, then
/// per node its out-edges in original insertion order as (canonical dst
/// rank, volume). Invariant under node-id renumbering whenever the
/// structural hashes separate the partition's nodes; per-node out-edge
/// insertion order is preserved verbatim because downstream channel
/// enumeration depends on it (two requests that differ there must MISS the
/// fragment cache, never alias). This is the SubgraphCache key material.
[[nodiscard]] std::string canonical_partition_form(const TaskGraph& graph,
                                                   const CanonicalPartitionIndex& index,
                                                   std::int32_t c);

/// Materializes one connected partition as a standalone TaskGraph whose node
/// ids are the canonical ranks (order preserved from `index`), replicating
/// kinds, declared outputs, and per-node out-edge insertion order. If
/// `edge_ids` is non-null it receives, per local edge id, the EdgeId of the
/// corresponding edge in `graph` — the mapping fragment assembly uses to
/// translate channel plans back into whole-graph coordinates.
[[nodiscard]] TaskGraph materialize_partition(const TaskGraph& graph,
                                              const CanonicalPartitionIndex& index,
                                              std::int32_t c,
                                              std::vector<EdgeId>* edge_ids = nullptr);

}  // namespace sts
