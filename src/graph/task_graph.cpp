#include "graph/task_graph.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace sts {

const char* to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::kSource: return "source";
    case NodeKind::kSink: return "sink";
    case NodeKind::kCompute: return "compute";
    case NodeKind::kBuffer: return "buffer";
  }
  return "?";
}

NodeId TaskGraph::add_node(NodeKind kind, std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeRec{kind, std::move(name), 0});
  csr_ready_.store(false, std::memory_order_relaxed);
  return id;
}

NodeId TaskGraph::add_source(std::int64_t output_volume, std::string name) {
  if (output_volume <= 0) throw std::invalid_argument("add_source: output volume must be > 0");
  const NodeId v = add_node(NodeKind::kSource, std::move(name));
  nodes_[static_cast<std::size_t>(v)].declared_output = output_volume;
  return v;
}

NodeId TaskGraph::add_compute(std::string name) {
  return add_node(NodeKind::kCompute, std::move(name));
}

NodeId TaskGraph::add_buffer(std::string name) {
  return add_node(NodeKind::kBuffer, std::move(name));
}

NodeId TaskGraph::add_sink(std::string name) { return add_node(NodeKind::kSink, std::move(name)); }

void TaskGraph::declare_output(NodeId v, std::int64_t output_volume) {
  check_node(v);
  if (output_volume <= 0) throw std::invalid_argument("declare_output: volume must be > 0");
  nodes_[static_cast<std::size_t>(v)].declared_output = output_volume;
  csr_ready_.store(false, std::memory_order_relaxed);
}

EdgeId TaskGraph::add_edge(NodeId src, NodeId dst, std::int64_t volume) {
  check_node(src);
  check_node(dst);
  if (volume <= 0) throw std::invalid_argument("add_edge: volume must be > 0");
  if (src == dst) throw std::invalid_argument("add_edge: self loop");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{src, dst, volume});
  csr_ready_.store(false, std::memory_order_relaxed);
  return id;
}

void TaskGraph::check_node(NodeId v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= nodes_.size()) {
    throw std::out_of_range("TaskGraph: invalid node id " + std::to_string(v));
  }
}

void TaskGraph::rebuild_csr() const {
  // Serialize the rare rebuild so threads sharing a const graph (e.g. the
  // ScheduleCache scheduling path) cannot race on the cache vectors; the
  // release store at the end of rebuild_csr_locked() publishes the built
  // arrays to acquire loads in ensure_csr().
  const MutexLock lock(rebuild_mutex_);
  rebuild_csr_locked();
}

void TaskGraph::rebuild_csr_locked() const {
  if (csr_ready_.load(std::memory_order_relaxed)) return;  // lost the race

  const std::size_t n = nodes_.size();
  const std::size_t m = edges_.size();

  // Counting sort of edge ids into flat per-node spans. Iterating edges in
  // id order keeps each span in edge-insertion order.
  in_off_.assign(n + 1, 0);
  out_off_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++in_off_[static_cast<std::size_t>(e.dst) + 1];
    ++out_off_[static_cast<std::size_t>(e.src) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    in_off_[i + 1] += in_off_[i];
    out_off_[i + 1] += out_off_[i];
  }
  in_csr_.resize(m);
  out_csr_.resize(m);
  std::vector<std::int32_t> in_cursor(in_off_.begin(), in_off_.end() - 1);
  std::vector<std::int32_t> out_cursor(out_off_.begin(), out_off_.end() - 1);
  for (EdgeId e = 0; static_cast<std::size_t>(e) < m; ++e) {
    const Edge& edge = edges_[static_cast<std::size_t>(e)];
    in_csr_[static_cast<std::size_t>(in_cursor[static_cast<std::size_t>(edge.dst)]++)] = e;
    out_csr_[static_cast<std::size_t>(out_cursor[static_cast<std::size_t>(edge.src)]++)] = e;
  }

  // Per-node profiles: I/O volumes, work, reduced production rate.
  profile_.assign(n, NodeProfile{});
  for (std::size_t idx = 0; idx < n; ++idx) {
    NodeProfile& p = profile_[idx];
    const NodeRec& rec = nodes_[idx];
    if (in_off_[idx + 1] > in_off_[idx]) {
      p.in_volume = edges_[static_cast<std::size_t>(in_csr_[static_cast<std::size_t>(in_off_[idx])])]
                        .volume;
    }
    if (rec.kind != NodeKind::kSink) {
      if (out_off_[idx + 1] > out_off_[idx]) {
        p.out_volume =
            edges_[static_cast<std::size_t>(out_csr_[static_cast<std::size_t>(out_off_[idx])])]
                .volume;
      } else {
        p.out_volume = rec.declared_output;
      }
    }
    p.work = rec.kind == NodeKind::kBuffer ? 0 : std::max(p.in_volume, p.out_volume);
    if (p.in_volume > 0) {
      const std::int64_t g = std::gcd(p.out_volume, p.in_volume);
      p.rate_num = g == 0 ? 0 : p.out_volume / g;
      p.rate_den = g == 0 ? 1 : p.in_volume / g;
    }
  }
  csr_ready_.store(true, std::memory_order_release);
}

std::int64_t TaskGraph::input_volume(NodeId v) const {
  check_node(v);
  ensure_csr();
  return profile_[static_cast<std::size_t>(v)].in_volume;
}

std::int64_t TaskGraph::output_volume(NodeId v) const {
  check_node(v);
  ensure_csr();
  return profile_[static_cast<std::size_t>(v)].out_volume;
}

Rational TaskGraph::rate(NodeId v) const {
  check_node(v);
  ensure_csr();
  const NodeProfile& p = profile_[static_cast<std::size_t>(v)];
  if (p.in_volume == 0) {
    throw std::logic_error("rate(): node " + std::to_string(v) + " has no inputs (source?)");
  }
  return Rational(p.rate_num, p.rate_den);
}

std::int64_t TaskGraph::work(NodeId v) const {
  check_node(v);
  ensure_csr();
  return profile_[static_cast<std::size_t>(v)].work;
}

std::int64_t TaskGraph::total_work() const {
  ensure_csr();
  std::int64_t sum = 0;
  for (std::size_t idx = 0; idx < nodes_.size(); ++idx) {
    if (nodes_[idx].kind != NodeKind::kBuffer) sum += profile_[idx].work;
  }
  return sum;
}

std::vector<std::string> TaskGraph::validate() const {
  std::vector<std::string> issues;
  const auto complain = [&issues](NodeId v, const std::string& what) {
    issues.push_back("node " + std::to_string(v) + ": " + what);
  };

  for (NodeId v = 0; static_cast<std::size_t>(v) < nodes_.size(); ++v) {
    const auto& rec = nodes_[static_cast<std::size_t>(v)];
    const auto ins = in_edges(v);
    const auto outs = out_edges(v);

    // Canonicity: same volume on every input edge / every output edge.
    for (const EdgeId e : ins) {
      if (edge(e).volume != edge(ins.front()).volume) {
        complain(v, "input edges carry different volumes (" +
                        std::to_string(edge(ins.front()).volume) + " vs " +
                        std::to_string(edge(e).volume) + ")");
        break;
      }
    }
    for (const EdgeId e : outs) {
      if (edge(e).volume != edge(outs.front()).volume) {
        complain(v, "output edges carry different volumes (" +
                        std::to_string(edge(outs.front()).volume) + " vs " +
                        std::to_string(edge(e).volume) + ")");
        break;
      }
    }
    if (rec.declared_output != 0 && !outs.empty() &&
        rec.declared_output != edge(outs.front()).volume) {
      complain(v, "declared output volume " + std::to_string(rec.declared_output) +
                      " contradicts out-edge volume " + std::to_string(edge(outs.front()).volume));
    }

    switch (rec.kind) {
      case NodeKind::kSource:
        if (!ins.empty()) complain(v, "source has input edges");
        if (rec.declared_output <= 0) complain(v, "source without declared output volume");
        break;
      case NodeKind::kSink:
        if (!outs.empty()) complain(v, "sink has output edges");
        if (ins.empty()) complain(v, "sink without input edges");
        break;
      case NodeKind::kCompute:
        if (ins.empty()) complain(v, "compute node without inputs (use add_source)");
        if (outs.empty() && rec.declared_output <= 0) {
          complain(v, "exit compute node without declared output volume");
        }
        break;
      case NodeKind::kBuffer:
        if (ins.empty()) complain(v, "buffer node without inputs");
        if (outs.empty()) complain(v, "buffer node without outputs");
        break;
    }
  }

  for (const Edge& e : edges_) {
    if (kind(e.src) == NodeKind::kBuffer && kind(e.dst) == NodeKind::kBuffer) {
      issues.push_back("edge " + std::to_string(e.src) + "->" + std::to_string(e.dst) +
                       ": buffer feeding buffer (merge them into one buffer node)");
    }
  }

  if (!is_acyclic(*this)) issues.emplace_back("graph contains a directed cycle");

  // Buffer placement rule (Section 4.2.3): the supernode DAG obtained by
  // merging buffer-split WCCs must be acyclic; otherwise an undirected cycle
  // through a buffer node would require "implicit" unbounded buffering.
  if (issues.empty() && !buffer_supernode_dag_is_acyclic(*this)) {
    issues.emplace_back(
        "buffer placement violates Section 4.2.3: a cycle over weakly connected "
        "components passes through a buffer node");
  }

  return issues;
}

void TaskGraph::validate_or_throw() const {
  const auto issues = validate();
  if (issues.empty()) return;
  std::ostringstream os;
  os << "invalid canonical task graph (" << issues.size() << " issue(s)):";
  for (const auto& issue : issues) os << "\n  - " << issue;
  throw std::invalid_argument(os.str());
}

}  // namespace sts
