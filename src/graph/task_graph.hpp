#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/rational.hpp"
#include "support/thread_annotations.hpp"

namespace sts {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Canonical node kinds (paper Section 3.1).
enum class NodeKind : std::uint8_t {
  kSource,   ///< reads its output from global memory; no production rate
  kSink,     ///< stores its input to global memory; production rate zero
  kCompute,  ///< computational node with production rate R(v) = O(v)/I(v)
  kBuffer,   ///< passive memory node; cannot be pipelined through; holds no PE
};

[[nodiscard]] const char* to_string(NodeKind kind) noexcept;

/// A directed data dependency carrying `volume` unitary elements (edge label
/// in the paper's figures).  Canonicity implies volume == O(src) == I(dst).
struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::int64_t volume = 0;
};

/// Precomputed per-node streaming profile, materialized together with the
/// CSR adjacency so hot loops (partitioner, scheduler, buffer sizing, both
/// simulator engines) read one cache line instead of chasing edge lists.
struct NodeProfile {
  std::int64_t in_volume = 0;   ///< I(v): per-edge input element count
  std::int64_t out_volume = 0;  ///< O(v): per-edge output element count
  std::int64_t work = 0;        ///< W(v) = max(I, O); 0 for buffer nodes
  std::int64_t rate_num = 1;    ///< reduced numerator of R(v) = O/I (1 if I==0)
  std::int64_t rate_den = 1;    ///< reduced denominator of R(v)
};

/// A canonical task graph (paper Sections 2-3): a DAG of canonical nodes.
///
/// Volumes are per-edge element counts. A canonical node receives the same
/// amount from every input edge (I(v)) and emits the same amount to every
/// output edge (O(v)). Exit nodes (no out-edges) and sources declare their
/// output volume explicitly via `declare_output` / `add_source`, modelling
/// the stream they write to / read from global memory.
///
/// Adjacency is stored in CSR form (flat edge-id arrays plus per-node
/// offsets), rebuilt lazily after mutation: `in_edges`/`out_edges` return
/// spans over contiguous storage and volume/rate/work queries are O(1)
/// lookups into the precomputed NodeProfile table. Mutating the graph
/// invalidates the CSR; the next (const) accessor rebuilds it in O(N + E).
/// The rebuild is guarded (atomic flag + serialized build), so concurrent
/// const access to a shared graph stays safe — the contract ScheduleCache's
/// lock-free scheduling path relies on. Mutation still requires exclusive
/// ownership, like any standard container.
///
/// The class enforces structural rules lazily: construction never throws on
/// semantic violations; `validate()` reports them all so tests can assert on
/// specific diagnostics.
class TaskGraph {
 public:
  TaskGraph() = default;

  // Copies carry only the graph itself; the copy rebuilds its CSR caches on
  // demand (copying them from a concurrently-building source would race).
  TaskGraph(const TaskGraph& other) : nodes_(other.nodes_), edges_(other.edges_) {}
  TaskGraph& operator=(const TaskGraph& other) {
    if (this != &other) {
      nodes_ = other.nodes_;
      edges_ = other.edges_;
      csr_ready_.store(false, std::memory_order_relaxed);
    }
    return *this;
  }
  // Moves require exclusive ownership of the source and keep its caches.
  TaskGraph(TaskGraph&& other) noexcept
      : nodes_(std::move(other.nodes_)),
        edges_(std::move(other.edges_)),
        in_off_(std::move(other.in_off_)),
        out_off_(std::move(other.out_off_)),
        in_csr_(std::move(other.in_csr_)),
        out_csr_(std::move(other.out_csr_)),
        profile_(std::move(other.profile_)),
        csr_ready_(other.csr_ready_.load(std::memory_order_relaxed)) {
    other.csr_ready_.store(false, std::memory_order_relaxed);
  }
  TaskGraph& operator=(TaskGraph&& other) noexcept {
    if (this != &other) {
      nodes_ = std::move(other.nodes_);
      edges_ = std::move(other.edges_);
      in_off_ = std::move(other.in_off_);
      out_off_ = std::move(other.out_off_);
      in_csr_ = std::move(other.in_csr_);
      out_csr_ = std::move(other.out_csr_);
      profile_ = std::move(other.profile_);
      csr_ready_.store(other.csr_ready_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      other.csr_ready_.store(false, std::memory_order_relaxed);
    }
    return *this;
  }

  /// Creates a source streaming `output_volume` elements out of global memory.
  NodeId add_source(std::int64_t output_volume, std::string name = {});

  /// Creates a computational node; I/O volumes derive from incident edges.
  NodeId add_compute(std::string name = {});

  /// Creates a passive buffer node (not scheduled on a PE).
  NodeId add_buffer(std::string name = {});

  /// Creates a sink absorbing its input into global memory.
  NodeId add_sink(std::string name = {});

  /// Declares the output volume of an exit computational node (stream written
  /// to global memory). For nodes with out-edges the declaration must match
  /// the edge volumes (checked by validate()).
  void declare_output(NodeId v, std::int64_t output_volume);

  /// Adds a dependency edge carrying `volume` elements.
  EdgeId add_edge(NodeId src, NodeId dst, std::int64_t volume);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  [[nodiscard]] NodeKind kind(NodeId v) const { return nodes_[static_cast<std::size_t>(v)].kind; }
  [[nodiscard]] const std::string& name(NodeId v) const {
    return nodes_[static_cast<std::size_t>(v)].name;
  }
  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_[static_cast<std::size_t>(e)]; }

  /// All edges in insertion (id) order, contiguous.
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  [[nodiscard]] std::span<const EdgeId> in_edges(NodeId v) const {
    ensure_csr();
    const auto idx = static_cast<std::size_t>(v);
    return {in_csr_.data() + in_off_[idx], in_csr_.data() + in_off_[idx + 1]};
  }
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId v) const {
    ensure_csr();
    const auto idx = static_cast<std::size_t>(v);
    return {out_csr_.data() + out_off_[idx], out_csr_.data() + out_off_[idx + 1]};
  }
  [[nodiscard]] std::size_t in_degree(NodeId v) const { return in_edges(v).size(); }
  [[nodiscard]] std::size_t out_degree(NodeId v) const { return out_edges(v).size(); }

  /// Precomputed per-node profiles, indexed by NodeId (valid until the next
  /// mutation). Prefer this in hot loops over repeated volume/rate calls.
  [[nodiscard]] std::span<const NodeProfile> profiles() const {
    ensure_csr();
    return profile_;
  }

  /// I(v): per-edge input element count; 0 for sources.
  [[nodiscard]] std::int64_t input_volume(NodeId v) const;

  /// O(v): the declared volume for exit nodes and sources, otherwise the
  /// (common) out-edge volume. 0 for sinks.
  [[nodiscard]] std::int64_t output_volume(NodeId v) const;

  /// The declared output volume record (0 = none declared). Distinct from
  /// output_volume(): exact replication of declarations is what graph edits
  /// and partition extraction need to rebuild a graph record-for-record.
  [[nodiscard]] std::int64_t declared_output(NodeId v) const {
    return nodes_[static_cast<std::size_t>(v)].declared_output;
  }

  /// R(v) = O(v)/I(v); only defined for compute and buffer nodes.
  [[nodiscard]] Rational rate(NodeId v) const;

  /// W(v) = max(I(v), O(v)) (paper Section 4.2); 0 for buffer nodes, which
  /// are not active entities.
  [[nodiscard]] std::int64_t work(NodeId v) const;

  /// T1 = sum of work over PE-occupying nodes: sequential execution time.
  [[nodiscard]] std::int64_t total_work() const;

  /// True for nodes that must be scheduled on a processing element
  /// (everything except buffer nodes).
  [[nodiscard]] bool occupies_pe(NodeId v) const { return kind(v) != NodeKind::kBuffer; }

  /// Node classification helpers (computational nodes only).
  [[nodiscard]] bool is_elementwise(NodeId v) const { return rate(v) == Rational(1); }
  [[nodiscard]] bool is_downsampler(NodeId v) const { return rate(v) < Rational(1); }
  [[nodiscard]] bool is_upsampler(NodeId v) const { return rate(v) > Rational(1); }

  /// All structural/canonicity violations; empty means the graph is a valid
  /// canonical task graph (per-node volume rules, DAG-ness, buffer placement
  /// rule of Section 4.2.3).
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Throws std::invalid_argument listing all violations, if any.
  void validate_or_throw() const;

 private:
  struct NodeRec {
    NodeKind kind = NodeKind::kCompute;
    std::string name;
    std::int64_t declared_output = 0;  // 0 = not declared
  };

  NodeId add_node(NodeKind kind, std::string name);
  void check_node(NodeId v) const;
  void ensure_csr() const {
    if (!csr_ready_.load(std::memory_order_acquire)) rebuild_csr();
  }
  void rebuild_csr() const EXCLUDES(rebuild_mutex_);
  void rebuild_csr_locked() const REQUIRES(rebuild_mutex_);

  std::vector<NodeRec> nodes_;
  std::vector<Edge> edges_;

  // CSR adjacency + profile caches; rebuilt lazily after mutation. Edge ids
  // within each node's span appear in edge-insertion order, matching the
  // historical vector-of-vectors layout exactly.
  //
  // Deliberately NOT GUARDED_BY(rebuild_mutex_): readers never take the lock
  // — they go through ensure_csr(), whose csr_ready_ acquire load pairs with
  // the release store at the end of rebuild_csr_locked() to publish the
  // built arrays. The mutex only serializes concurrent rebuilders.
  mutable std::vector<std::int32_t> in_off_;   // size N+1
  mutable std::vector<std::int32_t> out_off_;  // size N+1
  mutable std::vector<EdgeId> in_csr_;         // size E
  mutable std::vector<EdgeId> out_csr_;        // size E
  mutable std::vector<NodeProfile> profile_;   // size N
  mutable std::atomic<bool> csr_ready_{false};
  // Per-instance rebuild guard (never copied/moved: each graph owns its own,
  // and copy/move require exclusive access anyway).
  mutable Mutex rebuild_mutex_;
};

}  // namespace sts
