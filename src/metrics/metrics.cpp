#include "metrics/metrics.hpp"

namespace sts {

double speedup(std::int64_t total_work, std::int64_t makespan) {
  if (makespan <= 0) return 0.0;
  return static_cast<double>(total_work) / static_cast<double>(makespan);
}

double streaming_slr(std::int64_t makespan, const Rational& streaming_depth) {
  const double depth = streaming_depth.to_double();
  if (depth <= 0.0) return 0.0;
  return static_cast<double>(makespan) / depth;
}

double streaming_utilization(const TaskGraph& graph, const StreamingSchedule& schedule,
                             std::int64_t num_pes) {
  if (schedule.makespan <= 0 || num_pes <= 0) return 0.0;
  std::int64_t busy = 0;
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    if (!graph.occupies_pe(v)) continue;
    const TaskTiming& t = schedule.at(v);
    busy += t.last_out - t.start;
  }
  return static_cast<double>(busy) /
         (static_cast<double>(num_pes) * static_cast<double>(schedule.makespan));
}

double non_streaming_utilization(const TaskGraph& graph, const ListSchedule& schedule,
                                 std::int64_t num_pes) {
  if (schedule.makespan <= 0 || num_pes <= 0) return 0.0;
  std::int64_t busy = 0;
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    if (graph.occupies_pe(v)) busy += graph.work(v);
  }
  return static_cast<double>(busy) /
         (static_cast<double>(num_pes) * static_cast<double>(schedule.makespan));
}

}  // namespace sts
