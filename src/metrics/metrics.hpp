#pragma once

#include <cstdint>

#include "baseline/list_scheduler.hpp"
#include "core/streaming_schedule.hpp"
#include "core/work_depth.hpp"
#include "graph/task_graph.hpp"

namespace sts {

/// Comparison metrics of the paper's evaluation (Section 7).

/// Speedup: sequential execution time T1 over the schedule makespan.
[[nodiscard]] double speedup(std::int64_t total_work, std::int64_t makespan);

/// Streaming Scheduling Length Ratio: makespan over the streaming depth
/// T_s_inf of the DAG (the paper's extension of Topcuoglu's SLR).
[[nodiscard]] double streaming_slr(std::int64_t makespan, const Rational& streaming_depth);

/// PE utilization of a streaming schedule: a task holds its PE from ST to LO
/// (co-scheduled pipelines are non-preemptive), so utilization is
/// sum(LO - ST) / (P * makespan).
[[nodiscard]] double streaming_utilization(const TaskGraph& graph,
                                           const StreamingSchedule& schedule,
                                           std::int64_t num_pes);

/// PE utilization of the non-streaming baseline: busy time is the task work.
[[nodiscard]] double non_streaming_utilization(const TaskGraph& graph,
                                               const ListSchedule& schedule,
                                               std::int64_t num_pes);

}  // namespace sts
