#include "ml/canonical_builder.hpp"

#include <stdexcept>

namespace sts {

Stream CanonicalBuilder::source(std::int64_t volume, std::string name) {
  const NodeId v = graph_.add_source(volume, std::move(name));
  return Stream{v, volume};
}

Stream CanonicalBuilder::compute(std::span<const Stream> inputs, std::int64_t out_volume,
                                 std::string name) {
  if (inputs.empty()) throw std::invalid_argument("compute: needs at least one input");
  for (const Stream& s : inputs) {
    if (s.volume != inputs.front().volume) {
      throw std::invalid_argument("compute '" + name +
                                  "': canonical nodes need equal input volumes (" +
                                  std::to_string(inputs.front().volume) + " vs " +
                                  std::to_string(s.volume) + ")");
    }
  }
  const NodeId v = graph_.add_compute(std::move(name));
  for (const Stream& s : inputs) graph_.add_edge(s.node, v, s.volume);
  graph_.declare_output(v, out_volume);
  return Stream{v, out_volume};
}

Stream CanonicalBuilder::buffer(std::span<const Stream> inputs, std::int64_t out_volume,
                                std::string name) {
  if (inputs.empty()) throw std::invalid_argument("buffer: needs at least one input");
  const NodeId v = graph_.add_buffer(std::move(name));
  for (const Stream& s : inputs) graph_.add_edge(s.node, v, s.volume);
  graph_.declare_output(v, out_volume);
  return Stream{v, out_volume};
}

NodeId CanonicalBuilder::sink(const Stream& input, std::string name) {
  const NodeId v = graph_.add_sink(std::move(name));
  graph_.add_edge(input.node, v, input.volume);
  return v;
}

void CanonicalBuilder::finish(const Stream& stream) {
  graph_.declare_output(stream.node, stream.volume);
}

}  // namespace sts
