#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"

namespace sts {

/// A producer endpoint inside a canonical task graph under construction:
/// node id plus the per-edge volume it emits. Connecting a Stream to a
/// consumer adds one edge carrying `volume` elements.
struct Stream {
  NodeId node = kInvalidNode;
  std::int64_t volume = 0;
};

/// Fluent construction of canonical task graphs. Node types (element-wise,
/// down-/upsampler) emerge from the input/output volumes, exactly as in the
/// paper's model; the builder only distinguishes compute, buffer, source and
/// sink nodes.
class CanonicalBuilder {
 public:
  explicit CanonicalBuilder(TaskGraph& graph) : graph_(graph) {}

  /// Stream read from global memory (inputs, weights).
  [[nodiscard]] Stream source(std::int64_t volume, std::string name);

  /// Computational node consuming every input stream and emitting
  /// `out_volume` per output edge. R(v) = out_volume / I emerges.
  [[nodiscard]] Stream compute(std::span<const Stream> inputs, std::int64_t out_volume,
                               std::string name);
  [[nodiscard]] Stream compute(const Stream& input, std::int64_t out_volume, std::string name) {
    return compute(std::span<const Stream>(&input, 1), out_volume, std::move(name));
  }
  /// Element-wise shortcut: output volume equals input volume.
  [[nodiscard]] Stream elementwise(const Stream& input, std::string name) {
    return compute(input, input.volume, std::move(name));
  }
  [[nodiscard]] Stream elementwise(std::span<const Stream> inputs, std::string name) {
    return compute(inputs, inputs.empty() ? 0 : inputs.front().volume, std::move(name));
  }

  /// Buffer node (backing memory): absorbs the inputs, then emits
  /// `out_volume` per output edge (replication/reshape/replay).
  [[nodiscard]] Stream buffer(std::span<const Stream> inputs, std::int64_t out_volume,
                              std::string name);
  [[nodiscard]] Stream buffer(const Stream& input, std::int64_t out_volume, std::string name) {
    return buffer(std::span<const Stream>(&input, 1), out_volume, std::move(name));
  }

  /// Terminal store to global memory (optional; exit computes may simply
  /// declare their output instead).
  NodeId sink(const Stream& input, std::string name);

  /// Marks a compute node as writing its stream to memory (exit node).
  void finish(const Stream& stream);

  [[nodiscard]] TaskGraph& graph() noexcept { return graph_; }

 private:
  TaskGraph& graph_;
};

}  // namespace sts
