#include "ml/models.hpp"

#include <array>
#include <stdexcept>
#include <string>
#include <vector>

#include "ml/canonical_builder.hpp"
#include "ml/ops.hpp"

namespace sts {

ModelStats stats_of(const TaskGraph& graph) {
  ModelStats stats;
  stats.nodes = static_cast<std::int64_t>(graph.node_count());
  stats.edges = static_cast<std::int64_t>(graph.edge_count());
  for (NodeId v = 0; static_cast<std::size_t>(v) < graph.node_count(); ++v) {
    if (graph.kind(v) == NodeKind::kBuffer) {
      ++stats.buffer_nodes;
    } else {
      ++stats.pe_tasks;
    }
  }
  stats.total_work = graph.total_work();
  return stats;
}

TaskGraph build_transformer_encoder(const TransformerConfig& config) {
  const std::int64_t s = config.seq_len;
  const std::int64_t d = config.d_model;
  const std::int64_t h = config.heads;
  const std::int64_t dff = config.d_ff;
  if (h <= 0 || d % h != 0) {
    throw std::invalid_argument("build_transformer_encoder: d_model must divide by heads");
  }
  const std::int64_t dk = d / h;

  TaskGraph graph;
  CanonicalBuilder b(graph);
  const Stream x = b.source(s * d, "x");

  // Q/K/V projections: column-parallel matmuls against resident weights.
  const MatmulExpansion q = matmul_weights(b, x, s, d, d, "q", /*merge_output=*/false);
  const MatmulExpansion kp = matmul_weights(b, x, s, d, d, "k", /*merge_output=*/false);
  const MatmulExpansion v = matmul_weights(b, x, s, d, d, "v", /*merge_output=*/false);

  // Per-head scaled dot-product attention.
  std::vector<Stream> head_columns;
  head_columns.reserve(static_cast<std::size_t>(d));
  for (std::int64_t head = 0; head < h; ++head) {
    const std::string hn = "h" + std::to_string(head);
    const auto slice = [&](const MatmulExpansion& m) {
      return std::span<const Stream>(m.column_streams)
          .subspan(static_cast<std::size_t>(head * dk), static_cast<std::size_t>(dk));
    };
    // Reshape Q_h column streams to a row-major stream (buffer), stream it
    // to the S score tasks; K_h is buffered and replayed column by column.
    const Stream q_rows = b.buffer(slice(q), s * dk, hn + "/qbuf");
    const Stream q_rep = b.elementwise(q_rows, hn + "/qrep");
    const Stream k_replay = b.buffer(slice(kp), s * dk, hn + "/kbuf");
    std::vector<Stream> score_cols;
    score_cols.reserve(static_cast<std::size_t>(s));
    for (std::int64_t j = 0; j < s; ++j) {
      const std::array<Stream, 2> ins{q_rep, k_replay};
      score_cols.push_back(b.compute(ins, s, hn + "/score" + std::to_string(j)));
    }
    const Stream scores = b.compute(score_cols, s * s, hn + "/scores");
    const Stream probs = softmax(b, scores, s, s, hn + "/softmax");

    // attention . V_h: probs (S x S) streamed, V_h buffered and replayed.
    const Stream probs_rep = b.elementwise(probs, hn + "/prep");
    const Stream v_replay = b.buffer(slice(v), s * s, hn + "/vbuf");
    for (std::int64_t j = 0; j < dk; ++j) {
      const std::array<Stream, 2> ins{probs_rep, v_replay};
      head_columns.push_back(b.compute(ins, s, hn + "/out" + std::to_string(j)));
    }
  }

  // Concatenate heads (reshape buffer) and apply the output projection. The
  // residual stream is buffered: streaming it directly from x would close a
  // cycle over weakly connected components through the attention buffers,
  // which Section 4.2.3 forbids (it would need unbounded implicit buffering).
  const Stream concat = b.buffer(head_columns, s * d, "concat");
  const MatmulExpansion proj = matmul_weights(b, concat, s, d, d, "wo");
  const Stream residual1 = b.buffer(x, s * d, "res1");
  const std::array<Stream, 2> add1_ins{proj.out, residual1};
  const Stream add1 = b.elementwise(add1_ins, "add1");
  const Stream ln1 = layer_norm(b, add1, s, d, "ln1");

  // Position-wise feed-forward network with residual.
  const MatmulExpansion ff1 = matmul_weights(b, ln1, s, d, dff, "ff1");
  const Stream act = b.elementwise(ff1.out, "gelu");
  const MatmulExpansion ff2 = matmul_weights(b, act, s, dff, d, "ff2");
  const std::array<Stream, 2> add2_ins{ff2.out, ln1};
  const Stream add2 = b.elementwise(add2_ins, "add2");
  const Stream out = layer_norm(b, add2, s, d, "ln2");
  b.finish(out);
  return graph;
}

namespace {

struct StageSpec {
  int blocks;
  std::int64_t mid;
  std::int64_t out;
  std::int64_t stride;
};

Stream bottleneck(CanonicalBuilder& b, const Stream& input, std::int64_t in_channels,
                  const StageSpec& stage, std::int64_t hw, bool first_in_stage,
                  const std::string& name) {
  const std::int64_t stride = first_in_stage ? stage.stride : 1;
  const std::int64_t out_hw = hw / stride;

  const ConvExpansion c1 =
      conv2d_bn(b, input, ConvSpec{in_channels, stage.mid, hw, hw, 1, 1, 0}, name + "/c1");
  const Stream r1 = b.elementwise(c1.out, name + "/r1");
  const ConvExpansion c2 =
      conv2d_bn(b, r1, ConvSpec{stage.mid, stage.mid, hw, hw, 3, stride, 1}, name + "/c2");
  const Stream r2 = b.elementwise(c2.out, name + "/r2");
  const ConvExpansion c3 = conv2d_bn(
      b, r2, ConvSpec{stage.mid, stage.out, out_hw, out_hw, 1, 1, 0}, name + "/c3");

  // The skip connection is buffered: the main path passes through the 3x3
  // conv's im2col buffer, so streaming the skip would close a WCC cycle
  // through that buffer (Section 4.2.3).
  Stream shortcut;
  if (first_in_stage || in_channels != stage.out) {
    // Strided projections buffer inside conv2d_bn (pixel selection); the
    // stride-1 projection streams, so decouple its input explicitly.
    Stream proj_in = input;
    if (stride == 1) proj_in = b.buffer(input, input.volume, name + "/skipbuf");
    shortcut = conv2d_bn(b, proj_in, ConvSpec{in_channels, stage.out, hw, hw, 1, stride, 0},
                         name + "/proj")
                   .out;
  } else {
    shortcut = b.buffer(input, input.volume, name + "/skip");
  }
  const std::array<Stream, 2> add_ins{c3.out, shortcut};
  const Stream added = b.elementwise(add_ins, name + "/add");
  return b.elementwise(added, name + "/relu");
}

}  // namespace

TaskGraph build_resnet50(const ResNetConfig& config) {
  if (config.image % 32 != 0) {
    throw std::invalid_argument("build_resnet50: image size must be a multiple of 32");
  }
  TaskGraph graph;
  CanonicalBuilder b(graph);

  std::int64_t hw = config.image;
  const Stream x = b.source(3 * hw * hw, "x");
  const ConvExpansion stem = conv2d_bn(b, x, ConvSpec{3, 64, hw, hw, 7, 2, 3}, "stem");
  hw /= 2;
  const Stream stem_relu = b.elementwise(stem.out, "stem/relu");
  Stream cursor = max_pool(b, stem_relu, 64, hw, hw, 3, 2, 1, "stem/pool");
  hw /= 2;

  const std::array<StageSpec, 4> stages{StageSpec{3, 64, 256, 1}, StageSpec{4, 128, 512, 2},
                                        StageSpec{6, 256, 1024, 2}, StageSpec{3, 512, 2048, 2}};
  std::int64_t channels = 64;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const StageSpec& stage = stages[s];
    for (int blk = 0; blk < stage.blocks; ++blk) {
      const std::string name = "s" + std::to_string(s + 2) + "b" + std::to_string(blk);
      cursor = bottleneck(b, cursor, channels, stage, hw, blk == 0, name);
      if (blk == 0) hw /= stage.stride;
      channels = stage.out;
    }
  }

  const Stream pooled = global_avg_pool(b, cursor, channels, hw * hw, "gap");
  const MatmulExpansion fc = matmul_weights(b, pooled, 1, channels, config.num_classes, "fc");
  b.finish(fc.out);
  return graph;
}

}  // namespace sts
