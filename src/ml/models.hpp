#pragma once

#include <cstdint>

#include "graph/task_graph.hpp"

namespace sts {

/// Aggregate statistics of a built model graph (paper Section 7.3 quotes
/// node and buffer counts for its ML task graphs).
struct ModelStats {
  std::int64_t nodes = 0;
  std::int64_t edges = 0;
  std::int64_t buffer_nodes = 0;
  std::int64_t pe_tasks = 0;
  std::int64_t total_work = 0;
};

[[nodiscard]] ModelStats stats_of(const TaskGraph& graph);

/// Configuration of one transformer encoder layer (Vaswani et al. [34],
/// base model by default; the sequence length trades graph size for build
/// time).
struct TransformerConfig {
  std::int64_t seq_len = 64;
  std::int64_t d_model = 512;
  std::int64_t heads = 8;
  std::int64_t d_ff = 2048;
};

/// Canonical task graph of one transformer encoder layer: Q/K/V projections,
/// per-head scaled dot-product attention with the Figure 5 softmax, output
/// projection, residual adds, layer norms, and the position-wise FFN. Every
/// MatMul uses the column-parallel expansion (Figure 3, graph 2), the
/// implementation that maximizes parallelism for these shapes.
[[nodiscard]] TaskGraph build_transformer_encoder(const TransformerConfig& config = {});

/// Configuration of the ResNet-50 build (He et al. [15]); `image` scales the
/// input resolution (224 reproduces the paper's ImageNet setting).
struct ResNetConfig {
  std::int64_t image = 224;
  std::int64_t num_classes = 1000;
};

/// Canonical task graph of ResNet-50 inference: every convolution is lowered
/// to a matrix multiplication via im2col (Section 7.3) and expanded
/// row-parallel with one dot task per output channel; batch normalization
/// folds into the channel-merge node; ReLU/add are element-wise tasks;
/// max/global pooling are downsamplers behind window-replication buffers.
[[nodiscard]] TaskGraph build_resnet50(const ResNetConfig& config = {});

}  // namespace sts
