#include "ml/ops.hpp"

#include <array>
#include <stdexcept>

namespace sts {

namespace {

/// Shared core of the parallel matmul variants: `a_volume`-sized A stream is
/// replicated to `m` dot tasks; `column_source` yields the second operand
/// stream for task j (weight replay or buffer replay).
MatmulExpansion parallel_columns(CanonicalBuilder& builder, const Stream& a_replicated,
                                 const Stream& b_replayed, std::int64_t n, std::int64_t m,
                                 const std::string& name, bool merge_output) {
  MatmulExpansion result;
  result.column_streams.reserve(static_cast<std::size_t>(m));
  for (std::int64_t j = 0; j < m; ++j) {
    const std::array<Stream, 2> ins{a_replicated, b_replayed};
    result.column_streams.push_back(
        builder.compute(ins, n, name + "/mv" + std::to_string(j)));
    ++result.tasks;
  }
  if (merge_output) {
    result.out =
        builder.compute(result.column_streams, n * m, name + "/interleave");
    ++result.tasks;
  } else if (m == 1) {
    result.out = result.column_streams.front();
  }
  return result;
}

}  // namespace

MatmulExpansion matmul_weights(CanonicalBuilder& builder, const Stream& a, std::int64_t n,
                               std::int64_t k, std::int64_t m, const std::string& name,
                               bool merge_output) {
  if (a.volume != n * k) throw std::invalid_argument("matmul_weights: |A| != N*K");
  const Stream rep = builder.elementwise(a, name + "/repA");
  // One weight source; every out-edge replays one filter column N times.
  const Stream w = builder.source(n * k, name + "/W");
  MatmulExpansion result = parallel_columns(builder, rep, w, n, m, name, merge_output);
  ++result.tasks;  // the replicator occupies a PE
  return result;
}

MatmulExpansion matmul_activations(CanonicalBuilder& builder, const Stream& a, const Stream& b,
                                   std::int64_t n, std::int64_t k, std::int64_t m,
                                   const std::string& name, bool merge_output) {
  if (a.volume != n * k) throw std::invalid_argument("matmul_activations: |A| != N*K");
  if (b.volume != k * m) throw std::invalid_argument("matmul_activations: |B| != K*M");
  const Stream rep = builder.elementwise(a, name + "/repA");
  const Stream b_buf = builder.buffer(b, n * k, name + "/B");  // column replay, N times
  MatmulExpansion result = parallel_columns(builder, rep, b_buf, n, m, name, merge_output);
  ++result.tasks;
  return result;
}

Stream matmul_inner_product(CanonicalBuilder& builder, const Stream& a, const Stream& b,
                            std::int64_t n, std::int64_t k, std::int64_t m,
                            const std::string& name) {
  if (a.volume != n * k || b.volume != k * m) {
    throw std::invalid_argument("matmul_inner_product: operand volume mismatch");
  }
  const Stream a_buf = builder.buffer(a, n * k * m, name + "/Abuf");
  const Stream b_buf = builder.buffer(b, n * k * m, name + "/Bbuf");
  const std::array<Stream, 2> ins{a_buf, b_buf};
  return builder.compute(ins, n * m, name + "/dot");  // downsampler R = 1/K
}

MatmulExpansion matmul_outer_product(CanonicalBuilder& builder, const Stream& a, const Stream& b,
                                     std::int64_t n, std::int64_t k, std::int64_t m,
                                     const std::string& name) {
  if (a.volume != n * k || b.volume != k * m) {
    throw std::invalid_argument("matmul_outer_product: operand volume mismatch");
  }
  MatmulExpansion result;
  // The buffers replay, per task i, column i of A with each element repeated
  // M times and row i of B repeated N times (N*M elements each), so every
  // multiply task is element-wise and computes one rank-1 update (N*M work).
  const Stream a_buf = builder.buffer(a, n * m, name + "/Abuf");
  const Stream b_buf = builder.buffer(b, n * m, name + "/Bbuf");
  std::vector<Stream> partial;
  partial.reserve(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    const std::array<Stream, 2> ins{a_buf, b_buf};
    partial.push_back(builder.compute(ins, n * m, name + "/mul" + std::to_string(i)));
    ++result.tasks;
  }
  // Binary tree of element-wise sums.
  while (partial.size() > 1) {
    std::vector<Stream> next;
    next.reserve(partial.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < partial.size(); i += 2) {
      const std::array<Stream, 2> ins{partial[i], partial[i + 1]};
      next.push_back(builder.compute(
          ins, n * m, name + "/sum" + std::to_string(next.size()) + "_" +
                          std::to_string(partial.size())));
      ++result.tasks;
    }
    if (partial.size() % 2 == 1) next.push_back(partial.back());
    partial = std::move(next);
  }
  result.out = partial.front();
  return result;
}

Stream outer_product(CanonicalBuilder& builder, const Stream& u, const Stream& v, std::int64_t n,
                     std::int64_t m, const std::string& name) {
  if (u.volume != n || v.volume != m) {
    throw std::invalid_argument("outer_product: operand volume mismatch");
  }
  const Stream u_rep = builder.compute(u, n * m, name + "/U");  // upsampler R = M
  const Stream v_buf = builder.buffer(v, n * m, name + "/Vbuf");
  const std::array<Stream, 2> ins{u_rep, v_buf};
  return builder.compute(ins, n * m, name + "/mul");
}

Stream vector_normalize_buffered(CanonicalBuilder& builder, const Stream& x, std::int64_t n,
                                 const std::string& name) {
  if (x.volume != n) throw std::invalid_argument("vector_normalize: |x| != n");
  const Stream x_buf = builder.buffer(x, n, name + "/xbuf");
  const Stream norm = builder.compute(x_buf, 1, name + "/nrm");  // downsampler R = 1/N
  const Stream norm_buf = builder.buffer(norm, n, name + "/nbuf");
  const std::array<Stream, 2> ins{x_buf, norm_buf};
  return builder.compute(ins, n, name + "/div");
}

Stream vector_normalize_streamed(CanonicalBuilder& builder, const Stream& x, std::int64_t n,
                                 const std::string& name) {
  if (x.volume != n) throw std::invalid_argument("vector_normalize: |x| != n");
  const Stream norm = builder.compute(x, 1, name + "/nrm");
  const Stream up = builder.compute(norm, n, name + "/U");  // upsampler R = N
  const std::array<Stream, 2> ins{x, up};
  return builder.compute(ins, n, name + "/div");
}

Stream softmax(CanonicalBuilder& builder, const Stream& x, std::int64_t rows, std::int64_t cols,
               const std::string& name) {
  const std::int64_t total = rows * cols;
  if (x.volume != total) throw std::invalid_argument("softmax: |x| != rows*cols");
  const Stream row_max = builder.compute(x, rows, name + "/max");      // R = 1/cols
  const Stream x_buf = builder.buffer(x, total, name + "/xbuf");       // x replayed
  const Stream max_buf = builder.buffer(row_max, total, name + "/maxbuf");
  const std::array<Stream, 2> sub_ins{x_buf, max_buf};
  const Stream sub = builder.compute(sub_ins, total, name + "/sub");
  const Stream expd = builder.compute(sub, total, name + "/exp");
  const Stream row_sum = builder.compute(expd, rows, name + "/sum");   // R = 1/cols
  const Stream exp_buf = builder.buffer(expd, total, name + "/expbuf");
  const Stream sum_buf = builder.buffer(row_sum, total, name + "/sumbuf");
  const std::array<Stream, 2> div_ins{exp_buf, sum_buf};
  return builder.compute(div_ins, total, name + "/div");
}

Stream layer_norm(CanonicalBuilder& builder, const Stream& x, std::int64_t rows,
                  std::int64_t cols, const std::string& name) {
  const std::int64_t total = rows * cols;
  if (x.volume != total) throw std::invalid_argument("layer_norm: |x| != rows*cols");
  const Stream mean = builder.compute(x, rows, name + "/mean");  // R = 1/cols
  const Stream x_buf = builder.buffer(x, total, name + "/xbuf");
  const Stream mean_buf = builder.buffer(mean, total, name + "/meanbuf");
  const std::array<Stream, 2> sub_ins{x_buf, mean_buf};
  const Stream centered = builder.compute(sub_ins, total, name + "/sub");
  const Stream squared = builder.compute(centered, total, name + "/sq");
  const Stream var = builder.compute(squared, rows, name + "/var");
  const Stream rstd = builder.compute(var, rows, name + "/rstd");
  const Stream centered_buf = builder.buffer(centered, total, name + "/cbuf");
  const Stream rstd_buf = builder.buffer(rstd, total, name + "/rstdbuf");
  const std::array<Stream, 2> norm_ins{centered_buf, rstd_buf};
  const Stream normalized = builder.compute(norm_ins, total, name + "/norm");
  const Stream affine_w = builder.source(total, name + "/gamma_beta");
  const std::array<Stream, 2> affine_ins{normalized, affine_w};
  return builder.compute(affine_ins, total, name + "/affine");
}

ConvExpansion conv2d_bn(CanonicalBuilder& builder, const Stream& input, const ConvSpec& spec,
                        const std::string& name) {
  const std::int64_t in_total = spec.in_channels * spec.in_height * spec.in_width;
  if (input.volume != in_total) {
    throw std::invalid_argument("conv2d_bn '" + name + "': input volume mismatch");
  }
  const std::int64_t pixels = spec.out_height() * spec.out_width();
  const std::int64_t depth = spec.kernel * spec.kernel * spec.in_channels;  // im2col rows

  // im2col: overlapping windows re-read input elements -> buffer node. The
  // 1x1 stride-1 case reads every element exactly once and streams directly.
  Stream columns = input;
  if (!(spec.kernel == 1 && spec.stride == 1 && spec.padding == 0)) {
    columns = builder.buffer(input, depth * pixels, name + "/im2col");
  }

  ConvExpansion result;
  const Stream rep = builder.elementwise(columns, name + "/rep");
  const Stream w = builder.source(depth * pixels, name + "/W");  // filter rows replayed
  std::vector<Stream> channels;
  channels.reserve(static_cast<std::size_t>(spec.out_channels));
  for (std::int64_t c = 0; c < spec.out_channels; ++c) {
    const std::array<Stream, 2> ins{rep, w};
    channels.push_back(builder.compute(ins, pixels, name + "/oc" + std::to_string(c)));
  }
  // The per-channel columns land in the output buffer (Figure 3 graph 2
  // stores C in B[NM]); batch normalization streams out of it. Pipelining
  // then happens between BN, ReLU, and pooling, as the paper describes for
  // Resnet-50.
  const Stream out_buffer =
      builder.buffer(channels, spec.out_channels * pixels, name + "/C");
  result.out = builder.elementwise(out_buffer, name + "/bn");
  result.tasks = static_cast<int>(spec.out_channels) + 2;
  return result;
}

Stream max_pool(CanonicalBuilder& builder, const Stream& input, std::int64_t channels,
                std::int64_t in_height, std::int64_t in_width, std::int64_t window,
                std::int64_t stride, std::int64_t padding, const std::string& name) {
  if (input.volume != channels * in_height * in_width) {
    throw std::invalid_argument("max_pool: input volume mismatch");
  }
  const std::int64_t out_h = (in_height + 2 * padding - window) / stride + 1;
  const std::int64_t out_w = (in_width + 2 * padding - window) / stride + 1;
  const std::int64_t windows = channels * out_h * out_w;
  const Stream expanded = builder.buffer(input, windows * window * window, name + "/windows");
  return builder.compute(expanded, windows, name + "/max");  // R = 1/window^2
}

Stream global_avg_pool(CanonicalBuilder& builder, const Stream& input, std::int64_t channels,
                       std::int64_t spatial, const std::string& name) {
  if (input.volume != channels * spatial) {
    throw std::invalid_argument("global_avg_pool: input volume mismatch");
  }
  return builder.compute(input, channels, name + "/gap");  // R = 1/spatial
}

}  // namespace sts
