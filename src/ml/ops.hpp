#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/canonical_builder.hpp"

namespace sts {

/// Canonical expansions of ML operators (paper Section 3.2). Each helper
/// appends a canonical subgraph and returns the output stream(s).

/// Result of a parallel matrix multiply expansion.
struct MatmulExpansion {
  Stream out;                        ///< merged output stream (N*M elements)
  std::vector<Stream> column_streams;  ///< per-task output columns (M streams of N)
  int tasks = 0;                     ///< number of dot-product PE tasks spawned
};

/// C = A (N x K) . B (K x M), B resident weights (Figure 3, graph 2 family):
/// M parallel matrix-vector tasks, each receiving the streamed A (replicated
/// by an element-wise node) and its weight column replayed N times from
/// memory. Each task is a downsampler with R = 1/K producing one column of C
/// (N elements). `merge_output` adds the interleaving node producing the
/// row-major C stream.
[[nodiscard]] MatmulExpansion matmul_weights(CanonicalBuilder& builder, const Stream& a,
                                             std::int64_t n, std::int64_t k, std::int64_t m,
                                             const std::string& name, bool merge_output = true);

/// C = A (N x K) . B (K x M) where B is itself an activation stream: B is
/// stored in a buffer node [K*M] and replayed N times to each of the M
/// column tasks (Figure 3, graph 2).
[[nodiscard]] MatmulExpansion matmul_activations(CanonicalBuilder& builder, const Stream& a,
                                                 const Stream& b, std::int64_t n, std::int64_t k,
                                                 std::int64_t m, const std::string& name,
                                                 bool merge_output = true);

/// Naive inner-product implementation (Figure 3, graph 1): both operands
/// buffered and fully replayed into a single downsampler with R = 1/K.
[[nodiscard]] Stream matmul_inner_product(CanonicalBuilder& builder, const Stream& a,
                                          const Stream& b, std::int64_t n, std::int64_t k,
                                          std::int64_t m, const std::string& name);

/// Outer-product implementation parallelizing along K (Figure 3, graph 3):
/// K element-wise multiply tasks (one per column of A / row of B) followed
/// by a binary tree of element-wise sum tasks.
[[nodiscard]] MatmulExpansion matmul_outer_product(CanonicalBuilder& builder, const Stream& a,
                                                   const Stream& b, std::int64_t n,
                                                   std::int64_t k, std::int64_t m,
                                                   const std::string& name);

/// Outer product u (N) x v^T (M) with u streamed and v buffered (Figure 2,
/// graph 1): upsampler replicating u M times, buffer replaying v N times,
/// element-wise multiplier emitting A row-major (N*M).
[[nodiscard]] Stream outer_product(CanonicalBuilder& builder, const Stream& u, const Stream& v,
                                   std::int64_t n, std::int64_t m, const std::string& name);

/// Vector normalization y = x / ||x|| (Figure 4, graph 1: buffered variant).
[[nodiscard]] Stream vector_normalize_buffered(CanonicalBuilder& builder, const Stream& x,
                                               std::int64_t n, const std::string& name);

/// Vector normalization with x streamed to both consumers (Figure 4,
/// graph 2); requires Eq. 5 buffer space to avoid deadlock.
[[nodiscard]] Stream vector_normalize_streamed(CanonicalBuilder& builder, const Stream& x,
                                               std::int64_t n, const std::string& name);

/// Numerically stable softmax over `rows` rows of `cols` elements
/// (Figure 5): max-reduce, subtract, exponentiate, sum-reduce, divide, with
/// buffer nodes for the replayed x / e^x streams and the per-row scalars.
[[nodiscard]] Stream softmax(CanonicalBuilder& builder, const Stream& x, std::int64_t rows,
                             std::int64_t cols, const std::string& name);

/// Layer normalization over `rows` rows of `cols` elements with affine
/// parameters resident in memory.
[[nodiscard]] Stream layer_norm(CanonicalBuilder& builder, const Stream& x, std::int64_t rows,
                                std::int64_t cols, const std::string& name);

/// Convolution lowered to matrix multiplication with im2col (paper
/// Section 7.3, Chellapilla et al. [5]). The input stream (c_in * h * w) is
/// buffered (im2col replication), then multiplied row-parallel against the
/// resident filter bank: one task per output channel. Fuses the trailing
/// batch-norm as the merging element-wise node. For 1x1 stride-1 kernels the
/// im2col buffer degenerates to the identity and is skipped (each element is
/// read once, so the input can stream straight into the tasks).
struct ConvSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t in_height = 0;
  std::int64_t in_width = 0;
  std::int64_t kernel = 1;
  std::int64_t stride = 1;
  std::int64_t padding = 0;

  [[nodiscard]] std::int64_t out_height() const {
    return (in_height + 2 * padding - kernel) / stride + 1;
  }
  [[nodiscard]] std::int64_t out_width() const {
    return (in_width + 2 * padding - kernel) / stride + 1;
  }
};

struct ConvExpansion {
  Stream out;       ///< batch-normalized output stream (c_out * h' * w')
  int tasks = 0;    ///< PE tasks spawned (dot tasks + glue)
};

[[nodiscard]] ConvExpansion conv2d_bn(CanonicalBuilder& builder, const Stream& input,
                                      const ConvSpec& spec, const std::string& name);

/// Max pooling (window x window, stride, padding): buffer replication
/// (overlapping windows re-read elements) followed by a 1/window^2
/// downsampler.
[[nodiscard]] Stream max_pool(CanonicalBuilder& builder, const Stream& input,
                              std::int64_t channels, std::int64_t in_height,
                              std::int64_t in_width, std::int64_t window, std::int64_t stride,
                              std::int64_t padding, const std::string& name);

/// Global average pooling: one downsampler with R = 1 / (h*w).
[[nodiscard]] Stream global_avg_pool(CanonicalBuilder& builder, const Stream& input,
                                     std::int64_t channels, std::int64_t spatial,
                                     const std::string& name);

}  // namespace sts
