#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace sts {

namespace {

constexpr std::string_view kHeadEnd = "\r\n\r\n";

[[nodiscard]] bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

[[nodiscard]] std::string_view trim_ows(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Shared head scan: splits the start line off, then walks header lines
/// calling `on_header(name, value)`. Returns false (setting `error`) on a
/// malformed line.
template <typename OnHeader>
[[nodiscard]] bool parse_head(std::string_view head, std::string_view& start_line,
                              OnHeader&& on_header, std::string& error) {
  std::size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) {
    error = "missing CRLF after start line";
    return false;
  }
  start_line = head.substr(0, line_end);
  std::size_t pos = line_end + 2;
  while (pos < head.size()) {
    line_end = head.find("\r\n", pos);
    if (line_end == std::string_view::npos) line_end = head.size();
    const std::string_view line = head.substr(pos, line_end - pos);
    pos = line_end + 2;
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      error = "malformed header line";
      return false;
    }
    on_header(trim_ows(line.substr(0, colon)), trim_ows(line.substr(colon + 1)));
  }
  return true;
}

struct CommonHeaders {
  bool keep_alive = true;  ///< HTTP/1.1 default
  bool has_length = false;
  std::size_t content_length = 0;
  bool bad_length = false;
  bool transfer_encoding = false;
};

[[nodiscard]] CommonHeaders scan_header(std::string_view name, std::string_view value,
                                        CommonHeaders headers) {
  if (iequals(name, "content-length")) {
    if (headers.has_length) {
      headers.bad_length = true;  // duplicate framing header: request smuggling
      return headers;
    }
    std::size_t length = 0;
    const auto [end, ec] = std::from_chars(value.data(), value.data() + value.size(), length);
    if (ec != std::errc() || end != value.data() + value.size()) {
      headers.bad_length = true;
      return headers;
    }
    headers.has_length = true;
    headers.content_length = length;
  } else if (iequals(name, "connection")) {
    if (iequals(value, "close")) headers.keep_alive = false;
    if (iequals(value, "keep-alive")) headers.keep_alive = true;
  } else if (iequals(name, "transfer-encoding")) {
    headers.transfer_encoding = true;
  }
  return headers;
}

}  // namespace

HttpRequestParse parse_http_request(std::string_view input, const HttpLimits& limits) {
  HttpRequestParse out;
  const std::size_t head_end = input.find(kHeadEnd);
  if (head_end == std::string_view::npos) {
    if (input.size() > limits.max_head_bytes) {
      out.status = HttpParseStatus::kError;
      out.error_status = 413;
      out.error = "request head exceeds " + std::to_string(limits.max_head_bytes) + " bytes";
    }
    return out;
  }
  if (head_end > limits.max_head_bytes) {
    out.status = HttpParseStatus::kError;
    out.error_status = 413;
    out.error = "request head exceeds " + std::to_string(limits.max_head_bytes) + " bytes";
    return out;
  }

  std::string_view start_line;
  CommonHeaders headers;
  const bool head_ok = parse_head(
      input.substr(0, head_end + 2), start_line,
      [&headers](std::string_view name, std::string_view value) {
        headers = scan_header(name, value, headers);
      },
      out.error);
  if (!head_ok) {
    out.status = HttpParseStatus::kError;
    out.error_status = 400;
    return out;
  }

  // METHOD SP request-target SP HTTP-version
  const std::size_t sp1 = start_line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : start_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp1 == 0 || sp2 == sp1 + 1 ||
      start_line.find(' ', sp2 + 1) != std::string_view::npos) {
    out.status = HttpParseStatus::kError;
    out.error_status = 400;
    out.error = "malformed request line";
    return out;
  }
  const std::string_view version = start_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    out.status = HttpParseStatus::kError;
    out.error_status = 400;
    out.error = "unsupported HTTP version";
    return out;
  }
  if (headers.transfer_encoding) {
    out.status = HttpParseStatus::kError;
    out.error_status = 501;
    out.error = "Transfer-Encoding is not supported; use Content-Length";
    return out;
  }
  if (headers.bad_length) {
    out.status = HttpParseStatus::kError;
    out.error_status = 400;
    out.error = "invalid Content-Length";
    return out;
  }
  if (headers.content_length > limits.max_body_bytes) {
    out.status = HttpParseStatus::kError;
    out.error_status = 413;
    out.error = "body of " + std::to_string(headers.content_length) + " bytes exceeds the " +
                std::to_string(limits.max_body_bytes) + "-byte limit";
    return out;
  }
  const std::size_t total = head_end + kHeadEnd.size() + headers.content_length;
  if (input.size() < total) return out;  // kNeedMore

  out.status = HttpParseStatus::kComplete;
  out.consumed = total;
  out.request.method = std::string(start_line.substr(0, sp1));
  out.request.target = std::string(start_line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.request.keep_alive = headers.keep_alive && version == "HTTP/1.1";
  out.request.body = std::string(input.substr(head_end + kHeadEnd.size(),
                                              headers.content_length));
  return out;
}

HttpResponseParse parse_http_response(std::string_view input, const HttpLimits& limits) {
  HttpResponseParse out;
  const std::size_t head_end = input.find(kHeadEnd);
  if (head_end == std::string_view::npos) {
    if (input.size() > limits.max_head_bytes) {
      out.status = HttpParseStatus::kError;
      out.error = "response head exceeds " + std::to_string(limits.max_head_bytes) + " bytes";
    }
    return out;
  }

  std::string_view start_line;
  CommonHeaders headers;
  const bool head_ok = parse_head(
      input.substr(0, head_end + 2), start_line,
      [&headers](std::string_view name, std::string_view value) {
        headers = scan_header(name, value, headers);
      },
      out.error);
  if (!head_ok) {
    out.status = HttpParseStatus::kError;
    return out;
  }

  // HTTP-version SP status-code SP reason-phrase
  if (start_line.substr(0, 9) != "HTTP/1.1 " && start_line.substr(0, 9) != "HTTP/1.0 ") {
    out.status = HttpParseStatus::kError;
    out.error = "malformed status line";
    return out;
  }
  const std::string_view rest = start_line.substr(9);
  int code = 0;
  const auto [end, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), code);
  if (ec != std::errc() || end != rest.data() + 3 || code < 100 || code > 599) {
    out.status = HttpParseStatus::kError;
    out.error = "malformed status code";
    return out;
  }
  if (headers.transfer_encoding || headers.bad_length) {
    out.status = HttpParseStatus::kError;
    out.error = headers.transfer_encoding ? "Transfer-Encoding is not supported"
                                          : "invalid Content-Length";
    return out;
  }
  if (headers.content_length > limits.max_body_bytes) {
    out.status = HttpParseStatus::kError;
    out.error = "body of " + std::to_string(headers.content_length) + " bytes exceeds the " +
                std::to_string(limits.max_body_bytes) + "-byte limit";
    return out;
  }
  const std::size_t total = head_end + kHeadEnd.size() + headers.content_length;
  if (input.size() < total) return out;  // kNeedMore

  out.status = HttpParseStatus::kComplete;
  out.consumed = total;
  out.response.status = code;
  out.response.keep_alive = headers.keep_alive && start_line.substr(0, 9) == "HTTP/1.1 ";
  out.response.body = std::string(input.substr(head_end + kHeadEnd.size(),
                                               headers.content_length));
  return out;
}

const char* http_status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 413: return "Payload Too Large";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string render_http_response(int status, std::string_view body, bool keep_alive) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += http_status_reason(status);
  out += "\r\nContent-Type: application/json\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

std::string render_http_request(std::string_view method, std::string_view target,
                                std::string_view body) {
  std::string out(method);
  out += ' ';
  out += target;
  out += " HTTP/1.1\r\nHost: sts\r\n";
  if (!body.empty()) {
    out += "Content-Type: application/json\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace sts
