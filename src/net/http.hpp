#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace sts {

/// Resource bounds applied while parsing HTTP messages off the wire. Both
/// overruns produce a parse error (server side: a 413 reply) instead of
/// unbounded buffering.
struct HttpLimits {
  std::size_t max_head_bytes = 16 * 1024;       ///< request/status line + headers
  std::size_t max_body_bytes = 8 * 1024 * 1024; ///< Content-Length cap
};

/// One parsed HTTP/1.1 request (the subset the wire protocol uses:
/// Content-Length framing only — no chunked encoding, no trailers).
struct HttpRequest {
  std::string method;  ///< "GET", "POST"
  std::string target;  ///< origin-form, e.g. "/v1/schedule"
  bool keep_alive = true;
  std::string body;
};

/// One parsed HTTP/1.1 response (client side).
struct HttpResponse {
  int status = 0;
  bool keep_alive = true;
  std::string body;
};

/// Incremental parse outcome over a growing connection buffer.
enum class HttpParseStatus : int {
  kNeedMore,  ///< the buffer does not hold a full message yet
  kComplete,  ///< one message parsed; `consumed` bytes can be dropped
  kError,     ///< protocol violation or limit overrun; close the connection
};

struct HttpRequestParse {
  HttpParseStatus status = HttpParseStatus::kNeedMore;
  HttpRequest request;        ///< valid iff kComplete
  std::size_t consumed = 0;   ///< bytes of `input` the message occupied
  int error_status = 0;       ///< suggested reply on kError: 400, 413, 501
  std::string error;          ///< human detail on kError
};

struct HttpResponseParse {
  HttpParseStatus status = HttpParseStatus::kNeedMore;
  HttpResponse response;  ///< valid iff kComplete
  std::size_t consumed = 0;
  std::string error;  ///< human detail on kError
};

/// Tries to parse one complete HTTP/1.1 request from the front of `input`.
/// Strict on what the wire protocol needs, tolerant of nothing it doesn't:
/// HTTP/1.1 only, Content-Length framing (absent = no body), Connection
/// close/keep-alive. Transfer-Encoding is refused with 501 — the protocol
/// never chunks. Never throws: a violation comes back as kError with the
/// status code the server should answer before closing.
[[nodiscard]] HttpRequestParse parse_http_request(std::string_view input,
                                                  const HttpLimits& limits);

/// Tries to parse one complete HTTP/1.1 response from the front of `input`
/// (client side). Same framing subset as parse_http_request.
[[nodiscard]] HttpResponseParse parse_http_response(std::string_view input,
                                                    const HttpLimits& limits);

/// Serializes a response: status line, Content-Type: application/json,
/// Content-Length, Connection (close unless `keep_alive`), then `body`.
[[nodiscard]] std::string render_http_response(int status, std::string_view body,
                                               bool keep_alive);

/// Serializes a request with Content-Length framing (empty body = none).
[[nodiscard]] std::string render_http_request(std::string_view method, std::string_view target,
                                              std::string_view body);

/// Canonical reason phrase for the status codes the protocol uses; "Unknown"
/// otherwise.
[[nodiscard]] const char* http_status_reason(int status) noexcept;

}  // namespace sts
