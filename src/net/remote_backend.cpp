#include "net/remote_backend.hpp"

#include <stdexcept>
#include <utility>

#include "support/json.hpp"

namespace sts {

namespace {

/// Blocking request/response round trip on an established connection.
/// Returns false on any transport fault (send failure, peer close, oversize
/// or malformed reply) — the caller decides whether to retry on a fresh
/// connection.
[[nodiscard]] bool http_round_trip(int fd, std::string_view wire, const HttpLimits& limits,
                                   HttpResponse& out) {
  if (!send_all(fd, wire)) return false;
  std::string buf;
  const std::size_t cap = limits.max_head_bytes + limits.max_body_bytes + 4;
  for (;;) {
    HttpResponseParse parsed = parse_http_response(buf, limits);
    if (parsed.status == HttpParseStatus::kComplete) {
      out = std::move(parsed.response);
      return true;
    }
    if (parsed.status == HttpParseStatus::kError) return false;
    if (buf.size() >= cap) return false;
    const long n = recv_some(fd, buf, cap - buf.size());
    if (n <= 0) return false;
  }
}

}  // namespace

RemoteBackend::RemoteBackend(RemoteConfig config) : config_(std::move(config)) {
  if (config_.port == 0) {
    throw std::invalid_argument("remote backend: a concrete server port is required");
  }

  // Learn the server's worker count before accepting work: it sizes both the
  // seam's worker_count() answer and (by default) the client pool. Retry —
  // the server process may still be binding its socket.
  std::string error;
  for (int attempt = 0;; ++attempt) {
    try {
      const std::string body = fetch("/stats");
      const JsonValue stats = parse_json(body);
      const JsonValue* workers = stats.find("workers");
      const std::int64_t count = workers == nullptr ? 0 : workers->as_int();
      worker_count_ = count > 0 ? static_cast<std::size_t>(count) : 1;
      break;
    } catch (const std::exception& e) {
      error = e.what();
    }
    if (attempt + 1 >= config_.probe_retries) {
      throw std::runtime_error("remote backend: server " + config_.host + ":" +
                               std::to_string(config_.port) + " unreachable (" + error + ")");
    }
    std::this_thread::sleep_for(config_.probe_retry_delay);
  }

  std::size_t lanes = config_.connections > 0 ? config_.connections : worker_count_;
  if (lanes == 0) lanes = 1;
  clients_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    clients_.emplace_back([this] { client_loop(); });
  }
}

RemoteBackend::~RemoteBackend() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  jobs_cv_.notify_all();
  for (std::thread& client : clients_) client.join();

  // Client threads drain the queue before exiting, so this only fires when
  // construction itself failed to start any — still: no future is abandoned.
  std::deque<PendingJob> leftovers;
  {
    MutexLock lock(mutex_);
    leftovers.swap(jobs_);
    inflight_ -= leftovers.size();
  }
  for (PendingJob& job : leftovers) {
    job.promise.set_value(transport_error("backend shutting down"));
  }
  idle_cv_.notify_all();
}

ServiceAdmission RemoteBackend::submit(ScheduleRequest request) {
  // Serialize on the caller's thread: the envelope (and its key memo) never
  // crosses into the client pool, only bytes do.
  std::string body = request.to_json();
  std::promise<Settled> promise;
  ServiceFuture future(promise.get_future());
  bool rejected_late = false;
  {
    MutexLock lock(mutex_);
    if (stopping_) {
      rejected_late = true;
    } else {
      ++inflight_;
      jobs_.push_back(PendingJob{std::move(body), std::move(promise)});
    }
  }
  if (rejected_late) {
    promise.set_value(transport_error("backend shutting down"));
  } else {
    jobs_cv_.notify_one();
  }
  return ServiceAdmission{std::move(future), std::nullopt};
}

void RemoteBackend::wait_idle() {
  MutexLock lock(mutex_);
  while (inflight_ != 0) idle_cv_.wait(mutex_);
}

void RemoteBackend::client_loop() {
  FdHandle conn;  // persistent keep-alive connection, owned by this thread
  for (;;) {
    PendingJob job;
    {
      MutexLock lock(mutex_);
      while (jobs_.empty() && !stopping_) jobs_cv_.wait(mutex_);
      if (jobs_.empty()) return;  // stopping, queue drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job.promise.set_value(perform(conn, job.body));
    {
      MutexLock lock(mutex_);
      --inflight_;
    }
    idle_cv_.notify_all();
  }
}

Settled RemoteBackend::perform(FdHandle& conn, const std::string& body) const {
  const std::string wire = render_http_request("POST", "/v1/schedule", body);
  // One transparent retry on a fresh connection: a keep-alive peer may close
  // between requests, which only surfaces as a failed send/recv here.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!conn.valid()) {
      try {
        conn = connect_tcp(config_.host, config_.port);
      } catch (const std::exception& e) {
        return transport_error(e.what());  // refused outright: retrying is futile
      }
    }
    HttpResponse response;
    if (http_round_trip(conn.get(), wire, config_.http, response)) {
      if (!response.keep_alive) conn.reset();
      return decode(response);
    }
    conn.reset();  // poisoned connection; retry once on a fresh one
  }
  return transport_error("request failed after reconnect");
}

Settled RemoteBackend::decode(const HttpResponse& response) const {
  try {
    ScheduleResponse envelope = ScheduleResponse::from_json(response.body);
    switch (envelope.status) {
      case ScheduleResponse::Status::kOk:
        return Settled{std::move(envelope.result), {}, false, std::nullopt};
      case ScheduleResponse::Status::kRejected:
        return Settled{nullptr, {}, false, std::move(envelope.rejected)};
      case ScheduleResponse::Status::kError:
        return Settled{nullptr,
                       envelope.error.empty() ? std::string("remote backend: server error")
                                              : std::move(envelope.error),
                       false, std::nullopt};
    }
    return transport_error("impossible response status");
  } catch (const std::exception& e) {
    return transport_error("HTTP " + std::to_string(response.status) +
                           " with undecodable body: " + e.what());
  }
}

Settled RemoteBackend::transport_error(const std::string& detail) const {
  return Settled{nullptr,
                 "remote backend " + config_.host + ":" + std::to_string(config_.port) + ": " +
                     detail,
                 false, std::nullopt};
}

std::string RemoteBackend::fetch(const char* target) const {
  FdHandle conn = connect_tcp(config_.host, config_.port);
  HttpResponse response;
  if (!http_round_trip(conn.get(), render_http_request("GET", target, {}), config_.http,
                       response)) {
    throw std::runtime_error("remote backend: GET " + std::string(target) + " on " +
                             config_.host + ":" + std::to_string(config_.port) + " failed");
  }
  if (response.status != 200) {
    throw std::runtime_error("remote backend: GET " + std::string(target) + " answered HTTP " +
                             std::to_string(response.status));
  }
  return std::move(response.body);
}

ScheduleBackend::Snapshot RemoteBackend::stats_snapshot() const {
  Snapshot snapshot;
  snapshot.json = fetch("/stats");
  const JsonValue stats = parse_json(snapshot.json);
  snapshot.stats = service_stats_from_json(stats);
  if (const JsonValue* weight = stats.find("cache_weight")) {
    const std::int64_t w = weight->as_int();
    if (w > 0) snapshot.cache_weight = static_cast<std::size_t>(w);
  }
  return snapshot;
}

}  // namespace sts
