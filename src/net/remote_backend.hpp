#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "net/http.hpp"
#include "net/socket.hpp"
#include "service/backend.hpp"
#include "support/thread_annotations.hpp"

namespace sts {

/// Connection knobs of a RemoteBackend.
struct RemoteConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< required; 0 throws at construction

  /// Client I/O threads; each owns one persistent keep-alive connection, so
  /// this is also the request concurrency toward the server. 0 = use the
  /// worker count the server reports (one lane per remote worker).
  std::size_t connections = 0;

  /// HTTP framing limits applied to server replies.
  HttpLimits http;

  /// Construction probes `GET /stats` to learn the server's worker count;
  /// these bound the wait for a server that is still starting up.
  int probe_retries = 50;
  std::chrono::milliseconds probe_retry_delay{100};
};

/// Client side of the cross-process seam: a `ScheduleBackend` whose
/// scheduling happens in another process, reached over the HTTP/1.1 wire
/// protocol served by `StsServer` / sts-serve. A ShardRouter holds it behind
/// the same `shared_ptr<ScheduleBackend>` as an in-process ScheduleService
/// and cannot tell the difference.
///
/// submit() serializes the envelope on the caller's thread, then hands the
/// body to a small pool of client threads, each keeping one persistent
/// keep-alive connection. A transport failure mid-request (peer closed the
/// keep-alive socket, send/recv error) is retried once on a fresh
/// connection; a second failure settles the future with a transport error —
/// errors are values here, never exceptions crossing threads, and a dead
/// server therefore settles every in-flight future instead of hanging
/// wait_idle().
///
/// Mapping of a server reply onto the settled outcome: HTTP 200 carrying
/// `"status": "ok"` → result; any reply whose body decodes as the typed
/// envelope uses that envelope's status ("rejected" → Settled::rejected,
/// "error" → Settled::error) regardless of the HTTP code; an undecodable
/// body is a transport error naming the HTTP status.
///
/// stats_snapshot() is one `GET /stats` fetch on a short-lived connection:
/// the parsed counters, the server's resident cache weight, and the raw
/// document all come from that single fetch, preserving the seam's
/// one-consistent-observation contract. It throws std::runtime_error when
/// the server is unreachable.
class RemoteBackend : public ScheduleBackend {
 public:
  /// Probes the server (retrying per `config`) for its worker count, then
  /// starts the client threads. Throws std::invalid_argument on port 0 and
  /// std::runtime_error when the server never becomes reachable.
  explicit RemoteBackend(RemoteConfig config);

  /// Settles every queued job (processing, not abandoning: client threads
  /// drain the queue before exiting), then joins the pool. No future
  /// obtained from submit() is ever left unsettled.
  ~RemoteBackend() override;

  RemoteBackend(const RemoteBackend&) = delete;
  RemoteBackend& operator=(const RemoteBackend&) = delete;

  [[nodiscard]] ServiceAdmission submit(ScheduleRequest request) override
      EXCLUDES(mutex_);
  void wait_idle() override EXCLUDES(mutex_);
  [[nodiscard]] Snapshot stats_snapshot() const override;

  /// The worker count the server reported at construction (its own shard
  /// parallelism, not this client's connection count).
  [[nodiscard]] std::size_t worker_count() const noexcept override {
    return worker_count_;
  }

 private:
  struct PendingJob {
    std::string body;  ///< serialized ScheduleRequest envelope
    std::promise<Settled> promise;
  };

  void client_loop() EXCLUDES(mutex_);
  [[nodiscard]] Settled perform(FdHandle& conn, const std::string& body) const;
  [[nodiscard]] Settled decode(const HttpResponse& response) const;
  [[nodiscard]] Settled transport_error(const std::string& detail) const;
  [[nodiscard]] std::string fetch(const char* target) const;

  RemoteConfig config_;
  std::size_t worker_count_ = 0;

  Mutex mutex_;
  CondVar jobs_cv_;  ///< signalled when jobs_ gains work or stopping_ flips
  CondVar idle_cv_;  ///< signalled when inflight_ drops
  std::deque<PendingJob> jobs_ GUARDED_BY(mutex_);
  std::size_t inflight_ GUARDED_BY(mutex_) = 0;  ///< queued + being performed
  bool stopping_ GUARDED_BY(mutex_) = false;

  std::vector<std::thread> clients_;
};

}  // namespace sts
