#include "net/server_process.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace sts {

namespace {

constexpr std::string_view kListeningPrefix = "sts-serve listening on ";

/// Parses the port off a "sts-serve listening on H:P" line; 0 = not this line.
[[nodiscard]] std::uint16_t parse_listening_port(std::string_view line) {
  if (line.substr(0, kListeningPrefix.size()) != kListeningPrefix) return 0;
  const std::size_t colon = line.rfind(':');
  if (colon == std::string_view::npos) return 0;
  const std::string_view digits = line.substr(colon + 1);
  std::uint32_t port = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return 0;
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) return 0;
  }
  return static_cast<std::uint16_t>(port);
}

[[nodiscard]] int wait_status_to_exit_code(int status) noexcept {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

}  // namespace

ServerProcess::ServerProcess(std::string binary, std::vector<std::string> args,
                             std::chrono::milliseconds handshake_timeout)
    : binary_(std::move(binary)) {
  int fds[2];
  if (::pipe2(fds, O_CLOEXEC) != 0) {
    throw std::runtime_error(errno_message("spawn: pipe2"));
  }
  FdHandle read_end(fds[0]);
  FdHandle write_end(fds[1]);

  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(binary_.data());
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  pid_ = ::fork();
  if (pid_ < 0) throw std::runtime_error(errno_message("spawn: fork"));
  if (pid_ == 0) {
    // Child: stdout becomes the handshake pipe (stderr stays inherited for
    // logs). Only async-signal-safe calls between fork and exec.
    if (::dup2(write_end.get(), STDOUT_FILENO) < 0) _exit(127);
    ::execv(binary_.c_str(), argv.data());
    _exit(127);  // exec failed; the parent sees EOF on the pipe
  }

  write_end.reset();  // parent keeps only the read end
  stdout_fd_ = std::move(read_end);

  // Read until the listening line, the timeout, or EOF (child died / exec
  // failed). Line-buffered enough for one line; anything after it is left
  // unread (the child writes nothing else to stdout).
  std::string buf;
  const auto deadline = std::chrono::steady_clock::now() + handshake_timeout;
  for (;;) {
    const std::size_t line_end = buf.find('\n');
    if (line_end != std::string::npos) {
      port_ = parse_listening_port(std::string_view(buf).substr(0, line_end));
      if (port_ != 0) return;
      buf.erase(0, line_end + 1);  // unrelated chatter; keep scanning
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline || buf.size() > 4096) {
      (void)terminate(std::chrono::milliseconds(0));
      throw std::runtime_error("spawn: " + binary_ + " never announced its port");
    }
    pollfd pfd{stdout_fd_.get(), POLLIN, 0};
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) {
      (void)terminate(std::chrono::milliseconds(0));
      throw std::runtime_error("spawn: " + binary_ + " never announced its port");
    }
    char chunk[512];
    ssize_t n;
    do {
      n = ::read(stdout_fd_.get(), chunk, sizeof chunk);
    } while (n < 0 && errno == EINTR);
    if (n > 0) buf.append(chunk, static_cast<std::size_t>(n));
    if (n == 0) {
      // EOF: the child exited (or exec failed) before listening.
      (void)terminate(std::chrono::milliseconds(0));
      throw std::runtime_error("spawn: " + binary_ + " exited before listening (exit code " +
                               std::to_string(exit_code_) + ")");
    }
    if (n < 0) {
      (void)terminate(std::chrono::milliseconds(0));
      throw std::runtime_error(errno_message("spawn: read handshake"));
    }
  }
}

ServerProcess::~ServerProcess() {
  if (!reaped_ && pid_ > 0) (void)terminate();
}

int ServerProcess::terminate(std::chrono::milliseconds patience) {
  if (reaped_ || pid_ <= 0) return exit_code_;
  (void)::kill(pid_, SIGTERM);
  const auto deadline = std::chrono::steady_clock::now() + patience;
  for (;;) {
    int status = 0;
    const pid_t reaped = ::waitpid(pid_, &status, WNOHANG);
    if (reaped == pid_) {
      exit_code_ = wait_status_to_exit_code(status);
      reaped_ = true;
      return exit_code_;
    }
    if (reaped < 0 && errno != EINTR) break;  // already gone or not ours
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Out of patience: the drain is stuck (or the child ignored SIGTERM).
  (void)::kill(pid_, SIGKILL);
  int status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(pid_, &status, 0);
  } while (reaped < 0 && errno == EINTR);
  exit_code_ = reaped == pid_ ? wait_status_to_exit_code(status) : -1;
  reaped_ = true;
  return exit_code_;
}

std::string default_sts_serve_binary() {
  if (const char* env = std::getenv("STS_SERVE_BIN"); env != nullptr && *env != '\0') {
    return env;
  }
  char path[4096];
  const ssize_t n = ::readlink("/proc/self/exe", path, sizeof path - 1);
  if (n <= 0) return "sts_serve";  // last resort: rely on PATH lookup failing loudly
  path[n] = '\0';
  std::string self(path);
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "sts_serve";
  return self.substr(0, slash + 1) + "sts_serve";
}

}  // namespace sts
