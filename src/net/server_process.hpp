#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

#include "net/socket.hpp"

namespace sts {

/// One spawned sts-serve child process: fork/exec, handshake, and graceful
/// SIGTERM teardown — how the sweep CLI's `--backends N --spawn` mode and the
/// net bench stand up a real multi-process fleet.
///
/// The handshake is the child's single stdout line
///
///     sts-serve listening on 127.0.0.1:<port>
///
/// which the parent reads (with a timeout) off a pipe to learn the ephemeral
/// port; everything else the child prints goes to inherited stderr.
///
/// terminate() sends SIGTERM and reaps the child, giving it time to run its
/// drain sequence (stop accepting, settle in-flight requests, flush stats);
/// a child that outlives the patience window is SIGKILLed. The destructor
/// does the same, so a ServerProcess can never leak a child.
class ServerProcess {
 public:
  /// fork/execs `binary` with `args` (argv[1..]) and blocks until the
  /// listening line arrives. Throws std::runtime_error when the exec fails,
  /// the child exits early, or the handshake times out (the child is
  /// SIGKILLed and reaped before the throw).
  explicit ServerProcess(std::string binary, std::vector<std::string> args = {},
                         std::chrono::milliseconds handshake_timeout =
                             std::chrono::milliseconds(10000));
  ~ServerProcess();

  ServerProcess(const ServerProcess&) = delete;
  ServerProcess& operator=(const ServerProcess&) = delete;

  /// The port announced in the handshake line.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] pid_t pid() const noexcept { return pid_; }

  /// SIGTERM, then waits up to `patience` for the drain to finish before
  /// escalating to SIGKILL. Returns the child's exit code (128 + signal for
  /// a signalled death). Idempotent: later calls return the first result.
  int terminate(std::chrono::milliseconds patience = std::chrono::milliseconds(30000));

 private:
  std::string binary_;
  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
  FdHandle stdout_fd_;  ///< read end of the child's stdout pipe
  bool reaped_ = false;
  int exit_code_ = -1;
};

/// Resolves the sts-serve binary for spawning: the STS_SERVE_BIN environment
/// variable when set, otherwise `sts_serve` next to the current executable
/// (via /proc/self/exe) — the layout the build tree produces.
[[nodiscard]] std::string default_sts_serve_binary();

}  // namespace sts
