#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace sts {

void FdHandle::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

std::string errno_message(const char* context) {
  return std::string(context) + " (" + std::strerror(errno) + ")";
}

namespace {

[[nodiscard]] sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net: invalid IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

FdHandle listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw std::runtime_error(errno_message("net: socket"));
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0) {
    throw std::runtime_error(errno_message("net: setsockopt SO_REUSEADDR"));
  }
  const sockaddr_in addr = make_address(host, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw std::runtime_error(errno_message("net: bind"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw std::runtime_error(errno_message("net: listen"));
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw std::runtime_error(errno_message("net: getsockname"));
  }
  return ntohs(addr.sin_port);
}

FdHandle connect_tcp(const std::string& host, std::uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw std::runtime_error(errno_message("net: socket"));
  // Request/response round trips are latency-bound: disable Nagle so the
  // (small) envelope leaves in one segment instead of waiting on delayed ACK.
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  const sockaddr_in addr = make_address(host, port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw std::runtime_error(errno_message("net: connect"));
  return fd;
}

void set_nonblocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw std::runtime_error(errno_message("net: fcntl F_GETFL"));
  const int want = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) != 0) {
    throw std::runtime_error(errno_message("net: fcntl F_SETFL"));
  }
}

bool send_all(int fd, std::string_view data) noexcept {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

long recv_some(int fd, std::string& out, std::size_t max_bytes) noexcept {
  char buf[16384];
  const std::size_t want = max_bytes < sizeof buf ? max_bytes : sizeof buf;
  ssize_t n;
  do {
    n = ::recv(fd, buf, want, 0);
  } while (n < 0 && errno == EINTR);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
  return static_cast<long>(n);
}

}  // namespace sts
