#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sts {

/// RAII owner of one POSIX file descriptor (socket, epoll, eventfd, pipe).
/// Closing is best-effort: close(2) errors are swallowed — by then the fd's
/// kernel resources are gone either way.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle() { reset(); }

  FdHandle(FdHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Transfers ownership out; the handle becomes invalid.
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Creates a TCP listen socket bound to `host:port` (port 0 = ephemeral,
/// SO_REUSEADDR set). Throws std::runtime_error with errno detail on any
/// failure. The serving stack binds loopback only — the wire protocol is
/// unauthenticated, so it must never listen on a public interface.
[[nodiscard]] FdHandle listen_tcp(const std::string& host, std::uint16_t port, int backlog);

/// The locally bound port of a socket (resolves an ephemeral bind).
[[nodiscard]] std::uint16_t local_port(int fd);

/// Blocking TCP connect to `host:port`. Throws std::runtime_error on
/// failure (including connection refused — callers that poll for a server
/// starting up catch and retry).
[[nodiscard]] FdHandle connect_tcp(const std::string& host, std::uint16_t port);

/// Sets/clears O_NONBLOCK. Throws std::runtime_error on fcntl failure.
void set_nonblocking(int fd, bool enabled);

/// Writes all of `data` to a blocking socket (EINTR-retrying, MSG_NOSIGNAL
/// so a dead peer yields EPIPE instead of killing the process). Returns
/// false on any error.
[[nodiscard]] bool send_all(int fd, std::string_view data) noexcept;

/// Reads up to `max_bytes` more bytes from a blocking socket into `out`
/// (appending). Returns the count read, 0 on orderly EOF, -1 on error.
[[nodiscard]] long recv_some(int fd, std::string& out, std::size_t max_bytes) noexcept;

/// "context: detail (errno text)" — the std::runtime_error shape every
/// transport failure in src/net/ uses.
[[nodiscard]] std::string errno_message(const char* context);

}  // namespace sts
