#include "net/sts_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "service/request.hpp"

namespace sts {

namespace {

constexpr std::string_view kHealthBody = "{\"status\": \"ok\"}";

[[nodiscard]] std::string error_envelope(std::string_view detail) {
  ScheduleResponse response;
  response.status = ScheduleResponse::Status::kError;
  response.error = std::string(detail);
  return response.to_json();
}

void epoll_add(int epoll_fd, int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::runtime_error(errno_message("net: epoll_ctl ADD"));
  }
}

}  // namespace

StsServer::StsServer(std::shared_ptr<ScheduleBackend> backend, ServerConfig config)
    : backend_(std::move(backend)), config_(std::move(config)) {
  if (!backend_) throw std::invalid_argument("StsServer: backend must not be null");

  listen_fd_ = listen_tcp(config_.host, config_.port, config_.backlog);
  set_nonblocking(listen_fd_.get(), true);
  port_ = local_port(listen_fd_.get());

  epoll_fd_.reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) throw std::runtime_error(errno_message("net: epoll_create1"));
  wake_fd_.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wake_fd_.valid()) throw std::runtime_error(errno_message("net: eventfd"));
  epoll_add(epoll_fd_.get(), listen_fd_.get(), EPOLLIN);
  epoll_add(epoll_fd_.get(), wake_fd_.get(), EPOLLIN);

  std::size_t responders = config_.responders;
  if (responders == 0) responders = backend_->worker_count();
  if (responders == 0) responders = 1;
  responders_.reserve(responders);
  for (std::size_t i = 0; i < responders; ++i) {
    responders_.emplace_back([this] { responder_loop(); });
  }
  loop_thread_ = std::thread([this] { event_loop(); });
}

StsServer::~StsServer() { stop(); }

void StsServer::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter (impossible here) or EINTR both leave the loop
  // already scheduled to wake; best-effort is correct.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_.get(), &one, sizeof one);
}

void StsServer::drain() {
  draining_.store(true, std::memory_order_release);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
}

void StsServer::stop() {
  if (stopped_) return;
  drain();
  {
    const MutexLock lock(jobs_mutex_);
    responders_stop_ = true;
  }
  jobs_cv_.notify_all();
  for (std::thread& responder : responders_) {
    if (responder.joinable()) responder.join();
  }
  stopped_ = true;
}

StsServer::Stats StsServer::stats() const {
  Stats out;
  out.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.responses = responses_.load(std::memory_order_relaxed);
  out.http_errors = http_errors_.load(std::memory_order_relaxed);
  return out;
}

std::string StsServer::stats_json() const {
  const Stats s = stats();
  const auto field = [](const char* key, std::uint64_t value) {
    return std::string("\"") + key + "\": " + std::to_string(value);
  };
  std::string json = "{";
  json += field("connections_accepted", s.connections_accepted);
  json += ", " + field("requests", s.requests);
  json += ", " + field("responses", s.responses);
  json += ", " + field("http_errors", s.http_errors);
  json += "}";
  return json;
}

// ---------------------------------------------------------------- responders

void StsServer::responder_loop() {
  for (;;) {
    Job job;
    {
      const MutexLock lock(jobs_mutex_);
      while (!responders_stop_ && jobs_.empty()) jobs_cv_.wait(jobs_mutex_);
      if (jobs_.empty()) return;  // stopping, and fully drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    Completion completion = run_job(std::move(job));
    {
      const MutexLock lock(completions_mutex_);
      completions_.push_back(std::move(completion));
    }
    wake();
  }
}

StsServer::Completion StsServer::run_job(Job job) {
  Completion completion;
  completion.conn_id = job.conn_id;
  completion.keep_alive = job.keep_alive;
  try {
    ScheduleRequest request = ScheduleRequest::from_json(job.body);
    const ScheduleResponse response = backend_->schedule(std::move(request));
    switch (response.status) {
      case ScheduleResponse::Status::kOk: completion.status = 200; break;
      case ScheduleResponse::Status::kRejected: completion.status = 503; break;
      case ScheduleResponse::Status::kError: completion.status = 400; break;
    }
    completion.body = response.to_json();
  } catch (const std::exception& e) {
    // Malformed envelope (or a submit-time refusal): a typed error reply,
    // never a dropped connection — the server itself stays healthy.
    completion.status = 400;
    completion.body = error_envelope(e.what());
  }
  return completion;
}

// ---------------------------------------------------------------- event loop

void StsServer::event_loop() {
  epoll_event events[64];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_.get(), events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed: nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_.get()) {
        std::uint64_t counter = 0;
        [[maybe_unused]] const ssize_t r = ::read(wake_fd_.get(), &counter, sizeof counter);
        continue;
      }
      if (listen_fd_.valid() && fd == listen_fd_.get()) {
        accept_ready();
        continue;
      }
      const auto fd_it = fd_to_conn_.find(fd);
      if (fd_it == fd_to_conn_.end()) continue;  // closed earlier this batch
      const std::uint64_t conn_id = fd_it->second;
      Connection* conn = connections_.at(conn_id).get();
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 && !conn->pending) {
        close_connection(*conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        if (!connection_readable(*conn)) continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        // Re-resolve: the read half may have closed (and freed) it.
        const auto again = connections_.find(conn_id);
        if (again == connections_.end()) continue;
        if (!connection_writable(*again->second)) continue;
      }
    }
    apply_completions();
    if (draining_.load(std::memory_order_acquire)) begin_drain();
    if (drain_begun_ && connections_.empty()) return;
  }
}

void StsServer::begin_drain() {
  if (drain_begun_) return;
  drain_begun_ = true;
  listen_fd_.reset();  // closing deregisters it from epoll
  // Close idle connections now; flag busy ones to close after their reply
  // flushes. Collect first — close_connection mutates connections_.
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : connections_) {
    if (!conn->pending && conn->out.empty()) {
      idle.push_back(id);
    } else {
      conn->want_close = true;
    }
  }
  for (const std::uint64_t id : idle) close_connection(*connections_.at(id));
}

void StsServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient accept error: epoll re-arms
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Connection>();
    conn->fd = FdHandle(fd);
    conn->id = next_conn_id_++;
    try {
      epoll_add(epoll_fd_.get(), fd, EPOLLIN);
    } catch (const std::exception&) {
      continue;  // conn (and its fd) die here; keep accepting
    }
    fd_to_conn_.emplace(fd, conn->id);
    connections_.emplace(conn->id, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void StsServer::close_connection(Connection& conn) {
  // Closing the fd deregisters it from epoll; a job still in flight for this
  // connection settles into a completion whose conn_id no longer resolves
  // and is dropped.
  fd_to_conn_.erase(conn.fd.get());
  const std::uint64_t id = conn.id;
  connections_.erase(id);  // destroys conn — do not touch it past this line
}

bool StsServer::connection_readable(Connection& conn) {
  // Keep one request's worth of headroom buffered beyond the parse limits:
  // enough for a complete maximal request plus the pipelined head of the
  // next, little enough that a flooding client can't balloon the buffer.
  const std::size_t cap = 2 * (config_.http.max_head_bytes + config_.http.max_body_bytes);
  for (;;) {
    if (conn.in.size() >= cap) {
      // Far beyond anything the protocol produces (one request in flight at
      // a time): a flooding client, not a slow parser. Drop it rather than
      // busy-loop on a level-triggered fd we refuse to read.
      close_connection(conn);
      return false;
    }
    const long n = recv_some(conn.fd.get(), conn.in, cap - conn.in.size());
    if (n > 0) continue;
    if (n == 0) {
      conn.peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_connection(conn);
    return false;
  }
  if (!conn.pending && !parse_buffered(conn)) return false;
  if (conn.peer_closed && !conn.pending && conn.out.empty()) {
    close_connection(conn);
    return false;
  }
  return true;
}

bool StsServer::parse_buffered(Connection& conn) {
  while (!conn.pending && !conn.want_close) {
    HttpRequestParse parsed = parse_http_request(conn.in, config_.http);
    if (parsed.status == HttpParseStatus::kNeedMore) return true;
    if (parsed.status == HttpParseStatus::kError) {
      // Framing is unrecoverable after a protocol error: answer, then close.
      conn.in.clear();
      requests_.fetch_add(1, std::memory_order_relaxed);
      return queue_response(conn, parsed.error_status, error_envelope(parsed.error), false);
    }
    conn.in.erase(0, parsed.consumed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    const HttpRequest& request = parsed.request;
    const bool keep_alive = request.keep_alive && !draining_.load(std::memory_order_acquire);
    if (request.method == "POST" && request.target == "/v1/schedule") {
      conn.pending = true;
      {
        const MutexLock lock(jobs_mutex_);
        jobs_.push_back(Job{conn.id, std::move(parsed.request.body), keep_alive});
      }
      jobs_cv_.notify_one();
      return true;
    }
    bool alive = true;
    if (request.method == "GET" && request.target == "/healthz") {
      alive = queue_response(conn, 200, kHealthBody, keep_alive);
    } else if (request.method == "GET" && request.target == "/stats") {
      // One consistent snapshot per scrape; cheap enough to serve inline.
      alive = queue_response(conn, 200, backend_->stats_snapshot().json, keep_alive);
    } else {
      alive = queue_response(
          conn, 404,
          error_envelope("unknown endpoint " + request.method + " " + request.target),
          keep_alive);
    }
    if (!alive) return false;
  }
  return true;
}

bool StsServer::queue_response(Connection& conn, int status, std::string_view body,
                               bool keep_alive) {
  conn.out += render_http_response(status, body, keep_alive);
  responses_.fetch_add(1, std::memory_order_relaxed);
  if (status >= 400) http_errors_.fetch_add(1, std::memory_order_relaxed);
  if (!keep_alive) conn.want_close = true;
  return connection_writable(conn);  // flush eagerly; falls back to EPOLLOUT
}

bool StsServer::connection_writable(Connection& conn) {
  while (conn.out_sent < conn.out.size()) {
    const ssize_t n = ::send(conn.fd.get(), conn.out.data() + conn.out_sent,
                             conn.out.size() - conn.out_sent, MSG_NOSIGNAL);
    if (n >= 0) {
      conn.out_sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      update_epoll(conn);
      return true;
    }
    close_connection(conn);  // peer vanished mid-reply
    return false;
  }
  conn.out.clear();
  conn.out_sent = 0;
  if (conn.want_close || conn.peer_closed) {
    if (!conn.pending) {
      close_connection(conn);
      return false;
    }
    return true;  // reply for the in-flight job still owed
  }
  update_epoll(conn);
  // The reply is out: pipelined bytes buffered behind it may hold the next
  // request.
  if (!conn.pending && !conn.in.empty()) return parse_buffered(conn);
  return true;
}

void StsServer::update_epoll(Connection& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn.out_sent < conn.out.size() ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd.get();
  (void)::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
}

void StsServer::apply_completions() {
  std::vector<Completion> done;
  {
    const MutexLock lock(completions_mutex_);
    done.swap(completions_);
  }
  for (Completion& completion : done) {
    const auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // connection died while computing
    Connection& conn = *it->second;
    conn.pending = false;
    const bool keep_alive =
        completion.keep_alive && !draining_.load(std::memory_order_acquire);
    if (!queue_response(conn, completion.status, completion.body, keep_alive)) continue;
    const auto again = connections_.find(completion.conn_id);
    if (again == connections_.end()) continue;
    Connection& still = *again->second;
    if (still.peer_closed && !still.pending && still.out.empty()) {
      close_connection(still);
    }
  }
}

}  // namespace sts
