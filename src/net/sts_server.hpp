#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/http.hpp"
#include "net/socket.hpp"
#include "service/backend.hpp"
#include "support/thread_annotations.hpp"

namespace sts {

/// Sizing knobs of an StsServer.
struct ServerConfig {
  /// Bind address. Loopback only by design: the wire protocol is
  /// unauthenticated JSON, so the server must never face a public interface.
  std::string host = "127.0.0.1";

  /// TCP port; 0 = ephemeral (read the actual port back via port()).
  std::uint16_t port = 0;

  /// Responder threads running the blocking backend call; 0 = the backend's
  /// worker_count (one responder per worker keeps every shard feedable).
  std::size_t responders = 0;

  /// HTTP framing limits: request head and body caps (oversize → 413).
  HttpLimits http;

  /// listen(2) backlog.
  int backlog = 64;
};

/// Minimal epoll-based HTTP/1.1 server exposing one `ScheduleBackend` over
/// the wire — the serving side of the cross-process seam:
///
///   POST /v1/schedule   body: ScheduleRequest::to_json()
///                       reply: ScheduleResponse::to_json()
///                       (200 ok, 503 rejected, 400 error — the body always
///                       carries the typed envelope)
///   GET  /stats         reply: the backend's stats_snapshot().json (the
///                       scrape endpoint; one consistent snapshot per fetch)
///   GET  /healthz       reply: {"status": "ok"} — liveness only, never
///                       touches the backend
///
/// Threading: one event-loop thread owns every connection (epoll,
/// level-triggered, non-blocking sockets — connection state needs no locks);
/// a small responder pool runs the blocking `backend->schedule()` calls and
/// posts finished responses back to the loop through an eventfd-signalled
/// completion queue. One request per connection is in flight at a time
/// (pipelined bytes wait buffered), so responses never reorder.
///
/// Graceful drain (the SIGTERM sequence of sts-serve): `drain()` closes the
/// listen socket, lets every in-flight request finish, answers with
/// `Connection: close`, closes idle connections immediately, and returns
/// when the last connection is gone — zero in-flight requests are lost.
/// `stop()` is the impatient variant: pending jobs are still answered, but
/// buffered not-yet-parsed requests are dropped with the connections.
class StsServer {
 public:
  /// Binds and starts serving immediately. Throws std::runtime_error when
  /// the socket can't be bound, std::invalid_argument on a null backend.
  StsServer(std::shared_ptr<ScheduleBackend> backend, ServerConfig config = {});
  ~StsServer();

  StsServer(const StsServer&) = delete;
  StsServer& operator=(const StsServer&) = delete;

  /// The bound TCP port (resolves config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Graceful drain as described above. Idempotent; blocks until every
  /// accepted request is answered and every connection is closed.
  void drain() EXCLUDES(jobs_mutex_, completions_mutex_);

  /// Drain-or-abort shutdown: answers in-flight jobs, closes everything,
  /// joins all threads. Idempotent; called by the destructor.
  void stop() EXCLUDES(jobs_mutex_, completions_mutex_);

  /// Transport-level counters (monotonic; the scheduling counters live in
  /// the backend's own stats).
  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t requests = 0;     ///< complete HTTP requests parsed
    std::uint64_t responses = 0;    ///< responses written (any status)
    std::uint64_t http_errors = 0;  ///< 4xx/5xx responses among them
  };
  [[nodiscard]] Stats stats() const;

  /// The transport counters as a flat JSON document — what sts-serve flushes
  /// to stderr after a drain, next to the backend's /stats document.
  [[nodiscard]] std::string stats_json() const;

 private:
  /// Per-connection state, owned exclusively by the event-loop thread.
  struct Connection {
    FdHandle fd;
    std::uint64_t id = 0;
    std::string in;          ///< unparsed received bytes
    std::string out;         ///< unsent response bytes
    std::size_t out_sent = 0;
    bool pending = false;    ///< one request is with the responder pool
    bool want_close = false; ///< close once `out` is flushed
    bool peer_closed = false;
  };

  /// One schedule request handed to the responder pool.
  struct Job {
    std::uint64_t conn_id = 0;
    std::string body;
    bool keep_alive = true;
  };

  /// A finished response travelling back to the loop thread.
  struct Completion {
    std::uint64_t conn_id = 0;
    int status = 200;
    std::string body;
    bool keep_alive = true;
  };

  void event_loop() EXCLUDES(jobs_mutex_, completions_mutex_);
  void responder_loop() EXCLUDES(jobs_mutex_, completions_mutex_);
  [[nodiscard]] Completion run_job(Job job);

  // Loop-thread helpers (the loop-owned state below needs no locks). The
  // bool-returning ones report whether the connection is still alive —
  // false means it was closed (and destroyed) along the way, so the caller
  // must not touch it again.
  void accept_ready();
  [[nodiscard]] bool connection_readable(Connection& conn) EXCLUDES(jobs_mutex_);
  [[nodiscard]] bool connection_writable(Connection& conn);
  [[nodiscard]] bool parse_buffered(Connection& conn) EXCLUDES(jobs_mutex_);
  [[nodiscard]] bool queue_response(Connection& conn, int status, std::string_view body,
                                    bool keep_alive);
  void apply_completions() EXCLUDES(completions_mutex_, jobs_mutex_);
  void close_connection(Connection& conn);
  void update_epoll(Connection& conn);
  void begin_drain();
  void wake();

  std::shared_ptr<ScheduleBackend> backend_;
  ServerConfig config_;
  std::uint16_t port_ = 0;

  FdHandle epoll_fd_;
  FdHandle wake_fd_;  ///< eventfd: completions ready or state change

  // ---- event-loop-owned state (no locks: only event_loop() touches it) ----
  FdHandle listen_fd_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::unordered_map<int, std::uint64_t> fd_to_conn_;
  std::uint64_t next_conn_id_ = 1;

  std::atomic<bool> draining_{false};  ///< set by drain()/stop(), read by loop
  bool drain_begun_ = false;           ///< loop-owned: drain steps applied once

  Mutex jobs_mutex_;
  CondVar jobs_cv_;
  std::deque<Job> jobs_ GUARDED_BY(jobs_mutex_);
  bool responders_stop_ GUARDED_BY(jobs_mutex_) = false;

  Mutex completions_mutex_;
  std::vector<Completion> completions_ GUARDED_BY(completions_mutex_);

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> http_errors_{0};

  std::thread loop_thread_;
  std::vector<std::thread> responders_;
  bool stopped_ = false;  ///< stop() ran to completion (main thread only)
};

}  // namespace sts
