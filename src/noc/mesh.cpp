#include "noc/mesh.hpp"

#include <cmath>

namespace sts {

Mesh Mesh::for_pes(std::int64_t pes) {
  if (pes <= 0) throw std::invalid_argument("Mesh::for_pes: need at least one PE");
  auto rows = static_cast<std::int32_t>(std::sqrt(static_cast<double>(pes)));
  while (rows > 1 && (pes + rows - 1) / rows * rows < pes) --rows;
  if (rows < 1) rows = 1;
  const auto cols = static_cast<std::int32_t>((pes + rows - 1) / rows);
  return Mesh(rows, cols);
}

std::int64_t Mesh::link_id(MeshCoord from, MeshCoord to) const {
  // Layout: [0, rows*(cols-1)) east, then west, then north (y+), then south.
  const std::int64_t horizontal = static_cast<std::int64_t>(rows_) * (cols_ - 1);
  const std::int64_t vertical = static_cast<std::int64_t>(cols_) * (rows_ - 1);
  if (to.x == from.x + 1 && to.y == from.y) {
    return static_cast<std::int64_t>(from.y) * (cols_ - 1) + from.x;  // east
  }
  if (to.x == from.x - 1 && to.y == from.y) {
    return horizontal + static_cast<std::int64_t>(from.y) * (cols_ - 1) + to.x;  // west
  }
  if (to.y == from.y + 1 && to.x == from.x) {
    return 2 * horizontal + static_cast<std::int64_t>(from.x) * (rows_ - 1) + from.y;  // north
  }
  if (to.y == from.y - 1 && to.x == from.x) {
    return 2 * horizontal + vertical + static_cast<std::int64_t>(from.x) * (rows_ - 1) + to.y;
  }
  throw std::invalid_argument("Mesh::link_id: coordinates are not adjacent");
}

}  // namespace sts
