#pragma once

#include <cstdint>
#include <stdexcept>

namespace sts {

/// Coordinate on a 2D mesh network-on-chip.
struct MeshCoord {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend bool operator==(const MeshCoord& a, const MeshCoord& b) noexcept {
    return a.x == b.x && a.y == b.y;
  }
};

/// A rows x cols 2D mesh NoC of processing elements with dimension-ordered
/// (XY) routing — the fabric model behind the placement extension the paper
/// names as future work (Section 9). The scheduling model itself assumes
/// contention-free communication; the mesh quantifies how far a placement
/// is from that ideal (hop counts, per-link load).
class Mesh {
 public:
  Mesh(std::int32_t rows, std::int32_t cols) : rows_(rows), cols_(cols) {
    if (rows <= 0 || cols <= 0) throw std::invalid_argument("Mesh: bad dimensions");
  }

  /// Smallest near-square mesh with at least `pes` processing elements.
  [[nodiscard]] static Mesh for_pes(std::int64_t pes);

  [[nodiscard]] std::int32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int32_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(rows_) * cols_;
  }

  [[nodiscard]] MeshCoord coord_of(std::int64_t pe) const {
    return MeshCoord{static_cast<std::int32_t>(pe % cols_),
                     static_cast<std::int32_t>(pe / cols_)};
  }
  [[nodiscard]] std::int64_t pe_of(MeshCoord c) const {
    return static_cast<std::int64_t>(c.y) * cols_ + c.x;
  }

  /// Manhattan (minimal XY-route) hop distance.
  [[nodiscard]] std::int64_t distance(std::int64_t a, std::int64_t b) const {
    const MeshCoord ca = coord_of(a);
    const MeshCoord cb = coord_of(b);
    return std::int64_t{ca.x > cb.x ? ca.x - cb.x : cb.x - ca.x} +
           std::int64_t{ca.y > cb.y ? ca.y - cb.y : cb.y - ca.y};
  }

  /// Number of directed mesh links (for link-load vectors).
  [[nodiscard]] std::int64_t link_count() const noexcept {
    // Horizontal: rows * (cols-1) per direction; vertical: cols * (rows-1).
    return 2 * (static_cast<std::int64_t>(rows_) * (cols_ - 1) +
                static_cast<std::int64_t>(cols_) * (rows_ - 1));
  }

  /// Directed link id for a unit step from `from` towards `to` (adjacent).
  [[nodiscard]] std::int64_t link_id(MeshCoord from, MeshCoord to) const;

 private:
  std::int32_t rows_;
  std::int32_t cols_;
};

}  // namespace sts
