#include "noc/placement.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace sts {

namespace {

/// Streaming (same-block, direct) edges of one spatial block.
std::vector<EdgeId> block_stream_edges(const TaskGraph& graph,
                                       const StreamingSchedule& schedule,
                                       std::int32_t block_id) {
  std::vector<EdgeId> edges;
  for (EdgeId e = 0; static_cast<std::size_t>(e) < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    if (graph.kind(edge.src) == NodeKind::kBuffer || graph.kind(edge.dst) == NodeKind::kBuffer) {
      continue;
    }
    const auto& block_of = schedule.partition.block_of;
    if (block_of[static_cast<std::size_t>(edge.src)] == block_id &&
        block_of[static_cast<std::size_t>(edge.dst)] == block_id) {
      edges.push_back(e);
    }
  }
  return edges;
}

void route_xy(const Mesh& mesh, std::int64_t from, std::int64_t to, std::int64_t volume,
              std::vector<std::int64_t>& link_load) {
  MeshCoord at = mesh.coord_of(from);
  const MeshCoord goal = mesh.coord_of(to);
  while (at.x != goal.x) {
    const MeshCoord next{at.x < goal.x ? at.x + 1 : at.x - 1, at.y};
    link_load[static_cast<std::size_t>(mesh.link_id(at, next))] += volume;
    at = next;
  }
  while (at.y != goal.y) {
    const MeshCoord next{at.x, at.y < goal.y ? at.y + 1 : at.y - 1};
    link_load[static_cast<std::size_t>(mesh.link_id(at, next))] += volume;
    at = next;
  }
}

}  // namespace

PlacementMetrics evaluate_placement(const TaskGraph& graph, const StreamingSchedule& schedule,
                                    const Mesh& mesh,
                                    const std::vector<std::int64_t>& mesh_pe) {
  PlacementMetrics metrics;
  std::vector<std::int64_t> link_load(static_cast<std::size_t>(mesh.link_count()), 0);
  std::int64_t hop_sum = 0;
  for (std::size_t b = 0; b < schedule.partition.blocks.size(); ++b) {
    // Each block runs alone on the fabric: link loads do not add up across
    // blocks, so track the per-block maximum.
    std::fill(link_load.begin(), link_load.end(), 0);
    for (const EdgeId e : block_stream_edges(graph, schedule, static_cast<std::int32_t>(b))) {
      const Edge& edge = graph.edge(e);
      const std::int64_t from = mesh_pe[static_cast<std::size_t>(edge.src)];
      const std::int64_t to = mesh_pe[static_cast<std::size_t>(edge.dst)];
      if (from < 0 || to < 0) throw std::logic_error("evaluate_placement: unplaced task");
      const std::int64_t hops = mesh.distance(from, to);
      metrics.weighted_hops += hops * edge.volume;
      hop_sum += hops;
      ++metrics.streaming_edges;
      route_xy(mesh, from, to, edge.volume, link_load);
    }
    for (const std::int64_t load : link_load) {
      metrics.max_link_load = std::max(metrics.max_link_load, load);
    }
  }
  metrics.mean_hops = metrics.streaming_edges == 0
                          ? 0.0
                          : static_cast<double>(hop_sum) /
                                static_cast<double>(metrics.streaming_edges);
  return metrics;
}

Placement place_identity(const TaskGraph& graph, const StreamingSchedule& schedule,
                         const Mesh& mesh) {
  Placement placement;
  placement.mesh_pe.assign(graph.node_count(), -1);
  for (const auto& block : schedule.partition.blocks) {
    if (static_cast<std::int64_t>(block.size()) > mesh.size()) {
      throw std::invalid_argument("place_identity: block larger than the mesh");
    }
    for (std::size_t i = 0; i < block.size(); ++i) {
      placement.mesh_pe[static_cast<std::size_t>(block[i])] = static_cast<std::int64_t>(i);
    }
  }
  placement.metrics = evaluate_placement(graph, schedule, mesh, placement.mesh_pe);
  return placement;
}

Placement place_greedy(const TaskGraph& graph, const StreamingSchedule& schedule,
                       const Mesh& mesh) {
  Placement placement;
  placement.mesh_pe.assign(graph.node_count(), -1);

  for (std::size_t b = 0; b < schedule.partition.blocks.size(); ++b) {
    const auto& block = schedule.partition.blocks[b];
    if (static_cast<std::int64_t>(block.size()) > mesh.size()) {
      throw std::invalid_argument("place_greedy: block larger than the mesh");
    }
    const std::vector<EdgeId> edges =
        block_stream_edges(graph, schedule, static_cast<std::int32_t>(b));

    // Streamed volume per task inside this block drives the placement order:
    // heavy communicators grab central spots first.
    std::vector<std::int64_t> traffic(graph.node_count(), 0);
    for (const EdgeId e : edges) {
      traffic[static_cast<std::size_t>(graph.edge(e).src)] += graph.edge(e).volume;
      traffic[static_cast<std::size_t>(graph.edge(e).dst)] += graph.edge(e).volume;
    }
    std::vector<NodeId> order(block);
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId c) {
      const auto ta = traffic[static_cast<std::size_t>(a)];
      const auto tc = traffic[static_cast<std::size_t>(c)];
      if (ta != tc) return ta > tc;
      return a < c;
    });

    std::vector<bool> occupied(static_cast<std::size_t>(mesh.size()), false);
    const MeshCoord center{mesh.cols() / 2, mesh.rows() / 2};
    for (const NodeId v : order) {
      std::int64_t best_pe = -1;
      std::int64_t best_cost = std::numeric_limits<std::int64_t>::max();
      for (std::int64_t pe = 0; pe < mesh.size(); ++pe) {
        if (occupied[static_cast<std::size_t>(pe)]) continue;
        std::int64_t cost = 0;
        for (const EdgeId e : edges) {
          const Edge& edge = graph.edge(e);
          NodeId other = kInvalidNode;
          if (edge.src == v) other = edge.dst;
          if (edge.dst == v) other = edge.src;
          if (other == kInvalidNode) continue;
          const std::int64_t placed = placement.mesh_pe[static_cast<std::size_t>(other)];
          if (placed < 0) continue;
          cost += mesh.distance(pe, placed) * edge.volume;
        }
        // Tie-break towards the mesh center to keep future neighbors close.
        const MeshCoord c = mesh.coord_of(pe);
        const std::int64_t centrality =
            std::abs(c.x - center.x) + std::abs(c.y - center.y);
        const std::int64_t key = cost * 1024 + centrality;
        if (key < best_cost) {
          best_cost = key;
          best_pe = pe;
        }
      }
      placement.mesh_pe[static_cast<std::size_t>(v)] = best_pe;
      occupied[static_cast<std::size_t>(best_pe)] = true;
    }
  }
  placement.metrics = evaluate_placement(graph, schedule, mesh, placement.mesh_pe);
  return placement;
}

}  // namespace sts
