#pragma once

#include <cstdint>
#include <vector>

#include "core/streaming_schedule.hpp"
#include "graph/task_graph.hpp"
#include "noc/mesh.hpp"

namespace sts {

/// Quality metrics of a placement of one schedule onto a mesh NoC, under
/// dimension-ordered (XY) routing. The scheduling model assumes
/// contention-free links; `max_link_load` measures how far a placement is
/// from that ideal (elements crossing the hottest link).
struct PlacementMetrics {
  std::int64_t weighted_hops = 0;  ///< sum over streaming edges of volume * hops
  double mean_hops = 0.0;          ///< unweighted mean hop distance
  std::int64_t max_link_load = 0;  ///< elements over the most loaded directed link
  std::int64_t streaming_edges = 0;
};

/// A placement: mesh PE per task, per spatial block (blocks time-multiplex
/// the whole fabric, so placements of different blocks are independent).
struct Placement {
  std::vector<std::int64_t> mesh_pe;  ///< per node; -1 for buffers/unplaced
  PlacementMetrics metrics;
};

/// Baseline placement: tasks take mesh PEs in schedule (PE-index) order.
[[nodiscard]] Placement place_identity(const TaskGraph& graph,
                                       const StreamingSchedule& schedule, const Mesh& mesh);

/// Communication-aware greedy placement: within each block, tasks are
/// placed in decreasing order of streamed volume; each task takes the free
/// mesh PE minimizing the volume-weighted distance to its already-placed
/// streaming neighbors (ties towards the mesh center). A practical starting
/// point for the placement problem the paper leaves as future work.
[[nodiscard]] Placement place_greedy(const TaskGraph& graph, const StreamingSchedule& schedule,
                                     const Mesh& mesh);

/// Evaluates an existing placement (hops + XY link loads).
[[nodiscard]] PlacementMetrics evaluate_placement(const TaskGraph& graph,
                                                  const StreamingSchedule& schedule,
                                                  const Mesh& mesh,
                                                  const std::vector<std::int64_t>& mesh_pe);

}  // namespace sts
