#pragma once

#include <string_view>

#include "pipeline/schedule_context.hpp"

namespace sts {

/// One stage of the scheduling pipeline (paper Sections 5-6 plus the
/// evaluation passes). A pass reads upstream artifacts from the
/// ScheduleContext and deposits its own; `validate` is the between-stage
/// consistency hook Pipeline::run invokes after each pass and should throw
/// std::runtime_error on inconsistent output.
class Pass {
 public:
  virtual ~Pass() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  virtual void run(ScheduleContext& ctx) const = 0;

  /// Post-pass validation; default accepts everything.
  virtual void validate(const ScheduleContext& ctx) const { (void)ctx; }
};

}  // namespace sts
