#include "pipeline/passes.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "baseline/heft.hpp"
#include "core/buffer_sizing.hpp"
#include "core/work_depth.hpp"
#include "metrics/metrics.hpp"
#include "noc/mesh.hpp"

namespace sts {

const char* to_string(PartitionStrategy strategy) noexcept {
  switch (strategy) {
    case PartitionStrategy::kLTS: return "lts";
    case PartitionStrategy::kRLX: return "rlx";
    case PartitionStrategy::kWork: return "work";
  }
  return "?";
}

void PartitionPass::run(ScheduleContext& ctx) const {
  const TaskGraph& g = ctx.require_graph();
  Workspace* const ws = ctx.workspace.get();
  switch (strategy_) {
    case PartitionStrategy::kLTS:
      ctx.partition =
          partition_spatial_blocks(g, ctx.machine.num_pes, PartitionVariant::kLTS, ws);
      break;
    case PartitionStrategy::kRLX:
      ctx.partition =
          partition_spatial_blocks(g, ctx.machine.num_pes, PartitionVariant::kRLX, ws);
      break;
    case PartitionStrategy::kWork:
      ctx.partition = partition_by_work(g, ctx.machine.num_pes, ws);
      break;
  }
}

void PartitionPass::validate(const ScheduleContext& ctx) const {
  if (!partition_is_valid(ctx.require_graph(), ctx.require_partition(), ctx.machine.num_pes)) {
    throw std::runtime_error("PartitionPass: produced an invalid spatial partition");
  }
}

void StreamingSchedulePass::run(ScheduleContext& ctx) const {
  ctx.streaming =
      schedule_streaming(ctx.require_graph(), ctx.require_partition(), ctx.workspace.get());
  ctx.makespan = ctx.streaming->makespan;
}

void StreamingSchedulePass::validate(const ScheduleContext& ctx) const {
  const TaskGraph& g = ctx.require_graph();
  const StreamingSchedule& s = ctx.require_streaming();
  if (s.timing.size() != g.node_count()) {
    throw std::runtime_error("StreamingSchedulePass: timing entries != node count");
  }
  if (g.total_work() > 0 && s.makespan <= 0) {
    throw std::runtime_error("StreamingSchedulePass: non-positive makespan for non-empty graph");
  }
}

void BufferSizingPass::run(ScheduleContext& ctx) const {
  ctx.buffers = compute_buffer_plan(ctx.require_graph(), ctx.require_streaming(),
                                    ctx.machine.default_fifo_capacity);
}

void BufferSizingPass::validate(const ScheduleContext& ctx) const {
  const TaskGraph& g = ctx.require_graph();
  if (!ctx.buffers) throw std::logic_error("BufferSizingPass: buffers missing after run");
  for (const ChannelPlan& c : ctx.buffers->channels) {
    if (c.capacity < 1 || c.capacity > std::max<std::int64_t>(1, g.edge(c.edge).volume)) {
      throw std::runtime_error("BufferSizingPass: channel capacity outside [1, volume] on edge " +
                               std::to_string(c.edge));
    }
  }
}

void PlacementPass::run(ScheduleContext& ctx) const {
  const Mesh mesh = Mesh::for_pes(ctx.machine.num_pes);
  ctx.placement = place_greedy(ctx.require_graph(), ctx.require_streaming(), mesh);
}

void ListSchedulePass::run(ScheduleContext& ctx) const {
  ctx.list = schedule_non_streaming(ctx.require_graph(), ctx.machine.num_pes, ctx.workspace.get());
  ctx.makespan = ctx.list->makespan;
}

void HeftPass::run(ScheduleContext& ctx) const {
  const HeterogeneousSystem system =
      ctx.machine.pe_speed.empty() ? HeterogeneousSystem::homogeneous(ctx.machine.num_pes)
                                   : HeterogeneousSystem{ctx.machine.pe_speed};
  ctx.list = schedule_heft(ctx.require_graph(), system, ctx.workspace.get());
  ctx.makespan = ctx.list->makespan;
}

void CsdfPass::run(ScheduleContext& ctx) const {
  const CsdfGraph csdf = csdf_from_canonical(ctx.require_graph());
  ctx.csdf = analyze_self_timed(csdf);
  if (ctx.csdf->deadlocked || ctx.csdf->timed_out) {
    throw std::runtime_error(std::string("CsdfPass: self-timed execution ") +
                             (ctx.csdf->deadlocked ? "deadlocked" : "timed out"));
  }
  ctx.makespan = ctx.csdf->makespan;
}

void MetricsPass::run(ScheduleContext& ctx) const {
  const TaskGraph& g = ctx.require_graph();
  ScheduleMetrics m;
  const std::int64_t t1 = g.total_work();
  if (ctx.makespan > 0) m.speedup = speedup(t1, ctx.makespan);
  if (ctx.streaming) {
    ctx.streaming_depth_bound = streaming_depth(g);
    m.slr = streaming_slr(ctx.streaming->makespan, ctx.streaming_depth_bound);
    m.utilization = streaming_utilization(g, *ctx.streaming, ctx.machine.num_pes);
  } else if (ctx.list) {
    std::int64_t critical_path = 0;
    for (const std::int64_t b : bottom_levels(g, ctx.workspace.get())) {
      critical_path = std::max(critical_path, b);
    }
    if (critical_path > 0) {
      m.slr = static_cast<double>(ctx.list->makespan) / static_cast<double>(critical_path);
    }
    m.utilization = non_streaming_utilization(g, *ctx.list, ctx.machine.num_pes);
  }
  if (ctx.buffers) m.fifo_capacity = ctx.buffers->total_capacity;
  ctx.metrics = m;
}

void SimulationPass::run(ScheduleContext& ctx) const {
  if (!ctx.buffers) {
    throw std::logic_error("SimulationPass: buffers missing (run buffer-sizing first)");
  }
  // The sim options carry the request's lane count (a pure execution knob,
  // excluded from cache keys on both sides).
  SimOptions options = options_;
  options.intra_threads = ctx.machine.intra_threads;
  ctx.sim = simulate_streaming(ctx.require_graph(), ctx.require_streaming(), *ctx.buffers,
                               options);
}

void SimulationPass::validate(const ScheduleContext& ctx) const {
  if (!ctx.sim) throw std::logic_error("SimulationPass: sim result missing after run");
  if (ctx.sim->deadlocked) {
    std::string stuck;
    for (const NodeId v : ctx.sim->stuck) {
      if (!stuck.empty()) stuck += ',';
      stuck += std::to_string(v);
    }
    throw std::runtime_error("SimulationPass: schedule deadlocked (stuck tasks: " + stuck + ")");
  }
  if (ctx.sim->tick_limit_reached) {
    throw std::runtime_error("SimulationPass: tick limit reached before completion");
  }
}

}  // namespace sts
