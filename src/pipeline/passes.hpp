#pragma once

#include "core/partition.hpp"
#include "pipeline/pass.hpp"
#include "sim/dataflow_sim.hpp"

namespace sts {

/// Which spatial-block partitioning algorithm PartitionPass runs.
enum class PartitionStrategy : std::uint8_t {
  kLTS,   ///< Algorithm 1, SB-LTS (PartitionVariant::kLTS)
  kRLX,   ///< Algorithm 1, SB-RLX (PartitionVariant::kRLX)
  kWork,  ///< Algorithm 2, work-ordered (partition_by_work)
};

[[nodiscard]] const char* to_string(PartitionStrategy strategy) noexcept;

/// Spatial-block partitioning (paper Section 5.2) -> ctx.partition.
class PartitionPass final : public Pass {
 public:
  explicit PartitionPass(PartitionStrategy strategy) : strategy_(strategy) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "partition"; }
  void run(ScheduleContext& ctx) const override;
  void validate(const ScheduleContext& ctx) const override;

 private:
  PartitionStrategy strategy_;
};

/// Within-block streaming scheduling (Section 5.1) -> ctx.streaming,
/// ctx.makespan. Requires ctx.partition.
class StreamingSchedulePass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "streaming-schedule"; }
  void run(ScheduleContext& ctx) const override;
  void validate(const ScheduleContext& ctx) const override;
};

/// Deadlock-free FIFO sizing (Section 6) -> ctx.buffers. Requires
/// ctx.streaming.
class BufferSizingPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "buffer-sizing"; }
  void run(ScheduleContext& ctx) const override;
  void validate(const ScheduleContext& ctx) const override;
};

/// Greedy communication-aware mesh placement (the Section 9 extension)
/// -> ctx.placement. Requires ctx.streaming.
class PlacementPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "placement"; }
  void run(ScheduleContext& ctx) const override;
};

/// Non-streaming critical-path list scheduling (NSTR-SCH baseline,
/// Section 7) -> ctx.list, ctx.makespan.
class ListSchedulePass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "list-schedule"; }
  void run(ScheduleContext& ctx) const override;
};

/// HEFT on the (possibly heterogeneous) machine -> ctx.list, ctx.makespan.
class HeftPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "heft"; }
  void run(ScheduleContext& ctx) const override;
};

/// CSDF conversion + self-timed execution (Section 7.2) -> ctx.csdf,
/// ctx.makespan. Throws for graphs with buffer nodes (not representable).
class CsdfPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "csdf"; }
  void run(ScheduleContext& ctx) const override;
};

/// Evaluation metrics (speedup, SLR, utilization, FIFO space) for whichever
/// schedule upstream passes produced -> ctx.metrics.
class MetricsPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "metrics"; }
  void run(ScheduleContext& ctx) const override;
};

/// Validation-by-simulation (paper Appendix B) -> ctx.sim. Replays the
/// streaming schedule through the dataflow simulator (bulk-advance engine by
/// default); validate() rejects schedules that deadlock or exceed the tick
/// limit. Requires ctx.streaming and ctx.buffers.
class SimulationPass final : public Pass {
 public:
  explicit SimulationPass(SimOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "simulation"; }
  void run(ScheduleContext& ctx) const override;
  void validate(const ScheduleContext& ctx) const override;

 private:
  SimOptions options_;
};

}  // namespace sts
