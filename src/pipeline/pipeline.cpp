#include "pipeline/pipeline.hpp"

#include <chrono>

namespace sts {

std::vector<std::string> Pipeline::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) names.emplace_back(pass->name());
  return names;
}

void Pipeline::run(ScheduleContext& ctx) const {
  for (const auto& pass : passes_) {
    const auto begin = std::chrono::steady_clock::now();
    pass->run(ctx);
    pass->validate(ctx);
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - begin;
    ctx.timings.push_back(PassTiming{std::string(pass->name()), elapsed.count()});
  }
}

}  // namespace sts
