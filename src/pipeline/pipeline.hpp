#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/pass.hpp"

namespace sts {

/// An ordered sequence of passes over one ScheduleContext. `run` times every
/// pass (timings land in ctx.timings) and invokes each pass's `validate`
/// hook right after it, so a stage that produces inconsistent artifacts
/// aborts the run before downstream stages consume them.
class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  Pipeline& add(std::unique_ptr<Pass> pass) {
    passes_.push_back(std::move(pass));
    return *this;
  }

  template <typename PassT, typename... Args>
  Pipeline& emplace(Args&&... args) {
    return add(std::make_unique<PassT>(std::forward<Args>(args)...));
  }

  [[nodiscard]] std::size_t pass_count() const noexcept { return passes_.size(); }
  [[nodiscard]] std::vector<std::string> pass_names() const;

  void run(ScheduleContext& ctx) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace sts
