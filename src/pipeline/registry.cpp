#include "pipeline/registry.hpp"

#include <stdexcept>
#include <utility>

#include "pipeline/passes.hpp"

namespace sts {
namespace {

/// The paper's full streaming pipeline: partition -> within-block schedule
/// -> FIFO sizing (-> placement) -> metrics, parameterized by the
/// partitioning strategy.
class StreamingPipelineScheduler final : public Scheduler {
 public:
  StreamingPipelineScheduler(std::string name, std::string description,
                             PartitionStrategy strategy)
      : name_(std::move(name)), description_(std::move(description)), strategy_(strategy) {}

  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] std::string_view description() const noexcept override { return description_; }

  [[nodiscard]] Pipeline build_pipeline(const MachineConfig& machine) const override {
    Pipeline pipeline;
    pipeline.emplace<PartitionPass>(strategy_)
        .emplace<StreamingSchedulePass>()
        .emplace<BufferSizingPass>();
    if (machine.place_on_mesh) pipeline.emplace<PlacementPass>();
    pipeline.emplace<MetricsPass>();
    return pipeline;
  }

 private:
  std::string name_;
  std::string description_;
  PartitionStrategy strategy_;
};

/// A baseline realized by a single scheduling pass followed by metrics.
template <typename PassT>
class SinglePassScheduler final : public Scheduler {
 public:
  SinglePassScheduler(std::string name, std::string description)
      : name_(std::move(name)), description_(std::move(description)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] std::string_view description() const noexcept override { return description_; }

  [[nodiscard]] Pipeline build_pipeline(const MachineConfig&) const override {
    Pipeline pipeline;
    pipeline.emplace<PassT>().template emplace<MetricsPass>();
    return pipeline;
  }

 private:
  std::string name_;
  std::string description_;
};

void register_builtins(SchedulerRegistry& registry) {
  registry.add("streaming-lts", [] {
    return std::make_unique<StreamingPipelineScheduler>(
        "streaming-lts", "streaming pipeline with SB-LTS spatial-block partitioning (Alg. 1)",
        PartitionStrategy::kLTS);
  });
  registry.add("streaming-rlx", [] {
    return std::make_unique<StreamingPipelineScheduler>(
        "streaming-rlx", "streaming pipeline with SB-RLX spatial-block partitioning (Alg. 1)",
        PartitionStrategy::kRLX);
  });
  registry.add("streaming-work", [] {
    return std::make_unique<StreamingPipelineScheduler>(
        "streaming-work", "streaming pipeline with work-ordered partitioning (Alg. 2)",
        PartitionStrategy::kWork);
  });
  registry.add("list", [] {
    return std::make_unique<SinglePassScheduler<ListSchedulePass>>(
        "list", "non-streaming critical-path list scheduling (NSTR-SCH baseline)");
  });
  registry.add("heft", [] {
    return std::make_unique<SinglePassScheduler<HeftPass>>(
        "heft", "HEFT insertion-based list scheduling (heterogeneous baseline)");
  });
  registry.add("csdf", [] {
    return std::make_unique<SinglePassScheduler<CsdfPass>>(
        "csdf", "cyclo-static dataflow conversion + self-timed execution (Sec. 7.2)");
  });
}

}  // namespace

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry* registry = [] {
    auto* r = new SchedulerRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

void SchedulerRegistry::add(std::string name, Factory factory) {
  if (name.empty()) throw std::invalid_argument("SchedulerRegistry: empty scheduler name");
  if (!factory) throw std::invalid_argument("SchedulerRegistry: null factory for " + name);
  const auto [it, inserted] = factories_.emplace(std::move(name), std::move(factory));
  if (!inserted) {
    throw std::invalid_argument("SchedulerRegistry: duplicate scheduler name " + it->first);
  }
}

void SchedulerRegistry::remove(std::string_view name) {
  const auto it = factories_.find(name);
  if (it != factories_.end()) factories_.erase(it);
}

bool SchedulerRegistry::contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::unique_ptr<Scheduler> SchedulerRegistry::create(std::string_view name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string message = "SchedulerRegistry: unknown scheduler \"";
    message += name;
    message += "\"; registered:";
    for (const auto& [known, factory] : factories_) {
      message += ' ';
      message += known;
    }
    throw std::invalid_argument(message);
  }
  return it->second();
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) result.push_back(name);
  return result;
}

ScheduleResult schedule_by_name(std::string_view name, const TaskGraph& graph,
                                const MachineConfig& machine) {
  return SchedulerRegistry::instance().create(name)->schedule(graph, machine);
}

}  // namespace sts
