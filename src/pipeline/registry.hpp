#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/scheduler.hpp"

namespace sts {

/// Name -> factory registry of every scheduler in the system. The process
/// singleton (`instance()`) comes pre-loaded with the built-ins:
///
///   streaming-lts   Algorithm 1 SB-LTS partitioning + streaming pipeline
///   streaming-rlx   Algorithm 1 SB-RLX partitioning + streaming pipeline
///   streaming-work  Algorithm 2 work-ordered partitioning + streaming pipeline
///   list            non-streaming critical-path list scheduling (NSTR-SCH)
///   heft            HEFT on homogeneous/heterogeneous PEs
///   csdf            CSDF conversion + self-timed execution (Section 7.2)
///
/// Additional schedulers (experiments, downstream extensions) register at
/// load time or in test set-up via `add`.
class SchedulerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Scheduler>()>;

  /// The process-wide registry, built-ins included.
  [[nodiscard]] static SchedulerRegistry& instance();

  /// Registers a factory; throws std::invalid_argument on duplicate names.
  void add(std::string name, Factory factory);

  /// Removes a scheduler (mainly for test teardown). No-op if absent.
  void remove(std::string_view name);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Instantiates a scheduler; throws std::invalid_argument naming the
  /// unknown scheduler and listing the registered ones.
  [[nodiscard]] std::unique_ptr<Scheduler> create(std::string_view name) const;

  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  SchedulerRegistry() = default;

  std::map<std::string, Factory, std::less<>> factories_;
};

/// Convenience: look up `name` in the global registry and schedule `graph`.
[[nodiscard]] ScheduleResult schedule_by_name(std::string_view name, const TaskGraph& graph,
                                              const MachineConfig& machine);

}  // namespace sts
