#include "pipeline/result_fingerprint.hpp"

#include <cstring>
#include <string_view>

namespace sts {

namespace {

/// Incremental FNV-1a over explicitly-fed scalars. Every value goes through
/// a fixed-width two's-complement rendering, so the digest is independent of
/// struct padding and host struct layout; field tags keep adjacent
/// same-typed sequences from aliasing (e.g. an empty vector followed by
/// [1, 2] must not digest like [1] followed by [2]).
class Digest {
 public:
  void tag(char c) noexcept { byte(static_cast<unsigned char>(c)); }

  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>(v & 0xff));
      v >>= 8;
    }
  }

  void i64(std::int64_t v) noexcept { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) noexcept {
    // Bit pattern, not value: distinguishes -0.0 from 0.0 and keeps NaNs
    // stable. Metrics are products of deterministic arithmetic, so equal
    // results have equal bit patterns.
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void boolean(bool v) noexcept { byte(v ? 1 : 0); }

  void text(std::string_view s) noexcept {
    u64(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }

  [[nodiscard]] std::uint64_t finish() const noexcept {
    // Final avalanche, mirroring fnv1a64 in schedule_cache.cpp.
    std::uint64_t h = hash_;
    h ^= h >> 32;
    h *= 0xd6e8feb86659fd93ULL;
    h ^= h >> 32;
    return h;
  }

 private:
  void byte(unsigned char b) noexcept { hash_ = (hash_ ^ b) * 0x100000001b3ULL; }

  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

void feed(Digest& d, const SpatialPartition& partition) {
  d.tag('P');
  d.u64(partition.blocks.size());
  for (const std::vector<NodeId>& block : partition.blocks) {
    d.u64(block.size());
    for (const NodeId v : block) d.i64(v);
  }
  d.u64(partition.block_of.size());
  for (const std::int32_t b : partition.block_of) d.i64(b);
}

void feed(Digest& d, const StreamingSchedule& schedule) {
  d.tag('S');
  feed(d, schedule.partition);
  d.u64(schedule.timing.size());
  for (const TaskTiming& t : schedule.timing) {
    d.i64(t.start);
    d.i64(t.first_out);
    d.i64(t.last_out);
    d.i64(t.s_in.num());
    d.i64(t.s_in.den());
    d.i64(t.s_out.num());
    d.i64(t.s_out.den());
    d.i64(t.pe);
    d.i64(t.block);
  }
  d.u64(schedule.block_start.size());
  for (const std::int64_t v : schedule.block_start) d.i64(v);
  d.u64(schedule.block_end.size());
  for (const std::int64_t v : schedule.block_end) d.i64(v);
  d.i64(schedule.makespan);
}

void feed(Digest& d, const BufferPlan& buffers) {
  d.tag('B');
  d.u64(buffers.channels.size());
  for (const ChannelPlan& c : buffers.channels) {
    d.i64(c.edge);
    d.i64(c.capacity);
    d.i64(c.eq5_requirement);
    d.boolean(c.on_undirected_cycle);
  }
  d.i64(buffers.total_capacity);
}

void feed(Digest& d, const ListSchedule& list) {
  d.tag('L');
  d.u64(list.entries.size());
  for (const ListScheduleEntry& e : list.entries) {
    d.i64(e.start);
    d.i64(e.finish);
    d.i64(e.pe);
  }
  d.i64(list.makespan);
}

void feed(Digest& d, const CsdfAnalysis& csdf) {
  d.tag('C');
  d.i64(csdf.makespan);
  d.i64(csdf.firings);
  d.boolean(csdf.timed_out);
  d.boolean(csdf.deadlocked);
}

void feed(Digest& d, const Placement& placement) {
  d.tag('N');
  d.u64(placement.mesh_pe.size());
  for (const std::int64_t pe : placement.mesh_pe) d.i64(pe);
  d.i64(placement.metrics.weighted_hops);
  d.f64(placement.metrics.mean_hops);
  d.i64(placement.metrics.max_link_load);
  d.i64(placement.metrics.streaming_edges);
}

void feed(Digest& d, const SimResult& sim) {
  d.tag('M');
  d.boolean(sim.deadlocked);
  d.boolean(sim.tick_limit_reached);
  d.i64(sim.makespan);
  d.u64(sim.finish.size());
  for (const std::int64_t v : sim.finish) d.i64(v);
  d.u64(sim.first_out.size());
  for (const std::int64_t v : sim.first_out) d.i64(v);
  d.u64(sim.trace.size());
  for (const SimEvent& e : sim.trace) {
    d.i64(e.tick);
    d.i64(e.node);
    d.boolean(e.kind == SimEvent::Kind::kProduce);
  }
  d.u64(sim.stuck.size());
  for (const NodeId v : sim.stuck) d.i64(v);
  d.i64(sim.ticks_executed);
  d.i64(static_cast<std::int64_t>(sim.engine_used));
  // live_ticks and bulk_jumps are engine-internal effort counters, but they
  // are covered deliberately: the parallel candidate prefilter must not
  // change WHICH period jumps happen, only who screens the candidates.
  d.i64(sim.live_ticks);
  d.i64(sim.bulk_jumps);
}

}  // namespace

std::uint64_t result_fingerprint(const ScheduleResult& result) {
  Digest d;
  d.text(result.scheduler);
  if (result.streaming) feed(d, *result.streaming);
  if (result.buffers) feed(d, *result.buffers);
  if (result.list) feed(d, *result.list);
  if (result.csdf) feed(d, *result.csdf);
  if (result.placement) feed(d, *result.placement);
  if (result.sim) feed(d, *result.sim);
  d.tag('m');
  d.f64(result.metrics.speedup);
  d.f64(result.metrics.slr);
  d.f64(result.metrics.utilization);
  d.i64(result.metrics.fifo_capacity);
  d.i64(result.makespan);
  return d.finish();
}

}  // namespace sts
