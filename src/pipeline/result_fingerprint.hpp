#pragma once

#include <cstdint>

#include "pipeline/scheduler.hpp"

namespace sts {

/// Order-sensitive 64-bit digest (FNV-1a over a canonical byte rendering) of
/// every result-bearing field of a ScheduleResult: the scheduler name, the
/// partition/timing/block vectors of a streaming schedule, the buffer plan,
/// the list schedule, CSDF analysis, placement, simulation outcome, metrics,
/// and the makespan. Wall-clock pass timings are deliberately excluded —
/// they are the only fields allowed to differ between two runs of the same
/// scenario.
///
/// This is the equality oracle of the intra-request parallelism work: two
/// results fingerprint identically iff every schedule decision, every
/// ST/FO/LO value, and every FIFO capacity match bit-for-bit, so the
/// differential tests (and bench_huge_graph) can compare a serial run
/// against any lane count with one integer comparison.
[[nodiscard]] std::uint64_t result_fingerprint(const ScheduleResult& result);

}  // namespace sts
