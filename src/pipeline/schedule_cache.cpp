#include "pipeline/schedule_cache.hpp"

#include <cstring>

#include "graph/serialization.hpp"
#include "pipeline/registry.hpp"

namespace sts {

std::string canonical_cache_key(const TaskGraph& graph, std::string_view scheduler,
                                const MachineConfig& machine) {
  std::string key;
  key.reserve(80 + 16 + 9 * graph.node_count() + 24 * graph.edge_count());
  key += "scheduler=";
  key += scheduler;
  key += '\n';
  key += machine.cache_key();
  key += '\n';
  key += canonical_fingerprint(graph);
  return key;
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  // FNV-1a over 8-byte words with a final avalanche. Word-at-a-time keeps
  // the multiply dependency chain off the cache-hit critical path (the
  // byte-serial variant costs ~3 cycles per byte, which dominates hits on
  // multi-kilobyte keys); the avalanche restores diffusion across the word.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const char* p = text.data();
  std::size_t n = text.size();
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    hash = (hash ^ word) * 0x100000001b3ULL;
    p += 8;
    n -= 8;
  }
  std::uint64_t tail = 0;
  if (n > 0) std::memcpy(&tail, p, n);
  hash = (hash ^ (tail + n)) * 0x100000001b3ULL;
  hash ^= hash >> 32;
  hash *= 0xd6e8feb86659fd93ULL;
  hash ^= hash >> 32;
  return hash;
}

std::shared_ptr<const ScheduleResult> ScheduleCache::get_or_schedule(
    const TaskGraph& graph, std::string_view scheduler, const MachineConfig& machine) {
  std::string key = canonical_cache_key(graph, scheduler, machine);
  const std::uint64_t hash = fnv1a64(key);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = buckets_.find(hash);
    if (it != buckets_.end()) {
      for (const Entry& entry : it->second) {
        if (entry.key == key) {
          ++stats_.hits;
          return entry.result;
        }
      }
    }
    ++stats_.misses;
  }

  // Compute outside the lock: scheduling dominates, and concurrent misses on
  // distinct keys must not serialize behind each other.
  auto result =
      std::make_shared<const ScheduleResult>(schedule_by_name(scheduler, graph, machine));

  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry>& bucket = buckets_[hash];
  for (const Entry& entry : bucket) {
    if (entry.key == key) return entry.result;  // another thread won the race
  }
  bucket.push_back(Entry{std::move(key), result});
  return result;
}

ScheduleCache::Stats ScheduleCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ScheduleCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [hash, bucket] : buckets_) total += bucket.size();
  return total;
}

void ScheduleCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_.clear();
  stats_ = Stats{};
}

ScheduleCache& ScheduleCache::global() {
  static ScheduleCache* cache = new ScheduleCache();
  return *cache;
}

}  // namespace sts
