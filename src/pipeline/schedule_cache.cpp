#include "pipeline/schedule_cache.hpp"

#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "graph/serialization.hpp"
#include "pipeline/registry.hpp"

namespace sts {

ScheduleCache::Flight ScheduleCache::settle_current_exception() {
  Flight flight;
  try {
    throw;
  } catch (const std::invalid_argument& e) {
    flight.error = e.what();
    flight.invalid = true;
  } catch (const std::exception& e) {
    flight.error = e.what();
  } catch (...) {
    flight.error = "unknown error";
  }
  // A failure must read as one downstream even if what() was empty.
  if (flight.error.empty()) flight.error = "unknown error";
  return flight;
}

std::string canonical_cache_key(const TaskGraph& graph, std::string_view scheduler,
                                const MachineConfig& machine) {
  std::string key;
  key.reserve(80 + 16 + 9 * graph.node_count() + 24 * graph.edge_count());
  key += "scheduler=";
  key += scheduler;
  key += '\n';
  key += machine.cache_key();
  key += '\n';
  key += canonical_fingerprint(graph);
  return key;
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  // FNV-1a over 8-byte words with a final avalanche. Word-at-a-time keeps
  // the multiply dependency chain off the cache-hit critical path (the
  // byte-serial variant costs ~3 cycles per byte, which dominates hits on
  // multi-kilobyte keys); the avalanche restores diffusion across the word.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const char* p = text.data();
  std::size_t n = text.size();
  while (n >= 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, p, 8);
    hash = (hash ^ word) * 0x100000001b3ULL;
    p += 8;
    n -= 8;
  }
  std::uint64_t tail = 0;
  if (n > 0) std::memcpy(&tail, p, n);
  hash = (hash ^ (tail + n)) * 0x100000001b3ULL;
  hash ^= hash >> 32;
  hash *= 0xd6e8feb86659fd93ULL;
  hash ^= hash >> 32;
  return hash;
}

ScheduleCache::ScheduleCache(std::size_t capacity, std::optional<std::chrono::nanoseconds> ttl)
    : capacity_(capacity), ttl_(ttl) {
  if (capacity_ == 0) throw std::invalid_argument("ScheduleCache: capacity must be >= 1");
}

ScheduleCache::Lru::const_iterator ScheduleCache::find_entry_locked(std::uint64_t hash,
                                                             std::string_view key) const {
  const auto bucket = buckets_.find(hash);
  if (bucket == buckets_.end()) return lru_.end();
  for (const Lru::const_iterator it : bucket->second) {
    if (it->key == key) return it;
  }
  return lru_.end();
}

bool ScheduleCache::is_expired_locked(const Entry& entry) const {
  // One steady_clock read per probe, and only when a ttl is configured at
  // all — the default (no ttl) pays nothing. ttl == 0 expires every entry
  // on its next probe, which tests use for deterministic expiry.
  return ttl_ && std::chrono::steady_clock::now() - entry.inserted >= *ttl_;
}

void ScheduleCache::erase_expired_locked(Lru::const_iterator it) {
  auto& bucket = buckets_[it->hash];
  std::erase(bucket, it);
  if (bucket.empty()) buckets_.erase(it->hash);
  weight_ -= it->weight;
  ++stats_.expired;
  lru_.erase(it);
}

void ScheduleCache::evict_to_capacity_locked() {
  // Weight-aware LRU eviction; oversize entries are refused at admission
  // (get_or_compute / set_capacity keep weight_ <= capacity_ reachable), so
  // this always terminates with the bound restored.
  while (weight_ > capacity_ && !lru_.empty()) {
    const Lru::const_iterator victim = std::prev(lru_.cend());
    auto& bucket = buckets_[victim->hash];
    std::erase(bucket, victim);
    if (bucket.empty()) buckets_.erase(victim->hash);
    weight_ -= victim->weight;
    ++stats_.evictions;
    stats_.evicted_weight += victim->weight;
    lru_.pop_back();
  }
}

ScheduleCache::ResultPtr ScheduleCache::get_or_schedule(const TaskGraph& graph,
                                                        std::string_view scheduler,
                                                        const MachineConfig& machine) {
  return get_or_compute(canonical_cache_key(graph, scheduler, machine),
                        [&] { return schedule_by_name(scheduler, graph, machine); },
                        graph.node_count());
}

ScheduleCache::ResultPtr ScheduleCache::get_or_compute(
    std::string key, const std::function<ScheduleResult()>& compute, std::size_t weight) {
  const std::uint64_t hash = fnv1a64(key);

  std::shared_future<Flight> pending;
  // Constructed only on the miss path: a promise allocates shared state,
  // which the hit path (the whole point of the cache) must not pay for.
  std::optional<std::promise<Flight>> promise;
  {
    const MutexLock lock(mutex_);
    if (const Lru::const_iterator it = find_entry_locked(hash, key); it != lru_.cend()) {
      if (!is_expired_locked(*it)) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it);
        return it->result;
      }
      erase_expired_locked(it);  // fall through: this lookup is a miss (or a race)
    }
    if (const auto flight = in_flight_.find(key); flight != in_flight_.end()) {
      ++stats_.races;
      pending = flight->second;
    } else {
      ++stats_.misses;
      promise.emplace();
      in_flight_.emplace(key, promise->get_future().share());
    }
  }
  // Race loser: share the in-flight computation. A failure arrives as a
  // value and is rethrown here, on this thread.
  if (pending.valid()) {
    const Flight& flight = pending.get();
    if (flight.error.empty()) return flight.result;
    if (flight.invalid) throw std::invalid_argument(flight.error);
    throw std::runtime_error(flight.error);
  }

  // Miss: compute outside the lock — scheduling dominates, and concurrent
  // misses on distinct keys must not serialize behind each other.
  ResultPtr result;
  try {
    result = std::make_shared<const ScheduleResult>(compute());
  } catch (...) {
    {
      const MutexLock lock(mutex_);
      in_flight_.erase(key);  // next request for this key retries
    }
    // Settle the losers with the error detail as a value, then rethrow the
    // original exception locally for this caller.
    promise->set_value(settle_current_exception());
    throw;
  }
  {
    const MutexLock lock(mutex_);
    in_flight_.erase(key);
    if (weight == 0) weight = 1;
    if (weight > capacity_) {
      // Admission refusal: an entry heavier than the whole capacity can
      // never fit, and admitting it would only churn out every resident.
      // Counted with the evictions so the books still explain the miss
      // traffic it causes.
      ++stats_.evictions;
      stats_.evicted_weight += weight;
    } else {
      weight_ += weight;
      lru_.push_front(Entry{hash, std::move(key), weight, result, std::chrono::steady_clock::now()});
      buckets_[hash].push_back(lru_.begin());
      evict_to_capacity_locked();
    }
  }
  promise->set_value(Flight{result, {}, false});
  return result;
}

ScheduleCache::ResultPtr ScheduleCache::try_get(std::string_view key) {
  const std::uint64_t hash = fnv1a64(key);
  const MutexLock lock(mutex_);
  const Lru::const_iterator it = find_entry_locked(hash, key);
  if (it == lru_.cend()) return nullptr;
  if (is_expired_locked(*it)) {
    erase_expired_locked(it);
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it);
  return it->result;
}

bool ScheduleCache::contains(std::string_view key) const {
  const std::uint64_t hash = fnv1a64(key);
  const MutexLock lock(mutex_);
  const Lru::const_iterator it = find_entry_locked(hash, key);
  return it != lru_.cend() && !is_expired_locked(*it);
}

void ScheduleCache::set_ttl(std::optional<std::chrono::nanoseconds> ttl) {
  const MutexLock lock(mutex_);
  ttl_ = ttl;
}

std::optional<std::chrono::nanoseconds> ScheduleCache::ttl() const {
  const MutexLock lock(mutex_);
  return ttl_;
}

ScheduleCache::Stats ScheduleCache::stats() const {
  const MutexLock lock(mutex_);
  Stats out = stats_;
  if (ttl_) {
    // Expiry is lazy: an entry past its ttl is only physically dropped by the
    // next mutating probe of its key, yet contains()/try_get already read it
    // as absent. Count such residents here so stats().expired agrees with the
    // lookup behavior at all times, not just after the drop.
    const std::chrono::steady_clock::time_point now = std::chrono::steady_clock::now();
    for (const Entry& entry : lru_) {
      if (now - entry.inserted >= *ttl_) ++out.expired;
    }
  }
  return out;
}

std::size_t ScheduleCache::size() const {
  const MutexLock lock(mutex_);
  return lru_.size();
}

std::size_t ScheduleCache::total_weight() const {
  const MutexLock lock(mutex_);
  return weight_;
}

std::size_t ScheduleCache::capacity() const {
  const MutexLock lock(mutex_);
  return capacity_;
}

void ScheduleCache::set_capacity(std::size_t capacity) {
  if (capacity == 0) throw std::invalid_argument("ScheduleCache: capacity must be >= 1");
  const MutexLock lock(mutex_);
  capacity_ = capacity;
  evict_to_capacity_locked();
}

void ScheduleCache::clear() {
  const MutexLock lock(mutex_);
  lru_.clear();
  buckets_.clear();
  weight_ = 0;
  stats_ = Stats{};
}

ScheduleCache& ScheduleCache::global() {
  static ScheduleCache* cache = new ScheduleCache();
  return *cache;
}

}  // namespace sts
