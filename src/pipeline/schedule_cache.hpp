#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pipeline/scheduler.hpp"

namespace sts {

/// Canonical cache key of a scheduling query: the scheduler name, the
/// machine config, and the graph's canonical_fingerprint (the binary normal
/// form of graph/serialization.cpp — identical structure and volumes produce
/// identical keys regardless of node names).
[[nodiscard]] std::string canonical_cache_key(const TaskGraph& graph,
                                              std::string_view scheduler,
                                              const MachineConfig& machine);

/// 64-bit key hash (the bucket index of ScheduleCache entries): FNV-1a over
/// 8-byte words with a final avalanche mix.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// Memoizes full pipeline results keyed by the canonical graph+config hash,
/// in the spirit of the program caches of dataflow runtimes: repeated
/// queries on identical workloads skip partitioning, scheduling, and FIFO
/// sizing entirely and return a shared immutable result. Hash collisions are
/// disambiguated with the full key, so a hit is always exact. Thread-safe;
/// on concurrent misses for the same key the first completed result wins.
class ScheduleCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Returns the cached result for (graph, scheduler, machine), computing
  /// and inserting it through the global SchedulerRegistry on a miss.
  [[nodiscard]] std::shared_ptr<const ScheduleResult> get_or_schedule(
      const TaskGraph& graph, std::string_view scheduler, const MachineConfig& machine);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// The process-wide cache used by cached convenience entry points.
  [[nodiscard]] static ScheduleCache& global();

 private:
  struct Entry {
    std::string key;  ///< full canonical key, checked on every probe
    std::shared_ptr<const ScheduleResult> result;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_;
  Stats stats_;
};

}  // namespace sts
