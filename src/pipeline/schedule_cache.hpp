#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pipeline/scheduler.hpp"
#include "support/thread_annotations.hpp"

namespace sts {

/// Canonical cache key of a bare scheduling query: the scheduler name, the
/// machine config, and the graph's canonical_fingerprint (the binary normal
/// form of graph/serialization.cpp — identical structure and volumes produce
/// identical keys regardless of node names). This is the unversioned core;
/// the serving layer derives its full key (schema version + this + optional
/// sim options) through ScheduleRequest::key() in service/request.hpp.
[[nodiscard]] std::string canonical_cache_key(const TaskGraph& graph,
                                              std::string_view scheduler,
                                              const MachineConfig& machine);

/// 64-bit key hash (the bucket index of ScheduleCache entries): FNV-1a over
/// 8-byte words with a final avalanche mix.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// Memoizes full pipeline results keyed by the canonical graph+config hash,
/// in the spirit of the program caches of dataflow runtimes: repeated
/// queries on identical workloads skip partitioning, scheduling, and FIFO
/// sizing entirely and return a shared immutable result. Hash collisions are
/// disambiguated with the full key, so a hit is always exact.
///
/// Bounded and size-aware: every entry carries a weight (for schedule
/// results, the graph's node count — large graphs cost proportionally more
/// memory to hold and more time to recompute) and `capacity()` bounds the
/// TOTAL WEIGHT, not the entry count. Inserting past the cap evicts
/// least-recently-used entries until the weight fits (counted in
/// `Stats::evictions` / `Stats::evicted_weight`); an entry heavier than the
/// whole capacity is refused at admission (it can never fit, and admitting
/// it would churn out every resident — the compute's caller still gets its
/// result, the cache just will not hold it), so memory stays bounded under
/// sustained traffic with an unbounded key universe. Generic
/// `get_or_compute` callers default to weight 1, which degenerates to the
/// classic entry-count LRU.
///
/// Single-flight: concurrent requests for the same missing key compute the
/// result exactly once. The first thread computes (a `miss`); every thread
/// that arrives while that computation is in flight blocks on it and shares
/// the result (a `race`). A compute that throws propagates the failure to
/// all waiters (race losers rethrow a locally reconstructed exception — see
/// `Flight`) and leaves the key uncached, so the next request retries.
/// Consequently `Stats::misses` equals the number of schedules actually
/// computed, and hits + misses + races equals the number of lookups.
///
/// Optional per-entry TTL: with a ttl configured, every entry remembers its
/// insertion time and a lookup that finds an entry older than the ttl drops
/// it (counted in `Stats::expired`, NOT as an eviction) and proceeds as a
/// miss. Expiry is lazy — nothing scans the cache in the background; a stale
/// entry costs memory only until the next probe of its key or its LRU
/// eviction. Without a ttl (the default) entries never age out.
///
/// The compute callable must not re-enter the cache with the same key (it
/// would wait on its own in-flight marker).
class ScheduleCache {
 public:
  using ResultPtr = std::shared_ptr<const ScheduleResult>;

  /// A settled computation shared across threads as a plain value: exactly
  /// one of `result` (success) or `error` (failure detail) is populated.
  /// Errors deliberately cross thread boundaries as strings rather than as
  /// a stored `exception_ptr`: libstdc++ refcounts exception objects inside
  /// uninstrumented runtime code, so ThreadSanitizer cannot order a
  /// cross-thread rethrow against the thrower and reports a false data
  /// race. Consumers rebuild the exception locally (`invalid` selects
  /// std::invalid_argument over std::runtime_error).
  struct Flight {
    ResultPtr result;
    std::string error;     ///< non-empty iff the computation failed
    bool invalid = false;  ///< failure maps to std::invalid_argument
  };

  /// Folds the in-flight exception into a `Flight` failure value. Must be
  /// called from inside a catch block; the rethrow-and-classify stays on
  /// the calling thread, which is the whole point — see `Flight`.
  [[nodiscard]] static Flight settle_current_exception();

  struct Stats {
    std::uint64_t hits = 0;       ///< completed entry found in the cache
    std::uint64_t misses = 0;     ///< caller computed the result (== schedules run)
    std::uint64_t races = 0;      ///< joined another thread's in-flight computation
    std::uint64_t evictions = 0;  ///< entries dropped by the weight bound
    std::uint64_t evicted_weight = 0;  ///< total weight of those dropped entries
    std::uint64_t expired = 0;  ///< entries aged out by the ttl: dropped on a
                                ///< mutating probe, or still resident but past
                                ///< the ttl at the stats() snapshot (so this
                                ///< always agrees with what contains() reads)
  };

  /// Default total-weight bound: with schedule entries weighing their graph's
  /// node count (typically 10^2..10^3), this holds on the order of the old
  /// 4096-entry default for mid-sized graphs.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  /// Throws std::invalid_argument on zero capacity. A ttl of nullopt (the
  /// default) disables expiry; a ttl of zero expires every entry on its next
  /// probe (useful for deterministic expiry tests).
  explicit ScheduleCache(std::size_t capacity = kDefaultCapacity,
                         std::optional<std::chrono::nanoseconds> ttl = std::nullopt);

  /// Returns the cached result for (graph, scheduler, machine), computing
  /// and inserting it through the global SchedulerRegistry on a miss. The
  /// entry weighs the graph's node count.
  [[nodiscard]] ResultPtr get_or_schedule(const TaskGraph& graph, std::string_view scheduler,
                                          const MachineConfig& machine) EXCLUDES(mutex_);

  /// Core single-flight lookup under an arbitrary precomputed key: returns
  /// the cached result, or runs `compute` (outside the cache lock, exactly
  /// once per key across all concurrent callers) and caches it with the
  /// given admission weight (clamped to >= 1).
  [[nodiscard]] ResultPtr get_or_compute(std::string key,
                                         const std::function<ScheduleResult()>& compute,
                                         std::size_t weight = 1) EXCLUDES(mutex_);

  /// Non-blocking probe: the completed entry for `key` (bumping its recency
  /// and counting a hit), or nullptr. Absence is not counted as a miss —
  /// callers fall through to get_or_compute, which classifies the lookup.
  [[nodiscard]] ResultPtr try_get(std::string_view key) EXCLUDES(mutex_);

  /// True if a completed, unexpired entry for `key` is cached. No recency
  /// bump, no stats, and no erasure of an expired entry (this is a const
  /// inspection hook for tests and monitoring): an entry past its ttl reads
  /// as absent here and is physically dropped by the next mutating probe.
  [[nodiscard]] bool contains(std::string_view key) const EXCLUDES(mutex_);

  /// Re-configures the ttl for subsequent lookups; applies to already
  /// resident entries too (their insertion times are always recorded).
  void set_ttl(std::optional<std::chrono::nanoseconds> ttl) EXCLUDES(mutex_);
  [[nodiscard]] std::optional<std::chrono::nanoseconds> ttl() const EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const EXCLUDES(mutex_);  ///< resident entry count
  /// Resident weight, <= capacity().
  [[nodiscard]] std::size_t total_weight() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const EXCLUDES(mutex_);  ///< total-weight bound

  /// Re-bounds the cache, evicting LRU entries if shrinking below the
  /// current total weight. Throws std::invalid_argument on zero.
  void set_capacity(std::size_t capacity) EXCLUDES(mutex_);

  /// Drops all completed entries and resets stats. In-flight computations
  /// are unaffected and will insert their results afterwards.
  void clear() EXCLUDES(mutex_);

  /// The process-wide cache used by cached convenience entry points.
  [[nodiscard]] static ScheduleCache& global();

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::string key;  ///< full canonical key, checked on every probe
    std::size_t weight = 1;
    ResultPtr result;
    /// Insertion time, for ttl expiry. Always recorded (one steady_clock
    /// read on the miss path, where scheduling dominates anyway) so a ttl
    /// configured later still applies to resident entries.
    std::chrono::steady_clock::time_point inserted;
  };
  using Lru = std::list<Entry>;

  [[nodiscard]] Lru::const_iterator find_entry_locked(std::uint64_t hash,
                                                      std::string_view key) const
      REQUIRES(mutex_);
  [[nodiscard]] bool is_expired_locked(const Entry& entry) const REQUIRES(mutex_);
  void erase_expired_locked(Lru::const_iterator it) REQUIRES(mutex_);
  void evict_to_capacity_locked() REQUIRES(mutex_);

  mutable Mutex mutex_;
  Lru lru_ GUARDED_BY(mutex_);  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::vector<Lru::const_iterator>> buckets_
      GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::shared_future<Flight>> in_flight_
      GUARDED_BY(mutex_);
  std::size_t capacity_ GUARDED_BY(mutex_);
  /// nullopt = never expire.
  std::optional<std::chrono::nanoseconds> ttl_ GUARDED_BY(mutex_);
  /// Σ entry weight, <= capacity_ outside evict.
  std::size_t weight_ GUARDED_BY(mutex_) = 0;
  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace sts
