#include "pipeline/schedule_context.hpp"

#include <stdexcept>

#include "support/text.hpp"

namespace sts {

std::string MachineConfig::cache_key() const {
  std::string key;
  key.reserve(48 + 12 * pe_speed.size());
  key += "pes=";
  append_number(key, num_pes);
  key += ";fifo=";
  append_number(key, default_fifo_capacity);
  key += ";mesh=";
  key += place_on_mesh ? '1' : '0';
  key += ";speeds=";
  for (std::size_t i = 0; i < pe_speed.size(); ++i) {
    if (i > 0) key += ',';
    append_number(key, pe_speed[i]);
  }
  return key;
}

const TaskGraph& ScheduleContext::require_graph() const {
  if (graph == nullptr) throw std::logic_error("ScheduleContext: no graph attached");
  return *graph;
}

const SpatialPartition& ScheduleContext::require_partition() const {
  if (!partition) {
    throw std::logic_error("ScheduleContext: partition missing (run a partition pass first)");
  }
  return *partition;
}

const StreamingSchedule& ScheduleContext::require_streaming() const {
  if (!streaming) {
    throw std::logic_error(
        "ScheduleContext: streaming schedule missing (run the streaming-schedule pass first)");
  }
  return *streaming;
}

}  // namespace sts
