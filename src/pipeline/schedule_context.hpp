#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baseline/list_scheduler.hpp"
#include "core/buffer_sizing.hpp"
#include "core/partition.hpp"
#include "core/streaming_schedule.hpp"
#include "csdf/csdf.hpp"
#include "graph/task_graph.hpp"
#include "noc/placement.hpp"
#include "sim/dataflow_sim.hpp"
#include "support/rational.hpp"

namespace sts {

/// Machine-side inputs of a scheduling run, shared by every scheduler behind
/// the pipeline API. The paper's model is `num_pes` homogeneous PEs;
/// `pe_speed` (used by HEFT) generalizes to heterogeneous fabrics and, when
/// empty, defaults to `num_pes` unit-speed PEs.
struct MachineConfig {
  std::int64_t num_pes = 8;

  /// Slack slots granted to every streaming FIFO on top of the Equation 5
  /// requirement (see compute_buffer_plan; 2 = double buffering).
  std::int64_t default_fifo_capacity = 2;

  /// Relative PE speeds for heterogeneous scheduling (HEFT). Empty means
  /// `num_pes` homogeneous unit-speed PEs.
  std::vector<double> pe_speed;

  /// Run the NoC placement pass (greedy mesh placement) after scheduling.
  bool place_on_mesh = false;

  /// Execution lanes for the scheduler's internal loops (1 = serial,
  /// 0 = hardware threads, N = up to N lanes). A pure execution knob —
  /// results are bit-identical at every value — so it is NOT part of
  /// cache_key(): a request answered at one lane count is a valid cache hit
  /// for any other.
  std::int64_t intra_threads = 1;

  /// Canonical text form of every result-affecting field, used as part of
  /// cache keys (intra_threads is deliberately excluded, see above).
  [[nodiscard]] std::string cache_key() const;
};

/// Wall-clock timing of one executed pipeline pass.
struct PassTiming {
  std::string pass;
  double seconds = 0.0;
};

/// Summary metrics of a schedule (the paper's Section 7 evaluation axes).
struct ScheduleMetrics {
  double speedup = 0.0;      ///< T1 / makespan
  double slr = 0.0;          ///< makespan / T_s_inf (streaming) or / CP (baseline)
  double utilization = 0.0;  ///< busy PE-time over P * makespan
  std::int64_t fifo_capacity = 0;  ///< total FIFO slots (streaming schedules)
};

/// Shared state threaded through a pipeline run: the immutable problem
/// (graph + machine config) plus the artifacts each pass deposits for its
/// successors. Artifacts start empty; a pass that needs a missing upstream
/// artifact throws std::logic_error naming the missing stage, so pipeline
/// mis-assembly fails loudly instead of reading garbage.
struct ScheduleContext {
  const TaskGraph* graph = nullptr;
  MachineConfig machine;

  /// Per-request execution resources (arena scratch + parallel lanes per
  /// machine.intra_threads), created by Scheduler::schedule and threaded
  /// into the pass implementations. Shared-ptr so contexts stay copyable;
  /// passes treat a null workspace as "serial, local scratch".
  std::shared_ptr<Workspace> workspace;

  // Artifacts, in pipeline order.
  std::optional<SpatialPartition> partition;   ///< PartitionPass
  std::optional<StreamingSchedule> streaming;  ///< StreamingSchedulePass
  std::optional<BufferPlan> buffers;           ///< BufferSizingPass
  std::optional<ListSchedule> list;            ///< ListSchedulePass / HeftPass
  std::optional<CsdfAnalysis> csdf;            ///< CsdfPass
  std::optional<Placement> placement;          ///< PlacementPass
  std::optional<ScheduleMetrics> metrics;      ///< MetricsPass
  std::optional<SimResult> sim;                ///< SimulationPass

  /// Makespan of whichever schedule the pipeline produced.
  std::int64_t makespan = 0;

  /// Exact streaming depth bound behind metrics.slr (MetricsPass, streaming
  /// schedulers only); forwarded into ScheduleResult::depth.
  Rational streaming_depth_bound{0};

  /// Per-pass wall-clock timings recorded by Pipeline::run.
  std::vector<PassTiming> timings;

  [[nodiscard]] const TaskGraph& require_graph() const;
  [[nodiscard]] const SpatialPartition& require_partition() const;
  [[nodiscard]] const StreamingSchedule& require_streaming() const;
};

}  // namespace sts
