#include "pipeline/scheduler.hpp"

#include <stdexcept>
#include <string>

namespace sts {

void validate_schedule_inputs(const TaskGraph& graph, const MachineConfig& machine) {
  if (machine.num_pes <= 0) {
    throw std::invalid_argument("schedule: num_pes must be positive, got " +
                                std::to_string(machine.num_pes));
  }
  if (machine.default_fifo_capacity < 1) {
    throw std::invalid_argument("schedule: default_fifo_capacity must be >= 1, got " +
                                std::to_string(machine.default_fifo_capacity));
  }
  if (machine.intra_threads < 0) {
    throw std::invalid_argument("schedule: intra_threads must be >= 0 (0 = auto), got " +
                                std::to_string(machine.intra_threads));
  }
  if (!machine.pe_speed.empty()) {
    if (static_cast<std::int64_t>(machine.pe_speed.size()) != machine.num_pes) {
      throw std::invalid_argument("schedule: pe_speed has " +
                                  std::to_string(machine.pe_speed.size()) +
                                  " entries but num_pes is " + std::to_string(machine.num_pes));
    }
    for (const double speed : machine.pe_speed) {
      if (!(speed > 0.0)) {
        throw std::invalid_argument("schedule: pe_speed entries must be positive");
      }
    }
  }
  const std::vector<std::string> violations = graph.validate();
  if (!violations.empty()) {
    std::string message = "schedule: graph is not a valid canonical task graph:";
    for (const std::string& v : violations) {
      message += "\n  - ";
      message += v;
    }
    throw std::invalid_argument(message);
  }
}

ScheduleResult Scheduler::schedule(const TaskGraph& graph, const MachineConfig& machine) const {
  validate_schedule_inputs(graph, machine);

  ScheduleContext ctx;
  ctx.graph = &graph;
  ctx.machine = machine;
  ctx.workspace = std::make_shared<Workspace>(machine.intra_threads);
  build_pipeline(machine).run(ctx);

  ScheduleResult result;
  result.scheduler = std::string(name());
  result.streaming = std::move(ctx.streaming);
  result.buffers = std::move(ctx.buffers);
  result.list = std::move(ctx.list);
  result.csdf = ctx.csdf;
  result.placement = std::move(ctx.placement);
  result.sim = std::move(ctx.sim);
  if (ctx.metrics) result.metrics = *ctx.metrics;
  result.makespan = ctx.makespan;
  result.depth = ctx.streaming_depth_bound;
  result.timings = std::move(ctx.timings);
  return result;
}

}  // namespace sts
