#pragma once

#include <string_view>

#include "pipeline/pipeline.hpp"
#include "pipeline/schedule_context.hpp"
#include "support/rational.hpp"

namespace sts {

/// Unified output of any registered scheduler. Exactly one of
/// `streaming` / `list` / `csdf` is populated depending on the scheduler
/// family; `metrics`, `makespan`, and `timings` are always filled.
struct ScheduleResult {
  std::string scheduler;  ///< registry name that produced this result

  std::optional<StreamingSchedule> streaming;
  std::optional<BufferPlan> buffers;
  std::optional<ListSchedule> list;
  std::optional<CsdfAnalysis> csdf;
  std::optional<Placement> placement;
  std::optional<SimResult> sim;  ///< filled when a simulation pass ran

  ScheduleMetrics metrics;
  std::int64_t makespan = 0;

  /// Streaming depth bound T_s_inf that produced metrics.slr, kept as the
  /// exact rational. Decomposes over connected partitions as a plain max,
  /// which is how fragment assembly reproduces a cold run's slr bit-for-bit
  /// without re-deriving whole-graph levels. Zero for non-streaming results.
  Rational depth{0};

  std::vector<PassTiming> timings;

  [[nodiscard]] bool is_streaming() const noexcept { return streaming.has_value(); }
};

/// A named scheduling strategy: assembles the pass pipeline that realizes it
/// (partitioning + streaming scheduling + FIFO sizing for the paper's
/// method; a single scheduling pass for the baselines) and runs it over a
/// fresh ScheduleContext. Instances are stateless and cheap; create them
/// through SchedulerRegistry.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// The pass sequence realizing this scheduler under `machine`.
  [[nodiscard]] virtual Pipeline build_pipeline(const MachineConfig& machine) const = 0;

  /// Validates preconditions (canonical graph, positive PE count), runs the
  /// pipeline, and packs the context artifacts into a ScheduleResult.
  /// Throws std::invalid_argument with the full diagnostic list when the
  /// graph is not a valid canonical task graph or the machine is degenerate.
  [[nodiscard]] ScheduleResult schedule(const TaskGraph& graph,
                                        const MachineConfig& machine) const;
};

/// Shared precondition check: throws std::invalid_argument listing every
/// graph violation, or naming the bad machine parameter.
void validate_schedule_inputs(const TaskGraph& graph, const MachineConfig& machine);

}  // namespace sts
