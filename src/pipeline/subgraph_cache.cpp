#include "pipeline/subgraph_cache.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "graph/serialization.hpp"
#include "metrics/metrics.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/schedule_cache.hpp"
#include "support/parallel.hpp"
#include "support/rational.hpp"

namespace sts {

std::shared_ptr<const ScheduleResult> SubgraphCache::find(std::uint64_t hash,
                                                          const std::string& context,
                                                          const std::string& form, bool delta) {
  const MutexLock lock(mutex_);
  if (const auto bucket = buckets_.find(hash); bucket != buckets_.end()) {
    for (const auto it : bucket->second) {
      if (it->context == context && it->form == form) {
        ++stats_.partition_hits;
        lru_.splice(lru_.begin(), lru_, it);
        return it->fragment;
      }
    }
  }
  ++stats_.partition_misses;
  if (delta) ++stats_.delta_invalidated;
  return nullptr;
}

std::shared_ptr<const ScheduleResult> SubgraphCache::insert(std::uint64_t hash,
                                                            std::string context,
                                                            std::string form,
                                                            ScheduleResult fragment,
                                                            std::size_t weight) {
  auto owned = std::make_shared<const ScheduleResult>(std::move(fragment));
  const MutexLock lock(mutex_);
  auto& bucket = buckets_[hash];
  for (const auto it : bucket) {
    if (it->context == context && it->form == form) {
      return it->fragment;  // lost a benign compute race
    }
  }
  if (weight > capacity_) return owned;  // would evict everything: refuse
  lru_.push_front(Entry{hash, std::move(context), std::move(form), weight, owned});
  bucket.push_back(lru_.begin());
  weight_ += weight;
  evict_to_capacity_locked();
  return owned;
}

void SubgraphCache::evict_to_capacity_locked() {
  while (weight_ > capacity_ && !lru_.empty()) {
    const auto victim = std::prev(lru_.end());
    auto& bucket = buckets_[victim->hash];
    std::erase_if(bucket, [&victim](const auto it) { return it == victim; });
    if (bucket.empty()) buckets_.erase(victim->hash);
    weight_ -= victim->weight;
    lru_.pop_back();
  }
}

void SubgraphCache::note_assembled(std::size_t fragment_count) {
  const MutexLock lock(mutex_);
  stats_.fragments_assembled += fragment_count;
}

SubgraphCache::Stats SubgraphCache::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

std::size_t SubgraphCache::size() const {
  const MutexLock lock(mutex_);
  return lru_.size();
}

std::size_t SubgraphCache::total_weight() const {
  const MutexLock lock(mutex_);
  return weight_;
}

namespace {

bool composable_scheduler(const std::string& scheduler, const MachineConfig& machine) {
  if (machine.place_on_mesh) return false;
  return scheduler == "streaming-lts" || scheduler == "streaming-rlx" ||
         scheduler == "streaming-work";
}

std::string fragment_context(const std::string& scheduler, const MachineConfig& machine) {
  std::string context;
  context.reserve(32 + scheduler.size());
  context += "scheduler=";
  context += scheduler;
  context += '\n';
  context += machine.cache_key();
  return context;
}

/// Combines the context digest with a partition's precomputed form digest
/// into one bucket hash (splitmix64-style avalanche, mirroring the combine
/// in result_fingerprint.cpp). Only a bucket selector — probes compare both
/// strings in full.
std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Stitches per-partition fragments into whole-graph coordinates. Fragment c
/// is the ScheduleResult of partition c materialized in canonical node order,
/// so local node id i == index.nodes(c)[i] and local edge ids enumerate the
/// partition's out-edges in (canonical node, insertion) order — the same
/// order materialize_partition records them. Times shift by the cumulative
/// makespan of preceding partitions (the streaming recurrences are
/// translation-invariant in the block release time), block indices by the
/// cumulative block count; metrics are recomputed globally with the exact
/// MetricsPass formulas so every double matches a cold run bit-for-bit.
///
/// A serial prefix pass fixes every partition's destination offsets, then
/// partitions are stitched in parallel over machine.intra_threads lanes —
/// each writes a disjoint slice of the preallocated arrays, so the result is
/// bit-identical at every lane count. The whole-graph streaming depth behind
/// slr is the max of the fragments' depths: the supernode DAG of the depth
/// bound never crosses partition boundaries (its edges follow buffer edges,
/// which stay inside a weakly connected partition), so the longest path in
/// the whole graph's DAG is the max over the partitions' longest paths —
/// the one whole-graph O(n) recurrence assembly gets to skip.
ScheduleResult assemble_from_fragments(
    const std::string& scheduler, const TaskGraph& graph, const MachineConfig& machine,
    const CanonicalPartitionIndex& index,
    const std::vector<std::shared_ptr<const ScheduleResult>>& fragments,
    const Parallel& parallel) {
  const std::size_t n = graph.node_count();
  const auto pcount = static_cast<std::size_t>(index.count);

  std::vector<std::int64_t> time_offset(pcount + 1, 0);
  std::vector<std::size_t> block_offset(pcount + 1, 0);
  std::vector<std::size_t> start_offset(pcount + 1, 0);
  std::vector<std::size_t> end_offset(pcount + 1, 0);
  std::vector<std::size_t> channel_offset(pcount + 1, 0);
  std::int64_t total_capacity = 0;
  for (std::size_t c = 0; c < pcount; ++c) {
    const ScheduleResult& fragment = *fragments[c];
    const StreamingSchedule& ls = *fragment.streaming;
    // The next partition's blocks release when this one's last block ends —
    // exactly the cold scheduler's running block_release.
    time_offset[c + 1] = time_offset[c] + ls.makespan;
    block_offset[c + 1] = block_offset[c] + ls.partition.blocks.size();
    start_offset[c + 1] = start_offset[c] + ls.block_start.size();
    end_offset[c + 1] = end_offset[c] + ls.block_end.size();
    channel_offset[c + 1] = channel_offset[c] + fragment.buffers->channels.size();
    total_capacity += fragment.buffers->total_capacity;
  }

  StreamingSchedule assembled;
  assembled.partition.block_of.assign(n, -1);
  assembled.timing.assign(n, TaskTiming{});
  assembled.partition.blocks.resize(block_offset[pcount]);
  assembled.block_start.resize(start_offset[pcount]);
  assembled.block_end.resize(end_offset[pcount]);
  BufferPlan buffers;
  buffers.channels.resize(channel_offset[pcount]);
  buffers.total_capacity = total_capacity;

  parallel.for_range(static_cast<std::int64_t>(pcount), 1, [&](std::int64_t lo,
                                                               std::int64_t hi) {
    std::vector<EdgeId> edge_ids;
    for (std::int64_t ci = lo; ci < hi; ++ci) {
      const auto c = static_cast<std::size_t>(ci);
      const std::span<const NodeId> nodes = index.nodes(static_cast<std::int32_t>(ci));
      const ScheduleResult& fragment = *fragments[c];
      const StreamingSchedule& ls = *fragment.streaming;
      const std::int64_t toff = time_offset[c];
      const auto block_base = static_cast<std::int32_t>(block_offset[c]);

      for (std::size_t b = 0; b < ls.partition.blocks.size(); ++b) {
        const std::vector<NodeId>& block = ls.partition.blocks[b];
        std::vector<NodeId>& mapped = assembled.partition.blocks[block_offset[c] + b];
        mapped.reserve(block.size());
        for (const NodeId lv : block) mapped.push_back(nodes[static_cast<std::size_t>(lv)]);
      }
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        const auto v = static_cast<std::size_t>(nodes[i]);
        TaskTiming t = ls.timing[i];
        // Untimed nodes (buffers serving no block) keep the default record:
        // every timed node has first_out >= block_release + 1 >= 1.
        if (t.block < 0 && t.first_out == 0) {
          assembled.timing[v] = t;
          continue;
        }
        t.start += toff;
        t.first_out += toff;
        t.last_out += toff;
        if (t.block >= 0) {
          t.block += block_base;
          assembled.partition.block_of[v] = t.block;
        }
        assembled.timing[v] = t;
      }
      for (std::size_t b = 0; b < ls.block_start.size(); ++b) {
        assembled.block_start[start_offset[c] + b] = ls.block_start[b] + toff;
      }
      for (std::size_t b = 0; b < ls.block_end.size(); ++b) {
        assembled.block_end[end_offset[c] + b] = ls.block_end[b] + toff;
      }

      const BufferPlan& lb = *fragment.buffers;
      if (!lb.channels.empty()) {
        // Rebuild the partition's local-edge-id -> global EdgeId map by
        // walking out-edges in the materialization order.
        edge_ids.clear();
        for (const NodeId v : nodes) {
          for (const EdgeId e : graph.out_edges(v)) edge_ids.push_back(e);
        }
        for (std::size_t k = 0; k < lb.channels.size(); ++k) {
          ChannelPlan channel = lb.channels[k];
          channel.edge = edge_ids[static_cast<std::size_t>(channel.edge)];
          buffers.channels[channel_offset[c] + k] = channel;
        }
      }
    }
  });
  assembled.makespan = assembled.block_end.empty() ? 0 : assembled.block_end.back();

  ScheduleResult result;
  result.scheduler = scheduler;
  result.makespan = assembled.makespan;

  Rational depth(0);
  for (const auto& fragment : fragments) depth = std::max(depth, fragment->depth);
  result.depth = depth;

  // Same formulas (and evaluation order) as MetricsPass::run.
  ScheduleMetrics m;
  const std::int64_t t1 = graph.total_work();
  if (result.makespan > 0) m.speedup = speedup(t1, result.makespan);
  m.slr = streaming_slr(assembled.makespan, depth);
  m.utilization = streaming_utilization(graph, assembled, machine.num_pes);
  m.fifo_capacity = buffers.total_capacity;
  result.metrics = m;

  result.streaming = std::move(assembled);
  result.buffers = std::move(buffers);
  return result;
}

}  // namespace

ScheduleResult schedule_with_subgraph_cache(const std::string& scheduler,
                                            const TaskGraph& graph,
                                            const MachineConfig& machine,
                                            SubgraphCache& cache, bool delta_request) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point begin = Clock::now();

  if (!composable_scheduler(scheduler, machine)) {
    // Whole-graph fragment under the exact (id-sensitive) key: list/HEFT/CSDF
    // results and mesh placements carry node ids verbatim, so they are only
    // reusable for a bit-identical graph — never across renumberings.
    std::string context = canonical_cache_key(graph, scheduler, machine);
    const std::uint64_t hash = fnv1a64(context);
    static const std::string kNoForm;
    if (const auto hit = cache.find(hash, context, kNoForm, delta_request)) return *hit;
    ScheduleResult result = schedule_by_name(scheduler, graph, machine);
    return *cache.insert(hash, std::move(context), std::string(), std::move(result),
                         graph.node_count());
  }

  std::vector<std::shared_ptr<const PartitionCanonMemo::Ranks>> canon;
  const CanonicalPartitionIndex index =
      canonical_partition_index(graph, &cache.canon_memo(), &canon);
  const Clock::time_point canonicalized = Clock::now();
  const std::string context = fragment_context(scheduler, machine);
  const std::uint64_t context_digest = fnv1a64(context);
  std::vector<std::shared_ptr<const ScheduleResult>> fragments(
      static_cast<std::size_t>(index.count));
  for (std::int32_t c = 0; c < index.count; ++c) {
    const PartitionCanonMemo::Ranks& ranks = *canon[static_cast<std::size_t>(c)];
    const std::uint64_t hash = mix64(context_digest, ranks.form_digest);
    auto fragment = cache.find(hash, context, ranks.form, delta_request);
    if (!fragment) {
      const TaskGraph local = materialize_partition(graph, index, c);
      fragment = cache.insert(hash, context, ranks.form,
                              schedule_by_name(scheduler, local, machine), local.node_count());
    }
    fragments[static_cast<std::size_t>(c)] = std::move(fragment);
  }
  cache.note_assembled(fragments.size());
  const Clock::time_point probed = Clock::now();

  const Parallel parallel(machine.intra_threads);
  ScheduleResult result =
      assemble_from_fragments(scheduler, graph, machine, index, fragments, parallel);
  result.timings.push_back(
      {"subgraph-canonicalize", std::chrono::duration<double>(canonicalized - begin).count()});
  result.timings.push_back(
      {"subgraph-fragments", std::chrono::duration<double>(probed - canonicalized).count()});
  result.timings.push_back(
      {"subgraph-assembly", std::chrono::duration<double>(Clock::now() - probed).count()});
  return result;
}

}  // namespace sts
