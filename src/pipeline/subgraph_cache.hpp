#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/serialization.hpp"
#include "support/thread_annotations.hpp"
#include "graph/task_graph.hpp"
#include "pipeline/schedule_context.hpp"
#include "pipeline/scheduler.hpp"

namespace sts {

/// Bounded LRU cache of per-partition schedule fragments: the second level of
/// the serving cache. Where ScheduleCache memoizes whole-graph results under
/// the full-graph fingerprint, SubgraphCache memoizes the schedule of each
/// connected partition under its renumbering-invariant canonical form
/// (canonical_partition_form), so near-duplicate requests — and delta
/// requests that edit a handful of nodes — reuse every untouched partition's
/// fragment and pay only for the partitions they changed. Invalidation is
/// emergent from content addressing: an edited partition hashes to a new
/// form, which simply misses.
///
/// A fragment is the full ScheduleResult of the partition materialized as a
/// standalone graph in canonical node order; assemble_from_fragments stitches
/// fragments back into whole-graph coordinates bit-identically (by
/// result_fingerprint) to a cold schedule. Keys are split into a `context`
/// (scheduler name + machine cache key, or the whole-graph key on the
/// non-composable path) and the canonical `form` bytes, with the bucket hash
/// supplied by the caller — PartitionCanonMemo already digested the form, so
/// probes stay O(context) instead of re-hashing kilobytes of form per
/// partition. Probes still compare both strings in full, so a
/// (astronomically unlikely) hash collision degrades to a miss, never to a
/// wrong schedule.
///
/// Thread-safe; entries are immutable once inserted and shared by pointer.
/// Weight = partition node count, same size-aware policy as ScheduleCache.
class SubgraphCache {
 public:
  struct Stats {
    std::uint64_t partition_hits = 0;       ///< fragment reused
    std::uint64_t partition_misses = 0;     ///< fragment scheduled cold
    std::uint64_t fragments_assembled = 0;  ///< fragments stitched into results
    std::uint64_t delta_invalidated = 0;    ///< misses while serving a delta
                                            ///< request: partitions its edits
                                            ///< invalidated (subset of misses)
  };

  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit SubgraphCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity), canon_memo_(capacity) {}

  SubgraphCache(const SubgraphCache&) = delete;
  SubgraphCache& operator=(const SubgraphCache&) = delete;

  /// Looks up a fragment under (context, form); counts a hit or a miss (plus
  /// delta_invalidated when `delta` — the caller is rescheduling an edited
  /// base request). `hash` must be a digest of both parts (same value the
  /// matching insert used).
  [[nodiscard]] std::shared_ptr<const ScheduleResult> find(std::uint64_t hash,
                                                           const std::string& context,
                                                           const std::string& form, bool delta)
      EXCLUDES(mutex_);

  /// Inserts a fragment computed after a find() miss and returns the resident
  /// pointer (the already-cached one if a concurrent insert won the race; the
  /// caller's own, uncached, if it outweighs the whole cache). Evicts LRU
  /// entries past the weight capacity.
  [[nodiscard]] std::shared_ptr<const ScheduleResult> insert(std::uint64_t hash,
                                                             std::string context,
                                                             std::string form,
                                                             ScheduleResult fragment,
                                                             std::size_t weight)
      EXCLUDES(mutex_);

  /// Records that an assembly stitched `fragment_count` fragments.
  void note_assembled(std::size_t fragment_count) EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t total_weight() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Canonicalization memo shared by every request served through this
  /// cache: schedule_with_subgraph_cache threads it into
  /// canonical_partition_index so partitions whose content was seen before
  /// skip structural refinement — the dominant canonicalization cost on
  /// large graphs. Same weight capacity (node count) as the fragment store.
  [[nodiscard]] PartitionCanonMemo& canon_memo() noexcept { return canon_memo_; }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::string context;
    std::string form;
    std::size_t weight = 0;
    std::shared_ptr<const ScheduleResult> fragment;
  };

  void evict_to_capacity_locked() REQUIRES(mutex_);

  const std::size_t capacity_;
  PartitionCanonMemo canon_memo_;
  mutable Mutex mutex_;
  std::list<Entry> lru_ GUARDED_BY(mutex_);  ///< front = most recent
  std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>> buckets_
      GUARDED_BY(mutex_);
  std::size_t weight_ GUARDED_BY(mutex_) = 0;
  Stats stats_ GUARDED_BY(mutex_);
};

/// Schedules `graph` through the fragment cache: canonicalizes its connected
/// partitions, reuses every cached fragment, schedules only the missing ones
/// (each as a standalone canonical graph), and assembles a whole-graph
/// ScheduleResult whose result_fingerprint is bit-identical to
/// schedule_by_name(scheduler, graph, machine).
///
/// Fragment composition applies to the streaming pipeline schedulers
/// (streaming-lts/rlx/work) without mesh placement — their passes are
/// per-partition composable because the component-sequential partitioner
/// never mixes partitions in a block and the streaming recurrences are
/// translation-invariant in the block release time. Any other scheduler (or
/// place_on_mesh) degrades to a single whole-graph fragment keyed by the
/// exact (id-sensitive) canonical_cache_key — still cached, never composed.
///
/// `delta_request` only affects stats attribution (delta_invalidated).
[[nodiscard]] ScheduleResult schedule_with_subgraph_cache(const std::string& scheduler,
                                                          const TaskGraph& graph,
                                                          const MachineConfig& machine,
                                                          SubgraphCache& cache,
                                                          bool delta_request = false);

}  // namespace sts
