#include "service/backend.hpp"

#include <stdexcept>
#include <utility>

#include "support/json.hpp"

namespace sts {

void accumulate_service_stats(ServiceStats& into, const ServiceStats& from) {
  into.submitted += from.submitted;
  into.completed += from.completed;
  into.failed += from.failed;
  into.rejected += from.rejected;
  into.simulated += from.simulated;
  into.fast_path_hits += from.fast_path_hits;
  into.cache.hits += from.cache.hits;
  into.cache.misses += from.cache.misses;
  into.cache.races += from.cache.races;
  into.cache.evictions += from.cache.evictions;
  into.cache.evicted_weight += from.cache.evicted_weight;
  into.cache.expired += from.cache.expired;
  into.subgraph.partition_hits += from.subgraph.partition_hits;
  into.subgraph.partition_misses += from.subgraph.partition_misses;
  into.subgraph.fragments_assembled += from.subgraph.fragments_assembled;
  into.subgraph.delta_invalidated += from.subgraph.delta_invalidated;
  into.canon.hits += from.canon.hits;
  into.canon.misses += from.canon.misses;
  into.shard_max_depth.insert(into.shard_max_depth.end(), from.shard_max_depth.begin(),
                              from.shard_max_depth.end());
}

ServiceStats service_stats_from_json(const JsonValue& json) {
  const auto counter = [&json](const char* key) -> std::uint64_t {
    const JsonValue* value = json.find(key);
    if (value == nullptr) return 0;  // older server: counter not born yet
    const std::int64_t v = value->as_int();
    if (v < 0) throw std::invalid_argument(std::string("stats: negative counter ") + key);
    return static_cast<std::uint64_t>(v);
  };
  ServiceStats stats;
  stats.submitted = counter("submitted");
  stats.completed = counter("completed");
  stats.failed = counter("failed");
  stats.rejected = counter("rejected");
  stats.simulated = counter("simulated");
  stats.fast_path_hits = counter("fast_path_hits");
  stats.cache.hits = counter("cache_hits");
  stats.cache.misses = counter("cache_misses");
  stats.cache.races = counter("cache_races");
  stats.cache.evictions = counter("cache_evictions");
  stats.cache.evicted_weight = counter("cache_evicted_weight");
  stats.cache.expired = counter("cache_expired");
  stats.subgraph.partition_hits = counter("partition_hits");
  stats.subgraph.partition_misses = counter("partition_misses");
  stats.subgraph.fragments_assembled = counter("fragments_assembled");
  stats.subgraph.delta_invalidated = counter("delta_invalidated");
  stats.canon.hits = counter("canon_hits");
  stats.canon.misses = counter("canon_misses");
  if (const JsonValue* depths = json.find("shard_max_depth")) {
    stats.shard_max_depth.reserve(depths->items().size());
    for (const JsonValue& depth : depths->items()) {
      const std::int64_t d = depth.as_int();
      if (d < 0) throw std::invalid_argument("stats: negative shard_max_depth entry");
      stats.shard_max_depth.push_back(static_cast<std::size_t>(d));
    }
  }
  return stats;
}

std::shared_ptr<const ScheduleResult> ServiceFuture::get() {
  Settled settled = settled_.get();
  if (settled.rejected.has_value()) {
    throw std::runtime_error("schedule request rejected on shard " +
                             std::to_string(settled.rejected->shard) + " (depth " +
                             std::to_string(settled.rejected->depth) + "/" +
                             std::to_string(settled.rejected->limit) + ")");
  }
  if (settled.error.empty()) return std::move(settled.result);
  if (settled.invalid) throw std::invalid_argument(settled.error);
  throw std::runtime_error(settled.error);
}

ScheduleResponse ServiceAdmission::wait() {
  ScheduleResponse response;
  if (rejected.has_value()) {
    response.status = ScheduleResponse::Status::kRejected;
    response.rejected = rejected;
    return response;
  }
  Settled settled = future.settled();
  if (settled.rejected.has_value()) {
    response.status = ScheduleResponse::Status::kRejected;
    response.rejected = std::move(settled.rejected);
  } else if (settled.error.empty()) {
    response.result = std::move(settled.result);
    response.status = ScheduleResponse::Status::kOk;
  } else {
    response.status = ScheduleResponse::Status::kError;
    response.error = std::move(settled.error);
  }
  return response;
}

ScheduleResponse ScheduleBackend::schedule(ScheduleRequest request) {
  return submit(std::move(request)).wait();
}

}  // namespace sts
