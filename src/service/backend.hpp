#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/schedule_cache.hpp"
#include "pipeline/subgraph_cache.hpp"
#include "service/request.hpp"

namespace sts {

class JsonValue;

/// Counters of one scheduling backend. Shared by every implementation of the
/// `ScheduleBackend` seam: an in-process ScheduleService fills them from its
/// own atomics, a RemoteBackend parses them out of the server's `/stats`
/// document (`service_stats_from_json`), and a ShardRouter sums them across
/// its fleet (`accumulate_service_stats`).
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< all submission attempts, rejections included
  std::uint64_t completed = 0;  ///< finished jobs, failures included
  std::uint64_t failed = 0;     ///< jobs whose future holds an exception
  std::uint64_t rejected = 0;   ///< kReject refusals on a full shard
  std::uint64_t simulated = 0;  ///< accepted submissions requesting simulation
  std::uint64_t fast_path_hits = 0;  ///< completed synchronously in submit()
  std::vector<std::size_t> shard_max_depth;  ///< per-shard queue high-water mark
  ScheduleCache::Stats cache;
  SubgraphCache::Stats subgraph;  ///< zeros when subgraph memoization is off
  /// Canonicalization-memo counters of the subgraph cache (zeros when
  /// subgraph memoization is off): partitions whose structural refinement
  /// was skipped vs. refined from scratch.
  PartitionCanonMemo::Stats canon;
};

/// Sums every counter of `from` into `into`; shard high-water marks are
/// concatenated (they are per-shard gauges, not additive).
void accumulate_service_stats(ServiceStats& into, const ServiceStats& from);

/// Parses a ScheduleService::render_stats_json-shaped document back into
/// counters — how a RemoteBackend turns one `/stats` fetch into the same
/// `ServiceStats` an in-process backend reports. Missing members read as
/// zero (a newer client must keep aggregating an older server's document);
/// a member present with the wrong type still throws.
[[nodiscard]] ServiceStats service_stats_from_json(const JsonValue& json);

/// A settled backend job, transported across threads as a plain value. At
/// most one of `result` (success), `error` (failure detail), or `rejected`
/// (typed admission refusal) is populated. Errors cross thread boundaries
/// as strings rather than stored exceptions for the TSan reason documented
/// on `ScheduleCache::Flight`; `rejected` is only ever set by backends whose
/// refusals arrive asynchronously (a remote server's response) — in-process
/// services refuse synchronously through `ServiceAdmission::rejected`.
struct Settled {
  std::shared_ptr<const ScheduleResult> result;
  std::string error;     ///< non-empty iff the computation failed
  bool invalid = false;  ///< failure maps to std::invalid_argument
  std::optional<Rejected> rejected;
};

/// Future over a `Settled` outcome with the classic throwing contract:
/// `get()` returns the result or throws `std::invalid_argument` /
/// `std::runtime_error` built from the transported error detail — thrown
/// locally on the calling thread, so no exception object ever crosses
/// threads. An asynchronously-delivered rejection throws std::runtime_error
/// naming the shard; callers that want it typed use `ServiceAdmission::wait`.
class ServiceFuture {
 public:
  ServiceFuture() = default;
  explicit ServiceFuture(std::future<Settled> settled) : settled_(std::move(settled)) {}

  [[nodiscard]] bool valid() const noexcept { return settled_.valid(); }
  template <typename Rep, typename Period>
  [[nodiscard]] std::future_status wait_for(
      const std::chrono::duration<Rep, Period>& timeout) const {
    return settled_.wait_for(timeout);
  }

  /// Blocks; returns the result or throws on a failed or rejected job.
  /// Consumes the future; call once.
  [[nodiscard]] std::shared_ptr<const ScheduleResult> get();

  /// Blocks; the raw settled outcome, never throwing. Consumes the future;
  /// call once.
  [[nodiscard]] Settled settled() { return settled_.get(); }

 private:
  std::future<Settled> settled_;
};

/// Outcome of `ScheduleBackend::submit`: exactly one of `future` (valid iff
/// accepted) or `rejected` is populated. A remote backend always "accepts"
/// at submit time — transport happens asynchronously — and surfaces a
/// server-side rejection through the settled future instead.
struct ServiceAdmission {
  ServiceFuture future;
  std::optional<Rejected> rejected;

  [[nodiscard]] bool accepted() const noexcept { return !rejected.has_value(); }

  /// Resolves this admission into the unified response envelope: blocks on
  /// the future when accepted, folding a failed computation into
  /// `ScheduleResponse::error` (and an asynchronously-delivered rejection
  /// into `ScheduleResponse::rejected`) instead of an exception. Consumes
  /// the future; call once.
  [[nodiscard]] ScheduleResponse wait();
};

/// THE backend seam of the serving stack: anything that can resolve a
/// `ScheduleRequest` envelope into a `ScheduleResponse`. ShardRouter
/// consistent-hashes request keys across a fleet of these without knowing
/// whether each one is an in-process `ScheduleService` worker pool, a
/// `RemoteBackend` speaking HTTP/1.1 to an `sts-serve` process, or a test
/// double — the envelope round-trips losslessly through JSON, so the seam
/// carries across the process boundary unchanged.
class ScheduleBackend {
 public:
  /// One consistent observation of a backend: the counters, the resident
  /// result-cache weight, and the rendered stats document all come from the
  /// same snapshot (for a remote backend, one `/stats` fetch), so an
  /// aggregator's totals always equal the sum of the documents it emits.
  struct Snapshot {
    ServiceStats stats;
    std::size_t cache_weight = 0;  ///< resident result-cache weight
    std::string json;              ///< render_stats_json-shaped document
  };

  virtual ~ScheduleBackend() = default;

  /// Admits one request envelope (moved into the job) and returns its
  /// admission; see ServiceAdmission for the acceptance contract.
  [[nodiscard]] virtual ServiceAdmission submit(ScheduleRequest request) = 0;

  /// Synchronous convenience: `submit(request).wait()`.
  [[nodiscard]] ScheduleResponse schedule(ScheduleRequest request);

  /// Blocks until every job accepted by this backend so far has settled.
  /// Must return even when the backend is unhealthy (a dead remote settles
  /// its in-flight futures with transport errors rather than hanging).
  virtual void wait_idle() = 0;

  [[nodiscard]] virtual Snapshot stats_snapshot() const = 0;

  /// Convenience over stats_snapshot() when only the counters are needed.
  [[nodiscard]] ServiceStats stats() const { return stats_snapshot().stats; }

  /// Worker threads resolving requests for this backend (remote: as
  /// reported by the server, falling back to the client connection count).
  [[nodiscard]] virtual std::size_t worker_count() const noexcept = 0;
};

}  // namespace sts
