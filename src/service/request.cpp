#include "service/request.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "graph/serialization.hpp"
#include "pipeline/schedule_cache.hpp"
#include "support/json.hpp"
#include "support/text.hpp"
#include "workloads/synthetic.hpp"

namespace sts {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("ScheduleRequest: " + what);
}

void reject_unknown(const JsonValue& object, std::initializer_list<std::string_view> allowed,
                    const char* what) {
  reject_unknown_members(object, allowed, "ScheduleRequest", what);
}

SimEngine sim_engine_from(const std::string& name) {
  if (name == "auto") return SimEngine::kAuto;
  if (name == "bulk" || name == "bulk-advance") return SimEngine::kBulkAdvance;
  if (name == "tick" || name == "tick-accurate") return SimEngine::kTickAccurate;
  fail("unknown sim engine '" + name + "'");
}

MachineConfig machine_from_json(const JsonValue& json) {
  reject_unknown(json, {"pes", "fifo", "mesh", "pe_speed"}, "machine");
  MachineConfig machine;
  if (const JsonValue* pes = json.find("pes")) machine.num_pes = pes->as_int();
  if (const JsonValue* fifo = json.find("fifo")) machine.default_fifo_capacity = fifo->as_int();
  if (const JsonValue* mesh = json.find("mesh")) machine.place_on_mesh = mesh->as_bool();
  if (const JsonValue* speeds = json.find("pe_speed")) {
    machine.pe_speed.reserve(speeds->items().size());
    for (const JsonValue& s : speeds->items()) machine.pe_speed.push_back(s.as_double());
  }
  return machine;
}

SimOptions sim_from_json(const JsonValue& json) {
  reject_unknown(json, {"engine", "max_ticks", "trace"}, "sim");
  SimOptions sim;
  if (const JsonValue* engine = json.find("engine")) {
    sim.engine = sim_engine_from(engine->as_string());
  }
  if (const JsonValue* ticks = json.find("max_ticks")) {
    sim.max_ticks = ticks->as_int();
    if (sim.max_ticks <= 0) fail("sim.max_ticks must be positive");
  }
  if (const JsonValue* trace = json.find("trace")) sim.record_trace = trace->as_bool();
  return sim;
}

GraphRef graph_ref_from_json(const JsonValue& json) {
  reject_unknown(json, {"generator", "param", "seed"}, "graph ref");
  GraphRef ref;
  ref.generator = json.at("generator").as_string();
  ref.param = json.at("param").as_int();
  const std::int64_t seed = json.at("seed").as_int();
  if (seed < 0) fail("graph ref seed must be non-negative");
  ref.seed = static_cast<std::uint64_t>(seed);
  return ref;
}

TaskGraph materialize(const GraphRef& ref) {
  if (ref.param < 0 || ref.param > std::numeric_limits<int>::max()) {
    fail("graph ref param " + std::to_string(ref.param) + " out of range");
  }
  const int param = static_cast<int>(ref.param);
  if (ref.generator == "chain") return make_chain(param, ref.seed);
  if (ref.generator == "fft") return make_fft(param, ref.seed);
  if (ref.generator == "gaussian") return make_gaussian_elimination(param, ref.seed);
  if (ref.generator == "cholesky") return make_cholesky(param, ref.seed);
  fail("unknown graph generator '" + ref.generator + "'");
}

}  // namespace

const char* to_string(AdmissionPolicy policy) noexcept {
  return policy == AdmissionPolicy::kBlock ? "block" : "reject";
}

std::string GraphRef::label() const {
  std::string out = generator;
  out += ' ';
  append_number(out, param);
  out += ' ';
  append_number(out, seed);
  return out;
}

const std::string& ScheduleRequest::key() const {
  if (!key_.value.empty()) return key_.value;
  std::string key;
  key.reserve(96 + 9 * graph.node_count() + 24 * graph.edge_count());
  key += "schema=";
  append_number(key, schema_version);
  key += '\n';
  key += canonical_cache_key(graph, scheduler, machine);
  if (sim) {
    key += '\n';
    key += sim->cache_key();
  }
  key_.value = std::move(key);
  return key_.value;
}

std::string ScheduleRequest::release_key() {
  (void)key();
  return std::move(key_.value);
}

std::string ScheduleRequest::key_digest() const {
  std::uint64_t hash = fnv1a64(key());
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = "0123456789abcdef"[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

std::string ScheduleRequest::to_json() const {
  std::string out;
  out.reserve(128 + (graph_ref ? 0 : 40 * graph.node_count() + 24 * graph.edge_count()));
  out += "{\"schema_version\": ";
  append_number(out, schema_version);
  out += ", \"scheduler\": ";
  append_json_quoted(out, scheduler);
  out += ", \"machine\": {\"pes\": ";
  append_number(out, machine.num_pes);
  out += ", \"fifo\": ";
  append_number(out, machine.default_fifo_capacity);
  if (machine.place_on_mesh) out += ", \"mesh\": true";
  if (!machine.pe_speed.empty()) {
    out += ", \"pe_speed\": [";
    for (std::size_t i = 0; i < machine.pe_speed.size(); ++i) {
      if (i > 0) out += ", ";
      append_number(out, machine.pe_speed[i]);
    }
    out += ']';
  }
  if (base_key) {
    // Delta envelope: the scenario is (base identity, edit list); the
    // materialized graph, if any, is a service-side artifact and would bloat
    // the line without adding identity.
    out += "}, \"base_key\": ";
    append_json_quoted(out, *base_key);
    out += ", \"edits\": [";
    for (std::size_t i = 0; i < edits.size(); ++i) {
      if (i > 0) out += ", ";
      append_graph_edit_json(out, edits[i]);
    }
    out += ']';
  } else if (graph_ref) {
    out += "}, \"graph\": {\"generator\": ";
    append_json_quoted(out, graph_ref->generator);
    out += ", \"param\": ";
    append_number(out, graph_ref->param);
    out += ", \"seed\": ";
    append_number(out, graph_ref->seed);
    out += '}';
  } else {
    out += "}, \"graph\": ";
    append_task_graph_json(out, graph);
  }
  if (sim) {
    out += ", \"sim\": {\"engine\": ";
    append_json_quoted(out, to_string(sim->engine));
    out += ", \"max_ticks\": ";
    append_number(out, sim->max_ticks);
    if (sim->record_trace) out += ", \"trace\": true";
    out += '}';
  }
  if (admission != AdmissionPolicy::kBlock) {
    out += ", \"admission\": ";
    append_json_quoted(out, to_string(admission));
  }
  if (intra_threads) {
    out += ", \"intra_threads\": ";
    append_number(out, *intra_threads);
  }
  if (priority != 0) {
    out += ", \"priority\": ";
    append_number(out, priority);
  }
  if (!label.empty()) {
    out += ", \"label\": ";
    append_json_quoted(out, label);
  }
  out += '}';
  return out;
}

ScheduleRequest ScheduleRequest::from_json(std::string_view text) {
  const JsonValue json = parse_json(text);
  reject_unknown(json,
                 {"schema_version", "scheduler", "machine", "graph", "base_key", "edits",
                  "sim", "admission", "intra_threads", "priority", "label"},
                 "request");

  ScheduleRequest request;
  const std::int64_t version = json.at("schema_version").as_int();
  if (version < 1 || version > kScheduleSchemaVersion) {
    fail("unsupported schema_version " + std::to_string(version) + " (this build speaks up to " +
         std::to_string(kScheduleSchemaVersion) + ")");
  }
  request.schema_version = static_cast<int>(version);

  request.scheduler = json.at("scheduler").as_string();
  if (request.scheduler.empty()) fail("scheduler must be non-empty");

  if (const JsonValue* machine = json.find("machine")) {
    request.machine = machine_from_json(*machine);
  }

  if (const JsonValue* base = json.find("base_key")) {
    if (json.find("graph") != nullptr) fail("base_key excludes an inline graph");
    if (version < 2) fail("base_key requires schema_version >= 2");
    request.base_key = base->as_string();
    if (request.base_key->empty()) fail("base_key must be non-empty");
    if (const JsonValue* edits = json.find("edits")) {
      request.edits.reserve(edits->items().size());
      for (const JsonValue& edit : edits->items()) {
        request.edits.push_back(graph_edit_from_json(edit));
      }
    }
  } else {
    if (json.find("edits") != nullptr) fail("edits require a base_key");
    const JsonValue& graph = json.at("graph");
    if (graph.find("generator") != nullptr) {
      request.graph_ref = graph_ref_from_json(graph);
      request.graph = materialize(*request.graph_ref);
    } else {
      request.graph = task_graph_from_json(graph);
    }
  }

  if (const JsonValue* sim = json.find("sim")) request.sim = sim_from_json(*sim);

  if (const JsonValue* admission = json.find("admission")) {
    const std::string& name = admission->as_string();
    if (name == "block") {
      request.admission = AdmissionPolicy::kBlock;
    } else if (name == "reject") {
      request.admission = AdmissionPolicy::kReject;
    } else {
      fail("unknown admission policy '" + name + "'");
    }
  }

  if (const JsonValue* threads = json.find("intra_threads")) {
    const std::int64_t lanes = threads->as_int();
    if (lanes < 0) fail("intra_threads must be >= 0 (0 = auto)");
    request.intra_threads = lanes;
  }

  if (const JsonValue* priority = json.find("priority")) {
    const std::int64_t p = priority->as_int();
    if (p < std::numeric_limits<std::int32_t>::min() ||
        p > std::numeric_limits<std::int32_t>::max()) {
      fail("priority out of range");
    }
    request.priority = static_cast<std::int32_t>(p);
  }

  if (const JsonValue* label = json.find("label")) request.label = label->as_string();
  return request;
}

const char* to_string(ScheduleResponse::Status status) noexcept {
  switch (status) {
    case ScheduleResponse::Status::kOk: return "ok";
    case ScheduleResponse::Status::kRejected: return "rejected";
    case ScheduleResponse::Status::kError: return "error";
  }
  return "?";
}

std::string ScheduleResponse::to_json() const {
  std::string out = "{\"status\": \"";
  out += to_string(status);
  out += '"';
  switch (status) {
    case Status::kOk:
      out += ", \"scheduler\": ";
      append_json_quoted(out, result->scheduler);
      out += ", \"makespan\": ";
      append_number(out, result->makespan);
      out += ", \"speedup\": ";
      append_number(out, result->metrics.speedup);
      out += ", \"fifo_capacity\": ";
      append_number(out, result->metrics.fifo_capacity);
      if (result->sim) {
        out += ", \"sim_makespan\": ";
        append_number(out, result->sim->makespan);
        out += ", \"sim_engine\": ";
        append_json_quoted(out, to_string(result->sim->engine_used));
        if (result->sim->deadlocked) out += ", \"deadlocked\": true";
      }
      break;
    case Status::kRejected:
      out += ", \"shard\": ";
      append_number(out, rejected->shard);
      out += ", \"depth\": ";
      append_number(out, rejected->depth);
      out += ", \"limit\": ";
      append_number(out, rejected->limit);
      if (rejected->backend) {
        out += ", \"backend\": ";
        append_number(out, *rejected->backend);
      }
      break;
    case Status::kError:
      out += ", \"error\": ";
      append_json_quoted(out, error);
      break;
  }
  out += '}';
  return out;
}

ScheduleResponse ScheduleResponse::from_json(std::string_view text) {
  // Response bodies are tiny (one flat object), so a tight depth bound is
  // free hardening against a malicious or confused server.
  const JsonValue json = parse_json(text, JsonLimits{8, 1u << 20});
  ScheduleResponse response;
  const std::string& status = json.at("status").as_string();
  if (status == "ok") {
    reject_unknown_members(json,
                           {"status", "scheduler", "makespan", "speedup", "fifo_capacity",
                            "sim_makespan", "sim_engine", "deadlocked"},
                           "ScheduleResponse", "response");
    auto result = std::make_shared<ScheduleResult>();
    result->scheduler = json.at("scheduler").as_string();
    result->makespan = json.at("makespan").as_int();
    result->metrics.speedup = json.at("speedup").as_double();
    result->metrics.fifo_capacity = json.at("fifo_capacity").as_int();
    if (const JsonValue* sim_makespan = json.find("sim_makespan")) {
      SimResult sim;
      sim.makespan = sim_makespan->as_int();
      const std::string& engine = json.at("sim_engine").as_string();
      if (engine == "bulk-advance") {
        sim.engine_used = SimEngine::kBulkAdvance;
      } else if (engine == "tick-accurate") {
        sim.engine_used = SimEngine::kTickAccurate;
      } else {
        throw std::invalid_argument("ScheduleResponse: unknown sim_engine '" + engine + "'");
      }
      if (const JsonValue* deadlocked = json.find("deadlocked")) {
        sim.deadlocked = deadlocked->as_bool();
      }
      result->sim = std::move(sim);
    }
    response.status = Status::kOk;
    response.result = std::move(result);
  } else if (status == "rejected") {
    reject_unknown_members(json, {"status", "shard", "depth", "limit", "backend"},
                           "ScheduleResponse", "response");
    Rejected rejected;
    const auto index = [&json](const char* key) -> std::size_t {
      const std::int64_t value = json.at(key).as_int();
      if (value < 0) {
        throw std::invalid_argument(std::string("ScheduleResponse: negative ") + key);
      }
      return static_cast<std::size_t>(value);
    };
    rejected.shard = index("shard");
    rejected.depth = index("depth");
    rejected.limit = index("limit");
    if (json.find("backend") != nullptr) rejected.backend = index("backend");
    response.status = Status::kRejected;
    response.rejected = rejected;
  } else if (status == "error") {
    reject_unknown_members(json, {"status", "error"}, "ScheduleResponse", "response");
    response.status = Status::kError;
    response.error = json.at("error").as_string();
  } else {
    throw std::invalid_argument("ScheduleResponse: unknown status '" + status + "'");
  }
  return response;
}

}  // namespace sts
