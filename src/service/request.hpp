#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph_edit.hpp"
#include "graph/task_graph.hpp"
#include "pipeline/schedule_context.hpp"
#include "pipeline/scheduler.hpp"
#include "sim/dataflow_sim.hpp"

namespace sts {

/// Version of the ScheduleRequest envelope (and of the cache-key space it
/// spans). Bump it when scheduler implementations change observably: the
/// version is the first line of every request key, so stale cached results
/// from an older schema can never be served for a newer one.
///
/// v2: the partitioners became component-sequential with canonical-rank
/// tie-breaking (blocks never mix connected partitions), which can change
/// block assignments for multi-component or tie-heavy graphs; the envelope
/// gained `base_key` + `edits` (incremental delta rescheduling).
inline constexpr int kScheduleSchemaVersion = 2;

/// What a service should do with a request that lands on a full shard:
/// apply backpressure (block the submitter until space frees up) or refuse
/// admission with a typed `Rejected` outcome.
enum class AdmissionPolicy : std::uint8_t { kBlock, kReject };

[[nodiscard]] const char* to_string(AdmissionPolicy policy) noexcept;

/// Typed refusal of a request on a full shard.
struct Rejected {
  std::size_t shard = 0;  ///< index of the full shard inside its service
  std::size_t depth = 0;  ///< queue depth observed at rejection
  std::size_t limit = 0;  ///< the configured per-shard depth limit
  /// Routing backend index; set only when a ShardRouter forwarded the
  /// request (absent for a standalone service, so backend 0 and "no router"
  /// stay distinguishable).
  std::optional<std::size_t> backend;
};

/// Reference to a synthetic workload generator instead of an inline graph:
/// `make_<generator>(param, seed)` from workloads/synthetic.hpp. Keeps sweep
/// scenario files compact and self-describing; the graph is materialized at
/// parse time, so a ref-born request is indistinguishable (same `key()`)
/// from one carrying the equivalent inline graph.
struct GraphRef {
  std::string generator;  ///< chain | fft | gaussian | cholesky
  std::int64_t param = 0;
  std::uint64_t seed = 0;

  [[nodiscard]] std::string label() const;  ///< "fft 16 7" display form
};

/// The one serving envelope: everything a scheduling query is, as a value.
///
/// Bundles the graph (inline spec or generator ref), scheduler name, machine
/// config, optional simulation chaining, and delivery hints (admission
/// policy, priority, label). Serializes to one JSON object and parses back
/// losslessly: a request round-tripped through JSON has the same `key()` —
/// and therefore hits the same cache entry — as the in-memory original.
///
/// JSON shape (defaults may be omitted; unknown members are rejected):
///
///     {"schema_version": 2, "scheduler": "streaming-rlx",
///      "machine": {"pes": 8, "fifo": 2, "mesh": false, "pe_speed": []},
///      "graph": {"nodes": [...], "edges": [...]},      // or
///      "graph": {"generator": "fft", "param": 16, "seed": 7},    // or
///      "base_key": "f06b75c22ef6b297",
///      "edits": [{"op": "set_edge_volume", "src": 1, "dst": 2, "volume": 8}],
///      "sim": {"engine": "bulk", "max_ticks": 50000000, "trace": false},
///      "admission": "block", "intra_threads": 4, "priority": 0,
///      "label": "warmup"}
///
/// A delta request carries `base_key` (the key_digest() of a previously
/// submitted request) plus an `edits` list instead of a graph; the service
/// materializes the edited graph from its base-request registry at
/// submission, so downstream (key, cache, scheduling) a delta is
/// indistinguishable from the equivalent whole-graph request.
struct ScheduleRequest {
  int schema_version = kScheduleSchemaVersion;
  TaskGraph graph;
  /// Set when the graph came from (or should serialize as) a generator
  /// reference; `graph` always holds the materialized graph either way.
  std::optional<GraphRef> graph_ref;
  /// Delta rescheduling: key_digest() of the base request whose graph the
  /// `edits` apply to. When set, `graph` stays empty until the service
  /// materializes it (JSON serialization then carries base_key + edits, not
  /// the graph). A ShardRouter routes delta requests by this digest — the
  /// same hash the base request was routed by — so they land where the
  /// base's partition fragments are warm.
  std::optional<std::string> base_key;
  /// Edit list applied (in order) to the base graph; meaningful only with
  /// `base_key`.
  std::vector<GraphEdit> edits;
  std::string scheduler = "streaming-rlx";
  MachineConfig machine;
  /// Present = chain a SimulationPass after scheduling (the worker-side
  /// equivalent of schedule + simulate_streaming); the options extend the
  /// cache key so simulated and plain results never collide.
  std::optional<SimOptions> sim;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Execution lanes for the scheduler's internal loops on this request
  /// (1 = serial, 0 = auto/hardware, N = up to N lanes). Unset = use the
  /// service default (ServiceConfig::intra_threads). Results are
  /// bit-identical at every value, so this is a delivery hint, NOT part of
  /// the request identity/key.
  std::optional<std::int64_t> intra_threads;
  /// Best-effort queue-jump: a positive priority enqueues at the front of
  /// its shard instead of the back. Not part of the request identity.
  std::int32_t priority = 0;
  /// Free-form display tag for sweep outputs. Not part of the identity.
  std::string label;

  /// Canonical cache/routing key: schema version, scheduler, machine config,
  /// the graph's canonical_fingerprint, and the sim options when present.
  /// Delivery hints (admission, priority, label) and the generator ref are
  /// excluded — identity is the scenario, not how it is delivered. Memoized
  /// on first call: treat the request as immutable afterwards. Copies drop
  /// the memo (a copy is usually made to be edited); moves keep it.
  [[nodiscard]] const std::string& key() const;

  /// Moves the (possibly multi-kilobyte) key out of the memo, computing it
  /// first if needed — the service worker hands it to the cache without
  /// re-copying. The memo is left empty; a later key() recomputes.
  [[nodiscard]] std::string release_key();

  /// 16-hex-digit digest of key(): the compact request identity delta
  /// requests name in `base_key`, and exactly the fnv1a64 hash a ShardRouter
  /// routes the request by.
  [[nodiscard]] std::string key_digest() const;

  /// Drops the key() memo. Must be called after mutating any key-relevant
  /// field in place (the service does this when it materializes a delta
  /// request's graph) — a stale memo would serve the wrong identity.
  void invalidate_key() noexcept { key_.value.clear(); }

  /// One-line JSON rendering of the envelope (the sweep scenario-file
  /// format). Omits members that hold their default value.
  [[nodiscard]] std::string to_json() const;

  /// Strict parse of `to_json()`-shaped text. Throws std::invalid_argument
  /// on malformed JSON, unknown members, missing scheduler/graph, an
  /// unsupported schema_version, or an invalid generator reference.
  [[nodiscard]] static ScheduleRequest from_json(std::string_view text);

 private:
  /// Memo slot for key() that empties itself on copy: the fields of a copied
  /// request can diverge from the original, so a copied memo would serve a
  /// stale identity. Moves transfer the memo (the source is relinquished).
  struct MemoizedKey {
    MemoizedKey() = default;
    MemoizedKey(const MemoizedKey&) noexcept {}
    MemoizedKey& operator=(const MemoizedKey&) noexcept {
      value.clear();
      return *this;
    }
    MemoizedKey(MemoizedKey&&) noexcept = default;
    MemoizedKey& operator=(MemoizedKey&&) noexcept = default;

    std::string value;
  };
  mutable MemoizedKey key_;  ///< memoized by key()
};

/// Unified resolved outcome of a submitted request: exactly one of a shared
/// immutable result, a typed admission refusal, or an error detail (the
/// message of the exception the computation failed with).
struct ScheduleResponse {
  enum class Status : std::uint8_t { kOk, kRejected, kError };

  Status status = Status::kError;
  std::shared_ptr<const ScheduleResult> result;  ///< kOk
  std::optional<Rejected> rejected;              ///< kRejected
  std::string error;                             ///< kError

  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }

  /// Flat JSON summary (status, makespan/speedup/fifo_capacity and sim
  /// fields when ok; shard/depth/limit/backend when rejected; the error
  /// string otherwise) — the per-scenario record the sweep CLI emits, and
  /// the body of a `POST /v1/schedule` reply.
  [[nodiscard]] std::string to_json() const;

  /// Strict parse of `to_json()`-shaped text — how a RemoteBackend decodes a
  /// server reply. Throws std::invalid_argument on malformed JSON, an
  /// unknown status, or missing/mistyped members for that status. The wire
  /// carries only the flat summary, so an ok response reconstructs a
  /// summary-only ScheduleResult: scheduler, makespan, speedup,
  /// fifo_capacity, and the sim summary — never the schedule artifacts
  /// (streaming/buffers/list), which stay in the serving process.
  [[nodiscard]] static ScheduleResponse from_json(std::string_view text);
};

[[nodiscard]] const char* to_string(ScheduleResponse::Status status) noexcept;

}  // namespace sts
