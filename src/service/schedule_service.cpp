#include "service/schedule_service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "graph/graph_edit.hpp"
#include "pipeline/passes.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/schedule_context.hpp"
#include "support/text.hpp"

namespace sts {

ScheduleService::ScheduleService(ServiceConfig config)
    : cache_(config.cache_capacity, config.cache_ttl),
      queue_depth_(config.queue_depth),
      intra_threads_(config.intra_threads),
      base_registry_capacity_(config.base_registry_capacity) {
  if (intra_threads_ < 0) {
    throw std::invalid_argument("ScheduleService: intra_threads must be >= 0 (0 = auto)");
  }
  if (config.subgraph_cache_capacity > 0) {
    subgraph_cache_ = std::make_unique<SubgraphCache>(config.subgraph_cache_capacity);
  }
  std::size_t n = config.num_workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(*shards_[i]); });
  }
}

ScheduleService::~ScheduleService() { shutdown(); }

namespace {

/// Converts a cache-layer Flight (result/error/invalid) into the seam's
/// Settled value; the in-process service never populates `rejected`.
[[nodiscard]] Settled settled_from_flight(ScheduleCache::Flight flight) {
  return Settled{std::move(flight.result), std::move(flight.error), flight.invalid,
                 std::nullopt};
}

}  // namespace

ScheduleService::Admission ScheduleService::submit(ScheduleRequest request) {
  if (stopping_.load(std::memory_order_acquire)) {
    throw std::runtime_error("ScheduleService: submit after shutdown");
  }
  // A delta request names its base by digest and carries edits instead of a
  // graph: materialize the edited graph here, before anything derives from
  // the request — downstream (key, cache, scheduling) a delta is then
  // indistinguishable from the equivalent whole-graph request. Resolution
  // failures (unknown base, invalid edit) settle through the returned future
  // so the service itself stays healthy.
  if (request.base_key.has_value()) {
    const bool delta_simulate = request.sim.has_value();
    try {
      const std::shared_ptr<const TaskGraph> base = find_base(*request.base_key);
      if (!base) {
        throw std::invalid_argument("ScheduleService: unknown base_key '" + *request.base_key +
                                    "' (never submitted here, or aged out of the base registry)");
      }
      request.graph = apply_graph_edits(*base, request.edits);
      // Validate the composed graph NOW, not at schedule time: the cache key
      // hashes *derived* volumes (canonical_fingerprint uses out-edge
      // volumes, not declared-output records), so an edit list composing a
      // non-canonical graph — say a retuned output contradicting its
      // out-edge volume — would alias its still-valid base's key and
      // silently return the base's cached result instead of failing.
      if (const std::vector<std::string> violations = request.graph.validate();
          !violations.empty()) {
        std::string message = "ScheduleService: edits compose an invalid graph:";
        for (const std::string& v : violations) {
          message += "\n  - ";
          message += v;
        }
        throw std::invalid_argument(message);
      }
      // The request identity changed with the graph: drop any memoized key.
      // (A fronting ShardRouter routes deltas by base_key without touching
      // key(), but a caller may have.)
      request.invalidate_key();
    } catch (...) {
      std::promise<Settled> failed;
      Admission admission{Future(failed.get_future()), std::nullopt};
      {
        const MutexLock lock(stats_mutex_);
        ++counters_.submitted;
        if (delta_simulate) ++counters_.simulated;
      }
      failed.set_value(settled_from_flight(ScheduleCache::settle_current_exception()));
      finish_one(true);
      return admission;
    }
  }
  // Resolve the request's execution-lane hint against the service default
  // before anything derives from the request. The lane count is NOT part of
  // the machine cache_key() (results are bit-identical at every value), so
  // this cannot change which cache entry the request maps to.
  request.machine.intra_threads = request.intra_threads.value_or(intra_threads_);
  // Memoizes inside the request, so the worker (and a fronting ShardRouter)
  // never re-derives it.
  const std::string& key = request.key();
  // Every submitted request can serve as a delta base — including a
  // materialized delta, so edit chains resolve link by link.
  remember_base(request.key_digest(), request.graph);
  const bool simulate = request.sim.has_value();
  std::promise<Settled> promise;
  Admission admission{Future(promise.get_future()), std::nullopt};
  {
    const MutexLock lock(stats_mutex_);
    ++counters_.submitted;
    if (simulate) ++counters_.simulated;
  }

  // Fast path: an already-completed result resolves synchronously without a
  // queue round trip. Admission control never refuses a cached answer.
  if (ResultPtr hit = cache_.try_get(key)) {
    promise.set_value(Settled{std::move(hit), {}, false, std::nullopt});
    {
      const MutexLock lock(stats_mutex_);
      ++counters_.completed;
      ++counters_.fast_path_hits;
    }
    idle_cv_.notify_all();
    return admission;
  }

  // Shard by cache-key hash: identical scenarios serialize on one worker (in
  // submission order), distinct ones spread across the pool.
  const std::size_t shard_index = fnv1a64(key) % shards_.size();
  Shard& shard = *shards_[shard_index];
  try {
    MutexLock lock(shard.mutex);
    // Re-check under the shard lock: a shutdown() racing with this submit
    // may already have drained and joined the workers, and a job pushed now
    // would leave its future forever pending.
    if (stopping_.load(std::memory_order_acquire)) {
      throw std::runtime_error("ScheduleService: submit after shutdown");
    }
    if (queue_depth_ > 0 && shard.queue.size() >= queue_depth_) {
      if (request.admission == AdmissionPolicy::kReject) {
        const std::size_t depth = shard.queue.size();
        lock.unlock();
        {
          const MutexLock stats_lock(stats_mutex_);
          ++counters_.rejected;
        }
        // A rejection settles a submission just like a completion does.
        idle_cv_.notify_all();
        admission.future = Future();
        admission.rejected = Rejected{shard_index, depth, queue_depth_, std::nullopt};
        return admission;
      }
      // Backpressure: wait for a worker to drain an entry (or for shutdown,
      // which must not leave us waiting on a dead pool). An explicit while
      // loop, not a predicate lambda: the guarded queue read must sit in
      // this (annotated) scope for the thread-safety analysis to verify it.
      while (!stopping_.load(std::memory_order_acquire) &&
             shard.queue.size() >= queue_depth_) {
        shard.space_cv.wait(shard.mutex);
      }
      if (stopping_.load(std::memory_order_acquire)) {
        throw std::runtime_error("ScheduleService: submit after shutdown");
      }
    }
    // A positive priority jumps the shard queue (best-effort: it cannot
    // preempt the job a worker already holds).
    if (request.priority > 0) {
      shard.queue.push_front(Job{std::move(request), std::move(promise)});
    } else {
      shard.queue.push_back(Job{std::move(request), std::move(promise)});
    }
    shard.max_depth = std::max(shard.max_depth, shard.queue.size());
  } catch (...) {
    // Nothing was enqueued (shutdown race, or the Job move threw): roll the
    // submission count back so wait_idle can still balance.
    {
      const MutexLock stats_lock(stats_mutex_);
      --counters_.submitted;
      if (simulate) --counters_.simulated;
    }
    // The rollback may have just satisfied a wait_idle that saw the inflated
    // count; without this wakeup (and with the workers gone after shutdown)
    // it would sleep forever.
    idle_cv_.notify_all();
    throw;
  }
  shard.cv.notify_one();
  return admission;
}

ScheduleResult ScheduleService::compute_job(const Job& job) {
  const ScheduleRequest& request = job.request;
  // With subgraph memoization on, a whole-graph cache miss still reuses every
  // cached per-partition fragment and schedules only the partitions a delta
  // (or a fresh near-duplicate) actually changed.
  ScheduleResult result =
      subgraph_cache_ ? schedule_with_subgraph_cache(request.scheduler, request.graph,
                                                     request.machine, *subgraph_cache_,
                                                     request.base_key.has_value())
                      : schedule_by_name(request.scheduler, request.graph, request.machine);
  if (!request.sim) return result;
  if (!result.streaming || !result.buffers) {
    throw std::invalid_argument(
        "ScheduleService: a simulated request requires a streaming scheduler, got " +
        request.scheduler);
  }
  // Rebuild a context around the scheduled artifacts and reuse the pipeline
  // SimulationPass, sharing its deadlock/tick-limit validation and timing
  // capture with the synchronous pipeline path.
  // The result is still worker-local, so the schedule artifacts can be moved
  // through the context and back instead of deep-copied.
  ScheduleContext ctx;
  ctx.graph = &request.graph;
  ctx.machine = request.machine;
  ctx.streaming = std::move(result.streaming);
  ctx.buffers = std::move(result.buffers);
  Pipeline pipeline;
  pipeline.emplace<SimulationPass>(*request.sim);
  pipeline.run(ctx);
  result.streaming = std::move(ctx.streaming);
  result.buffers = std::move(ctx.buffers);
  result.sim = std::move(ctx.sim);
  for (PassTiming& timing : ctx.timings) result.timings.push_back(std::move(timing));
  return result;
}

void ScheduleService::worker_loop(Shard& shard) {
  for (;;) {
    Job job;
    {
      const MutexLock lock(shard.mutex);
      while (!stopping_.load(std::memory_order_acquire) && shard.queue.empty()) {
        shard.cv.wait(shard.mutex);
      }
      if (shard.queue.empty()) return;  // stopping, and fully drained
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
      // The pop opened one queue slot: wake one backpressured submitter.
      if (queue_depth_ > 0) shard.space_cv.notify_one();
    }
    Settled settled;
    try {
      settled.result = cache_.get_or_compute(
          job.request.release_key(), [this, &job] { return compute_job(job); },
          job.request.graph.node_count());
    } catch (...) {
      settled = settled_from_flight(ScheduleCache::settle_current_exception());
    }
    const bool failed = !settled.error.empty();
    job.promise.set_value(std::move(settled));
    finish_one(failed);
  }
}

void ScheduleService::remember_base(const std::string& digest, const TaskGraph& graph) {
  if (base_registry_capacity_ == 0) return;
  const MutexLock lock(bases_mutex_);
  if (const auto it = bases_.find(digest); it != bases_.end()) {
    // Known digest: just refresh recency, sparing the graph copy.
    bases_lru_.splice(bases_lru_.begin(), bases_lru_, it->second);
    return;
  }
  bases_lru_.emplace_front(digest, std::make_shared<const TaskGraph>(graph));
  bases_.emplace(digest, bases_lru_.begin());
  while (bases_.size() > base_registry_capacity_) {
    bases_.erase(bases_lru_.back().first);
    bases_lru_.pop_back();
  }
}

std::shared_ptr<const TaskGraph> ScheduleService::find_base(const std::string& digest) {
  const MutexLock lock(bases_mutex_);
  const auto it = bases_.find(digest);
  if (it == bases_.end()) return nullptr;
  bases_lru_.splice(bases_lru_.begin(), bases_lru_, it->second);
  return it->second->second;
}

void ScheduleService::finish_one(bool failed) {
  {
    const MutexLock lock(stats_mutex_);
    ++counters_.completed;
    if (failed) ++counters_.failed;
  }
  idle_cv_.notify_all();
}

void ScheduleService::wait_idle() {
  const MutexLock lock(stats_mutex_);
  while (counters_.completed + counters_.rejected != counters_.submitted) {
    idle_cv_.wait(stats_mutex_);
  }
}

void ScheduleService::shutdown() {
  stopping_.store(true, std::memory_order_release);
  for (const auto& shard : shards_) {
    // Acquire/release each shard mutex so a worker (or a backpressured
    // submitter) between its wait-loop condition check and cv wait cannot
    // miss the stop signal.
    const MutexLock lock(shard->mutex);
  }
  for (const auto& shard : shards_) {
    shard->cv.notify_all();
    shard->space_cv.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ScheduleService::Stats ScheduleService::stats() const {
  Stats out;
  {
    const MutexLock lock(stats_mutex_);
    out = counters_;
  }
  out.shard_max_depth.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mutex);
    out.shard_max_depth.push_back(shard->max_depth);
  }
  out.cache = cache_.stats();
  if (subgraph_cache_) {
    out.subgraph = subgraph_cache_->stats();
    out.canon = subgraph_cache_->canon_memo().stats();
  }
  return out;
}

double ScheduleService::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_).count();
}

std::string ScheduleService::stats_json() const {
  return render_stats_json(stats(), worker_count(), queue_depth_, cache_.size(),
                           cache_.total_weight(), cache_.capacity(), uptime_seconds());
}

ScheduleService::Snapshot ScheduleService::stats_snapshot() const {
  Snapshot snapshot;
  snapshot.stats = stats();
  snapshot.cache_weight = cache_.total_weight();
  snapshot.json = render_stats_json(snapshot.stats, worker_count(), queue_depth_, cache_.size(),
                                    snapshot.cache_weight, cache_.capacity(), uptime_seconds());
  return snapshot;
}

std::string ScheduleService::render_stats_json(const Stats& s, std::size_t workers,
                                               std::size_t queue_depth_limit,
                                               std::size_t cache_size, std::size_t cache_weight,
                                               std::size_t cache_capacity, double uptime) {
  const auto field = [](const char* key, std::uint64_t value) {
    return std::string("\"") + key + "\": " + std::to_string(value);
  };
  std::string json = "{";
  json += field("schema_version", kStatsSchemaVersion);
  json += ", \"uptime_seconds\": ";
  append_number(json, uptime < 0 ? 0.0 : uptime);
  json += ", " + field("submitted", s.submitted);
  json += ", " + field("completed", s.completed);
  json += ", " + field("failed", s.failed);
  json += ", " + field("rejected", s.rejected);
  json += ", " + field("simulated", s.simulated);
  json += ", " + field("fast_path_hits", s.fast_path_hits);
  json += ", " + field("workers", workers);
  json += ", " + field("queue_depth_limit", queue_depth_limit);
  std::size_t peak = 0;
  json += ", \"shard_max_depth\": [";
  for (std::size_t i = 0; i < s.shard_max_depth.size(); ++i) {
    if (i > 0) json += ", ";
    json += std::to_string(s.shard_max_depth[i]);
    peak = std::max(peak, s.shard_max_depth[i]);
  }
  json += "]";
  json += ", " + field("max_queue_depth", peak);
  json += ", " + field("cache_hits", s.cache.hits);
  json += ", " + field("cache_misses", s.cache.misses);
  json += ", " + field("cache_races", s.cache.races);
  json += ", " + field("cache_evictions", s.cache.evictions);
  json += ", " + field("cache_evicted_weight", s.cache.evicted_weight);
  json += ", " + field("cache_expired", s.cache.expired);
  json += ", " + field("cache_size", cache_size);
  json += ", " + field("cache_weight", cache_weight);
  json += ", " + field("cache_capacity", cache_capacity);
  json += ", " + field("partition_hits", s.subgraph.partition_hits);
  json += ", " + field("partition_misses", s.subgraph.partition_misses);
  json += ", " + field("fragments_assembled", s.subgraph.fragments_assembled);
  json += ", " + field("delta_invalidated", s.subgraph.delta_invalidated);
  json += ", " + field("canon_hits", s.canon.hits);
  json += ", " + field("canon_misses", s.canon.misses);
  json += "}";
  return json;
}

}  // namespace sts
