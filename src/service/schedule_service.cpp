#include "service/schedule_service.hpp"

#include <stdexcept>
#include <utility>

#include "pipeline/registry.hpp"

namespace sts {

ScheduleService::ScheduleService(ServiceConfig config) : cache_(config.cache_capacity) {
  std::size_t n = config.num_workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(*shards_[i]); });
  }
}

ScheduleService::~ScheduleService() { shutdown(); }

std::future<ScheduleService::ResultPtr> ScheduleService::submit(const TaskGraph& graph,
                                                                std::string scheduler,
                                                                MachineConfig machine) {
  if (stopping_.load(std::memory_order_acquire)) {
    throw std::runtime_error("ScheduleService: submit after shutdown");
  }
  std::string key = canonical_cache_key(graph, scheduler, machine);
  std::promise<ResultPtr> promise;
  std::future<ResultPtr> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counters_.submitted;
  }

  // Fast path: an already-completed result resolves synchronously without a
  // queue round trip.
  if (ResultPtr hit = cache_.try_get(key)) {
    promise.set_value(std::move(hit));
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.completed;
      ++counters_.fast_path_hits;
    }
    idle_cv_.notify_all();
    return future;
  }

  // Shard by cache-key hash: identical scenarios serialize on one worker (in
  // submission order), distinct ones spread across the pool.
  Shard& shard = *shards_[fnv1a64(key) % shards_.size()];
  try {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Re-check under the shard lock: a shutdown() racing with this submit
    // may already have drained and joined the workers, and a job pushed now
    // would leave its future forever pending.
    if (stopping_.load(std::memory_order_acquire)) {
      throw std::runtime_error("ScheduleService: submit after shutdown");
    }
    shard.queue.push_back(
        Job{std::move(key), graph, std::move(scheduler), std::move(machine), std::move(promise)});
  } catch (...) {
    // Nothing was enqueued (shutdown race, or the Job copy threw): roll the
    // submission count back so wait_idle can still balance.
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    --counters_.submitted;
    throw;
  }
  shard.cv.notify_one();
  return future;
}

void ScheduleService::worker_loop(Shard& shard) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(shard.mutex);
      shard.cv.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) || !shard.queue.empty();
      });
      if (shard.queue.empty()) return;  // stopping, and fully drained
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    bool failed = false;
    try {
      ResultPtr result = cache_.get_or_compute(std::move(job.key), [&job] {
        return schedule_by_name(job.scheduler, job.graph, job.machine);
      });
      job.promise.set_value(std::move(result));
    } catch (...) {
      failed = true;
      job.promise.set_exception(std::current_exception());
    }
    finish_one(failed);
  }
}

void ScheduleService::finish_one(bool failed) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counters_.completed;
    if (failed) ++counters_.failed;
  }
  idle_cv_.notify_all();
}

void ScheduleService::wait_idle() {
  std::unique_lock<std::mutex> lock(stats_mutex_);
  idle_cv_.wait(lock, [&] { return counters_.completed == counters_.submitted; });
}

void ScheduleService::shutdown() {
  stopping_.store(true, std::memory_order_release);
  for (const auto& shard : shards_) {
    // Acquire/release each shard mutex so a worker between its predicate
    // check and cv.wait cannot miss the stop signal.
    std::lock_guard<std::mutex> lock(shard->mutex);
  }
  for (const auto& shard : shards_) shard->cv.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ScheduleService::Stats ScheduleService::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out = counters_;
  }
  out.cache = cache_.stats();
  return out;
}

}  // namespace sts
