#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/task_graph.hpp"
#include "pipeline/schedule_cache.hpp"
#include "pipeline/subgraph_cache.hpp"
#include "service/backend.hpp"
#include "service/request.hpp"
#include "sim/dataflow_sim.hpp"
#include "support/thread_annotations.hpp"

namespace sts {

/// Sizing knobs of a ScheduleService.
struct ServiceConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  std::size_t num_workers = 0;

  /// Total-weight capacity of the service-owned bounded LRU ScheduleCache
  /// (entries weigh their graph's node count; see ScheduleCache).
  std::size_t cache_capacity = ScheduleCache::kDefaultCapacity;

  /// Per-shard queue depth limit; 0 = unbounded (accept everything). With a
  /// bound, a full shard makes a `AdmissionPolicy::kBlock` request block
  /// until a worker drains an entry and a `kReject` request come back with a
  /// typed `Rejected` outcome.
  std::size_t queue_depth = 0;

  /// Default execution lanes for the scheduler's internal loops (1 = serial,
  /// 0 = auto/hardware, N = up to N lanes), applied to every request that
  /// does not set its own `ScheduleRequest::intra_threads`. A pure execution
  /// knob: results are bit-identical at every value, so it never affects
  /// request keys or cache hits.
  std::int64_t intra_threads = 1;

  /// Optional per-entry time-to-live for the service-owned ScheduleCache:
  /// a cached result older than this reads as a miss and is recomputed
  /// (counted in the `cache_expired` stat). nullopt = results never age out.
  std::optional<std::chrono::nanoseconds> cache_ttl;

  /// Total-weight capacity of the per-partition fragment cache (SubgraphCache;
  /// entries weigh their partition's node count). 0 disables subgraph
  /// memoization entirely — workers fall back to whole-graph scheduling, the
  /// PR-6 behavior.
  std::size_t subgraph_cache_capacity = SubgraphCache::kDefaultCapacity;

  /// Entries kept in the base-request registry that delta requests resolve
  /// their `base_key` against (LRU of materialized graphs, keyed by
  /// key_digest()). Every submitted request is remembered, so any recent
  /// request — including a materialized delta — can serve as a base.
  std::size_t base_registry_capacity = 1024;
};

/// Concurrent scheduling front end: a worker thread pool serving
/// `submit(ScheduleRequest)` envelopes through a bounded, size-aware LRU
/// ScheduleCache.
///
/// Each request is keyed by `ScheduleRequest::key()` and sharded to the
/// worker `fnv1a64(key) % num_workers`, so identical scenarios land on the
/// same queue in order; together with the cache's single-flight miss path
/// this guarantees that N concurrent submissions of the same scenario run
/// the scheduling pipeline exactly once and share one immutable result.
/// Distinct scenarios spread across workers and schedule in parallel. The
/// same keying is what ShardRouter consistent-hashes across several
/// services — this class is the single-process backend of that seam.
///
/// Requests whose result is already cached complete synchronously inside
/// `submit` (the returned future is immediately ready) without touching a
/// worker queue — admission control never refuses a cached answer.
///
/// Admission control: with `ServiceConfig::queue_depth > 0` every shard
/// queue is bounded and `ScheduleRequest::admission` picks the policy on a
/// full shard — `kBlock` applies backpressure (waits on the shard's space
/// condition variable until a worker pops an entry), `kReject` never blocks
/// and instead resolves to a typed `Rejected` outcome carrying the observed
/// depth, for latency-sensitive callers that would rather shed load than
/// wait. A positive `ScheduleRequest::priority` enqueues at the front of its
/// shard (best-effort queue jump).
///
/// A request with `sim` set chains a SimulationPass after scheduling on the
/// worker, so batch sweeps obtain bulk-engine simulated makespans in one
/// hop; its results cache under the sim-options-extended request key, so
/// simulated and plain results never collide.
///
/// Scheduling errors (unknown scheduler name, invalid graph, a simulated
/// schedule that deadlocks) surface as the exception of `Future::get()` —
/// or as `ScheduleResponse::error` through `Admission::wait()` /
/// `schedule()`; the service itself stays healthy. Destruction (or
/// `shutdown()`) drains every queued job before joining the workers, so no
/// future is ever abandoned; submitters blocked on backpressure are woken
/// and throw.
class ScheduleService : public ScheduleBackend {
 public:
  using ResultPtr = ScheduleCache::ResultPtr;
  using Rejected = sts::Rejected;

  /// A settled job: at most one of `result` (success) or `error` (failure
  /// detail) is populated (the in-process service never uses the seam's
  /// asynchronous `rejected` channel — it refuses synchronously). Workers
  /// settle failures as plain values — never as a stored exception — for
  /// the reason documented on `ScheduleCache::Flight`; the original
  /// exception is reconstructed on the *consuming* thread by
  /// `Future::get()`.
  using Settled = sts::Settled;

  /// The seam's future/admission types under their historical names.
  using Future = ServiceFuture;
  using Admission = ServiceAdmission;
  using Stats = ServiceStats;

  explicit ScheduleService(ServiceConfig config = {});
  ~ScheduleService() override;

  ScheduleService(const ScheduleService&) = delete;
  ScheduleService& operator=(const ScheduleService&) = delete;

  /// THE submission path: admits one request envelope (moved into the job)
  /// and returns its admission. With `AdmissionPolicy::kBlock` (the default)
  /// the admission is always accepted — a full shard blocks the caller until
  /// a worker drains an entry — so `.future` can be used directly; with
  /// `kReject` a full shard yields `rejected` instead of waiting. Throws
  /// std::runtime_error after shutdown().
  [[nodiscard]] Admission submit(ScheduleRequest request) override
      EXCLUDES(stats_mutex_, bases_mutex_);

  /// Blocks until every accepted job submitted so far has completed.
  void wait_idle() override EXCLUDES(stats_mutex_);

  /// Drains all queued jobs, joins the workers, and rejects further
  /// submissions. Idempotent; called by the destructor.
  void shutdown();

  [[nodiscard]] Stats stats() const EXCLUDES(stats_mutex_);

  /// One consistent observation: counters, resident cache weight, and the
  /// rendered stats_json document, all from the same stats() snapshot.
  [[nodiscard]] Snapshot stats_snapshot() const override;

  /// Machine-readable JSON rendering of stats() plus cache size and sizing
  /// knobs: one object of scalar keys in the style of the BENCH_*.json bench
  /// reports, plus a single `shard_max_depth` array (per-shard queue
  /// high-water marks; `max_queue_depth` carries the scalar peak for flat
  /// consumers). Keys should stay stable across versions; `schema_version`
  /// counts breaking shape changes and `uptime_seconds` lets scrapes detect
  /// restarts.
  [[nodiscard]] std::string stats_json() const;

  /// Breaking-shape version of the stats_json() document. Bumped when a key
  /// is removed or changes meaning — additions don't count.
  static constexpr std::uint64_t kStatsSchemaVersion = 2;

  /// Renders one Stats snapshot plus sizing knobs in the stats_json() shape
  /// — `stats_json()` is `render_stats_json(stats(), ...)`, and ShardRouter
  /// reuses it so per-backend records come from a single stats() snapshot.
  /// `uptime` is the emitting component's age (seconds since construction).
  [[nodiscard]] static std::string render_stats_json(const Stats& stats, std::size_t workers,
                                                     std::size_t queue_depth_limit,
                                                     std::size_t cache_size,
                                                     std::size_t cache_weight,
                                                     std::size_t cache_capacity, double uptime);

  /// Seconds since this service was constructed (monotonic clock).
  [[nodiscard]] double uptime_seconds() const;

  [[nodiscard]] ScheduleCache& cache() noexcept { return cache_; }
  /// The fragment cache, or nullptr when subgraph memoization is disabled.
  [[nodiscard]] SubgraphCache* subgraph_cache() noexcept { return subgraph_cache_.get(); }
  [[nodiscard]] std::size_t worker_count() const noexcept override { return shards_.size(); }
  [[nodiscard]] std::size_t queue_depth_limit() const noexcept { return queue_depth_; }

 private:
  struct Job {
    ScheduleRequest request;  ///< request.key() is memoized before enqueue
    std::promise<Settled> promise;
  };
  struct Shard {
    Mutex mutex;
    CondVar cv;        ///< workers: queue non-empty or stopping
    CondVar space_cv;  ///< producers: queue below the depth limit
    std::deque<Job> queue GUARDED_BY(mutex);
    std::size_t max_depth GUARDED_BY(mutex) = 0;  ///< high-water mark
  };

  [[nodiscard]] ScheduleResult compute_job(const Job& job);
  void worker_loop(Shard& shard) EXCLUDES(stats_mutex_);
  void finish_one(bool failed) EXCLUDES(stats_mutex_);

  /// Remembers `graph` as a possible delta base under the request digest
  /// (bounded LRU; an already-known digest is just refreshed, sparing the
  /// graph copy on repeated submissions of one scenario).
  void remember_base(const std::string& digest, const TaskGraph& graph)
      EXCLUDES(bases_mutex_);
  [[nodiscard]] std::shared_ptr<const TaskGraph> find_base(const std::string& digest)
      EXCLUDES(bases_mutex_);

  ScheduleCache cache_;
  std::unique_ptr<SubgraphCache> subgraph_cache_;  ///< null = disabled
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::size_t queue_depth_ = 0;
  std::int64_t intra_threads_ = 1;  ///< ServiceConfig default, see submit()
  std::atomic<bool> stopping_{false};
  const std::chrono::steady_clock::time_point start_time_ = std::chrono::steady_clock::now();

  /// Base-request registry for delta resolution: digest -> materialized graph.
  mutable Mutex bases_mutex_;
  std::list<std::pair<std::string, std::shared_ptr<const TaskGraph>>> bases_lru_
      GUARDED_BY(bases_mutex_);
  std::unordered_map<std::string, decltype(bases_lru_)::iterator> bases_
      GUARDED_BY(bases_mutex_);
  std::size_t base_registry_capacity_ = 0;

  mutable Mutex stats_mutex_;
  CondVar idle_cv_;  ///< signalled on every job completion/rejection
  /// Cache and shard_max_depth fields filled lazily by stats().
  Stats counters_ GUARDED_BY(stats_mutex_);
};

}  // namespace sts
