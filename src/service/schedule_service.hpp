#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/task_graph.hpp"
#include "pipeline/schedule_cache.hpp"

namespace sts {

/// Sizing knobs of a ScheduleService.
struct ServiceConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  std::size_t num_workers = 0;

  /// Capacity of the service-owned bounded LRU ScheduleCache.
  std::size_t cache_capacity = ScheduleCache::kDefaultCapacity;
};

/// Concurrent scheduling front end: a worker thread pool serving
/// `submit(graph, scheduler, machine)` jobs through a bounded LRU
/// ScheduleCache.
///
/// Each submission is keyed by its canonical cache key and sharded to the
/// worker `fnv1a64(key) % num_workers`, so identical scenarios land on the
/// same queue in order; together with the cache's single-flight miss path
/// this guarantees that N concurrent submissions of the same scenario run
/// the scheduling pipeline exactly once and share one immutable result.
/// Distinct scenarios spread across workers and schedule in parallel.
///
/// Submissions whose result is already cached complete synchronously inside
/// `submit` (the returned future is immediately ready) without touching a
/// worker queue.
///
/// Scheduling errors (unknown scheduler name, invalid graph) surface as the
/// exception of the returned future; the service itself stays healthy.
/// Destruction (or `shutdown()`) drains every queued job before joining the
/// workers, so no future is ever abandoned.
class ScheduleService {
 public:
  using ResultPtr = ScheduleCache::ResultPtr;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;       ///< finished jobs, failures included
    std::uint64_t failed = 0;          ///< jobs whose future holds an exception
    std::uint64_t fast_path_hits = 0;  ///< completed synchronously in submit()
    ScheduleCache::Stats cache;
  };

  explicit ScheduleService(ServiceConfig config = {});
  ~ScheduleService();

  ScheduleService(const ScheduleService&) = delete;
  ScheduleService& operator=(const ScheduleService&) = delete;

  /// Enqueues one scheduling job (the graph is copied into the job) and
  /// returns the future result. Throws std::runtime_error after shutdown().
  [[nodiscard]] std::future<ResultPtr> submit(const TaskGraph& graph, std::string scheduler,
                                              MachineConfig machine);

  /// Blocks until every job submitted so far has completed.
  void wait_idle();

  /// Drains all queued jobs, joins the workers, and rejects further
  /// submissions. Idempotent; called by the destructor.
  void shutdown();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] ScheduleCache& cache() noexcept { return cache_; }
  [[nodiscard]] std::size_t worker_count() const noexcept { return shards_.size(); }

 private:
  struct Job {
    std::string key;
    TaskGraph graph;
    std::string scheduler;
    MachineConfig machine;
    std::promise<ResultPtr> promise;
  };
  struct Shard {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Job> queue;
  };

  void worker_loop(Shard& shard);
  void finish_one(bool failed);

  ScheduleCache cache_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex stats_mutex_;
  std::condition_variable idle_cv_;  ///< signalled on every job completion
  Stats counters_;                   ///< cache field filled lazily by stats()
};

}  // namespace sts
