#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "graph/task_graph.hpp"
#include "pipeline/schedule_cache.hpp"
#include "sim/dataflow_sim.hpp"

namespace sts {

/// Sizing knobs of a ScheduleService.
struct ServiceConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  std::size_t num_workers = 0;

  /// Capacity of the service-owned bounded LRU ScheduleCache.
  std::size_t cache_capacity = ScheduleCache::kDefaultCapacity;

  /// Per-shard queue depth limit; 0 = unbounded (accept everything). With a
  /// bound, a full shard makes `submit` block until a worker drains an entry
  /// and `try_submit` reject with the observed depth.
  std::size_t queue_depth = 0;
};

/// Concurrent scheduling front end: a worker thread pool serving
/// `submit(graph, scheduler, machine)` jobs through a bounded LRU
/// ScheduleCache.
///
/// Each submission is keyed by its canonical cache key and sharded to the
/// worker `fnv1a64(key) % num_workers`, so identical scenarios land on the
/// same queue in order; together with the cache's single-flight miss path
/// this guarantees that N concurrent submissions of the same scenario run
/// the scheduling pipeline exactly once and share one immutable result.
/// Distinct scenarios spread across workers and schedule in parallel.
///
/// Submissions whose result is already cached complete synchronously inside
/// `submit` / `try_submit` (the returned future is immediately ready)
/// without touching a worker queue — admission control never refuses a
/// cached answer.
///
/// Admission control: with `ServiceConfig::queue_depth > 0` every shard
/// queue is bounded. `submit` applies backpressure (blocks on the shard's
/// space condition variable until a worker pops an entry); `try_submit`
/// never blocks and instead returns a typed `Rejected` outcome carrying the
/// observed depth, for latency-sensitive callers that would rather shed
/// load than wait.
///
/// `submit_simulated` chains a SimulationPass after scheduling on the
/// worker, so batch sweeps obtain bulk-engine simulated makespans in one
/// hop; its results are cached under the schedule key extended with the
/// SimOptions fingerprint, so simulated and plain results never collide.
///
/// Scheduling errors (unknown scheduler name, invalid graph, a simulated
/// schedule that deadlocks) surface as the exception of the returned
/// future; the service itself stays healthy. Destruction (or `shutdown()`)
/// drains every queued job before joining the workers, so no future is ever
/// abandoned; submitters blocked on backpressure are woken and throw.
class ScheduleService {
 public:
  using ResultPtr = ScheduleCache::ResultPtr;

  /// Typed refusal of a `try_submit` on a full shard.
  struct Rejected {
    std::size_t shard = 0;  ///< index of the full shard
    std::size_t depth = 0;  ///< its queue depth observed at rejection
    std::size_t limit = 0;  ///< the configured per-shard depth limit
  };

  /// Outcome of `try_submit`: exactly one of `future` (valid iff accepted)
  /// or `rejected` is populated.
  struct Admission {
    std::future<ResultPtr> future;
    std::optional<Rejected> rejected;

    [[nodiscard]] bool accepted() const noexcept { return !rejected.has_value(); }
  };

  struct Stats {
    std::uint64_t submitted = 0;  ///< all submission attempts, rejections included
    std::uint64_t completed = 0;  ///< finished jobs, failures included
    std::uint64_t failed = 0;     ///< jobs whose future holds an exception
    std::uint64_t rejected = 0;   ///< try_submit refusals on a full shard
    std::uint64_t simulated = 0;  ///< accepted submissions requesting simulation
    std::uint64_t fast_path_hits = 0;  ///< completed synchronously in submit()
    std::vector<std::size_t> shard_max_depth;  ///< per-shard queue high-water mark
    ScheduleCache::Stats cache;
  };

  explicit ScheduleService(ServiceConfig config = {});
  ~ScheduleService();

  ScheduleService(const ScheduleService&) = delete;
  ScheduleService& operator=(const ScheduleService&) = delete;

  /// Enqueues one scheduling job (the graph is copied into the job) and
  /// returns the future result. With a queue depth limit, blocks while the
  /// target shard is full (backpressure) until a worker drains an entry.
  /// Throws std::runtime_error after shutdown().
  [[nodiscard]] std::future<ResultPtr> submit(const TaskGraph& graph, std::string scheduler,
                                              MachineConfig machine);

  /// Non-blocking admission: like `submit`, but a full shard yields a
  /// `Rejected` outcome (with the observed depth) instead of waiting.
  /// Cached scenarios are always accepted and resolve immediately.
  [[nodiscard]] Admission try_submit(const TaskGraph& graph, std::string scheduler,
                                     MachineConfig machine);

  /// Like `submit`, but the worker chains a SimulationPass after scheduling:
  /// the result's `sim` field carries the simulated makespan, identical to a
  /// synchronous schedule + simulate_streaming run under `sim`. Requires a
  /// streaming scheduler (others fail the future with std::invalid_argument);
  /// a deadlocking or tick-limited schedule fails the future and is not
  /// cached.
  [[nodiscard]] std::future<ResultPtr> submit_simulated(const TaskGraph& graph,
                                                        std::string scheduler,
                                                        MachineConfig machine,
                                                        SimOptions sim = {});

  /// Blocks until every accepted job submitted so far has completed.
  void wait_idle();

  /// Drains all queued jobs, joins the workers, and rejects further
  /// submissions. Idempotent; called by the destructor.
  void shutdown();

  [[nodiscard]] Stats stats() const;

  /// Machine-readable JSON rendering of stats() plus cache size and sizing
  /// knobs: one object of scalar keys in the style of the BENCH_*.json bench
  /// reports, plus a single `shard_max_depth` array (per-shard queue
  /// high-water marks; `max_queue_depth` carries the scalar peak for flat
  /// consumers). Keys should stay stable across versions.
  [[nodiscard]] std::string stats_json() const;

  [[nodiscard]] ScheduleCache& cache() noexcept { return cache_; }
  [[nodiscard]] std::size_t worker_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t queue_depth_limit() const noexcept { return queue_depth_; }

 private:
  struct Job {
    std::string key;
    TaskGraph graph;
    std::string scheduler;
    MachineConfig machine;
    bool simulate = false;
    SimOptions sim_options;
    std::promise<ResultPtr> promise;
  };
  struct Shard {
    std::mutex mutex;
    std::condition_variable cv;        ///< workers: queue non-empty or stopping
    std::condition_variable space_cv;  ///< producers: queue below the depth limit
    std::deque<Job> queue;
    std::size_t max_depth = 0;  ///< high-water mark, under mutex
  };

  /// Whether a full shard blocks the caller or refuses admission.
  enum class Admit : std::uint8_t { kBlock, kReject };

  Admission enqueue(const TaskGraph& graph, std::string scheduler, MachineConfig machine,
                    bool simulate, const SimOptions& sim, Admit mode);
  [[nodiscard]] static ScheduleResult compute_job(const Job& job);
  void worker_loop(Shard& shard);
  void finish_one(bool failed);

  ScheduleCache cache_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::size_t queue_depth_ = 0;
  std::atomic<bool> stopping_{false};

  mutable std::mutex stats_mutex_;
  std::condition_variable idle_cv_;  ///< signalled on every job completion/rejection
  Stats counters_;  ///< cache and shard_max_depth fields filled lazily by stats()
};

}  // namespace sts
