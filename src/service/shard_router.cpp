#include "service/shard_router.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "pipeline/schedule_cache.hpp"
#include "support/text.hpp"

namespace sts {

namespace {

bool parse_digest(std::string_view digest, std::uint64_t& hash) {
  if (digest.size() != 16) return false;
  std::uint64_t value = 0;
  for (const char c : digest) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  hash = value;
  return true;
}

/// The 64-bit hash a request routes by. A delta request routes by the digest
/// it names: `key_digest()` is the hex form of fnv1a64(key), i.e. exactly the
/// hash its base request was routed by — so the delta lands on the backend
/// whose base registry holds the graph and whose fragment cache is warm.
/// key() must not be touched on a delta (its graph is not materialized yet;
/// the memo would serve a stale identity). A malformed digest still routes
/// deterministically and fails with "unknown base_key" at the backend.
std::uint64_t routing_hash(const ScheduleRequest& request) {
  if (request.base_key.has_value()) {
    std::uint64_t hash = 0;
    if (parse_digest(*request.base_key, hash)) return hash;
    return fnv1a64(*request.base_key);
  }
  return fnv1a64(request.key());
}

}  // namespace

ShardRouter::ShardRouter(RouterConfig config) : config_(std::move(config)) {
  if (config_.num_backends == 0) {
    throw std::invalid_argument("ShardRouter: num_backends must be >= 1");
  }
  if (config_.virtual_nodes == 0) {
    throw std::invalid_argument("ShardRouter: virtual_nodes must be >= 1");
  }
  const ExclusiveLock lock(mutex_);
  backends_.reserve(config_.num_backends);
  for (std::size_t i = 0; i < config_.num_backends; ++i) {
    backends_.push_back(make_backend_locked(i));
  }
  rebuild_ring_locked();
}

std::shared_ptr<ScheduleBackend> ShardRouter::make_backend_locked(std::size_t index) {
  if (config_.backend_factory) {
    std::shared_ptr<ScheduleBackend> backend = config_.backend_factory(index);
    if (!backend) throw std::invalid_argument("ShardRouter: backend_factory returned nullptr");
    return backend;
  }
  return std::make_shared<ScheduleService>(config_.backend);
}

std::vector<std::shared_ptr<ScheduleBackend>> ShardRouter::snapshot_backends() const {
  const SharedLock lock(mutex_);
  return backends_;
}

void ShardRouter::rebuild_ring_locked() {
  ring_.clear();
  ring_.reserve(backends_.size() * config_.virtual_nodes);
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    for (std::size_t v = 0; v < config_.virtual_nodes; ++v) {
      // The point position depends only on (backend index, vnode index), so
      // growing the pool never moves an existing backend's points — the
      // consistent-hashing property the rebalance test pins down.
      std::string point = "backend ";
      append_number(point, b);
      point += " vnode ";
      append_number(point, v);
      ring_.push_back(RingPoint{fnv1a64(point), static_cast<std::uint32_t>(b)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const RingPoint& a, const RingPoint& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.backend < b.backend;
  });
}

std::size_t ShardRouter::backend_for_hash_locked(std::uint64_t hash) const {
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const RingPoint& point, std::uint64_t value) { return point.hash < value; });
  return it != ring_.end() ? it->backend : ring_.front().backend;  // wrap past the top
}

std::size_t ShardRouter::backend_for_key(std::string_view key) const {
  const SharedLock lock(mutex_);
  return backend_for_hash_locked(fnv1a64(key));
}

std::size_t ShardRouter::backend_for(const ScheduleRequest& request) const {
  const SharedLock lock(mutex_);
  return backend_for_hash_locked(routing_hash(request));
}

ServiceAdmission ShardRouter::submit(ScheduleRequest request) {
  // Resolve the route under the shared lock, then release it before the
  // backend call: a submit blocked on backpressure must not pin the router.
  std::shared_ptr<ScheduleBackend> backend;
  std::size_t index = 0;
  {
    const SharedLock lock(mutex_);
    index = backend_for_hash_locked(routing_hash(request));
    backend = backends_[index];
  }
  ServiceAdmission admission = backend->submit(std::move(request));
  if (admission.rejected.has_value()) admission.rejected->backend = index;
  return admission;
}

ScheduleResponse ShardRouter::schedule(ScheduleRequest request) {
  return submit(std::move(request)).wait();
}

std::size_t ShardRouter::backend_count() const {
  const SharedLock lock(mutex_);
  return backends_.size();
}

ScheduleBackend& ShardRouter::backend(std::size_t index) {
  const SharedLock lock(mutex_);
  return *backends_.at(index);
}

ScheduleService& ShardRouter::local_backend(std::size_t index) {
  const SharedLock lock(mutex_);
  auto* service = dynamic_cast<ScheduleService*>(backends_.at(index).get());
  if (service == nullptr) {
    throw std::invalid_argument("ShardRouter: backend " + std::to_string(index) +
                                " is not an in-process ScheduleService");
  }
  return *service;
}

void ShardRouter::set_backend_count(std::size_t count) {
  if (count == 0) throw std::invalid_argument("ShardRouter: num_backends must be >= 1");
  const ExclusiveLock lock(mutex_);
  while (backends_.size() > count) {
    // Retire the highest-index backend: drain it, keep its counters, drop
    // its cache. Its ring points disappear with the rebuild below, and the
    // keys it owned fall through to the neighbors that already owned the
    // rest of their arcs.
    ScheduleBackend& victim = *backends_.back();
    victim.wait_idle();
    accumulate_service_stats(retired_, victim.stats());
    backends_.pop_back();
  }
  while (backends_.size() < count) {
    backends_.push_back(make_backend_locked(backends_.size()));
  }
  config_.num_backends = count;
  rebuild_ring_locked();
}

void ShardRouter::drain(std::size_t index) {
  std::shared_ptr<ScheduleBackend> backend;
  {
    const SharedLock lock(mutex_);
    backend = backends_.at(index);
  }
  backend->wait_idle();  // outside the lock: draining must not block routing
}

void ShardRouter::wait_idle() {
  for (const auto& backend : snapshot_backends()) backend->wait_idle();
}

double ShardRouter::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_).count();
}

ShardRouter::Stats ShardRouter::stats() const {
  Stats out;
  std::vector<std::shared_ptr<ScheduleBackend>> backends;
  {
    const SharedLock lock(mutex_);
    backends = backends_;
    out.total = retired_;
  }
  out.backends.reserve(backends.size());
  for (const auto& backend : backends) {
    out.backends.push_back(backend->stats());
    accumulate_service_stats(out.total, out.backends.back());
  }
  return out;
}

std::string ShardRouter::stats_json() const {
  // One stats_snapshot() per backend feeds both the per-backend records and
  // the aggregate, so the emitted totals always equal the sum of the
  // per_backend objects in the same document (for a remote backend the
  // snapshot is a single /stats fetch).
  std::vector<std::shared_ptr<ScheduleBackend>> backends;
  ServiceStats total;
  {
    const SharedLock lock(mutex_);
    backends = backends_;
    total = retired_;
  }
  const std::size_t live = backends.size();
  std::vector<std::string> per_backend;
  per_backend.reserve(live);
  std::size_t cache_weight = 0;  // live backends' resident cache weight
  for (const auto& backend : backends) {
    ScheduleBackend::Snapshot snapshot = backend->stats_snapshot();
    accumulate_service_stats(total, snapshot.stats);
    cache_weight += snapshot.cache_weight;
    per_backend.push_back(std::move(snapshot.json));
  }
  const ServiceStats& s = total;
  const auto field = [](const char* key, std::uint64_t value) {
    return std::string("\"") + key + "\": " + std::to_string(value);
  };
  std::string json = "{";
  json += field("schema_version", ScheduleService::kStatsSchemaVersion);
  json += ", \"uptime_seconds\": ";
  append_number(json, uptime_seconds());
  json += ", " + field("backends", live);
  json += ", " + field("submitted", s.submitted);
  json += ", " + field("completed", s.completed);
  json += ", " + field("failed", s.failed);
  json += ", " + field("rejected", s.rejected);
  json += ", " + field("simulated", s.simulated);
  json += ", " + field("fast_path_hits", s.fast_path_hits);
  json += ", " + field("cache_hits", s.cache.hits);
  json += ", " + field("cache_misses", s.cache.misses);
  json += ", " + field("cache_races", s.cache.races);
  json += ", " + field("cache_evictions", s.cache.evictions);
  json += ", " + field("cache_evicted_weight", s.cache.evicted_weight);
  json += ", " + field("cache_expired", s.cache.expired);
  json += ", " + field("cache_weight", cache_weight);
  json += ", " + field("partition_hits", s.subgraph.partition_hits);
  json += ", " + field("partition_misses", s.subgraph.partition_misses);
  json += ", " + field("fragments_assembled", s.subgraph.fragments_assembled);
  json += ", " + field("delta_invalidated", s.subgraph.delta_invalidated);
  json += ", " + field("canon_hits", s.canon.hits);
  json += ", " + field("canon_misses", s.canon.misses);
  std::size_t peak = 0;
  for (const std::size_t depth : s.shard_max_depth) peak = std::max(peak, depth);
  json += ", " + field("max_queue_depth", peak);
  json += ", \"per_backend\": [";
  for (std::size_t i = 0; i < per_backend.size(); ++i) {
    if (i > 0) json += ", ";
    json += per_backend[i];
  }
  json += "]}";
  return json;
}

}  // namespace sts
