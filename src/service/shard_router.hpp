#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "service/backend.hpp"
#include "service/request.hpp"
#include "service/schedule_service.hpp"
#include "support/thread_annotations.hpp"

namespace sts {

/// Sizing knobs of a ShardRouter.
struct RouterConfig {
  /// Number of backends to own. Must be >= 1.
  std::size_t num_backends = 2;

  /// Ring points per backend. More points smooth the key-space split at the
  /// cost of a larger (still tiny) routing table; 64 keeps the imbalance of
  /// a random key set within a few percent.
  std::size_t virtual_nodes = 64;

  /// Configuration applied to every backend service (ignored by a custom
  /// `backend_factory` unless it chooses to use it).
  ServiceConfig backend;

  /// Optional factory for backend `index`. Unset (the default), every
  /// backend is an in-process `ScheduleService(backend)`; set, the router
  /// can mix in-process services, `RemoteBackend`s speaking to `sts-serve`
  /// processes, and test doubles — routing, stats aggregation, and drain
  /// are identical either way. Called during construction and whenever
  /// `set_backend_count` grows the pool; must not return nullptr.
  std::function<std::shared_ptr<ScheduleBackend>(std::size_t index)> backend_factory;
};

/// Thin routing front end that partitions the request-key space across N
/// `ScheduleBackend`s with a consistent-hash ring (the ROADMAP's
/// cross-process sharding seam, now actually crossing processes: by default
/// every backend is an in-process `ScheduleService`, but
/// `RouterConfig::backend_factory` can supply `RemoteBackend`s speaking
/// HTTP/1.1 to `sts-serve` processes — the router only ever touches a
/// backend through `submit(ScheduleRequest)`, a serializable envelope, so
/// the mix is invisible to callers).
///
/// Routing: each backend owns `virtual_nodes` points on a 64-bit ring,
/// placed at `fnv1a64("backend <i> vnode <j>")`; a request routes to the
/// owner of the first ring point at or after `fnv1a64(request.key())`
/// (wrapping). Identical requests therefore always land on the same backend
/// (whose own key-sharding then serializes them onto one worker and
/// single-flights the computation), and resizing from N to N+1 backends
/// only moves the keys now owned by the new backend — every other key keeps
/// its backend and its warm cache.
///
/// `submit` forwards the envelope and annotates a `Rejected` outcome with
/// the backend index. `stats()` / `stats_json()` aggregate across backends
/// (including backends already retired by `set_backend_count`, so totals
/// stay monotonic); `drain(i)` waits out one backend, e.g. before retiring
/// it.
///
/// Concurrency: the router lock only covers the routing decision, never a
/// backend call — a submit blocked on backpressure therefore cannot stall
/// routing to other backends or a concurrent `set_backend_count`. Backends
/// are shared-owned, so a submit racing a shrink completes safely on the
/// retiring backend (its future resolves; counters it adds after the
/// retirement snapshot are not folded into the totals).
class ShardRouter {
 public:
  explicit ShardRouter(RouterConfig config = {});

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Routes the request to its backend and forwards to
  /// `ScheduleBackend::submit`. A synchronously rejected admission carries
  /// the backend index in `rejected->backend` (a rejection a remote backend
  /// delivers asynchronously through the settled future keeps whatever the
  /// server recorded — the router never sees it).
  [[nodiscard]] ServiceAdmission submit(ScheduleRequest request) EXCLUDES(mutex_);

  /// Synchronous convenience: `submit(request).wait()`.
  [[nodiscard]] ScheduleResponse schedule(ScheduleRequest request) EXCLUDES(mutex_);

  /// The backend a request (or a raw request key) routes to. Deterministic:
  /// depends only on the key and the current backend count / ring layout.
  [[nodiscard]] std::size_t backend_for(const ScheduleRequest& request) const
      EXCLUDES(mutex_);
  [[nodiscard]] std::size_t backend_for_key(std::string_view key) const EXCLUDES(mutex_);

  [[nodiscard]] std::size_t backend_count() const EXCLUDES(mutex_);

  /// Direct access to one backend through the seam (tests, per-backend
  /// stats inspection). The reference is invalidated by set_backend_count.
  [[nodiscard]] ScheduleBackend& backend(std::size_t index) EXCLUDES(mutex_);

  /// `backend(index)` downcast to the in-process service (tests, cache
  /// inspection). Throws std::invalid_argument when that backend is not a
  /// ScheduleService (e.g. a RemoteBackend — its cache lives in another
  /// process).
  [[nodiscard]] ScheduleService& local_backend(std::size_t index) EXCLUDES(mutex_);

  /// Rebalances to `count` backends. Growing adds fresh services (cold
  /// caches) and moves only the keys the new ring points claim; shrinking
  /// drains each retired backend, folds its counters into the retired
  /// totals, and destroys it (its cached entries are recomputed on their
  /// new backends on demand). Blocks until in-flight work on retired
  /// backends finishes. Throws std::invalid_argument on zero.
  void set_backend_count(std::size_t count) EXCLUDES(mutex_);

  /// Blocks until every job accepted by backend `index` has completed.
  void drain(std::size_t index) EXCLUDES(mutex_);

  /// Blocks until every backend is idle.
  void wait_idle() EXCLUDES(mutex_);

  struct Stats {
    ServiceStats total;  ///< Σ over live + retired backends;
                         ///< shard_max_depth concatenated over
                         ///< live backends in index order
    std::vector<ServiceStats> backends;  ///< per live backend
  };
  [[nodiscard]] Stats stats() const EXCLUDES(mutex_);

  /// Aggregate stats in the flat BENCH_*.json shape of
  /// ScheduleService::stats_json (including `schema_version` and the
  /// router's own `uptime_seconds`), plus `backends` (live count) and a
  /// `per_backend` array of each live backend's own stats document — each
  /// from one `stats_snapshot()`, so the totals always equal the sum of the
  /// per_backend objects in the same document.
  [[nodiscard]] std::string stats_json() const EXCLUDES(mutex_);

  /// Seconds since this router was constructed (monotonic clock).
  [[nodiscard]] double uptime_seconds() const;

 private:
  struct RingPoint {
    std::uint64_t hash = 0;
    std::uint32_t backend = 0;
  };

  [[nodiscard]] std::size_t backend_for_hash_locked(std::uint64_t hash) const
      REQUIRES_SHARED(mutex_);
  void rebuild_ring_locked() REQUIRES(mutex_);

  /// config_.backend_factory(index), or a fresh in-process service.
  [[nodiscard]] std::shared_ptr<ScheduleBackend> make_backend_locked(std::size_t index)
      REQUIRES(mutex_);

  // Takes the shared lock itself; callers operate on the returned snapshot
  // with the lock released, so blocking backend calls never pin it.
  [[nodiscard]] std::vector<std::shared_ptr<ScheduleBackend>> snapshot_backends() const
      EXCLUDES(mutex_);

  mutable SharedMutex mutex_;
  RouterConfig config_ GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<ScheduleBackend>> backends_ GUARDED_BY(mutex_);
  /// Sorted by (hash, backend).
  std::vector<RingPoint> ring_ GUARDED_BY(mutex_);
  /// Counters of destroyed backends.
  ServiceStats retired_ GUARDED_BY(mutex_);
  const std::chrono::steady_clock::time_point start_time_ = std::chrono::steady_clock::now();
};

}  // namespace sts
