#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "service/request.hpp"
#include "service/schedule_service.hpp"
#include "support/thread_annotations.hpp"

namespace sts {

/// Sizing knobs of a ShardRouter.
struct RouterConfig {
  /// Number of ScheduleService backends to own. Must be >= 1.
  std::size_t num_backends = 2;

  /// Ring points per backend. More points smooth the key-space split at the
  /// cost of a larger (still tiny) routing table; 64 keeps the imbalance of
  /// a random key set within a few percent.
  std::size_t virtual_nodes = 64;

  /// Configuration applied to every backend service.
  ServiceConfig backend;
};

/// Thin routing front end that partitions the request-key space across N
/// `ScheduleService` backends with a consistent-hash ring (the ROADMAP's
/// cross-process sharding seam: backends are in-process instances today, but
/// the router only ever touches them through `submit(ScheduleRequest)` — a
/// serializable envelope — so a backend can become a separate process
/// without changing a caller).
///
/// Routing: each backend owns `virtual_nodes` points on a 64-bit ring,
/// placed at `fnv1a64("backend <i> vnode <j>")`; a request routes to the
/// owner of the first ring point at or after `fnv1a64(request.key())`
/// (wrapping). Identical requests therefore always land on the same backend
/// (whose own key-sharding then serializes them onto one worker and
/// single-flights the computation), and resizing from N to N+1 backends
/// only moves the keys now owned by the new backend — every other key keeps
/// its backend and its warm cache.
///
/// `submit` forwards the envelope and annotates a `Rejected` outcome with
/// the backend index. `stats()` / `stats_json()` aggregate across backends
/// (including backends already retired by `set_backend_count`, so totals
/// stay monotonic); `drain(i)` waits out one backend, e.g. before retiring
/// it.
///
/// Concurrency: the router lock only covers the routing decision, never a
/// backend call — a submit blocked on backpressure therefore cannot stall
/// routing to other backends or a concurrent `set_backend_count`. Backends
/// are shared-owned, so a submit racing a shrink completes safely on the
/// retiring backend (its future resolves; counters it adds after the
/// retirement snapshot are not folded into the totals).
class ShardRouter {
 public:
  explicit ShardRouter(RouterConfig config = {});

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Routes the request to its backend and forwards to
  /// `ScheduleService::submit`. A rejected admission carries the backend
  /// index in `rejected->backend`.
  [[nodiscard]] ScheduleService::Admission submit(ScheduleRequest request)
      EXCLUDES(mutex_);

  /// Synchronous convenience: `submit(request).wait()`.
  [[nodiscard]] ScheduleResponse schedule(ScheduleRequest request) EXCLUDES(mutex_);

  /// The backend a request (or a raw request key) routes to. Deterministic:
  /// depends only on the key and the current backend count / ring layout.
  [[nodiscard]] std::size_t backend_for(const ScheduleRequest& request) const
      EXCLUDES(mutex_);
  [[nodiscard]] std::size_t backend_for_key(std::string_view key) const EXCLUDES(mutex_);

  [[nodiscard]] std::size_t backend_count() const EXCLUDES(mutex_);

  /// Direct access to one backend (tests, per-backend cache inspection).
  /// The reference is invalidated by set_backend_count.
  [[nodiscard]] ScheduleService& backend(std::size_t index) EXCLUDES(mutex_);

  /// Rebalances to `count` backends. Growing adds fresh services (cold
  /// caches) and moves only the keys the new ring points claim; shrinking
  /// drains each retired backend, folds its counters into the retired
  /// totals, and destroys it (its cached entries are recomputed on their
  /// new backends on demand). Blocks until in-flight work on retired
  /// backends finishes. Throws std::invalid_argument on zero.
  void set_backend_count(std::size_t count) EXCLUDES(mutex_);

  /// Blocks until every job accepted by backend `index` has completed.
  void drain(std::size_t index) EXCLUDES(mutex_);

  /// Blocks until every backend is idle.
  void wait_idle() EXCLUDES(mutex_);

  struct Stats {
    ScheduleService::Stats total;  ///< Σ over live + retired backends;
                                   ///< shard_max_depth concatenated over
                                   ///< live backends in index order
    std::vector<ScheduleService::Stats> backends;  ///< per live backend
  };
  [[nodiscard]] Stats stats() const EXCLUDES(mutex_);

  /// Aggregate stats in the flat BENCH_*.json shape of
  /// ScheduleService::stats_json, plus `backends` (live count) and a
  /// `per_backend` array of each live backend's own stats object.
  [[nodiscard]] std::string stats_json() const EXCLUDES(mutex_);

 private:
  struct RingPoint {
    std::uint64_t hash = 0;
    std::uint32_t backend = 0;
  };

  [[nodiscard]] std::size_t backend_for_hash_locked(std::uint64_t hash) const
      REQUIRES_SHARED(mutex_);
  void rebuild_ring_locked() REQUIRES(mutex_);

  // Takes the shared lock itself; callers operate on the returned snapshot
  // with the lock released, so blocking backend calls never pin it.
  [[nodiscard]] std::vector<std::shared_ptr<ScheduleService>> snapshot_backends() const
      EXCLUDES(mutex_);

  mutable SharedMutex mutex_;
  RouterConfig config_ GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<ScheduleService>> backends_ GUARDED_BY(mutex_);
  /// Sorted by (hash, backend).
  std::vector<RingPoint> ring_ GUARDED_BY(mutex_);
  /// Counters of destroyed backends.
  ScheduleService::Stats retired_ GUARDED_BY(mutex_);
};

}  // namespace sts
