// Bulk-advance simulation engine.
//
// The tick-accurate reference engine (dataflow_sim.cpp) only ever schedules
// work for the immediately following tick, so simulated time is contiguous
// and each tick's outcome is a deterministic, evaluation-order-independent
// function of the state (per-edge occupancies, per-node consume/produce
// counters, releases). This engine exploits that: it steps ticks with the
// exact same rules, records the per-tick action lists in a rolling window,
// and when the last two windows of length L are identical it checks a set of
// algebraic drift conditions proving the pattern will repeat verbatim:
//
//   - every finite-capacity FIFO has zero net occupancy change per period
//     (its within-period trajectory then replays exactly);
//   - every unbounded (memory) channel touched by the pattern either drifts
//     upward while never observed empty, or drains at a rate bounded away
//     from empty for m more periods;
//   - every acting node advances its consume/produce counters consistently
//     with its production rate (so the ceil(j*den/num) gates shift by exactly
//     the observed deltas) and stays strictly inside its stream (no node
//     completes, so no barrier fires and no cap switches branch).
//
// Under those conditions the next m periods are provably identical to the
// observed one, so the engine advances counters, occupancies, last-movement
// times, and the clock by m*L in O(period) instead of O(m*L*degree). First
// outputs never occur inside a jump (a node producing in the pattern has
// produced before), and completions/barriers are excluded by the m bound, so
// makespan, finish, first_out, deadlocks, stuck sets, and tick accounting
// are bit-identical to the reference engine (see test_sim_engines.cpp).
//
// Cost therefore scales with transient lengths and the number of node
// completions rather than with total stream volume.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/dataflow_sim.hpp"
#include "sim/sim_internal.hpp"
#include "support/parallel.hpp"

namespace sts::sim_detail {

namespace {

/// Rolling-window size in ticks; patterns up to kWindow/2 long are detected.
constexpr std::size_t kWindow = 1024;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Recent occurrences of one tick-hash, newest-first ring. Multi-rate steady
/// states echo short sub-patterns (the same tick-hash every few ticks) long
/// before the full period repeats, so the most recent occurrence alone is a
/// poor period candidate: all viable distances are tried, shortest first.
struct HashHits {
  static constexpr std::uint32_t kCapacity = 24;
  std::int64_t tick[kCapacity];
  std::uint32_t count = 0;

  void push(std::int64_t t) {
    tick[count % kCapacity] = t;
    ++count;
  }
  [[nodiscard]] std::uint32_t size() const { return std::min(count, kCapacity); }
};

}  // namespace

SimResult simulate_bulk_advance(const TaskGraph& graph, const StreamingSchedule& schedule,
                                const BufferPlan& buffers, const SimOptions& options) {
  const std::size_t n = graph.node_count();
  const std::size_t edge_count = graph.edge_count();
  SimSetup setup(graph, schedule, buffers);
  SimResult result;
  result.engine_used = SimEngine::kBulkAdvance;
  result.finish.assign(n, 0);
  result.first_out.assign(n, 0);

  // --- Mutable simulation state -------------------------------------------
  std::vector<std::int64_t> occupancy(edge_count, 0);
  const std::vector<TaskProfile>& profile = setup.profile;
  std::vector<std::int64_t> consumed(n, 0);
  std::vector<std::int64_t> produced(n, 0);
  std::vector<std::int64_t> release = setup.release;
  std::vector<bool> complete(n, false);
  const auto& blocks = schedule.partition.blocks;
  std::vector<std::int64_t> block_pending = setup.block_pending;
  std::size_t incomplete_pe_tasks = setup.incomplete_pe_tasks;
  std::size_t next_block_to_release = blocks.empty() ? 0 : 1;
  const std::span<const Edge> edges = graph.edges();

  // --- Wake bookkeeping (mirrors the reference priority queue, which only
  // ever holds entries for `now` and `now + 1`) ----------------------------
  std::vector<NodeId> batch;
  std::vector<NodeId> next_wake;
  std::vector<NodeId> acted;
  std::vector<std::int64_t> queued_at(n, -1);
  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    if (release[static_cast<std::size_t>(v)] == 0) {
      queued_at[static_cast<std::size_t>(v)] = 1;
      next_wake.push_back(v);
    }
  }

  // --- Pattern detection state --------------------------------------------
  // ring[t % kWindow]: the tick's actions as (node << 1 | is_produce) words,
  // in deterministic processing order; ring_hash: FNV-1a of that list.
  std::vector<std::vector<std::uint32_t>> ring(kWindow);
  std::vector<std::uint64_t> ring_hash(kWindow, 0);
  std::unordered_map<std::uint64_t, HashHits> seen;
  std::int64_t history_start = 1;  // first tick with a valid ring entry
  std::int64_t next_try = 0;
  std::vector<std::int64_t> candidates;
  std::vector<std::uint8_t> candidate_pass;
  const Parallel parallel(options.intra_threads);

  // Epoch-tagged scratch for period verification.
  std::vector<std::int64_t> dc(n, 0), dp(n, 0), last_move(n, 0);
  std::vector<std::int32_t> node_epoch(n, -1), edge_epoch(edge_count, -1);
  std::vector<std::int64_t> e_cur(edge_count, 0), e_min(edge_count, 0), e_delta(edge_count, 0);
  std::int32_t epoch = 0;
  std::vector<NodeId> touched_nodes;
  std::vector<EdgeId> touched_edges;
  std::vector<EdgeId> tick_edges;

  std::int64_t now = 0;

  // Exact equality of the two adjacent windows of length `period` (hash
  // first, then the action lists themselves, so hash collisions cannot
  // corrupt results). Read-only, so many candidate periods can be screened
  // concurrently.
  const auto periods_equal = [&](std::int64_t period) -> bool {
    for (std::int64_t i = 0; i < period; ++i) {
      const auto a = static_cast<std::size_t>((now - i) % static_cast<std::int64_t>(kWindow));
      const auto b =
          static_cast<std::size_t>((now - period - i) % static_cast<std::int64_t>(kWindow));
      if (ring_hash[a] != ring_hash[b] || ring[a] != ring[b]) {
        return false;
      }
    }
    return true;
  };

  // Attempts to prove that the last L ticks repeat the L before them and to
  // advance m whole periods at once. Conservative: any unproven situation
  // just declines the jump and the engine keeps ticking.
  const auto attempt_jump = [&](std::int64_t period) -> bool {
    if (!periods_equal(period)) return false;

    // Per-node action deltas and per-edge touch sets over the last period.
    ++epoch;
    touched_nodes.clear();
    touched_edges.clear();
    const auto touch_edge = [&](EdgeId e) {
      const auto eidx = static_cast<std::size_t>(e);
      if (edge_epoch[eidx] != epoch) {
        edge_epoch[eidx] = epoch;
        e_cur[eidx] = occupancy[eidx];
        e_min[eidx] = std::numeric_limits<std::int64_t>::max();
        touched_edges.push_back(e);
      }
    };
    for (std::int64_t i = now - period + 1; i <= now; ++i) {
      for (const std::uint32_t a : ring[static_cast<std::size_t>(
               i % static_cast<std::int64_t>(kWindow))]) {
        const auto v = static_cast<NodeId>(a >> 1);
        const auto idx = static_cast<std::size_t>(v);
        if (node_epoch[idx] != epoch) {
          node_epoch[idx] = epoch;
          dc[idx] = 0;
          dp[idx] = 0;
          last_move[idx] = 0;
          touched_nodes.push_back(v);
        }
        if ((a & 1u) != 0) {
          ++dp[idx];
          last_move[idx] = i;  // produce updates finish for every node kind
          for (const EdgeId e : graph.out_edges(v)) touch_edge(e);
        } else {
          ++dc[idx];
          if (profile[idx].is_sink) last_move[idx] = i;  // sink consume = movement
          for (const EdgeId e : graph.in_edges(v)) touch_edge(e);
        }
      }
    }

    // Backward occupancy replay: per touched edge, the net delta per period
    // and the minimum start-of-tick occupancy observed inside the period.
    for (std::int64_t i = now; i > now - period; --i) {
      tick_edges.clear();
      for (const std::uint32_t a : ring[static_cast<std::size_t>(
               i % static_cast<std::int64_t>(kWindow))]) {
        const auto v = static_cast<NodeId>(a >> 1);
        if ((a & 1u) != 0) {
          for (const EdgeId e : graph.out_edges(v)) {
            --e_cur[static_cast<std::size_t>(e)];
            tick_edges.push_back(e);
          }
        } else {
          for (const EdgeId e : graph.in_edges(v)) {
            ++e_cur[static_cast<std::size_t>(e)];
            tick_edges.push_back(e);
          }
        }
      }
      for (const EdgeId e : tick_edges) {
        const auto eidx = static_cast<std::size_t>(e);
        e_min[eidx] = std::min(e_min[eidx], e_cur[eidx]);
      }
    }
    for (const EdgeId e : touched_edges) {
      const auto eidx = static_cast<std::size_t>(e);
      e_delta[eidx] = occupancy[eidx] - e_cur[eidx];
    }

    // Drift checks and the jump length m (in periods).
    std::int64_t m = (options.max_ticks - now) / period;
    bool ok = m >= 1;
    for (const EdgeId e : touched_edges) {
      if (!ok) break;
      const auto eidx = static_cast<std::size_t>(e);
      const std::int64_t d = e_delta[eidx];
      if (setup.capacity[eidx] != kUnbounded) {
        if (d != 0) ok = false;  // FIFO level drifting: full/empty flip ahead
      } else if (d > 0) {
        // Growing memory channel: safe iff it was never observed empty (an
        // empty->nonempty flip could unblock its consumer mid-jump).
        if (e_min[eidx] < 1) ok = false;
      } else if (d < 0) {
        // Draining memory channel: stays nonempty for (min-1)/(-d) periods.
        if (e_min[eidx] < 1) {
          ok = false;
        } else {
          m = std::min(m, (e_min[eidx] - 1) / (-d));
        }
      }
    }
    for (const NodeId v : touched_nodes) {
      if (!ok) break;
      const auto idx = static_cast<std::size_t>(v);
      const TaskProfile& p = profile[idx];
      const std::int64_t total_c = p.total_consume, total_p = p.total_produce;
      const std::int64_t c = consumed[idx], pr = produced[idx];
      const std::int64_t delta_c = dc[idx], delta_p = dp[idx];
      if (delta_c == 0 && delta_p == 0) continue;
      if (p.is_buffer) {
        // A buffer absorbs everything before emitting: it is either still
        // filling or draining, never both within a repeating pattern.
        if (delta_c > 0 && delta_p > 0) {
          ok = false;
          break;
        }
        if (delta_c > 0) m = std::min(m, (total_c - 1 - c) / delta_c);
        if (delta_p > 0) m = std::min(m, (total_p - 1 - pr) / delta_p);
      } else if (total_c == 0) {  // source
        if (delta_c != 0) {
          ok = false;
          break;
        }
        m = std::min(m, (total_p - 1 - pr) / delta_p);
      } else if (total_p == 0) {  // sink
        if (delta_p != 0) {
          ok = false;
          break;
        }
        m = std::min(m, (total_c - 1 - c) / delta_c);
      } else if (pr >= total_p) {  // produce-complete: draining leftover consumes
        if (delta_p != 0) {
          ok = false;
          break;
        }
        m = std::min(m, (total_c - 1 - c) / delta_c);
      } else if (c >= total_c) {  // consume-complete: flushing remaining outputs
        if (delta_c != 0) {
          ok = false;
          break;
        }
        m = std::min(m, (total_p - 1 - pr) / delta_p);
        // Produce gate ceil(j*den/num) <= c must hold up to j = pr + m*dp.
        const std::int64_t headroom = c * p.rate_num - pr * p.rate_den;
        if (headroom < 0) {
          ok = false;
          break;
        }
        m = std::min(m, headroom / (delta_p * p.rate_den));
      } else {  // mid-stream on both sides
        // The ceil gates shift by exactly delta_c iff the deltas sit on the
        // node's rate line; anything else cannot repeat indefinitely.
        if (delta_c <= 0 || delta_p <= 0 || delta_c * p.rate_num != delta_p * p.rate_den) {
          ok = false;
          break;
        }
        m = std::min(m, (total_p - 1 - pr) / delta_p);
        // Keep consume_cap on its ceil branch: cn(pr + m*dp + 1) <= total_c.
        const std::int64_t headroom = total_c * p.rate_num - (pr + 1) * p.rate_den;
        if (headroom < 0) {
          ok = false;
          break;
        }
        m = std::min(m, headroom / (delta_p * p.rate_den));
      }
      if (m < 1) {
        ok = false;
        break;
      }
    }
    if (!ok || m < 1) {
      return false;
    }

    // Commit the jump: m periods advance in O(period stats).
    for (const NodeId v : touched_nodes) {
      const auto idx = static_cast<std::size_t>(v);
      consumed[idx] += m * dc[idx];
      produced[idx] += m * dp[idx];
      if (last_move[idx] > 0) result.finish[idx] = last_move[idx] + m * period;
    }
    for (const EdgeId e : touched_edges) {
      const auto eidx = static_cast<std::size_t>(e);
      occupancy[eidx] += m * e_delta[eidx];
    }
    now += m * period;
    result.ticks_executed = now;
    ++result.bulk_jumps;
    history_start = now + 1;
    seen.clear();
    next_try = now + 1;
    return true;
  };

  // --- Main loop -----------------------------------------------------------
  while (incomplete_pe_tasks > 0 && !next_wake.empty()) {
    ++now;
    if (now > options.max_ticks) {
      result.tick_limit_reached = true;
      break;
    }
    result.ticks_executed = now;
    ++result.live_ticks;
    batch.swap(next_wake);
    next_wake.clear();
    std::sort(batch.begin(), batch.end());  // reference pops (tick, id) min-heap order
    for (const NodeId v : batch) queued_at[static_cast<std::size_t>(v)] = now;
    acted.clear();

    auto& actions = ring[static_cast<std::size_t>(now % static_cast<std::int64_t>(kWindow))];
    actions.clear();

    const auto wake_next = [&](NodeId u) {
      if (queued_at[static_cast<std::size_t>(u)] != now + 1) {
        queued_at[static_cast<std::size_t>(u)] = now + 1;
        next_wake.push_back(u);
      }
    };

    // Phase C: consume steps (reads before writes; freed space lets the
    // producer join this tick, including this tick's consume evaluation).
    const auto join_phase_p = [&](NodeId u) {
      if (queued_at[static_cast<std::size_t>(u)] != now) {
        queued_at[static_cast<std::size_t>(u)] = now;
        batch.push_back(u);
      }
    };
    for (std::size_t bi = 0; bi < batch.size(); ++bi) {
      const NodeId v = batch[bi];
      const auto idx = static_cast<std::size_t>(v);
      if (now <= release[idx] || complete[idx]) continue;
      const TaskProfile& p = profile[idx];
      if (consumed[idx] >= p.consume_cap(produced[idx])) continue;
      const auto ins = graph.in_edges(v);
      bool inputs_ready = !ins.empty();
      for (const EdgeId e : ins) {
        if (occupancy[static_cast<std::size_t>(e)] < 1) {
          inputs_ready = false;
          break;
        }
      }
      if (!inputs_ready) continue;
      for (const EdgeId e : ins) {
        --occupancy[static_cast<std::size_t>(e)];
        join_phase_p(edges[static_cast<std::size_t>(e)].src);
      }
      ++consumed[idx];
      if (p.is_sink) result.finish[idx] = now;
      actions.push_back(static_cast<std::uint32_t>(v) << 1);
      acted.push_back(v);
    }

    // Phase P: produce steps.
    for (const NodeId v : batch) {
      const auto idx = static_cast<std::size_t>(v);
      if (now <= release[idx] || complete[idx]) continue;
      const TaskProfile& p = profile[idx];
      if (produced[idx] >= p.total_produce) continue;
      if (p.consumes_needed(produced[idx] + 1) > consumed[idx]) continue;
      const auto outs = graph.out_edges(v);
      bool space = true;
      for (const EdgeId e : outs) {
        const auto eidx = static_cast<std::size_t>(e);
        if (setup.capacity[eidx] != kUnbounded && occupancy[eidx] >= setup.capacity[eidx]) {
          space = false;
          break;
        }
      }
      if (!space) continue;
      for (const EdgeId e : outs) {
        ++occupancy[static_cast<std::size_t>(e)];
        wake_next(edges[static_cast<std::size_t>(e)].dst);
      }
      ++produced[idx];
      if (result.first_out[idx] == 0) result.first_out[idx] = now;
      result.finish[idx] = now;
      actions.push_back((static_cast<std::uint32_t>(v) << 1) | 1u);
      acted.push_back(v);
    }

    // Progress bookkeeping: completions, barriers, re-arming active tasks.
    for (const NodeId v : acted) {
      const auto idx = static_cast<std::size_t>(v);
      wake_next(v);
      if (!complete[idx] && consumed[idx] >= profile[idx].total_consume &&
          produced[idx] >= profile[idx].total_produce) {
        complete[idx] = true;
        if (!graph.occupies_pe(v)) continue;
        --incomplete_pe_tasks;
        const auto block = static_cast<std::size_t>(schedule.partition.block_of[idx]);
        if (--block_pending[block] == 0 && next_block_to_release < blocks.size() &&
            block + 1 == next_block_to_release) {
          for (const NodeId w : blocks[next_block_to_release]) {
            release[static_cast<std::size_t>(w)] = now;
            wake_next(w);
          }
          ++next_block_to_release;
        }
      }
    }

    // Pattern detection: hash the tick and try every viable period induced
    // by a past tick with the same hash, shortest first.
    std::uint64_t h = kFnvOffset;
    for (const std::uint32_t a : actions) {
      h ^= a;
      h *= kFnvPrime;
    }
    ring_hash[static_cast<std::size_t>(now % static_cast<std::int64_t>(kWindow))] = h;
    if (seen.size() > (1u << 18)) seen.clear();
    bool jumped = false;
    if (!actions.empty() && now >= next_try && incomplete_pe_tasks > 0) {
      if (const auto it = seen.find(h); it != seen.end()) {
        candidates.clear();
        const HashHits& hits = it->second;
        for (std::uint32_t i = 0; i < hits.size(); ++i) {
          const std::int64_t prev = hits.tick[i];
          const std::int64_t period = now - prev;
          if (prev >= history_start && period >= 1 &&
              2 * period <= static_cast<std::int64_t>(kWindow) &&
              now - 2 * period + 1 >= history_start) {
            candidates.push_back(period);
          }
        }
        std::sort(candidates.begin(), candidates.end());
        const bool had_candidates = !candidates.empty();
        const std::int64_t shortest = had_candidates ? candidates.front() : 0;
        if (parallel.lanes() > 1 && candidates.size() >= 4) {
          // Parallel prefilter: screen every candidate with the read-only
          // window-equality check at once, then run the (state-mutating)
          // jump attempts on the survivors, still shortest-first. A filtered
          // candidate would have failed attempt_jump in its first phase
          // without mutating anything, so results are bit-identical to the
          // serial shortest-first scan.
          candidate_pass.assign(candidates.size(), 0);
          parallel.for_range(static_cast<std::int64_t>(candidates.size()), 1,
                             [&](std::int64_t lo, std::int64_t hi) {
                               for (std::int64_t i = lo; i < hi; ++i) {
                                 const auto ci = static_cast<std::size_t>(i);
                                 candidate_pass[ci] = periods_equal(candidates[ci]) ? 1 : 0;
                               }
                             });
          std::size_t out = 0;
          for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (candidate_pass[i] != 0) candidates[out++] = candidates[i];
          }
          candidates.resize(out);
        }
        for (const std::int64_t period : candidates) {
          if (attempt_jump(period)) {
            jumped = true;
            break;
          }
        }
        // The retry pacing uses the shortest *viable* period, exactly as the
        // unfiltered scan would.
        if (!jumped && had_candidates) next_try = now + shortest;
      }
    }
    // A successful jump cleared the hash history; this tick belongs to it.
    if (!jumped) seen[h].push(now);
  }

  if (incomplete_pe_tasks > 0 && !result.tick_limit_reached) {
    result.deadlocked = true;
    for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
      if (graph.occupies_pe(v) && !complete[static_cast<std::size_t>(v)]) {
        result.stuck.push_back(v);
      }
    }
  }
  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    if (graph.occupies_pe(v)) {
      result.makespan = std::max(result.makespan, result.finish[static_cast<std::size_t>(v)]);
    }
  }
  return result;
}

}  // namespace sts::sim_detail
