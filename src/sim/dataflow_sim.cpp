#include "sim/dataflow_sim.hpp"

#include <algorithm>
#include <queue>

#include "sim/sim_internal.hpp"

namespace sts {

const char* to_string(SimEngine engine) noexcept {
  switch (engine) {
    case SimEngine::kAuto: return "auto";
    case SimEngine::kBulkAdvance: return "bulk-advance";
    case SimEngine::kTickAccurate: return "tick-accurate";
  }
  return "?";
}

std::string SimOptions::cache_key() const {
  std::string key = "sim engine=";
  key += to_string(engine);
  key += ";max_ticks=";
  key += std::to_string(max_ticks);
  key += ";trace=";
  key += record_trace ? '1' : '0';
  return key;
}

SimResult simulate_streaming(const TaskGraph& graph, const StreamingSchedule& schedule,
                             const BufferPlan& buffers, SimOptions options) {
  SimEngine engine = options.engine;
  if (engine == SimEngine::kAuto) {
    engine = options.record_trace ? SimEngine::kTickAccurate : SimEngine::kBulkAdvance;
  } else if (engine == SimEngine::kBulkAdvance && options.record_trace) {
    // The per-element trace requires the element-accurate engine.
    engine = SimEngine::kTickAccurate;
  }
  return engine == SimEngine::kBulkAdvance
             ? sim_detail::simulate_bulk_advance(graph, schedule, buffers, options)
             : sim_detail::simulate_tick_accurate(graph, schedule, buffers, options);
}

namespace sim_detail {

SimResult simulate_tick_accurate(const TaskGraph& graph, const StreamingSchedule& schedule,
                                 const BufferPlan& buffers, const SimOptions& options) {
  const std::size_t n = graph.node_count();
  SimSetup setup(graph, schedule, buffers);
  SimResult result;
  result.engine_used = SimEngine::kTickAccurate;
  result.finish.assign(n, 0);
  result.first_out.assign(n, 0);
  if (options.record_trace) {
    // A complete run logs one event per consume/produce step: sum of
    // I(v) + O(v). Cap the pre-reserve so early-terminating runs (deadlock,
    // tick limit) don't pay for the whole hypothetical trace up front.
    std::int64_t events = 0;
    for (const TaskProfile& p : setup.profile) events += p.total_consume + p.total_produce;
    result.trace.reserve(static_cast<std::size_t>(
        std::min<std::int64_t>(events, std::int64_t{1} << 20)));
  }

  std::vector<std::int64_t> occupancy(graph.edge_count(), 0);
  const std::vector<TaskProfile>& profile = setup.profile;
  std::vector<std::int64_t> consumed(n, 0);
  std::vector<std::int64_t> produced(n, 0);
  std::vector<std::int64_t> release = setup.release;
  std::vector<bool> complete(n, false);
  const auto& blocks = schedule.partition.blocks;
  std::vector<std::int64_t> block_pending = setup.block_pending;
  std::size_t incomplete_pe_tasks = setup.incomplete_pe_tasks;

  // --- Event queue ---------------------------------------------------------
  using Event = std::pair<std::int64_t, NodeId>;  // (tick, task)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::vector<std::int64_t> queued_at(n, -1);  // dedupe per tick
  const auto wake = [&](NodeId v, std::int64_t tick) {
    if (queued_at[static_cast<std::size_t>(v)] != tick) {
      queued_at[static_cast<std::size_t>(v)] = tick;
      queue.emplace(tick, v);
    }
  };
  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    if (release[static_cast<std::size_t>(v)] == 0) wake(v, 1);
  }

  std::size_t next_block_to_release = blocks.empty() ? 0 : 1;

  std::vector<NodeId> batch;
  std::vector<NodeId> acted;  // hoisted: reused across ticks
  while (!queue.empty() && incomplete_pe_tasks > 0) {
    const std::int64_t now = queue.top().first;
    if (now > options.max_ticks) {
      result.tick_limit_reached = true;
      break;
    }
    result.ticks_executed = now;
    ++result.live_ticks;
    batch.clear();
    acted.clear();
    while (!queue.empty() && queue.top().first == now) {
      batch.push_back(queue.top().second);
      queue.pop();
    }

    // Phase C: consume steps. Reads run before writes within a time unit, so
    // a full FIFO drained now can be refilled now (rate-1 with capacity 1);
    // producers blocked on the freed channel re-enter this tick's phase P.
    const auto join_phase_p = [&](NodeId u) {
      if (queued_at[static_cast<std::size_t>(u)] != now) {
        queued_at[static_cast<std::size_t>(u)] = now;
        batch.push_back(u);
      }
    };
    for (std::size_t bi = 0; bi < batch.size(); ++bi) {
      const NodeId v = batch[bi];
      const auto idx = static_cast<std::size_t>(v);
      if (now <= release[idx] || complete[idx]) continue;
      const TaskProfile& p = profile[idx];
      if (consumed[idx] >= p.consume_cap(produced[idx])) continue;
      const auto ins = graph.in_edges(v);
      bool inputs_ready = !ins.empty();
      for (const EdgeId e : ins) {
        if (occupancy[static_cast<std::size_t>(e)] < 1) {
          inputs_ready = false;
          break;
        }
      }
      if (!inputs_ready) continue;
      for (const EdgeId e : ins) {
        --occupancy[static_cast<std::size_t>(e)];
        join_phase_p(graph.edge(e).src);  // space freed: producer may write now
      }
      ++consumed[idx];
      if (p.is_sink) result.finish[idx] = now;
      if (options.record_trace) {
        result.trace.push_back(SimEvent{now, v, SimEvent::Kind::kConsume});
      }
      acted.push_back(v);
    }

    // Phase P: produce steps. An output enabled by this tick's consume may
    // leave in the same unit (one time unit per element end-to-end).
    for (const NodeId v : batch) {
      const auto idx = static_cast<std::size_t>(v);
      if (now <= release[idx] || complete[idx]) continue;
      const TaskProfile& p = profile[idx];
      if (produced[idx] >= p.total_produce) continue;
      if (p.consumes_needed(produced[idx] + 1) > consumed[idx]) continue;
      const auto outs = graph.out_edges(v);
      bool space = true;
      for (const EdgeId e : outs) {
        const auto eidx = static_cast<std::size_t>(e);
        if (setup.capacity[eidx] != kUnbounded && occupancy[eidx] >= setup.capacity[eidx]) {
          space = false;
          break;
        }
      }
      if (!space) continue;
      for (const EdgeId e : outs) {
        ++occupancy[static_cast<std::size_t>(e)];
        wake(graph.edge(e).dst, now + 1);
      }
      ++produced[idx];
      if (result.first_out[idx] == 0) result.first_out[idx] = now;
      result.finish[idx] = now;
      if (options.record_trace) {
        result.trace.push_back(SimEvent{now, v, SimEvent::Kind::kProduce});
      }
      acted.push_back(v);
    }

    // Progress bookkeeping: completions, barriers, re-arming active tasks.
    for (const NodeId v : acted) {
      const auto idx = static_cast<std::size_t>(v);
      wake(v, now + 1);
      if (!complete[idx] && consumed[idx] >= profile[idx].total_consume &&
          produced[idx] >= profile[idx].total_produce) {
        complete[idx] = true;
        if (!graph.occupies_pe(v)) continue;
        --incomplete_pe_tasks;
        const auto block = static_cast<std::size_t>(schedule.partition.block_of[idx]);
        if (--block_pending[block] == 0 && next_block_to_release < blocks.size() &&
            block + 1 == next_block_to_release) {
          for (const NodeId w : blocks[next_block_to_release]) {
            release[static_cast<std::size_t>(w)] = now;
            wake(w, now + 1);
          }
          ++next_block_to_release;
        }
      }
    }
  }

  if (incomplete_pe_tasks > 0 && !result.tick_limit_reached) {
    result.deadlocked = true;
    for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
      if (graph.occupies_pe(v) && !complete[static_cast<std::size_t>(v)]) {
        result.stuck.push_back(v);
      }
    }
  }
  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    if (graph.occupies_pe(v)) {
      result.makespan = std::max(result.makespan, result.finish[static_cast<std::size_t>(v)]);
    }
  }
  return result;
}

}  // namespace sim_detail
}  // namespace sts
