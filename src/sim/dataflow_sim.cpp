#include "sim/dataflow_sim.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace sts {

namespace {

constexpr std::int64_t kUnbounded = -1;
constexpr std::int64_t kNeverReleased = std::numeric_limits<std::int64_t>::max();

/// Static per-task execution profile derived from the canonical node.
struct TaskProfile {
  std::int64_t total_consume = 0;  ///< I(v): consume steps (one per input edge each)
  std::int64_t total_produce = 0;  ///< O(v): produce steps (one per output edge each)
  // Production rate R = rate_num / rate_den (reduced). Output j needs
  // ceil(j * rate_den / rate_num) consume steps completed.
  std::int64_t rate_num = 1;
  std::int64_t rate_den = 1;
  bool is_buffer = false;

  [[nodiscard]] std::int64_t consumes_needed(std::int64_t produce_step) const {
    if (is_buffer) return total_consume;
    if (total_consume == 0) return 0;  // source
    return (produce_step * rate_den + rate_num - 1) / rate_num;
  }

  /// Constant-space bound: inputs a task may ingest before emitting output
  /// `produced + 1` (it must not hoard elements of later outputs).
  [[nodiscard]] std::int64_t consume_cap(std::int64_t produced) const {
    if (is_buffer || total_produce == 0) return total_consume;
    if (produced >= total_produce) return total_consume;
    return std::min(total_consume, consumes_needed(produced + 1));
  }
};

}  // namespace

SimResult simulate_streaming(const TaskGraph& graph, const StreamingSchedule& schedule,
                             const BufferPlan& buffers, SimOptions options) {
  const std::size_t n = graph.node_count();
  SimResult result;
  result.finish.assign(n, 0);
  result.first_out.assign(n, 0);

  // --- Channel capacities -------------------------------------------------
  std::vector<std::int64_t> capacity(graph.edge_count(), kUnbounded);
  for (const ChannelPlan& plan : buffers.channels) {
    capacity[static_cast<std::size_t>(plan.edge)] = plan.capacity;
  }
  std::vector<std::int64_t> occupancy(graph.edge_count(), 0);

  // --- Task profiles and block release bookkeeping ------------------------
  std::vector<TaskProfile> profile(n);
  std::vector<std::int64_t> consumed(n, 0);
  std::vector<std::int64_t> produced(n, 0);
  std::vector<std::int64_t> release(n, 0);
  std::vector<bool> complete(n, false);
  const auto& blocks = schedule.partition.blocks;
  std::vector<std::int64_t> block_pending(blocks.size(), 0);

  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    const auto idx = static_cast<std::size_t>(v);
    TaskProfile& p = profile[idx];
    p.total_consume = graph.input_volume(v);
    p.total_produce = graph.output_volume(v);
    p.is_buffer = graph.kind(v) == NodeKind::kBuffer;
    if (graph.kind(v) == NodeKind::kCompute && p.total_consume > 0 && p.total_produce > 0) {
      const Rational r = graph.rate(v);
      p.rate_num = r.num();
      p.rate_den = r.den();
    }
    if (graph.occupies_pe(v)) {
      const auto block = schedule.partition.block_of[idx];
      if (block < 0) throw std::invalid_argument("simulate_streaming: PE node without block");
      ++block_pending[static_cast<std::size_t>(block)];
      release[idx] = block == 0 ? 0 : kNeverReleased;
    } else {
      release[idx] = 0;  // buffers are passive memory, always live
    }
  }

  // --- Event queue ---------------------------------------------------------
  using Event = std::pair<std::int64_t, NodeId>;  // (tick, task)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::vector<std::int64_t> queued_at(n, -1);  // dedupe per tick
  const auto wake = [&](NodeId v, std::int64_t tick) {
    if (queued_at[static_cast<std::size_t>(v)] != tick) {
      queued_at[static_cast<std::size_t>(v)] = tick;
      queue.emplace(tick, v);
    }
  };
  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    if (release[static_cast<std::size_t>(v)] == 0) wake(v, 1);
  }

  std::size_t incomplete_pe_tasks = 0;
  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    if (graph.occupies_pe(v)) ++incomplete_pe_tasks;
  }
  std::size_t next_block_to_release = blocks.empty() ? 0 : 1;

  std::vector<NodeId> batch;
  while (!queue.empty() && incomplete_pe_tasks > 0) {
    const std::int64_t now = queue.top().first;
    if (now > options.max_ticks) {
      result.tick_limit_reached = true;
      break;
    }
    result.ticks_executed = now;
    batch.clear();
    while (!queue.empty() && queue.top().first == now) {
      batch.push_back(queue.top().second);
      queue.pop();
    }

    // Phase C: consume steps. Reads run before writes within a time unit, so
    // a full FIFO drained now can be refilled now (rate-1 with capacity 1);
    // producers blocked on the freed channel re-enter this tick's phase P.
    std::vector<NodeId> acted;
    const auto join_phase_p = [&](NodeId u) {
      if (queued_at[static_cast<std::size_t>(u)] != now) {
        queued_at[static_cast<std::size_t>(u)] = now;
        batch.push_back(u);
      }
    };
    for (std::size_t bi = 0; bi < batch.size(); ++bi) {
      const NodeId v = batch[bi];
      const auto idx = static_cast<std::size_t>(v);
      if (now <= release[idx] || complete[idx]) continue;
      const TaskProfile& p = profile[idx];
      if (consumed[idx] >= p.consume_cap(produced[idx])) continue;
      bool inputs_ready = !graph.in_edges(v).empty();
      for (const EdgeId e : graph.in_edges(v)) {
        if (occupancy[static_cast<std::size_t>(e)] < 1) {
          inputs_ready = false;
          break;
        }
      }
      if (!inputs_ready) continue;
      for (const EdgeId e : graph.in_edges(v)) {
        --occupancy[static_cast<std::size_t>(e)];
        join_phase_p(graph.edge(e).src);  // space freed: producer may write now
      }
      ++consumed[idx];
      if (graph.kind(v) == NodeKind::kSink) result.finish[idx] = now;
      if (options.record_trace) {
        result.trace.push_back(SimEvent{now, v, SimEvent::Kind::kConsume});
      }
      acted.push_back(v);
    }

    // Phase P: produce steps. An output enabled by this tick's consume may
    // leave in the same unit (one time unit per element end-to-end).
    for (const NodeId v : batch) {
      const auto idx = static_cast<std::size_t>(v);
      if (now <= release[idx] || complete[idx]) continue;
      const TaskProfile& p = profile[idx];
      if (produced[idx] >= p.total_produce) continue;
      if (p.consumes_needed(produced[idx] + 1) > consumed[idx]) continue;
      bool space = true;
      for (const EdgeId e : graph.out_edges(v)) {
        const auto eidx = static_cast<std::size_t>(e);
        if (capacity[eidx] != kUnbounded && occupancy[eidx] >= capacity[eidx]) {
          space = false;
          break;
        }
      }
      if (!space) continue;
      for (const EdgeId e : graph.out_edges(v)) {
        ++occupancy[static_cast<std::size_t>(e)];
        wake(graph.edge(e).dst, now + 1);
      }
      ++produced[idx];
      if (result.first_out[idx] == 0) result.first_out[idx] = now;
      result.finish[idx] = now;
      if (options.record_trace) {
        result.trace.push_back(SimEvent{now, v, SimEvent::Kind::kProduce});
      }
      acted.push_back(v);
    }

    // Progress bookkeeping: completions, barriers, re-arming active tasks.
    for (const NodeId v : acted) {
      const auto idx = static_cast<std::size_t>(v);
      wake(v, now + 1);
      if (!complete[idx] && consumed[idx] >= profile[idx].total_consume &&
          produced[idx] >= profile[idx].total_produce) {
        complete[idx] = true;
        if (!graph.occupies_pe(v)) continue;
        --incomplete_pe_tasks;
        const auto block = static_cast<std::size_t>(schedule.partition.block_of[idx]);
        if (--block_pending[block] == 0 && next_block_to_release < blocks.size() &&
            block + 1 == next_block_to_release) {
          for (const NodeId w : blocks[next_block_to_release]) {
            release[static_cast<std::size_t>(w)] = now;
            wake(w, now + 1);
          }
          ++next_block_to_release;
        }
      }
    }
  }

  if (incomplete_pe_tasks > 0 && !result.tick_limit_reached) {
    result.deadlocked = true;
    for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
      if (graph.occupies_pe(v) && !complete[static_cast<std::size_t>(v)]) {
        result.stuck.push_back(v);
      }
    }
  }
  for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
    if (graph.occupies_pe(v)) {
      result.makespan = std::max(result.makespan, result.finish[static_cast<std::size_t>(v)]);
    }
  }
  return result;
}

}  // namespace sts
