#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/buffer_sizing.hpp"
#include "core/streaming_schedule.hpp"
#include "graph/task_graph.hpp"

namespace sts {

/// Which simulation engine executes the schedule.
enum class SimEngine : std::uint8_t {
  /// Bulk-advance unless a per-element trace was requested.
  kAuto,
  /// Event engine that detects periodic steady-state action patterns and
  /// advances whole runs of periods in O(1): cost scales with transients and
  /// completions instead of total stream volume. Produces results identical
  /// to the reference engine (proven by the differential fuzz suite).
  kBulkAdvance,
  /// The tick-accurate reference oracle: one consume/produce step per node
  /// per tick. Cost scales with total stream volume x node degree. Required
  /// (and automatically selected) when `record_trace` is set, since the
  /// trace is inherently per-element.
  kTickAccurate,
};

[[nodiscard]] const char* to_string(SimEngine engine) noexcept;

/// Options for the dataflow simulation.
struct SimOptions {
  /// Safety limit; a run exceeding it reports tick_limit_reached.
  std::int64_t max_ticks = 50'000'000;
  /// Record the full element-movement event trace (consume/produce steps).
  /// Forces the tick-accurate engine.
  bool record_trace = false;
  /// Engine selection; see SimEngine.
  SimEngine engine = SimEngine::kAuto;
  /// Execution lanes for the bulk-advance candidate-period prefilter
  /// (1 = serial, 0 = hardware threads, N = up to N lanes). A pure execution
  /// knob: results are bit-identical at every value, so it is excluded from
  /// cache_key().
  std::int64_t intra_threads = 1;

  /// Canonical text form of every result-affecting field, appended to
  /// schedule cache keys by requests that chain a simulation (sim set on
  /// ScheduleRequest) so simulated and plain results never collide.
  [[nodiscard]] std::string cache_key() const;
};

/// One element-movement step of the simulation trace.
struct SimEvent {
  enum class Kind : std::uint8_t { kConsume, kProduce };
  std::int64_t tick = 0;
  NodeId node = kInvalidNode;
  Kind kind = Kind::kConsume;
};

/// Outcome of simulating a streaming schedule.
struct SimResult {
  bool deadlocked = false;
  bool tick_limit_reached = false;
  /// Simulated makespan: last tick at which any PE task moved an element.
  std::int64_t makespan = 0;
  /// Per node: tick of its last element movement (the simulated LO).
  std::vector<std::int64_t> finish;
  /// Per node: tick of its first produced element (the simulated FO);
  /// 0 if the node never produced.
  std::vector<std::int64_t> first_out;
  /// Full event trace when SimOptions::record_trace is set (tick-ordered).
  std::vector<SimEvent> trace;
  /// Incomplete PE tasks when a deadlock was detected.
  std::vector<NodeId> stuck;
  std::int64_t ticks_executed = 0;
  /// Engine that actually ran (kAuto resolves to a concrete engine).
  SimEngine engine_used = SimEngine::kTickAccurate;
  /// Ticks stepped one-by-one (== ticks_executed for the reference engine;
  /// typically orders of magnitude smaller for bulk-advance).
  std::int64_t live_ticks = 0;
  /// Number of bulk period-jumps performed (bulk-advance engine only).
  std::int64_t bulk_jumps = 0;
};

/// Discrete-event simulation of a streaming schedule (paper Appendix B).
///
/// Model (mirrors the paper's simpy validation):
///  - Every task is a process moving one element per input edge and one per
///    output edge per unit of time, with constant internal space: a node may
///    only run ahead of its output by the inputs of the next output element
///    (downsamplers accumulate 1/R inputs, upsamplers emit R outputs per
///    input, buffers absorb everything).
///  - Streaming channels (same-block task-to-task edges) are finite FIFOs
///    with blocking-after-service semantics, sized by the BufferPlan.
///    Reads and writes in the same time unit see reads first, so a
///    capacity-1 FIFO sustains one element per unit.
///  - Edges to/from buffer nodes and across spatial blocks go through global
///    memory: unbounded, but consumers of a later block only start once the
///    previous block completed (gang-scheduled barriers).
///  - An element produced in time unit t is consumable from t+1 on; a node
///    may consume and produce in the same unit (pipelining), which matches
///    the ST/FO/LO recurrences of Section 5.1.
///
/// Deadlock (all incomplete tasks blocked) is detected and reported; with
/// buffer space from Equation 5 it must not occur on valid schedules.
///
/// Two engines are available (SimOptions::engine): the default bulk-advance
/// engine and the tick-accurate reference it is differentially verified
/// against. Both return identical results; bulk-advance is asymptotically
/// faster on long streams.
[[nodiscard]] SimResult simulate_streaming(const TaskGraph& graph,
                                           const StreamingSchedule& schedule,
                                           const BufferPlan& buffers, SimOptions options = {});

}  // namespace sts
