#pragma once

#include <cstdint>
#include <vector>

#include "core/buffer_sizing.hpp"
#include "core/streaming_schedule.hpp"
#include "graph/task_graph.hpp"

namespace sts {

/// Options for the dataflow simulation.
struct SimOptions {
  /// Safety limit; a run exceeding it reports tick_limit_reached.
  std::int64_t max_ticks = 50'000'000;
  /// Record the full element-movement event trace (consume/produce steps).
  bool record_trace = false;
};

/// One element-movement step of the simulation trace.
struct SimEvent {
  enum class Kind : std::uint8_t { kConsume, kProduce };
  std::int64_t tick = 0;
  NodeId node = kInvalidNode;
  Kind kind = Kind::kConsume;
};

/// Outcome of simulating a streaming schedule.
struct SimResult {
  bool deadlocked = false;
  bool tick_limit_reached = false;
  /// Simulated makespan: last tick at which any PE task moved an element.
  std::int64_t makespan = 0;
  /// Per node: tick of its last element movement (the simulated LO).
  std::vector<std::int64_t> finish;
  /// Per node: tick of its first produced element (the simulated FO);
  /// 0 if the node never produced.
  std::vector<std::int64_t> first_out;
  /// Full event trace when SimOptions::record_trace is set (tick-ordered).
  std::vector<SimEvent> trace;
  /// Incomplete PE tasks when a deadlock was detected.
  std::vector<NodeId> stuck;
  std::int64_t ticks_executed = 0;
};

/// Discrete-event simulation of a streaming schedule (paper Appendix B).
///
/// Model (mirrors the paper's simpy validation):
///  - Every task is a process moving one element per input edge and one per
///    output edge per unit of time, with constant internal space: a node may
///    only run ahead of its output by the inputs of the next output element
///    (downsamplers accumulate 1/R inputs, upsamplers emit R outputs per
///    input, buffers absorb everything).
///  - Streaming channels (same-block task-to-task edges) are finite FIFOs
///    with blocking-after-service semantics, sized by the BufferPlan.
///    Reads and writes in the same time unit see reads first, so a
///    capacity-1 FIFO sustains one element per unit.
///  - Edges to/from buffer nodes and across spatial blocks go through global
///    memory: unbounded, but consumers of a later block only start once the
///    previous block completed (gang-scheduled barriers).
///  - An element produced in time unit t is consumable from t+1 on; a node
///    may consume and produce in the same unit (pipelining), which matches
///    the ST/FO/LO recurrences of Section 5.1.
///
/// Deadlock (all incomplete tasks blocked) is detected and reported; with
/// buffer space from Equation 5 it must not occur on valid schedules.
[[nodiscard]] SimResult simulate_streaming(const TaskGraph& graph,
                                           const StreamingSchedule& schedule,
                                           const BufferPlan& buffers, SimOptions options = {});

}  // namespace sts
