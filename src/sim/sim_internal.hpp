#pragma once

// Shared machinery of the two simulation engines (tick-accurate reference and
// bulk-advance). Internal to src/sim; not part of the public API.

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/dataflow_sim.hpp"

namespace sts::sim_detail {

inline constexpr std::int64_t kUnbounded = -1;
inline constexpr std::int64_t kNeverReleased = std::numeric_limits<std::int64_t>::max();

/// Static per-task execution profile derived from the canonical node.
struct TaskProfile {
  std::int64_t total_consume = 0;  ///< I(v): consume steps (one per input edge each)
  std::int64_t total_produce = 0;  ///< O(v): produce steps (one per output edge each)
  // Production rate R = rate_num / rate_den (reduced). Output j needs
  // ceil(j * rate_den / rate_num) consume steps completed.
  std::int64_t rate_num = 1;
  std::int64_t rate_den = 1;
  bool is_buffer = false;
  bool is_sink = false;

  [[nodiscard]] std::int64_t consumes_needed(std::int64_t produce_step) const {
    if (is_buffer) return total_consume;
    if (total_consume == 0) return 0;  // source
    return (produce_step * rate_den + rate_num - 1) / rate_num;
  }

  /// Constant-space bound: inputs a task may ingest before emitting output
  /// `produced + 1` (it must not hoard elements of later outputs).
  [[nodiscard]] std::int64_t consume_cap(std::int64_t produced) const {
    if (is_buffer || total_produce == 0) return total_consume;
    if (produced >= total_produce) return total_consume;
    return std::min(total_consume, consumes_needed(produced + 1));
  }
};

/// Immutable simulation inputs shared by both engines: channel capacities,
/// task profiles, initial release times, and block bookkeeping.
struct SimSetup {
  std::vector<std::int64_t> capacity;       ///< per edge; kUnbounded for memory edges
  std::vector<TaskProfile> profile;         ///< per node
  std::vector<std::int64_t> release;        ///< per node; kNeverReleased for later blocks
  std::vector<std::int64_t> block_pending;  ///< incomplete PE tasks per block
  std::size_t incomplete_pe_tasks = 0;

  SimSetup(const TaskGraph& graph, const StreamingSchedule& schedule, const BufferPlan& buffers) {
    const std::size_t n = graph.node_count();
    capacity.assign(graph.edge_count(), kUnbounded);
    for (const ChannelPlan& plan : buffers.channels) {
      capacity[static_cast<std::size_t>(plan.edge)] = plan.capacity;
    }
    profile.assign(n, TaskProfile{});
    release.assign(n, 0);
    block_pending.assign(schedule.partition.blocks.size(), 0);
    const auto profiles = graph.profiles();
    for (NodeId v = 0; static_cast<std::size_t>(v) < n; ++v) {
      const auto idx = static_cast<std::size_t>(v);
      const NodeKind kind = graph.kind(v);
      TaskProfile& p = profile[idx];
      p.total_consume = profiles[idx].in_volume;
      p.total_produce = kind == NodeKind::kSink ? 0 : profiles[idx].out_volume;
      p.is_buffer = kind == NodeKind::kBuffer;
      p.is_sink = kind == NodeKind::kSink;
      if (kind == NodeKind::kCompute && p.total_consume > 0 && p.total_produce > 0) {
        p.rate_num = profiles[idx].rate_num;
        p.rate_den = profiles[idx].rate_den;
      }
      if (graph.occupies_pe(v)) {
        ++incomplete_pe_tasks;
        const auto block = schedule.partition.block_of[idx];
        if (block < 0) throw std::invalid_argument("simulate_streaming: PE node without block");
        ++block_pending[static_cast<std::size_t>(block)];
        release[idx] = block == 0 ? 0 : kNeverReleased;
      } else {
        release[idx] = 0;  // buffers are passive memory, always live
      }
    }
  }
};

[[nodiscard]] SimResult simulate_tick_accurate(const TaskGraph& graph,
                                               const StreamingSchedule& schedule,
                                               const BufferPlan& buffers,
                                               const SimOptions& options);

[[nodiscard]] SimResult simulate_bulk_advance(const TaskGraph& graph,
                                              const StreamingSchedule& schedule,
                                              const BufferPlan& buffers,
                                              const SimOptions& options);

}  // namespace sts::sim_detail
