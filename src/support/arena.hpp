#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace sts {

/// Bump allocator over geometrically growing heap blocks.
///
/// The scheduler hot paths (partitioning argmin scans, level-wave scratch,
/// per-block streaming contexts) need O(n) scratch arrays per request but
/// must not pay one heap allocation per node or per loop iteration. An Arena
/// hands out pointer-bump slices from a small number of large blocks —
/// O(log total_bytes) heap allocations for any request — and `reset()`
/// rewinds to empty while keeping the blocks for reuse.
///
/// Allocations are never individually freed, so only trivially destructible
/// element types are allowed (enforced by alloc_array). Memory is returned
/// uninitialized.
///
/// Observability: every block the arena takes from the heap is reported to
/// the process-wide heap hook (see set_heap_hook). Benches install a
/// counting hook to assert that scheduling a request costs O(1)-ish arena
/// heap blocks instead of per-node allocations.
class Arena {
 public:
  /// Called for every heap block an arena allocates, with the block size in
  /// bytes. Must be async-signal-like: no locks, no allocation.
  using HeapHook = void (*)(std::size_t bytes) noexcept;

  static void set_heap_hook(HeapHook hook) noexcept {
    heap_hook_slot().store(hook, std::memory_order_release);
  }

  explicit Arena(std::size_t first_block_bytes = std::size_t{1} << 16)
      : next_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw bump allocation; alignment must be a power of two.
  [[nodiscard]] void* alloc(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    for (;;) {
      if (block_index_ < blocks_.size()) {
        Block& block = blocks_[block_index_];
        const auto base = reinterpret_cast<std::uintptr_t>(block.data.get());
        const std::uintptr_t aligned = (base + offset_ + (align - 1)) & ~(align - 1);
        const std::size_t needed = (aligned - base) + bytes;
        if (needed <= block.size) {
          offset_ = needed;
          return reinterpret_cast<void*>(aligned);
        }
        // Block exhausted: move on (a later reused block may fit).
        ++block_index_;
        offset_ = 0;
        continue;
      }
      grow(bytes + align);
    }
  }

  /// `count` uninitialized elements of a trivially destructible type.
  template <typename T>
  [[nodiscard]] std::span<T> alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors: element type must be trivially destructible");
    return {static_cast<T*>(alloc(count * sizeof(T), alignof(T))), count};
  }

  /// `count` value-initialized elements.
  template <typename T>
  [[nodiscard]] std::span<T> alloc_zeroed(std::size_t count) {
    std::span<T> out = alloc_array<T>(count);
    for (T& slot : out) slot = T{};
    return out;
  }

  /// Rewinds to empty; keeps every block for reuse (no heap traffic).
  void reset() noexcept {
    block_index_ = 0;
    offset_ = 0;
  }

  [[nodiscard]] std::size_t heap_blocks() const noexcept { return blocks_.size(); }
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static std::atomic<HeapHook>& heap_hook_slot() noexcept {
    static std::atomic<HeapHook> hook{nullptr};
    return hook;
  }

  void grow(std::size_t at_least) {
    std::size_t size = next_block_bytes_;
    while (size < at_least) size *= 2;
    next_block_bytes_ = size * 2;  // geometric growth keeps block count O(log)
    if (const HeapHook hook = heap_hook_slot().load(std::memory_order_acquire)) hook(size);
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    block_index_ = blocks_.size() - 1;
    offset_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t block_index_ = 0;  ///< block currently bumped into
  std::size_t offset_ = 0;       ///< bytes used in that block
  std::size_t next_block_bytes_;
};

}  // namespace sts
