#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace sts {

namespace {

[[noreturn]] void fail_kind(const char* expected, JsonValue::Kind got) {
  const char* name = "?";
  switch (got) {
    case JsonValue::Kind::kNull: name = "null"; break;
    case JsonValue::Kind::kBool: name = "bool"; break;
    case JsonValue::Kind::kNumber: name = "number"; break;
    case JsonValue::Kind::kString: name = "string"; break;
    case JsonValue::Kind::kArray: name = "array"; break;
    case JsonValue::Kind::kObject: name = "object"; break;
  }
  throw std::invalid_argument(std::string("json: expected ") + expected + ", got " + name);
}

/// Recursive-descent parser over a string_view with offset-annotated errors.
class Parser {
 public:
  Parser(std::string_view text, const JsonLimits& limits) : text_(text), limits_(limits) {}

  JsonValue parse_document() {
    if (limits_.max_bytes > 0 && text_.size() > limits_.max_bytes) {
      throw std::invalid_argument("json: input of " + std::to_string(text_.size()) +
                                  " bytes exceeds the " + std::to_string(limits_.max_bytes) +
                                  "-byte limit");
    }
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > limits_.max_depth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    std::vector<JsonValue::Member> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      for (const JsonValue::Member& m : members) {
        if (m.first == key) fail("duplicate object key '" + key + "'");
      }
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array(int depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape");
      }
    }
  }

  /// \uXXXX escapes, UTF-8 encoded. Surrogate pairs are handled; a lone
  /// surrogate is rejected (the envelope never needs one).
  std::string parse_unicode_escape() {
    const auto hex4 = [this]() -> std::uint32_t {
      if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
      std::uint32_t value = 0;
      for (int i = 0; i < 4; ++i) {
        const char c = text_[pos_++];
        value <<= 4;
        if (c >= '0' && c <= '9') {
          value |= static_cast<std::uint32_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          value |= static_cast<std::uint32_t>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          value |= static_cast<std::uint32_t>(c - 'A' + 10);
        } else {
          fail("invalid \\u escape");
        }
      }
      return value;
    };
    std::uint32_t code = hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (!consume_literal("\\u")) fail("unpaired surrogate");
      const std::uint32_t low = hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    // Strict RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // — no leading zeros, no bare '.5' / trailing '1.', nothing from_chars
    // would otherwise tolerate. The envelope promises that malformed input
    // never silently parses as a different scenario.
    const std::size_t start = pos_;
    const auto digit = [this] {
      return pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9';
    };
    const auto digits1 = [&] {  // one-or-more digits
      if (!digit()) fail("invalid number");
      while (digit()) ++pos_;
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit()) fail("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;
      if (digit()) fail("leading zero in number");
    } else {
      while (digit()) ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      digits1();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      digits1();
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t value = 0;
      const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && end == token.data() + token.size()) {
        return JsonValue::make_int(value);
      }
      // Integer literal out of int64 range: fall through to double.
    }
    double value = 0.0;
    const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || end != token.data() + token.size() || !std::isfinite(value)) {
      fail("invalid number");
    }
    return JsonValue::make_double(value);
  }

  std::string_view text_;
  JsonLimits limits_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::make_bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::make_int(std::int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.integral_ = true;
  v.int_ = value;
  v.double_ = static_cast<double>(value);
  return v;
}

JsonValue JsonValue::make_double(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.integral_ = false;
  v.double_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::vector<Member> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) fail_kind("bool", kind_);
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  if (kind_ != Kind::kNumber) fail_kind("number", kind_);
  if (!integral_) throw std::invalid_argument("json: expected integer, got fraction");
  return int_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) fail_kind("number", kind_);
  return integral_ ? static_cast<double>(int_) : double_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) fail_kind("string", kind_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) fail_kind("array", kind_);
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (kind_ != Kind::kObject) fail_kind("object", kind_);
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const Member& m : members()) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (const JsonValue* value = find(key)) return *value;
  throw std::invalid_argument("json: missing member '" + std::string(key) + "'");
}

JsonValue parse_json(std::string_view text) { return Parser(text, JsonLimits{}).parse_document(); }

JsonValue parse_json(std::string_view text, const JsonLimits& limits) {
  return Parser(text, limits).parse_document();
}

void reject_unknown_members(const JsonValue& object,
                            std::initializer_list<std::string_view> allowed,
                            const char* context, const char* what) {
  for (const JsonValue::Member& m : object.members()) {
    bool known = false;
    for (const std::string_view key : allowed) known = known || m.first == key;
    if (!known) {
      throw std::invalid_argument(std::string(context) + ": unknown " + what + " member '" +
                                  m.first + "'");
    }
  }
}

void append_json_quoted(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace sts
