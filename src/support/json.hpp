#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sts {

/// Minimal immutable JSON document model for the serving envelope
/// (service/request.hpp) and tooling that validates emitted stats records.
/// Parsed by `parse_json`; every accessor throws std::invalid_argument on a
/// kind mismatch, so envelope readers get typed "malformed request" errors
/// instead of silent coercions.
///
/// Numbers keep their exact integral value when the literal is an integer in
/// int64 range (no '.', no exponent): graph volumes are int64 and must
/// round-trip bit-exactly, which a double-only model cannot guarantee above
/// 2^53. Object member order is preserved (vector of pairs, not a map);
/// duplicate keys are rejected at parse time.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  [[nodiscard]] static JsonValue make_null() { return JsonValue(); }
  [[nodiscard]] static JsonValue make_bool(bool value);
  [[nodiscard]] static JsonValue make_int(std::int64_t value);
  [[nodiscard]] static JsonValue make_double(double value);
  [[nodiscard]] static JsonValue make_string(std::string value);
  [[nodiscard]] static JsonValue make_array(std::vector<JsonValue> items);
  [[nodiscard]] static JsonValue make_object(std::vector<Member> members);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }

  /// Typed accessors; throw std::invalid_argument naming the expected kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;  ///< also rejects non-integral numbers
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;   ///< array elements
  [[nodiscard]] const std::vector<Member>& members() const;    ///< object members

  /// Object member lookup; nullptr when absent. Throws if not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Like find, but a missing member throws std::invalid_argument naming it.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool integral_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Resource bounds for parsing untrusted input (network bodies). Both
/// limits fail fast with std::invalid_argument — the same typed parse error
/// malformed input gets — instead of risking stack exhaustion (depth) or
/// unbounded allocation (size). The defaults match the classic trusted-path
/// behavior: depth 64, no size cap.
struct JsonLimits {
  /// Maximum container nesting depth; a scalar document has depth 0. The
  /// recursive-descent parser burns one stack frame per level, so this is
  /// the stack-exhaustion bound.
  int max_depth = 64;

  /// Maximum input size in bytes; 0 = unlimited. Checked before the first
  /// byte is parsed, so an oversized body is rejected in O(1).
  std::size_t max_bytes = 0;
};

/// Strict recursive-descent parse of one JSON document. Throws
/// std::invalid_argument (with the byte offset) on malformed input,
/// trailing garbage, duplicate object keys, or nesting deeper than 64
/// levels. Accepts the RFC 8259 grammar; no extensions (comments, NaN,
/// trailing commas).
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// parse_json with explicit resource bounds — the untrusted-input entry
/// point (StsServer request bodies, RemoteBackend response bodies).
[[nodiscard]] JsonValue parse_json(std::string_view text, const JsonLimits& limits);

/// Appends `text` JSON-escaped (quotes, backslash, control characters)
/// between double quotes.
void append_json_quoted(std::string& out, std::string_view text);

/// Strict-envelope helper: throws std::invalid_argument
/// ("<context>: unknown <what> member '<name>'") for any member of `object`
/// outside `allowed` — a typo must not silently change a scenario.
void reject_unknown_members(const JsonValue& object,
                            std::initializer_list<std::string_view> allowed,
                            const char* context, const char* what);

}  // namespace sts
