#include "support/parallel.hpp"

#include <algorithm>

namespace sts {
namespace {

/// Set on pool threads so nested Parallel regions run inline instead of
/// trying to re-enter the (single-slot) pool.
thread_local bool t_on_worker_thread = false;

int default_worker_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  const int extra = hw > 1 ? static_cast<int>(hw) - 1 : 1;
  // At least one worker even on single-core machines (the parallel code
  // paths must be exercised everywhere); capped so a big host doesn't spawn
  // threads no scheduling loop can feed.
  return std::clamp(extra, 1, 15);
}

}  // namespace

TaskPool& TaskPool::global() {
  static TaskPool* pool = new TaskPool();  // leaked: workers outlive main()
  return *pool;
}

TaskPool::TaskPool() {
  const int count = default_worker_count();
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_main(); });
    workers_.back().detach();
  }
}

bool TaskPool::on_worker_thread() noexcept { return t_on_worker_thread; }

void TaskPool::work_on(Job& job) noexcept {
  for (;;) {
    const int chunk = job.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.chunks) return;
    job.fn(job.ctx, chunk);
    job.done.fetch_add(1, std::memory_order_release);
  }
}

void TaskPool::worker_main() {
  t_on_worker_thread = true;
  std::uint64_t seen_generation = generation_.load(std::memory_order_acquire);
  for (;;) {
    // Spin briefly for the next region, then park on the condition variable.
    bool woke = false;
    for (int spin = 0; spin < 512; ++spin) {
      if (generation_.load(std::memory_order_acquire) != seen_generation) {
        woke = true;
        break;
      }
      if ((spin & 63) == 63) std::this_thread::yield();
    }
    if (!woke) {
      const MutexLock lock(mutex_);
      while (generation_.load(std::memory_order_acquire) == seen_generation) {
        cv_.wait(mutex_);
      }
    }
    seen_generation = generation_.load(std::memory_order_acquire);

    // Lifetime protocol: announce participation BEFORE loading the job
    // pointer. try_run waits for active_ == 0 after clearing job_, so the
    // Job (which lives on the caller's stack) cannot be destroyed while any
    // worker still holds a pointer to it. The fetch_add and the job_ load
    // must be seq_cst, paired with the seq_cst null-store + active_ check in
    // try_run: the single total order guarantees a worker that checked in
    // after the caller observed active_ == 0 reads job_ as null rather than
    // a dangling pointer.
    active_.fetch_add(1);
    if (Job* job = job_.load()) work_on(*job);
    active_.fetch_sub(1, std::memory_order_release);
  }
}

bool TaskPool::try_run(int chunks, ChunkFn fn, void* ctx) {
  if (busy_.exchange(true, std::memory_order_acquire)) return false;

  Job job;
  job.fn = fn;
  job.ctx = ctx;
  job.chunks = chunks;

  job_.store(&job);  // seq_cst: see the lifetime-protocol comment in worker_main
  {
    // The generation bump must be visible to a worker the moment it wakes
    // from cv_.wait, hence under the same mutex.
    const MutexLock lock(mutex_);
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }
  cv_.notify_all();

  // The caller is a full participant — with no free workers the region still
  // completes (serially, on this thread).
  work_on(job);
  while (job.done.load(std::memory_order_acquire) < chunks) std::this_thread::yield();

  // Tear down in order: unpublish the job, then wait for every worker that
  // may have loaded its address to leave before the stack frame dies (both
  // seq_cst, pairing with worker_main's check-in).
  job_.store(nullptr);
  while (active_.load() != 0) std::this_thread::yield();
  busy_.store(false, std::memory_order_release);
  return true;
}

Parallel::Parallel(std::int64_t intra_threads) noexcept {
  const int max_lanes = TaskPool::global().worker_count() + 1;  // workers + caller
  if (intra_threads == 1) {
    lanes_ = 1;
  } else if (intra_threads <= 0) {
    lanes_ = max_lanes;
  } else {
    lanes_ = static_cast<int>(std::min<std::int64_t>(intra_threads, max_lanes));
  }
}

}  // namespace sts
