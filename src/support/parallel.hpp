#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "support/thread_annotations.hpp"

namespace sts {

/// Process-wide fixed worker pool for fork-join task parallelism.
///
/// One pool serves every parallel region in the process (the same leaked-
/// singleton pattern as ScheduleCache::global). Workers spin briefly waiting
/// for a region before parking on a condition variable, so the per-region
/// fork-join latency stays in the microseconds — small enough to fan out the
/// per-iteration argmin scans of the partitioner.
///
/// One region runs at a time: a second concurrent begin() (another service
/// worker, or a nested parallel_for) is refused and the caller runs its
/// chunks inline. That keeps the pool deadlock-free by construction — a
/// worker can never block on a region that needs the worker itself.
class TaskPool {
 public:
  /// Chunk trampoline; must not throw (Parallel catches inside it).
  using ChunkFn = void (*)(void* ctx, int chunk) noexcept;

  [[nodiscard]] static TaskPool& global();

  /// Worker threads (excluding the caller). At least 1 even on single-core
  /// machines so the parallel machinery is genuinely exercised everywhere.
  [[nodiscard]] int worker_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Runs fn(ctx, c) for every c in [0, chunks), caller participating, and
  /// returns true once all chunks finished. Returns false without running
  /// anything when another region is already in flight (including a region
  /// on this thread: run the chunks inline instead).
  bool try_run(int chunks, ChunkFn fn, void* ctx) EXCLUDES(mutex_);

  /// True on pool worker threads (nested regions must run inline).
  [[nodiscard]] static bool on_worker_thread() noexcept;

 private:
  struct Job {
    ChunkFn fn = nullptr;
    void* ctx = nullptr;
    int chunks = 0;
    std::atomic<int> next{0};  ///< next unclaimed chunk
    std::atomic<int> done{0};  ///< chunks fully executed
  };

  TaskPool();
  void worker_main() EXCLUDES(mutex_);
  static void work_on(Job& job) noexcept;

  std::vector<std::thread> workers_;
  std::atomic<bool> busy_{false};     ///< a region is in flight
  std::atomic<Job*> job_{nullptr};    ///< current region, null between regions
  std::atomic<int> active_{0};        ///< workers currently inside a region
  /// Region sequence number. Deliberately NOT GUARDED_BY(mutex_): the worker
  /// spin loop reads it lock-free; the mutex only makes the try_run bump
  /// visible to a worker the instant it wakes from cv_.wait.
  std::atomic<std::uint64_t> generation_{0};
  Mutex mutex_;  ///< parks idle workers
  CondVar cv_;
};

/// Execution-lane handle for one scheduling request, resolved from the
/// `intra_threads` knob: 1 = serial (the default everywhere), 0 = one lane
/// per hardware thread, N = up to N lanes (clamped to the pool size).
///
/// Determinism contract: for_range partitions [0, n) into contiguous chunks
/// whose boundaries depend only on (n, grain, lanes); map_reduce combines
/// per-chunk accumulators in ascending chunk order on the calling thread.
/// Callers that write disjoint ranges, or reduce with an associative
/// operation under a strict total order (argmin/argmax with a unique
/// tie-break, max of independent values), therefore produce results
/// bit-identical to the serial path at every lane count.
class Parallel {
 public:
  Parallel() noexcept : lanes_(1) {}
  explicit Parallel(std::int64_t intra_threads) noexcept;

  [[nodiscard]] int lanes() const noexcept { return lanes_; }
  [[nodiscard]] bool serial() const noexcept { return lanes_ <= 1; }

  /// fn(begin, end) over contiguous chunks of [0, n), each at least `grain`
  /// long (one chunk, run inline, when n < 2 * grain or lanes() == 1).
  template <typename Fn>
  void for_range(std::int64_t n, std::int64_t grain, Fn&& fn) const {
    if (n <= 0) return;
    const int chunks = chunk_count(n, grain);
    if (chunks <= 1) {
      fn(std::int64_t{0}, n);
      return;
    }
    auto body = [&](int c) {
      fn(n * c / chunks, n * (c + 1) / chunks);
    };
    run_chunks(chunks, body);
  }

  /// Deterministic chunked reduction: each chunk folds its range into an
  /// accumulator seeded with `init` via map(begin, end, acc); the chunk
  /// accumulators are then combined in ascending chunk order with
  /// combine(into, from) on the calling thread.
  template <typename T, typename MapFn, typename CombineFn>
  [[nodiscard]] T map_reduce(std::int64_t n, std::int64_t grain, T init, MapFn&& map,
                             CombineFn&& combine) const {
    if (n <= 0) return init;
    const int chunks = chunk_count(n, grain);
    if (chunks <= 1) {
      T acc = init;
      map(std::int64_t{0}, n, acc);
      return acc;
    }
    std::vector<T> accs(static_cast<std::size_t>(chunks), init);
    auto body = [&](int c) {
      map(n * c / chunks, n * (c + 1) / chunks, accs[static_cast<std::size_t>(c)]);
    };
    run_chunks(chunks, body);
    T result = std::move(accs[0]);
    for (int c = 1; c < chunks; ++c) combine(result, accs[static_cast<std::size_t>(c)]);
    return result;
  }

 private:
  [[nodiscard]] int chunk_count(std::int64_t n, std::int64_t grain) const noexcept {
    if (lanes_ <= 1) return 1;
    if (grain < 1) grain = 1;
    const std::int64_t by_grain = n / grain;
    const std::int64_t chunks = by_grain < lanes_ ? by_grain : std::int64_t{lanes_};
    return chunks < 1 ? 1 : static_cast<int>(chunks);
  }

  /// Dispatches chunk bodies to the pool; falls back to an inline serial
  /// sweep when the pool is busy or this is a nested region. Rethrows the
  /// first chunk exception after all chunks settle.
  template <typename Body>
  void run_chunks(int chunks, Body& body) const {
    struct Trampoline {
      Body* body = nullptr;
      Mutex error_mutex{};
      std::exception_ptr error GUARDED_BY(error_mutex) = nullptr;
      std::atomic<bool> failed{false};
      static void call(void* self_erased, int chunk) noexcept {
        auto* self = static_cast<Trampoline*>(self_erased);
        if (self->failed.load(std::memory_order_acquire)) return;  // drain fast
        try {
          (*self->body)(chunk);
        } catch (...) {
          const MutexLock lock(self->error_mutex);
          if (!self->error) self->error = std::current_exception();
          self->failed.store(true, std::memory_order_release);
        }
      }
    };
    Trampoline trampoline{&body};
    if (TaskPool::on_worker_thread() ||
        !TaskPool::global().try_run(chunks, &Trampoline::call, &trampoline)) {
      for (int c = 0; c < chunks; ++c) Trampoline::call(&trampoline, c);
    }
    std::exception_ptr error;
    {
      const MutexLock lock(trampoline.error_mutex);
      error = trampoline.error;
    }
    if (error) std::rethrow_exception(error);
  }

  int lanes_;
};

}  // namespace sts
