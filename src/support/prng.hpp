#pragma once

#include <cstdint>
#include <limits>

namespace sts {

/// xoshiro256** — a small, fast, high-quality PRNG with an explicit,
/// platform-independent state.  Used instead of std::mt19937 so that every
/// workload generator is reproducible bit-for-bit across standard libraries
/// (libstdc++ / libc++ distribution implementations differ).
///
/// Satisfies UniformRandomBitGenerator.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Prng(std::uint64_t seed) noexcept {
    // SplitMix64 seeding, recommended initialisation for xoshiro.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Uses Lemire-style rejection-free
  /// multiply-shift; bias is negligible for the ranges used here (<= 2^32).
  [[nodiscard]] constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    const auto r = (*this)();
    return lo + static_cast<std::int64_t>(
                    static_cast<std::uint64_t>((static_cast<unsigned __int128>(r) * span) >> 64));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace sts
