#pragma once

#include <cstdint>
#include <limits>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>

namespace sts {

namespace detail {

// Intermediates of rational arithmetic (cross-products, un-reduced sums)
// exceed 64 bits long before the canonical results do: deep-chain interval
// products over volumes up to 2^20 produce comparisons whose cross-products
// pass 2^63. All intermediates therefore run in 128-bit and are range-checked
// on the way back to the 64-bit representation. __int128 is not std::integral
// under -std=c++20 (no GNU extensions), so gcd is hand-rolled.
using Int128 = __int128;

constexpr Int128 abs128(Int128 x) noexcept { return x < 0 ? -x : x; }

constexpr Int128 gcd128(Int128 a, Int128 b) noexcept {
  a = abs128(a);
  b = abs128(b);
  while (b != 0) {
    const Int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace detail

/// Exact rational arithmetic over 64-bit integers.
///
/// Streaming intervals (Theorem 4.1) are ratios of data volumes and are not
/// integers in general; schedule times, however, must be exact integers
/// (clock cycles).  Rational keeps the analysis exact and provides the
/// ceiling operations the schedule recurrences of Section 5.1 need.
///
/// Arithmetic and comparisons evaluate intermediates in 128-bit: comparisons
/// are always exact, and +,-,*,/ reduce in 128-bit and throw
/// std::overflow_error only when the *canonical* result no longer fits in
/// int64 (silent wraparound is never possible).
///
/// Invariants: den > 0 and gcd(|num|, den) == 1 (canonical form).
class Rational {
 public:
  constexpr Rational() noexcept : num_(0), den_(1) {}
  constexpr Rational(std::int64_t value) noexcept : num_(value), den_(1) {}  // NOLINT(google-explicit-constructor)

  /// Constructs num/den in canonical form. Throws on zero denominator, and
  /// std::overflow_error when canonicalization cannot represent the value
  /// (only possible for INT64_MIN inputs whose negation leaves int64).
  constexpr Rational(std::int64_t num, std::int64_t den) : num_(0), den_(1) {
    *this = from_int128(num, den);
  }

  [[nodiscard]] constexpr std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const noexcept { return den_; }

  [[nodiscard]] constexpr bool is_integer() const noexcept { return den_ == 1; }

  /// Largest integer <= this.
  [[nodiscard]] constexpr std::int64_t floor() const noexcept {
    if (num_ >= 0) return num_ / den_;
    // 128-bit negation: num_ == INT64_MIN is representable, -num_ is not.
    const detail::Int128 n = num_;
    return static_cast<std::int64_t>(-((-n + den_ - 1) / den_));
  }

  /// Smallest integer >= this.
  [[nodiscard]] constexpr std::int64_t ceil() const noexcept {
    // 128-bit throughout: num_ + den_ - 1 can pass 2^63 for num_ near the
    // top of the range, and -num_ is unrepresentable for INT64_MIN.
    const detail::Int128 n = num_;
    if (num_ >= 0) return static_cast<std::int64_t>((n + den_ - 1) / den_);
    return static_cast<std::int64_t>(-((-n) / den_));
  }

  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  [[nodiscard]] constexpr Rational reciprocal() const {
    if (num_ == 0) throw std::domain_error("Rational: reciprocal of zero");
    // 128-bit: num_ == INT64_MIN would otherwise negate with UB, and its
    // reciprocal's denominator 2^63 is genuinely unrepresentable (throws).
    return from_int128(den_, num_);
  }

  friend constexpr Rational operator+(const Rational& a, const Rational& b) {
    // Cross-reduce to limit intermediate magnitude, then finish in 128-bit:
    // the un-reduced sum can pass 2^63 even when the canonical result fits.
    const std::int64_t g = std::gcd(a.den_, b.den_);
    const std::int64_t bd = b.den_ / g;
    return from_int128(detail::Int128(a.num_) * bd + detail::Int128(b.num_) * (a.den_ / g),
                       detail::Int128(a.den_) * bd);
  }
  friend constexpr Rational operator-(const Rational& a, const Rational& b) {
    const std::int64_t g = std::gcd(a.den_, b.den_);
    const std::int64_t bd = b.den_ / g;
    return from_int128(detail::Int128(a.num_) * bd - detail::Int128(b.num_) * (a.den_ / g),
                       detail::Int128(a.den_) * bd);
  }
  friend constexpr Rational operator*(const Rational& a, const Rational& b) {
    // gcd128: taking |num| in int64 is UB for INT64_MIN.
    const auto g1 = static_cast<std::int64_t>(detail::gcd128(a.num_, b.den_));
    const auto g2 = static_cast<std::int64_t>(detail::gcd128(b.num_, a.den_));
    return from_int128((detail::Int128(a.num_) / g1) * (b.num_ / g2),
                       detail::Int128(a.den_ / g2) * (b.den_ / g1));
  }
  friend constexpr Rational operator/(const Rational& a, const Rational& b) {
    if (b.num_ == 0) throw std::domain_error("Rational: division by zero");
    return a * b.reciprocal();
  }
  constexpr Rational operator-() const {
    // Throws only for num_ == INT64_MIN, whose negation leaves int64.
    return from_int128(-detail::Int128(num_), detail::Int128(den_));
  }

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend constexpr bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend constexpr bool operator!=(const Rational& a, const Rational& b) noexcept {
    return !(a == b);
  }
  friend constexpr bool operator<(const Rational& a, const Rational& b) noexcept {
    // 128-bit cross-products: the int64 products silently overflow for
    // operands built from deep-chain interval products (e.g. volumes up to
    // 2^20 compounded along a pipeline), flipping comparison results.
    return detail::Int128(a.num_) * b.den_ < detail::Int128(b.num_) * a.den_;
  }
  friend constexpr bool operator<=(const Rational& a, const Rational& b) noexcept {
    return detail::Int128(a.num_) * b.den_ <= detail::Int128(b.num_) * a.den_;
  }
  friend constexpr bool operator>(const Rational& a, const Rational& b) noexcept { return b < a; }
  friend constexpr bool operator>=(const Rational& a, const Rational& b) noexcept { return b <= a; }

  [[nodiscard]] std::string to_string() const {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }

  friend std::ostream& operator<<(std::ostream& os, const Rational& r) {
    return os << r.to_string();
  }

 private:
  /// Canonicalizes a 128-bit num/den pair and narrows it to the 64-bit
  /// representation; throws std::overflow_error when the reduced result does
  /// not fit (the closest exact analogue of arbitrary precision without
  /// dragging in a bignum dependency).
  static constexpr Rational from_int128(detail::Int128 num, detail::Int128 den) {
    if (den == 0) throw std::invalid_argument("Rational: zero denominator");
    if (den < 0) {
      num = -num;
      den = -den;
    }
    const detail::Int128 g = detail::gcd128(num, den);
    if (g > 1) {
      num /= g;
      den /= g;
    }
    constexpr detail::Int128 kMax = std::numeric_limits<std::int64_t>::max();
    constexpr detail::Int128 kMin = std::numeric_limits<std::int64_t>::min();
    if (num > kMax || num < kMin || den > kMax) {
      throw std::overflow_error("Rational: result exceeds 64-bit range");
    }
    Rational r;
    r.num_ = static_cast<std::int64_t>(num);
    r.den_ = static_cast<std::int64_t>(den);
    return r;
  }

  std::int64_t num_;
  std::int64_t den_;
};

/// ceil(a * b) for an integer scale and a rational interval; the common
/// operation in the ST/FO/LO recurrences, e.g. ceil((O(v)-1) * S_o(v)).
[[nodiscard]] constexpr std::int64_t ceil_mul(std::int64_t scale, const Rational& r) {
  return (Rational(scale) * r).ceil();
}

}  // namespace sts
