#pragma once

#include <cstdint>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>

namespace sts {

/// Exact rational arithmetic over 64-bit integers.
///
/// Streaming intervals (Theorem 4.1) are ratios of data volumes and are not
/// integers in general; schedule times, however, must be exact integers
/// (clock cycles).  Rational keeps the analysis exact and provides the
/// ceiling operations the schedule recurrences of Section 5.1 need.
///
/// Invariants: den > 0 and gcd(|num|, den) == 1 (canonical form).
class Rational {
 public:
  constexpr Rational() noexcept : num_(0), den_(1) {}
  constexpr Rational(std::int64_t value) noexcept : num_(value), den_(1) {}  // NOLINT(google-explicit-constructor)

  /// Constructs num/den in canonical form. Throws on zero denominator.
  constexpr Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
    if (den_ == 0) throw std::invalid_argument("Rational: zero denominator");
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
  }

  [[nodiscard]] constexpr std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const noexcept { return den_; }

  [[nodiscard]] constexpr bool is_integer() const noexcept { return den_ == 1; }

  /// Largest integer <= this.
  [[nodiscard]] constexpr std::int64_t floor() const noexcept {
    if (num_ >= 0) return num_ / den_;
    return -((-num_ + den_ - 1) / den_);
  }

  /// Smallest integer >= this.
  [[nodiscard]] constexpr std::int64_t ceil() const noexcept {
    if (num_ >= 0) return (num_ + den_ - 1) / den_;
    return -((-num_) / den_);
  }

  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  [[nodiscard]] constexpr Rational reciprocal() const {
    if (num_ == 0) throw std::domain_error("Rational: reciprocal of zero");
    return Rational(den_, num_);
  }

  friend constexpr Rational operator+(const Rational& a, const Rational& b) {
    // Cross-reduce to limit intermediate magnitude.
    const std::int64_t g = std::gcd(a.den_, b.den_);
    const std::int64_t bd = b.den_ / g;
    return Rational(a.num_ * bd + b.num_ * (a.den_ / g), a.den_ * bd);
  }
  friend constexpr Rational operator-(const Rational& a, const Rational& b) {
    const std::int64_t g = std::gcd(a.den_, b.den_);
    const std::int64_t bd = b.den_ / g;
    return Rational(a.num_ * bd - b.num_ * (a.den_ / g), a.den_ * bd);
  }
  friend constexpr Rational operator*(const Rational& a, const Rational& b) {
    const std::int64_t g1 = std::gcd(a.num_ < 0 ? -a.num_ : a.num_, b.den_);
    const std::int64_t g2 = std::gcd(b.num_ < 0 ? -b.num_ : b.num_, a.den_);
    return Rational((a.num_ / g1) * (b.num_ / g2), (a.den_ / g2) * (b.den_ / g1));
  }
  friend constexpr Rational operator/(const Rational& a, const Rational& b) {
    if (b.num_ == 0) throw std::domain_error("Rational: division by zero");
    return a * b.reciprocal();
  }
  constexpr Rational operator-() const noexcept {
    Rational r;
    r.num_ = -num_;
    r.den_ = den_;
    return r;
  }

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend constexpr bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend constexpr bool operator!=(const Rational& a, const Rational& b) noexcept {
    return !(a == b);
  }
  friend constexpr bool operator<(const Rational& a, const Rational& b) noexcept {
    return a.num_ * b.den_ < b.num_ * a.den_;
  }
  friend constexpr bool operator<=(const Rational& a, const Rational& b) noexcept {
    return a.num_ * b.den_ <= b.num_ * a.den_;
  }
  friend constexpr bool operator>(const Rational& a, const Rational& b) noexcept { return b < a; }
  friend constexpr bool operator>=(const Rational& a, const Rational& b) noexcept { return b <= a; }

  [[nodiscard]] std::string to_string() const {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }

  friend std::ostream& operator<<(std::ostream& os, const Rational& r) {
    return os << r.to_string();
  }

 private:
  std::int64_t num_;
  std::int64_t den_;
};

/// ceil(a * b) for an integer scale and a rational interval; the common
/// operation in the ST/FO/LO recurrences, e.g. ceil((O(v)-1) * S_o(v)).
[[nodiscard]] constexpr std::int64_t ceil_mul(std::int64_t scale, const Rational& r) {
  return (Rational(scale) * r).ceil();
}

}  // namespace sts
