#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace sts {

namespace {

// Type-7 quantile on a sorted vector.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

std::string BoxStats::summary(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << median << " [" << q1 << ", " << q3 << "]";
  return os.str();
}

BoxStats box_stats(std::vector<double> samples) {
  BoxStats s;
  s.n = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.mean = mean_of(samples);
  s.q1 = sorted_quantile(samples, 0.25);
  s.median = sorted_quantile(samples, 0.50);
  s.q3 = sorted_quantile(samples, 0.75);
  const double iqr = s.q3 - s.q1;
  const double lo_fence = s.q1 - 1.5 * iqr;
  const double hi_fence = s.q3 + 1.5 * iqr;
  s.whisker_lo = s.max;
  s.whisker_hi = s.min;
  for (const double x : samples) {
    if (x >= lo_fence && x <= hi_fence) {
      s.whisker_lo = std::min(s.whisker_lo, x);
      s.whisker_hi = std::max(s.whisker_hi, x);
    } else {
      s.outliers.push_back(x);
    }
  }
  return s;
}

double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

double median_of(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return sorted_quantile(samples, 0.5);
}

double quantile_of(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return sorted_quantile(samples, q);
}

}  // namespace sts
