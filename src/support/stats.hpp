#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sts {

/// Five-number boxplot summary matching the paper's figures (Appendix B):
/// median, quartiles Q1/Q3, whiskers at the most extreme samples within
/// 1.5*IQR of the box, plus outliers beyond the whiskers.
struct BoxStats {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  double mean = 0;
  double whisker_lo = 0;  ///< smallest sample > Q1 - 1.5*IQR
  double whisker_hi = 0;  ///< largest sample  < Q3 + 1.5*IQR
  std::size_t n = 0;
  std::vector<double> outliers;

  /// Compact "med [q1, q3]" rendering used in the bench tables.
  [[nodiscard]] std::string summary(int precision = 2) const;
};

/// Computes boxplot statistics; the input need not be sorted.
/// Quartiles use linear interpolation between closest ranks (type-7, the
/// default of numpy/matplotlib that produced the paper's plots).
[[nodiscard]] BoxStats box_stats(std::vector<double> samples);

/// Arithmetic mean; 0 for an empty range.
[[nodiscard]] double mean_of(const std::vector<double>& samples);

/// Median (type-7 interpolation); 0 for an empty range.
[[nodiscard]] double median_of(std::vector<double> samples);

/// Quantile q in [0,1] with type-7 interpolation; input need not be sorted.
[[nodiscard]] double quantile_of(std::vector<double> samples, double q);

}  // namespace sts
