#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace sts {

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      os << (c + 1 < widths.size() ? " | " : " |\n");
    }
  };
  print_row(header_);
  os << "|";
  for (const std::size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

}  // namespace sts
