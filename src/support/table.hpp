#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace sts {

/// Minimal ASCII table printer used by the benchmark harnesses so that every
/// table/figure reproduction prints rows in a uniform, diff-friendly layout.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with column widths fitted to content, `|`-separated.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double -> string ("12.34").
[[nodiscard]] std::string fmt(double value, int precision = 2);

}  // namespace sts
