#pragma once

#include <charconv>
#include <string>

namespace sts {

/// Appends an integer or floating-point number to `out` via std::to_chars.
/// Shared by graph serialization and cache-key construction, which sit on
/// the ScheduleCache hit path and must avoid iostream overhead.
template <typename T>
void append_number(std::string& out, T value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, end);
}

}  // namespace sts
