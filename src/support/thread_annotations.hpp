#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Clang Thread Safety Analysis attribute macros plus annotated lock shims.
///
/// Every mutex-holding component in the serving stack (ScheduleCache,
/// SubgraphCache, PartitionCanonMemo, ScheduleService, ShardRouter, TaskPool,
/// TaskGraph's CSR rebuild) declares which members each lock protects
/// (GUARDED_BY) and which capabilities each method needs (REQUIRES) or takes
/// (ACQUIRE/RELEASE/EXCLUDES), so lock discipline is a *compile-time*
/// property: `-DSTS_THREAD_SAFETY_ANALYSIS=ON` builds with
/// `-Wthread-safety -Werror=thread-safety` under Clang and refuses any code
/// path that touches shared state without its lock. Under GCC (which has no
/// thread-safety analysis) the attributes expand to nothing and the shims
/// compile down to the std types they wrap.
///
/// Conventions (see README "Correctness tooling"):
///  - a private helper that assumes the lock is already held is named
///    `*_locked()` and annotated `REQUIRES(mutex_)`;
///  - public entry points that take a lock are annotated `EXCLUDES(mutex_)`
///    so re-entrant (self-deadlocking) calls fail to compile;
///  - condition-variable waits are written as explicit `while (!cond) wait;`
///    loops in the caller's scope — never as predicate lambdas, whose bodies
///    the analysis treats as separate lock-free functions.
#if defined(__clang__) && !defined(SWIG)
#define STS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define STS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) STS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#define SCOPED_CAPABILITY STS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#define GUARDED_BY(x) STS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#define PT_GUARDED_BY(x) STS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) STS_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) STS_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define REQUIRES(...) STS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  STS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) STS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  STS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) STS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  STS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  STS_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) STS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  STS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) STS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) STS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  STS_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) STS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS STS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace sts {

class CondVar;

/// std::mutex with the `capability` attribute, so it can appear in
/// GUARDED_BY/REQUIRES expressions (libstdc++'s std::mutex carries no
/// annotations and is rejected there). Identical layout and cost.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// std::shared_mutex with the `capability` attribute (reader/writer lock).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

/// RAII exclusive lock over Mutex (std::lock_guard replacement) that the
/// analysis tracks as a scoped capability. Supports early release and
/// re-acquisition for the few paths (admission rejection, single-flight
/// compute) that must drop the lock mid-scope — the analysis still verifies
/// every guarded access against the current lock state.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex), held_(true) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mutex_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Early release (the destructor then does nothing).
  void unlock() RELEASE() {
    held_ = false;
    mutex_.unlock();
  }
  /// Re-acquisition after an early unlock().
  void lock() ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

 private:
  Mutex& mutex_;
  bool held_;
};

/// RAII shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mutex) ACQUIRE_SHARED(mutex) : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~SharedLock() RELEASE_GENERIC() { mutex_.unlock_shared(); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~ExclusiveLock() RELEASE_GENERIC() { mutex_.unlock(); }
  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable waiting on an annotated Mutex. wait() REQUIRES the
/// mutex, so a wait outside the lock is a compile error; there is
/// deliberately no predicate overload — the analysis cannot see into a
/// predicate lambda, so waits are written as explicit while loops where the
/// guarded condition is checked in the (annotated) caller's scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, waits, and re-acquires it before
  /// returning. Spurious wakeups happen; always wait in a while loop.
  void wait(Mutex& mutex) REQUIRES(mutex) {
    // Borrow the already-held native handle for the wait; release it back to
    // the caller's scoped lock on return. std::condition_variable keeps the
    // fast futex path (condition_variable_any would need an extra shim).
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sts
