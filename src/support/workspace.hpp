#pragma once

#include <cstdint>

#include "support/arena.hpp"
#include "support/parallel.hpp"

namespace sts {

/// Per-request execution resources for the scheduler hot paths: an Arena for
/// allocation-free scratch plus the Parallel lanes resolved from the
/// request's `intra_threads` knob. Owned by ScheduleContext and threaded
/// through partitioning, ranking, and timing loops; every consumer accepts
/// `Workspace* ws = nullptr` and falls back to a local serial workspace, so
/// direct callers of the core algorithms are unaffected.
struct Workspace {
  Arena arena;
  Parallel parallel;

  Workspace() = default;
  explicit Workspace(std::int64_t intra_threads) : parallel(intra_threads) {}
};

}  // namespace sts
