#include "workloads/synthetic.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "support/prng.hpp"

namespace sts {

namespace {

bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

// Callers validate x as a positive power of two first; the 64-bit shift keeps
// the loop defined for every positive int (1 << 31 is UB in 32-bit).
int log2_of(int x) {
  int bits = 0;
  while ((std::int64_t{1} << bits) < x) ++bits;
  return bits;
}

void require_power_of_two(const char* fn, int points) {
  if (!is_power_of_two(points) || points < 2) {
    // Built with append rather than operator+ chains: the latter trips a
    // GCC 12 -Wrestrict false positive (PR 105329).
    std::string message(fn);
    message += ": points must be a power of two >= 2, got ";
    message += std::to_string(points);
    throw std::invalid_argument(message);
  }
}

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

TaskGraph canonical_from_topology(
    std::int32_t node_count, const std::vector<std::pair<std::int32_t, std::int32_t>>& edges,
    std::uint64_t seed, VolumeDistribution dist) {
  if (dist.min_log2 < 0 || dist.max_log2 < dist.min_log2 || dist.max_log2 > 20) {
    throw std::invalid_argument("canonical_from_topology: bad volume distribution");
  }

  // Canonicity requires all predecessors of a node to produce the same
  // volume: group co-predecessors with union-find and draw one volume per
  // class.
  const auto n = static_cast<std::size_t>(node_count);
  std::vector<std::vector<std::int32_t>> preds(n);
  for (const auto& [u, v] : edges) {
    preds[static_cast<std::size_t>(v)].push_back(u);
  }
  UnionFind classes(n);
  for (const auto& list : preds) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      classes.unite(static_cast<std::size_t>(list[0]), static_cast<std::size_t>(list[i]));
    }
  }

  Prng rng(seed);
  std::vector<std::int64_t> class_volume(n, 0);
  std::vector<std::int64_t> volume(n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t root = classes.find(v);
    if (class_volume[root] == 0) {
      class_volume[root] = std::int64_t{1}
                           << rng.uniform_int(dist.min_log2, dist.max_log2);
    }
    volume[v] = class_volume[root];
  }

  TaskGraph graph;
  std::vector<bool> has_pred(n, false);
  for (const auto& [u, v] : edges) has_pred[static_cast<std::size_t>(v)] = true;
  for (std::int32_t v = 0; v < node_count; ++v) {
    const auto idx = static_cast<std::size_t>(v);
    if (!has_pred[idx]) {
      graph.add_source(volume[idx], "t" + std::to_string(v));
    } else {
      const NodeId id = graph.add_compute("t" + std::to_string(v));
      graph.declare_output(id, volume[idx]);
    }
  }
  for (const auto& [u, v] : edges) {
    graph.add_edge(u, v, volume[static_cast<std::size_t>(u)]);
  }
  return graph;
}

std::int64_t chain_task_count(int tasks) noexcept { return tasks; }

std::int64_t fft_task_count(int points) {
  require_power_of_two("fft_task_count", points);
  const std::int64_t n = points;
  return 2 * n - 1 + n * log2_of(points);
}

std::int64_t gaussian_task_count(int matrix_size) noexcept {
  const std::int64_t m = matrix_size;
  return (m * m + m - 2) / 2;
}

std::int64_t cholesky_task_count(int tiles) noexcept {
  const std::int64_t t = tiles;
  return t + t * (t - 1) + t * (t - 1) * (t - 2) / 6;
}

TaskGraph make_chain(int tasks, std::uint64_t seed, VolumeDistribution dist) {
  if (tasks < 1) throw std::invalid_argument("make_chain: need at least one task");
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t i = 0; i + 1 < tasks; ++i) edges.emplace_back(i, i + 1);
  return canonical_from_topology(tasks, edges, seed, dist);
}

TaskGraph make_fft(int points, std::uint64_t seed, VolumeDistribution dist) {
  require_power_of_two("make_fft", points);
  if (points > (1 << 20)) {
    std::string message = "make_fft: refusing points > 2^20 (";
    message += std::to_string(points);
    message += " requested): the node-id space and memory cost explode";
    throw std::invalid_argument(message);
  }
  const int stages = log2_of(points);
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;

  // Recursive-call binary tree: node 0 is the root; node i has children
  // 2i+1, 2i+2; the last `points` nodes are the leaves feeding stage 0.
  const std::int32_t tree_nodes = 2 * points - 1;
  for (std::int32_t i = 0; 2 * i + 2 < tree_nodes; ++i) {
    edges.emplace_back(i, 2 * i + 1);
    edges.emplace_back(i, 2 * i + 2);
  }
  const std::int32_t first_leaf = points - 1;

  // Butterfly stages: stage s task i depends on stage s-1 tasks i and
  // i ^ 2^(s-1) (stage 0 inputs are the tree leaves).
  const auto butterfly = [&](int stage, int i) {
    return tree_nodes + static_cast<std::int32_t>(stage) * points + i;
  };
  for (int i = 0; i < points; ++i) {
    edges.emplace_back(first_leaf + i, butterfly(0, i));
    edges.emplace_back(first_leaf + (i ^ 1), butterfly(0, i));
  }
  for (int s = 1; s < stages; ++s) {
    for (int i = 0; i < points; ++i) {
      edges.emplace_back(butterfly(s - 1, i), butterfly(s, i));
      edges.emplace_back(butterfly(s - 1, i ^ (1 << s)), butterfly(s, i));
    }
  }
  const std::int32_t total = tree_nodes + stages * points;
  return canonical_from_topology(total, edges, seed, dist);
}

TaskGraph make_gaussian_elimination(int matrix_size, std::uint64_t seed,
                                    VolumeDistribution dist) {
  if (matrix_size < 2) throw std::invalid_argument("make_gaussian_elimination: size >= 2");
  const int m = matrix_size;
  // Tasks: pivot T(k,k) for k in [1, m-1]; update T(k,j) for j in (k, m].
  std::vector<std::vector<std::int32_t>> id(static_cast<std::size_t>(m) + 1,
                                            std::vector<std::int32_t>(m + 1, -1));
  std::int32_t next = 0;
  for (int k = 1; k < m; ++k) {
    id[k][k] = next++;
    for (int j = k + 1; j <= m; ++j) id[k][j] = next++;
  }
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (int k = 1; k < m; ++k) {
    if (k > 1) edges.emplace_back(id[k - 1][k], id[k][k]);  // pivot needs column k
    for (int j = k + 1; j <= m; ++j) {
      edges.emplace_back(id[k][k], id[k][j]);               // updates need the pivot
      if (k > 1) edges.emplace_back(id[k - 1][j], id[k][j]);  // and the previous row
    }
  }
  return canonical_from_topology(next, edges, seed, dist);
}

TaskGraph make_random_layered(const LayeredSpec& spec, std::uint64_t seed,
                              VolumeDistribution dist) {
  if (spec.layers < 1 || spec.width < 1 || spec.max_skip < 1 ||
      spec.edge_probability < 0.0 || spec.edge_probability > 1.0) {
    throw std::invalid_argument("make_random_layered: bad spec");
  }
  Prng rng(seed ^ 0x9e3779b97f4a7c15ULL);

  std::vector<std::vector<std::int32_t>> layer_nodes(static_cast<std::size_t>(spec.layers));
  std::int32_t next = 0;
  for (auto& layer : layer_nodes) {
    const auto count = rng.uniform_int(1, spec.width);
    for (std::int64_t i = 0; i < count; ++i) layer.push_back(next++);
  }

  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (int l = 1; l < spec.layers; ++l) {
    for (const std::int32_t v : layer_nodes[static_cast<std::size_t>(l)]) {
      // Guaranteed predecessor from the previous layer keeps the graph
      // connected layer-to-layer.
      const auto& prev = layer_nodes[static_cast<std::size_t>(l - 1)];
      edges.emplace_back(
          prev[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(prev.size()) - 1))],
          v);
      // Extra edges from earlier layers within the skip window.
      const int lo = std::max(0, l - spec.max_skip);
      for (int src_layer = lo; src_layer < l; ++src_layer) {
        for (const std::int32_t u : layer_nodes[static_cast<std::size_t>(src_layer)]) {
          if (rng.uniform() < spec.edge_probability) edges.emplace_back(u, v);
        }
      }
    }
  }
  // Deduplicate parallel edges introduced by the two rules above.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return canonical_from_topology(next, edges, seed, dist);
}

TaskGraph make_cholesky(int tiles, std::uint64_t seed, VolumeDistribution dist) {
  if (tiles < 2) throw std::invalid_argument("make_cholesky: tiles >= 2");
  const int t = tiles;
  const auto key = [t](int a, int b, int c) { return (a * t + b) * t + c; };
  std::vector<std::int32_t> potrf(static_cast<std::size_t>(t), -1);
  std::vector<std::int32_t> trsm(static_cast<std::size_t>(t) * t, -1);
  std::vector<std::int32_t> syrk(static_cast<std::size_t>(t) * t, -1);
  std::vector<std::int32_t> gemm(static_cast<std::size_t>(t) * t * t, -1);
  std::int32_t next = 0;
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;

  for (int k = 0; k < t; ++k) {
    potrf[static_cast<std::size_t>(k)] = next++;
    if (k > 0) {
      edges.emplace_back(syrk[static_cast<std::size_t>(k * t + (k - 1))],
                         potrf[static_cast<std::size_t>(k)]);
    }
    for (int i = k + 1; i < t; ++i) {
      trsm[static_cast<std::size_t>(i * t + k)] = next++;
      edges.emplace_back(potrf[static_cast<std::size_t>(k)],
                         trsm[static_cast<std::size_t>(i * t + k)]);
      if (k > 0) {
        edges.emplace_back(gemm[static_cast<std::size_t>(key(i, k, k - 1))],
                           trsm[static_cast<std::size_t>(i * t + k)]);
      }
    }
    for (int i = k + 1; i < t; ++i) {
      syrk[static_cast<std::size_t>(i * t + k)] = next++;
      edges.emplace_back(trsm[static_cast<std::size_t>(i * t + k)],
                         syrk[static_cast<std::size_t>(i * t + k)]);
      if (k > 0) {
        edges.emplace_back(syrk[static_cast<std::size_t>(i * t + (k - 1))],
                           syrk[static_cast<std::size_t>(i * t + k)]);
      }
      for (int j = k + 1; j < i; ++j) {
        gemm[static_cast<std::size_t>(key(i, j, k))] = next++;
        edges.emplace_back(trsm[static_cast<std::size_t>(i * t + k)],
                           gemm[static_cast<std::size_t>(key(i, j, k))]);
        edges.emplace_back(trsm[static_cast<std::size_t>(j * t + k)],
                           gemm[static_cast<std::size_t>(key(i, j, k))]);
        if (k > 0) {
          edges.emplace_back(gemm[static_cast<std::size_t>(key(i, j, k - 1))],
                             gemm[static_cast<std::size_t>(key(i, j, k))]);
        }
      }
    }
  }
  return canonical_from_topology(next, edges, seed, dist);
}

}  // namespace sts
