#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/task_graph.hpp"

namespace sts {

/// Synthetic task-graph topologies of the paper's evaluation (Section 7.1).
///
/// A topology fixes tasks and dependencies; canonical volumes (and therefore
/// node types: element-wise / downsampler / upsampler) are randomized per
/// seed: co-predecessor classes share one power-of-two volume so that every
/// node receives equal amounts on all input edges, exactly as canonicity
/// requires. No buffer nodes are introduced, so all edges can stream within
/// a spatial block (paper Section 7.1).
struct VolumeDistribution {
  /// Volumes are 2^k with k uniform in [min_log2, max_log2]. The defaults
  /// keep streams long enough for the steady-state analysis (asymptotically
  /// exact, Section 4.2.3) to be within a few percent of simulation while
  /// keeping simulated makespans small.
  int min_log2 = 4;
  int max_log2 = 10;
};

/// Linear chain of `tasks` nodes: task i feeds task i+1.
[[nodiscard]] TaskGraph make_chain(int tasks, std::uint64_t seed,
                                   VolumeDistribution dist = {});

/// One-dimensional FFT task graph for `points` input points (a power of 2):
/// a binary tree of 2*points-1 recursive-call tasks feeding log2(points)
/// stages of `points` butterfly tasks each.
[[nodiscard]] TaskGraph make_fft(int points, std::uint64_t seed, VolumeDistribution dist = {});

/// Gaussian elimination task graph for an `matrix_size` x `matrix_size`
/// matrix (Topcuoglu et al. [33]): pivot tasks T(k,k) and update tasks
/// T(k,j), totalling (M^2 + M - 2) / 2 tasks.
[[nodiscard]] TaskGraph make_gaussian_elimination(int matrix_size, std::uint64_t seed,
                                                  VolumeDistribution dist = {});

/// Left-looking tiled Cholesky factorization on a `tiles` x `tiles` tile
/// grid (Kurzak et al. [20]): POTRF/TRSM/SYRK/GEMM tasks, totalling
/// T^3/6 + T^2/2 + T/3 tasks.
[[nodiscard]] TaskGraph make_cholesky(int tiles, std::uint64_t seed,
                                      VolumeDistribution dist = {});

/// Expected task counts (used to cross-check the generators against the
/// formulas quoted in the paper). fft_task_count validates its input the way
/// make_fft does (throws std::invalid_argument unless `points` is a power of
/// two >= 2) — the formula is meaningless, and its old implementation hit
/// shift UB, for anything else.
[[nodiscard]] std::int64_t chain_task_count(int tasks) noexcept;
[[nodiscard]] std::int64_t fft_task_count(int points);
[[nodiscard]] std::int64_t gaussian_task_count(int matrix_size) noexcept;
[[nodiscard]] std::int64_t cholesky_task_count(int tiles) noexcept;

/// Builds a canonical task graph from a pure topology: `edges` over
/// `node_count` nodes, volumes randomized per co-predecessor class. Exposed
/// so custom topologies can reuse the paper's randomization scheme.
[[nodiscard]] TaskGraph canonical_from_topology(
    std::int32_t node_count, const std::vector<std::pair<std::int32_t, std::int32_t>>& edges,
    std::uint64_t seed, VolumeDistribution dist = {});

/// Random layered DAGs for property/fuzz testing: `layers` layers of up to
/// `width` nodes; every non-entry node has at least one predecessor in an
/// earlier layer; extra edges appear with `edge_probability`, skipping at
/// most `max_skip` layers. All structural and volume randomness derives
/// from `seed`.
struct LayeredSpec {
  int layers = 6;
  int width = 6;
  double edge_probability = 0.25;
  int max_skip = 2;
};

[[nodiscard]] TaskGraph make_random_layered(const LayeredSpec& spec, std::uint64_t seed,
                                            VolumeDistribution dist = {});

}  // namespace sts
