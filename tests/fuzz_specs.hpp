#pragma once

// Shared random-topology shapes for the property/fuzz suites
// (test_fuzz.cpp, test_sim_engines.cpp): layered DAGs exercising corner
// shapes the hand-built workloads do not (diamonds, wide joins, deep skips).

#include "workloads/synthetic.hpp"

namespace sts::testing {

inline LayeredSpec fuzz_spec_for(int shape) {
  LayeredSpec spec;
  switch (shape) {
    case 0:  // deep and narrow
      spec.layers = 12;
      spec.width = 3;
      spec.edge_probability = 0.2;
      break;
    case 1:  // shallow and wide
      spec.layers = 4;
      spec.width = 12;
      spec.edge_probability = 0.15;
      break;
    case 2:  // dense with long skips
      spec.layers = 7;
      spec.width = 6;
      spec.edge_probability = 0.4;
      spec.max_skip = 4;
      break;
    default:  // sparse default
      break;
  }
  return spec;
}

}  // namespace sts::testing
