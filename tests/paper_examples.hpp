#pragma once

#include "graph/task_graph.hpp"

namespace sts::testing {

/// The spatial block of paper Figure 8 (5 tasks, one block). Expected
/// schedule: ST/LO/FO = (0,31,1), (1,32,8), (8,33,9), (1,33,2), (2,34,6).
inline TaskGraph figure8_graph() {
  TaskGraph g;
  const NodeId n0 = g.add_source(16, "t0");
  const NodeId n1 = g.add_compute("t1");  // downsampler R = 1/4
  const NodeId n2 = g.add_compute("t2");  // element-wise
  const NodeId n3 = g.add_compute("t3");  // upsampler R = 2
  const NodeId n4 = g.add_compute("t4");  // downsampler R = 1/4
  g.add_edge(n0, n1, 16);
  g.add_edge(n1, n2, 4);
  g.add_edge(n0, n3, 16);
  g.add_edge(n3, n4, 32);
  g.declare_output(n2, 4);
  g.declare_output(n4, 8);
  return g;
}

/// Paper Figure 9, task graph 1: two disjoint paths from task 0 to task 4;
/// reducers on the left path delay the reconvergence. Expected schedule:
/// (0,32,1), (1,33,9), (9,34,18), (18,50,19), (19,51,20); the streaming FIFO
/// for edge (0,4) needs 18 slots.
inline TaskGraph figure9_graph1() {
  TaskGraph g;
  const NodeId n0 = g.add_source(32, "t0");
  const NodeId n1 = g.add_compute("t1");  // R = 1/8
  const NodeId n2 = g.add_compute("t2");  // R = 1/2
  const NodeId n3 = g.add_compute("t3");  // R = 16
  const NodeId n4 = g.add_compute("t4");  // element-wise join
  g.add_edge(n0, n1, 32);
  g.add_edge(n1, n2, 4);
  g.add_edge(n2, n3, 2);
  g.add_edge(n3, n4, 32);
  g.add_edge(n0, n4, 32);
  g.declare_output(n4, 32);
  return g;
}

/// Paper Figure 9, task graph 2: an undirected cycle across two source
/// chains. Expected schedule: (0,32,1), (1,33,33), (33,65,34), (0,32,1),
/// (1,33,2), (34,66,35); the FIFO into task 5 from the short chain needs 32
/// slots.
inline TaskGraph figure9_graph2() {
  TaskGraph g;
  const NodeId n0 = g.add_source(32, "t0");
  const NodeId n1 = g.add_compute("t1");  // R = 1/32
  const NodeId n2 = g.add_compute("t2");  // R = 32
  const NodeId n3 = g.add_source(32, "t3");
  const NodeId n4 = g.add_compute("t4");  // element-wise join
  const NodeId n5 = g.add_compute("t5");  // element-wise join
  g.add_edge(n0, n1, 32);
  g.add_edge(n1, n2, 1);
  g.add_edge(n2, n5, 32);
  g.add_edge(n3, n4, 32);
  g.add_edge(n0, n4, 32);
  g.add_edge(n4, n5, 32);
  g.declare_output(n5, 32);
  return g;
}

/// Figure 6: source u (K = 8 elements) feeding an upsampler with R = 4.
/// At steady state S_o(u) = 4 and S_o(v) = 1.
inline TaskGraph figure6_graph() {
  TaskGraph g;
  const NodeId u = g.add_source(8, "u");
  const NodeId v = g.add_compute("v");
  g.add_edge(u, v, 8);
  g.declare_output(v, 32);
  return g;
}

/// A two-component graph in the spirit of Figure 7: streaming intervals are
/// computed per weakly connected component of the buffer-split transform.
/// WCC0 = {s, e1, d} with max volume 16; WCC1 = {B.head, u1, e2} with max
/// volume 32.
inline TaskGraph buffer_split_example() {
  TaskGraph g;
  const NodeId s = g.add_source(16, "s");
  const NodeId e1 = g.add_compute("e1");  // element-wise 16 -> 16
  const NodeId d = g.add_compute("d");    // downsampler 16 -> 4
  const NodeId buf = g.add_buffer("B");   // 4 in, 8 out (R = 2)
  const NodeId u1 = g.add_compute("u1");  // upsampler 8 -> 32
  const NodeId e2 = g.add_compute("e2");  // element-wise 32 -> 32
  g.add_edge(s, e1, 16);
  g.add_edge(e1, d, 16);
  g.add_edge(d, buf, 4);
  g.add_edge(buf, u1, 8);
  g.add_edge(u1, e2, 32);
  g.declare_output(e2, 32);
  return g;
}

}  // namespace sts::testing
