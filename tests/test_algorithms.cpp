#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include <set>

#include "paper_examples.hpp"

namespace sts {
namespace {

TEST(TopologicalOrder, RespectsEdgesAndIsDeterministic) {
  const TaskGraph g = testing::figure9_graph2();
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), g.node_count());
  std::vector<std::size_t> pos(g.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[static_cast<std::size_t>(order[i])] = i;
  for (EdgeId e = 0; static_cast<std::size_t>(e) < g.edge_count(); ++e) {
    EXPECT_LT(pos[static_cast<std::size_t>(g.edge(e).src)],
              pos[static_cast<std::size_t>(g.edge(e).dst)]);
  }
  EXPECT_EQ(order, topological_order(g));  // deterministic
}

TEST(TopologicalOrder, ThrowsOnCycle) {
  TaskGraph g;
  const NodeId a = g.add_source(4, "a");
  const NodeId b = g.add_compute("b");
  const NodeId c = g.add_compute("c");
  g.add_edge(a, b, 4);
  g.add_edge(b, c, 4);
  g.add_edge(c, b, 4);
  EXPECT_FALSE(is_acyclic(g));
  EXPECT_THROW(topological_order(g), std::invalid_argument);
}

TEST(Levels, ElementwiseChainCountsHops) {
  TaskGraph g;
  NodeId prev = g.add_source(4, "s");
  for (int i = 0; i < 3; ++i) {
    const NodeId next = g.add_compute("c" + std::to_string(i));
    g.add_edge(prev, next, 4);
    prev = next;
  }
  g.declare_output(prev, 4);
  const auto levels = node_levels(g);
  EXPECT_EQ(levels[0], Rational(1));
  EXPECT_EQ(levels[1], Rational(2));
  EXPECT_EQ(levels[3], Rational(4));
  EXPECT_EQ(graph_level(g), Rational(4));
}

TEST(Levels, UpsamplersAddTheirRate) {
  // Section 4.2.3: L(v) = max(R(v), 1) + max parent level.
  const TaskGraph g = testing::figure8_graph();
  const auto levels = node_levels(g);
  EXPECT_EQ(levels[0], Rational(1));
  EXPECT_EQ(levels[1], Rational(2));  // downsampler contributes 1
  EXPECT_EQ(levels[3], Rational(3));  // upsampler R=2 contributes 2
  EXPECT_EQ(levels[4], Rational(4));
}

TEST(BufferSplitWccs, SplitsAtBuffers) {
  const TaskGraph g = testing::buffer_split_example();
  const BufferSplitWccs wccs = buffer_split_wccs(g);
  EXPECT_EQ(wccs.count, 2);
  const NodeId s = 0, e1 = 1, d = 2, buf = 3, u1 = 4, e2 = 5;
  EXPECT_EQ(wccs.node_wcc[buf], -1);  // buffers belong to no component
  EXPECT_EQ(wccs.node_wcc[s], wccs.node_wcc[e1]);
  EXPECT_EQ(wccs.node_wcc[e1], wccs.node_wcc[d]);
  EXPECT_EQ(wccs.node_wcc[u1], wccs.node_wcc[e2]);
  EXPECT_NE(wccs.node_wcc[d], wccs.node_wcc[u1]);
  // Edge membership: producer-side edges live in WCC0, consumer-side in WCC1.
  EXPECT_EQ(wccs.edge_wcc(g, 2), wccs.node_wcc[d]);   // d -> buffer
  EXPECT_EQ(wccs.edge_wcc(g, 3), wccs.node_wcc[u1]);  // buffer -> u1
}

TEST(BufferSplitWccs, IndependentConsumersOfOneBufferStaySeparate) {
  // Two consumers re-reading the same buffer are independent memory streams
  // (Figure 4 graph 1 relies on this: D and E execute one after the other).
  TaskGraph g;
  const NodeId x = g.add_source(8, "x");
  const NodeId buf = g.add_buffer("buf");
  const NodeId a = g.add_compute("a");
  const NodeId b = g.add_compute("b");
  g.add_edge(x, buf, 8);
  g.add_edge(buf, a, 8);
  g.add_edge(buf, b, 8);
  g.declare_output(a, 8);
  g.declare_output(b, 8);
  const BufferSplitWccs wccs = buffer_split_wccs(g);
  EXPECT_EQ(wccs.count, 3);
  EXPECT_NE(wccs.node_wcc[a], wccs.node_wcc[b]);
}

TEST(BufferSplitWccs, SingleComponentWithoutBuffers) {
  const TaskGraph g = testing::figure9_graph1();
  const BufferSplitWccs wccs = buffer_split_wccs(g);
  EXPECT_EQ(wccs.count, 1);
}

TEST(BufferSupernodeDag, AcyclicForValidPlacement) {
  EXPECT_TRUE(buffer_supernode_dag_is_acyclic(testing::buffer_split_example()));
  EXPECT_TRUE(buffer_supernode_dag_is_acyclic(testing::figure8_graph()));
}

TEST(BufferSupernodeDag, DetectsCycleThroughBuffer) {
  TaskGraph g;
  const NodeId x = g.add_source(4, "x");
  const NodeId buf = g.add_buffer("buf");
  const NodeId c = g.add_compute("c");
  const NodeId join = g.add_compute("join");
  g.add_edge(x, buf, 4);
  g.add_edge(x, c, 4);
  g.add_edge(buf, join, 4);
  g.add_edge(c, join, 4);
  g.declare_output(c, 4);
  g.declare_output(join, 4);
  EXPECT_FALSE(buffer_supernode_dag_is_acyclic(g));
}

TEST(UndirectedCycles, TreeHasNone) {
  const std::vector<std::pair<std::int32_t, std::int32_t>> edges{{0, 1}, {0, 2}, {1, 3}};
  const auto on_cycle = edges_on_undirected_cycles(4, edges);
  for (const bool b : on_cycle) EXPECT_FALSE(b);
}

TEST(UndirectedCycles, DiamondIsFullyCyclic) {
  const std::vector<std::pair<std::int32_t, std::int32_t>> edges{
      {0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const auto on_cycle = edges_on_undirected_cycles(4, edges);
  for (const bool b : on_cycle) EXPECT_TRUE(b);
}

TEST(UndirectedCycles, MixedBridgeAndCycle) {
  // 0-1-2-0 triangle with a pendant chain 2-3-4.
  const std::vector<std::pair<std::int32_t, std::int32_t>> edges{
      {0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}};
  const auto on_cycle = edges_on_undirected_cycles(5, edges);
  EXPECT_TRUE(on_cycle[0]);
  EXPECT_TRUE(on_cycle[1]);
  EXPECT_TRUE(on_cycle[2]);
  EXPECT_FALSE(on_cycle[3]);
  EXPECT_FALSE(on_cycle[4]);
}

TEST(UndirectedCycles, ParallelEdgesFormACycle) {
  const std::vector<std::pair<std::int32_t, std::int32_t>> edges{{0, 1}, {0, 1}};
  const auto on_cycle = edges_on_undirected_cycles(2, edges);
  EXPECT_TRUE(on_cycle[0]);
  EXPECT_TRUE(on_cycle[1]);
}

TEST(UndirectedCycles, DisconnectedComponents) {
  const std::vector<std::pair<std::int32_t, std::int32_t>> edges{
      {0, 1}, {2, 3}, {3, 4}, {4, 2}};
  const auto on_cycle = edges_on_undirected_cycles(5, edges);
  EXPECT_FALSE(on_cycle[0]);
  EXPECT_TRUE(on_cycle[1]);
  EXPECT_TRUE(on_cycle[2]);
  EXPECT_TRUE(on_cycle[3]);
}

TEST(AliveSources, TracksRemainingGraph) {
  const TaskGraph g = testing::figure9_graph1();
  std::vector<bool> alive(g.node_count(), true);
  auto sources = alive_sources(g, alive);
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources.front(), 0);
  alive[0] = false;
  sources = alive_sources(g, alive);
  // With task 0 scheduled, task 1 becomes a source; task 4 still waits on 3.
  EXPECT_EQ(sources, (std::vector<NodeId>{1}));
}

}  // namespace
}  // namespace sts
