#include "core/streaming_schedule.hpp"

#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

SpatialPartition single_block(const TaskGraph& g) {
  SpatialPartition p;
  p.block_of.assign(g.node_count(), -1);
  p.blocks.emplace_back();
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (g.occupies_pe(v)) {
      p.block_of[static_cast<std::size_t>(v)] = 0;
      p.blocks[0].push_back(v);
    }
  }
  return p;
}

TEST(BlockSchedule, ReproducesPaperFigure8Exactly) {
  const TaskGraph g = testing::figure8_graph();
  const StreamingSchedule s = schedule_streaming(g, single_block(g));
  // Paper Figure 8 table: Task | ST | LO | FO.
  EXPECT_EQ(s.at(0).start, 0);
  EXPECT_EQ(s.at(0).last_out, 31);
  EXPECT_EQ(s.at(0).first_out, 1);
  EXPECT_EQ(s.at(1).start, 1);
  EXPECT_EQ(s.at(1).last_out, 32);
  EXPECT_EQ(s.at(1).first_out, 8);
  EXPECT_EQ(s.at(2).start, 8);
  EXPECT_EQ(s.at(2).last_out, 33);
  EXPECT_EQ(s.at(2).first_out, 9);
  EXPECT_EQ(s.at(3).start, 1);
  EXPECT_EQ(s.at(3).last_out, 33);
  EXPECT_EQ(s.at(3).first_out, 2);
  EXPECT_EQ(s.at(4).start, 2);
  EXPECT_EQ(s.at(4).last_out, 34);
  EXPECT_EQ(s.at(4).first_out, 6);
  EXPECT_EQ(s.makespan, 34);
}

TEST(BlockSchedule, ReproducesPaperFigure9Graph1Exactly) {
  const TaskGraph g = testing::figure9_graph1();
  const StreamingSchedule s = schedule_streaming(g, single_block(g));
  const std::array<std::array<std::int64_t, 3>, 5> expected{{
      {0, 32, 1}, {1, 33, 9}, {9, 34, 18}, {18, 50, 19}, {19, 51, 20}}};
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(s.at(v).start, expected[static_cast<std::size_t>(v)][0]) << "ST " << v;
    EXPECT_EQ(s.at(v).last_out, expected[static_cast<std::size_t>(v)][1]) << "LO " << v;
    EXPECT_EQ(s.at(v).first_out, expected[static_cast<std::size_t>(v)][2]) << "FO " << v;
  }
}

TEST(BlockSchedule, ReproducesPaperFigure9Graph2Exactly) {
  const TaskGraph g = testing::figure9_graph2();
  const StreamingSchedule s = schedule_streaming(g, single_block(g));
  const std::array<std::array<std::int64_t, 3>, 6> expected{{
      {0, 32, 1}, {1, 33, 33}, {33, 65, 34}, {0, 32, 1}, {1, 33, 2}, {34, 66, 35}}};
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(s.at(v).start, expected[static_cast<std::size_t>(v)][0]) << "ST " << v;
    EXPECT_EQ(s.at(v).last_out, expected[static_cast<std::size_t>(v)][1]) << "LO " << v;
    EXPECT_EQ(s.at(v).first_out, expected[static_cast<std::size_t>(v)][2]) << "FO " << v;
  }
}

TEST(BlockSchedule, ElementwiseChainStreamingDepth) {
  // Section 4.2.1: a fully streamed element-wise chain finishes in
  // k + L(G) - 1 time units.
  TaskGraph g;
  const std::int64_t k = 64;
  NodeId prev = g.add_source(k, "s");
  const int chain = 6;
  for (int i = 1; i < chain; ++i) {
    const NodeId next = g.add_compute("c" + std::to_string(i));
    g.add_edge(prev, next, k);
    prev = next;
  }
  g.declare_output(prev, k);
  const StreamingSchedule s = schedule_streaming(g, single_block(g));
  EXPECT_EQ(s.makespan, k + chain - 1);
}

TEST(BlockSchedule, BufferNodeBreaksPipelining) {
  const TaskGraph g = testing::buffer_split_example();
  const StreamingSchedule s = schedule_streaming(g, single_block(g));
  // WCC0: s(0) e1(1) d(2); source streams 16 at interval 1.
  EXPECT_EQ(s.at(0).last_out, 16);
  EXPECT_EQ(s.at(1).last_out, 17);
  EXPECT_EQ(s.at(2).last_out, 18);
  // The buffer head only starts after d completes: FO(B) = LO(d) + 1 = 19.
  EXPECT_EQ(s.at(3).first_out, 19);
  // Head emits 8 elements at interval 4 (WCC1 max is 32): LO = 19 + 7*4 = 47.
  EXPECT_EQ(s.at(3).last_out, 47);
  // u1 consumes at S_i = 4, R = 4 upsampler: ST = FO(B) = 19, FO = 20.
  EXPECT_EQ(s.at(4).start, 19);
  EXPECT_EQ(s.at(4).first_out, 20);
  // e2 runs at interval 1 behind u1: LO(e2) = LO(u1) + 1.
  EXPECT_EQ(s.at(5).last_out, s.at(4).last_out + 1);
  EXPECT_EQ(s.makespan, s.at(5).last_out);
}

TEST(BlockSchedule, TwoBlocksRunBackToBack) {
  const TaskGraph g = testing::figure9_graph1();
  // Force a two-block split: {0, 1} then {2, 3, 4}.
  SpatialPartition p;
  p.block_of = {0, 0, 1, 1, 1};
  p.blocks = {{0, 1}, {2, 3, 4}};
  const StreamingSchedule s = schedule_streaming(g, p);
  ASSERT_EQ(s.block_start.size(), 2u);
  // Block 0: source streams 32 (throttled? WCC = {0,1}: max 32 -> S_o(0)=1).
  EXPECT_EQ(s.block_start[0], 0);
  EXPECT_EQ(s.at(0).last_out, 32);
  EXPECT_EQ(s.at(1).last_out, 33);
  EXPECT_EQ(s.block_end[0], 33);
  // Block 1 is released at the barrier.
  EXPECT_EQ(s.block_start[1], 33);
  EXPECT_GE(s.at(2).start, 33);
  // Task 4 reads task 0's output from memory (cross-block edge) and task 3's
  // stream within the block.
  EXPECT_GT(s.at(4).last_out, s.at(3).last_out);
  EXPECT_EQ(s.makespan, s.block_end[1]);
}

TEST(BlockSchedule, BlockSourceDownsamplerIngestsFromMemory) {
  // A downsampler alone in block 1 must take I time units to read its input.
  TaskGraph g;
  const NodeId src = g.add_source(64, "src");
  const NodeId down = g.add_compute("down");
  g.add_edge(src, down, 64);
  g.declare_output(down, 4);
  SpatialPartition p;
  p.block_of = {0, 1};
  p.blocks = {{src}, {down}};
  const StreamingSchedule s = schedule_streaming(g, p);
  EXPECT_EQ(s.at(0).last_out, 64);
  EXPECT_EQ(s.block_start[1], 64);
  // ST = 64; reading 64 elements at S_i = 1; LO = 64 + 63 + 1 = 128.
  EXPECT_EQ(s.at(1).start, 64);
  EXPECT_EQ(s.at(1).last_out, 128);
  // FO: first output after 16 inputs: 64 + ceil((16-1)*1) + 1 = 80.
  EXPECT_EQ(s.at(1).first_out, 80);
}

TEST(BlockSchedule, PeAssignmentsAreDistinctWithinBlock) {
  const TaskGraph g = make_fft(8, /*seed=*/4);
  const SpatialPartition p =
      partition_spatial_blocks(g, 8, PartitionVariant::kRLX);
  const StreamingSchedule s = schedule_streaming(g, p);
  for (std::size_t b = 0; b < p.blocks.size(); ++b) {
    std::set<std::int32_t> pes;
    for (const NodeId v : p.blocks[b]) {
      const auto pe = s.at(v).pe;
      EXPECT_GE(pe, 0);
      EXPECT_LT(pe, 8);
      EXPECT_TRUE(pes.insert(pe).second) << "duplicate PE in block " << b;
    }
  }
}

TEST(BlockSchedule, MakespanIsLastBlockEnd) {
  const TaskGraph g = make_cholesky(4, /*seed=*/9);
  const SpatialPartition p = partition_spatial_blocks(g, 4, PartitionVariant::kLTS);
  const StreamingSchedule s = schedule_streaming(g, p);
  ASSERT_FALSE(s.block_end.empty());
  EXPECT_EQ(s.makespan, s.block_end.back());
  for (std::size_t b = 1; b < s.block_start.size(); ++b) {
    EXPECT_EQ(s.block_start[b], s.block_end[b - 1]);
  }
}

TEST(BlockSchedule, TimingOrderingInvariants) {
  // ST < FO <= LO for every PE task; FO of a node is after the FO of the
  // streaming predecessors it consumes from.
  const TaskGraph g = make_gaussian_elimination(8, /*seed=*/2);
  const SpatialPartition p = partition_spatial_blocks(g, 16, PartitionVariant::kRLX);
  const StreamingSchedule s = schedule_streaming(g, p);
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (!g.occupies_pe(v)) continue;
    const TaskTiming& t = s.at(v);
    EXPECT_LT(t.start, t.first_out) << "node " << v;
    EXPECT_LE(t.first_out, t.last_out) << "node " << v;
    for (const EdgeId e : g.in_edges(v)) {
      const NodeId u = g.edge(e).src;
      if (s.at(u).block == t.block && g.kind(u) != NodeKind::kBuffer) {
        EXPECT_GT(t.first_out, s.at(u).first_out) << "edge " << u << "->" << v;
        EXPECT_GE(t.last_out, s.at(u).last_out) << "edge " << u << "->" << v;
      }
    }
  }
}

}  // namespace
}  // namespace sts
