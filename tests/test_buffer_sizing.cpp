#include "core/buffer_sizing.hpp"

#include <gtest/gtest.h>

#include "core/streaming_scheduler.hpp"
#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

std::int64_t capacity_between(const TaskGraph& g, const BufferPlan& plan, NodeId u, NodeId v) {
  for (const ChannelPlan& c : plan.channels) {
    if (g.edge(c.edge).src == u && g.edge(c.edge).dst == v) return c.capacity;
  }
  return -1;
}

std::int64_t requirement_between(const TaskGraph& g, const BufferPlan& plan, NodeId u, NodeId v) {
  for (const ChannelPlan& c : plan.channels) {
    if (g.edge(c.edge).src == u && g.edge(c.edge).dst == v) return c.eq5_requirement;
  }
  return -1;
}

TEST(BufferSizing, PaperFigure9Graph1Needs18) {
  const TaskGraph g = testing::figure9_graph1();
  const StreamingSchedulerResult r =
      schedule_streaming_graph(g, 5, PartitionVariant::kRLX);
  ASSERT_EQ(r.schedule.partition.block_count(), 1u);
  // Paper: "the FIFO channel between tasks 0 and 4 must have a buffer space
  // equal to 18". The allocation adds one credit-slack slot on top.
  EXPECT_EQ(requirement_between(g, r.buffers, 0, 4), 18);
  EXPECT_EQ(capacity_between(g, r.buffers, 0, 4), 19);
  // The slow path edge (3,4) carries the max-delay input: no Eq. 5 need.
  EXPECT_EQ(requirement_between(g, r.buffers, 3, 4), 0);
  EXPECT_EQ(capacity_between(g, r.buffers, 3, 4), 2);
}

TEST(BufferSizing, PaperFigure9Graph2Needs32) {
  const TaskGraph g = testing::figure9_graph2();
  const StreamingSchedulerResult r =
      schedule_streaming_graph(g, 6, PartitionVariant::kRLX);
  ASSERT_EQ(r.schedule.partition.block_count(), 1u);
  // Paper: "the buffer space for the channel [into task 5 from the short
  // chain] must be equal to 32" — which is the full edge volume, so the
  // allocation is capped there too.
  EXPECT_EQ(requirement_between(g, r.buffers, 4, 5), 32);
  EXPECT_EQ(capacity_between(g, r.buffers, 4, 5), 32);
  EXPECT_EQ(capacity_between(g, r.buffers, 2, 5), 2);
}

TEST(BufferSizing, CapacityCappedAtEdgeVolume) {
  // Join with an extreme delay difference: the required space exceeds the
  // data volume, so the volume is enough (paper Section 6).
  TaskGraph g;
  const NodeId s = g.add_source(8, "s");
  const NodeId d1 = g.add_compute("d1");  // 8 -> 1
  const NodeId u1 = g.add_compute("u1");  // 1 -> 8
  const NodeId join = g.add_compute("join");
  g.add_edge(s, d1, 8);
  g.add_edge(d1, u1, 1);
  g.add_edge(u1, join, 8);
  g.add_edge(s, join, 8);
  g.declare_output(join, 8);
  const StreamingSchedulerResult r =
      schedule_streaming_graph(g, 4, PartitionVariant::kRLX);
  const std::int64_t cap = capacity_between(g, r.buffers, s, join);
  EXPECT_EQ(cap, 8);  // requirement + slack exceeds the volume: capped at 8
}

TEST(BufferSizing, TreeShapedBlocksUseDefaultCapacity) {
  TaskGraph g;
  NodeId prev = g.add_source(16, "s");
  for (int i = 0; i < 4; ++i) {
    const NodeId next = g.add_compute("c" + std::to_string(i));
    g.add_edge(prev, next, 16);
    prev = next;
  }
  g.declare_output(prev, 16);
  const StreamingSchedulerResult r =
      schedule_streaming_graph(g, 8, PartitionVariant::kRLX);
  for (const ChannelPlan& c : r.buffers.channels) {
    EXPECT_FALSE(c.on_undirected_cycle);
    EXPECT_EQ(c.eq5_requirement, 0);
    EXPECT_EQ(c.capacity, 2);  // double-buffering slack only
  }
  EXPECT_EQ(r.buffers.total_capacity, 8);
}

TEST(BufferSizing, OnlyInBlockEdgesGetChannels) {
  const TaskGraph g = testing::figure9_graph1();
  SpatialPartition p;
  p.block_of = {0, 0, 1, 1, 1};
  p.blocks = {{0, 1}, {2, 3, 4}};
  const StreamingSchedule s = schedule_streaming(g, p);
  const BufferPlan plan = compute_buffer_plan(g, s);
  // Edges 1->2 (cross-block) and 0->4 (cross-block) have no FIFO.
  EXPECT_EQ(capacity_between(g, plan, 1, 2), -1);
  EXPECT_EQ(capacity_between(g, plan, 0, 4), -1);
  EXPECT_EQ(capacity_between(g, plan, 0, 1), 2);
  EXPECT_EQ(capacity_between(g, plan, 3, 4), 2);
  // And the cross-block split removes the undirected cycle entirely.
  for (const ChannelPlan& c : plan.channels) EXPECT_FALSE(c.on_undirected_cycle);
}

TEST(BufferSizing, LargerDefaultCapacityRespected) {
  const TaskGraph g = testing::figure9_graph1();
  const StreamingSchedule s =
      schedule_streaming(g, partition_spatial_blocks(g, 8, PartitionVariant::kRLX));
  const BufferPlan plan = compute_buffer_plan(g, s, /*default_capacity=*/4);
  EXPECT_EQ(capacity_between(g, plan, 1, 2), 4);
  EXPECT_EQ(capacity_between(g, plan, 0, 4), 21);  // 18 + 3 slack slots
  EXPECT_THROW(compute_buffer_plan(g, s, 0), std::invalid_argument);
}

TEST(BufferSizing, TotalCapacityAccumulates) {
  const TaskGraph g = make_fft(8, /*seed=*/6);
  const StreamingSchedulerResult r =
      schedule_streaming_graph(g, 64, PartitionVariant::kRLX);
  std::int64_t sum = 0;
  for (const ChannelPlan& c : r.buffers.channels) sum += c.capacity;
  EXPECT_EQ(sum, r.buffers.total_capacity);
  EXPECT_GE(sum, static_cast<std::int64_t>(r.buffers.channels.size()));
}

TEST(BufferSizing, CycleEdgesFlagged) {
  const TaskGraph g = testing::figure9_graph2();
  const StreamingSchedulerResult r =
      schedule_streaming_graph(g, 6, PartitionVariant::kRLX);
  int cycle_edges = 0;
  for (const ChannelPlan& c : r.buffers.channels) {
    if (c.on_undirected_cycle) ++cycle_edges;
  }
  // The undirected cycle 0-1-2-5-4-0 has 5 edges; 3->4 is a bridge.
  EXPECT_EQ(cycle_edges, 5);
}

}  // namespace
}  // namespace sts
