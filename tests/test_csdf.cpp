#include "csdf/csdf.hpp"

#include <gtest/gtest.h>

#include "core/streaming_scheduler.hpp"
#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

TEST(CsdfConversion, ElementwiseActorShape) {
  TaskGraph g;
  const NodeId s = g.add_source(8, "s");
  const NodeId e = g.add_compute("e");
  g.add_edge(s, e, 8);
  g.declare_output(e, 8);
  const CsdfGraph csdf = csdf_from_canonical(g);
  ASSERT_EQ(csdf.actor_count(), 2u);
  EXPECT_EQ(csdf.actor(0).phase_count, 1);
  EXPECT_EQ(csdf.actor(0).repetitions, 8);
  EXPECT_EQ(csdf.actor(1).phase_count, 1);
  EXPECT_EQ(csdf.actor(1).repetitions, 8);
  ASSERT_EQ(csdf.channel_count(), 1u);
  EXPECT_EQ(csdf.channel(0).production, (std::vector<std::int64_t>{1}));
  EXPECT_EQ(csdf.channel(0).consumption, (std::vector<std::int64_t>{1}));
}

TEST(CsdfConversion, DownsamplerPhases) {
  TaskGraph g;
  const NodeId s = g.add_source(8, "s");
  const NodeId d = g.add_compute("d");  // R = 1/4
  g.add_edge(s, d, 8);
  g.declare_output(d, 2);
  const CsdfGraph csdf = csdf_from_canonical(g);
  EXPECT_EQ(csdf.actor(1).phase_count, 4);
  EXPECT_EQ(csdf.actor(1).repetitions, 8);  // 2 cycles of 4 phases
  // Consumes one token per phase.
  EXPECT_EQ(csdf.channel(0).consumption, (std::vector<std::int64_t>{1, 1, 1, 1}));
}

TEST(CsdfConversion, UpsamplerPhases) {
  TaskGraph g;
  const NodeId s = g.add_source(2, "s");
  const NodeId u = g.add_compute("u");  // R = 4
  g.add_edge(s, u, 2);
  g.declare_output(u, 8);
  const NodeId e = g.add_compute("e");
  g.add_edge(u, e, 8);
  g.declare_output(e, 8);
  const CsdfGraph csdf = csdf_from_canonical(g);
  EXPECT_EQ(csdf.actor(1).phase_count, 4);
  EXPECT_EQ(csdf.actor(1).repetitions, 8);
  // Consumes only in the first phase of each cycle; produces every phase.
  const CsdfChannel& in = csdf.channel(0);
  EXPECT_EQ(in.consumption, (std::vector<std::int64_t>{1, 0, 0, 0}));
  const CsdfChannel& out = csdf.channel(1);
  EXPECT_EQ(out.production, (std::vector<std::int64_t>{1, 1, 1, 1}));
}

TEST(CsdfConversion, RejectsBufferNodes) {
  EXPECT_THROW(csdf_from_canonical(testing::buffer_split_example()), std::invalid_argument);
}

TEST(CsdfSelfTimed, ChainMakespanMatchesStreamingDepth) {
  TaskGraph g;
  const std::int64_t k = 16;
  NodeId prev = g.add_source(k, "s");
  const int chain = 4;
  for (int i = 1; i < chain; ++i) {
    const NodeId next = g.add_compute("c" + std::to_string(i));
    g.add_edge(prev, next, k);
    prev = next;
  }
  g.declare_output(prev, k);
  const CsdfAnalysis a = analyze_self_timed(csdf_from_canonical(g));
  EXPECT_FALSE(a.deadlocked);
  EXPECT_FALSE(a.timed_out);
  EXPECT_EQ(a.makespan, k + chain - 1);
  EXPECT_EQ(a.firings, 4 * k);
}

TEST(CsdfSelfTimed, MatchesStreamingScheduleOnSingleBlock) {
  // With P = #nodes the streaming schedule co-schedules everything; the
  // CSDF self-timed makespan should be close (paper Figure 12 right: ratios
  // within a few percent).
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const TaskGraph g = make_fft(8, seed);
    const auto r = schedule_streaming_graph(
        g, static_cast<std::int64_t>(g.node_count()), PartitionVariant::kRLX);
    const CsdfAnalysis a = analyze_self_timed(csdf_from_canonical(g));
    ASSERT_FALSE(a.deadlocked);
    const double ratio = static_cast<double>(r.schedule.makespan) /
                         static_cast<double>(a.makespan);
    EXPECT_GT(ratio, 0.8) << "seed " << seed;
    EXPECT_LT(ratio, 1.35) << "seed " << seed;
  }
}

TEST(CsdfSelfTimed, TimeoutBudgetRespected) {
  const TaskGraph g = make_chain(8, /*seed=*/1);
  const CsdfAnalysis a = analyze_self_timed(csdf_from_canonical(g), /*max_firings=*/5);
  EXPECT_TRUE(a.timed_out);
  EXPECT_EQ(a.firings, 5);
}

TEST(CsdfSelfTimed, DeadlockDetectedOnStarvedGraph) {
  // An actor that needs two tokens it never gets.
  CsdfGraph g;
  const auto a = g.add_actor(CsdfActor{"a", 1, 1});
  const auto b = g.add_actor(CsdfActor{"b", 1, 1});
  CsdfChannel ch;
  ch.src = a;
  ch.dst = b;
  ch.production = {1};
  ch.consumption = {2};  // b needs 2 tokens but a only fires once
  g.add_channel(ch);
  const CsdfAnalysis r = analyze_self_timed(g);
  EXPECT_TRUE(r.deadlocked);
}

TEST(CsdfGraph, ApiGuards) {
  CsdfGraph g;
  EXPECT_THROW(g.add_actor(CsdfActor{"bad", 0, 1}), std::invalid_argument);
  const auto a = g.add_actor(CsdfActor{"a", 2, 2});
  const auto b = g.add_actor(CsdfActor{"b", 1, 1});
  CsdfChannel ch;
  ch.src = a;
  ch.dst = b;
  ch.production = {1};  // wrong length: actor a has 2 phases
  ch.consumption = {1};
  EXPECT_THROW(g.add_channel(ch), std::invalid_argument);
  ch.src = 99;
  EXPECT_THROW(g.add_channel(ch), std::out_of_range);
}

TEST(CsdfGraph, TotalFiringsSum) {
  CsdfGraph g;
  g.add_actor(CsdfActor{"a", 1, 3});
  g.add_actor(CsdfActor{"b", 2, 4});
  EXPECT_EQ(g.total_firings(), 7);
}

TEST(CsdfThroughput, ConvergesOnChainWithUnitPeriod) {
  // A pipelined chain with the sink->source back edge: each iteration takes
  // the same time once the period stabilizes, and the period equals the
  // single-iteration makespan (only one iteration in flight).
  TaskGraph g;
  const std::int64_t k = 16;
  NodeId prev = g.add_source(k, "s");
  for (int i = 1; i < 4; ++i) {
    const NodeId next = g.add_compute("c" + std::to_string(i));
    g.add_edge(prev, next, k);
    prev = next;
  }
  g.declare_output(prev, k);
  const CsdfThroughput t = analyze_throughput(csdf_from_canonical(g), /*max_iterations=*/5);
  EXPECT_FALSE(t.deadlocked);
  EXPECT_FALSE(t.timed_out);
  EXPECT_TRUE(t.converged);
  EXPECT_EQ(t.first_iteration_makespan, k + 3);
  EXPECT_EQ(t.period, t.first_iteration_makespan);
  EXPECT_EQ(t.iterations_executed, 5);
}

TEST(CsdfThroughput, GatingKeepsOneIterationInFlight) {
  // Without gating a source would start iteration 2 immediately; the
  // back-edge token delays it until the sinks finish, so total time is
  // iterations * period rather than period + (iterations-1).
  TaskGraph g;
  const NodeId s = g.add_source(8, "s");
  const NodeId c = g.add_compute("c");
  g.add_edge(s, c, 8);
  g.declare_output(c, 8);
  const CsdfThroughput t = analyze_throughput(csdf_from_canonical(g), /*max_iterations=*/3);
  ASSERT_FALSE(t.deadlocked);
  ASSERT_EQ(t.iterations_executed, 3);
  EXPECT_EQ(t.first_iteration_makespan, 9);
  EXPECT_EQ(t.period, 9);
  EXPECT_EQ(t.firings, 3 * 16);
}

TEST(CsdfThroughput, MatchesSelfTimedFirstIteration) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const TaskGraph g = make_fft(8, seed);
    const CsdfGraph csdf = csdf_from_canonical(g);
    const CsdfAnalysis single = analyze_self_timed(csdf);
    const CsdfThroughput multi = analyze_throughput(csdf, /*max_iterations=*/3);
    ASSERT_FALSE(multi.deadlocked) << seed;
    EXPECT_EQ(multi.first_iteration_makespan, single.makespan) << seed;
    EXPECT_GE(multi.period, single.makespan) << seed;  // back edge serializes
  }
}

TEST(CsdfThroughput, FiringBudgetReported) {
  const TaskGraph g = make_chain(6, 2);
  const CsdfThroughput t =
      analyze_throughput(csdf_from_canonical(g), /*max_iterations=*/4, /*max_firings=*/10);
  EXPECT_TRUE(t.timed_out);
  EXPECT_EQ(t.firings, 10);
}

}  // namespace
}  // namespace sts
