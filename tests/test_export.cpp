#include <gtest/gtest.h>

#include "core/schedule_export.hpp"
#include "core/streaming_scheduler.hpp"
#include "graph/dot_export.hpp"
#include "paper_examples.hpp"

namespace sts {
namespace {

TEST(DotExport, ContainsAllNodesAndEdges) {
  const TaskGraph g = testing::figure8_graph();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    EXPECT_NE(dot.find("n" + std::to_string(v) + " ["), std::string::npos) << v;
  }
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n3 -> n4"), std::string::npos);
}

TEST(DotExport, AnnotatesNodeTypes) {
  const TaskGraph g = testing::figure8_graph();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("source O=16"), std::string::npos);
  EXPECT_NE(dot.find("D R=1/4"), std::string::npos);  // downsampler
  EXPECT_NE(dot.find("U R=2"), std::string::npos);    // upsampler
}

TEST(DotExport, BuffersDrawnAsBoxes) {
  const TaskGraph g = testing::buffer_split_example();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("B[4]"), std::string::npos);  // buffer with I=4
}

TEST(DotExport, OptionsSuppressLabels) {
  const TaskGraph g = testing::figure8_graph();
  DotOptions options;
  options.show_volumes = false;
  options.show_rates = false;
  const std::string dot = to_dot(g, options);
  EXPECT_EQ(dot.find("label=\"16\""), std::string::npos);
  EXPECT_EQ(dot.find("R="), std::string::npos);
}

TEST(Gantt, PaintsEveryTaskRow) {
  const TaskGraph g = testing::figure8_graph();
  const auto r = schedule_streaming_graph(g, 5, PartitionVariant::kRLX);
  const std::string gantt = to_gantt(g, r.schedule, 60);
  EXPECT_NE(gantt.find("block 0"), std::string::npos);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_NE(gantt.find("t" + std::to_string(v)), std::string::npos);
  }
  EXPECT_NE(gantt.find('#'), std::string::npos);
  EXPECT_NE(gantt.find('F'), std::string::npos);  // first-out markers
}

TEST(Gantt, HandlesDegenerateInput) {
  const TaskGraph g = testing::figure8_graph();
  StreamingSchedule empty;
  empty.timing.assign(g.node_count(), TaskTiming{});
  const std::string gantt = to_gantt(g, empty, 40);
  EXPECT_NE(gantt.find("empty schedule"), std::string::npos);
}

TEST(ScheduleJson, StructureAndValues) {
  const TaskGraph g = testing::figure8_graph();
  const auto r = schedule_streaming_graph(g, 5, PartitionVariant::kRLX);
  const std::string json = to_schedule_json(g, r.schedule, &r.buffers);
  EXPECT_NE(json.find("\"makespan\": 34"), std::string::npos);
  EXPECT_NE(json.find("\"st\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"fo\": 8"), std::string::npos);   // task 1
  EXPECT_NE(json.find("\"lo\": 34"), std::string::npos);  // task 4
  EXPECT_NE(json.find("\"channels\""), std::string::npos);
  EXPECT_NE(json.find("\"total_buffer_space\""), std::string::npos);
  // Rational intervals serialized as strings.
  EXPECT_NE(json.find("\"s_out\": \"2\""), std::string::npos);
}

TEST(ScheduleJson, OmitsChannelsWithoutPlan) {
  const TaskGraph g = testing::figure8_graph();
  const auto r = schedule_streaming_graph(g, 5, PartitionVariant::kRLX);
  const std::string json = to_schedule_json(g, r.schedule);
  EXPECT_EQ(json.find("\"channels\""), std::string::npos);
}

TEST(ScheduleJson, EscapesNames) {
  TaskGraph g;
  const NodeId a = g.add_source(4, "weird\"name");
  const NodeId b = g.add_compute("b");
  g.add_edge(a, b, 4);
  g.declare_output(b, 4);
  const auto r = schedule_streaming_graph(g, 2, PartitionVariant::kRLX);
  const std::string json = to_schedule_json(g, r.schedule);
  EXPECT_NE(json.find("weird\\\"name"), std::string::npos);
}

}  // namespace
}  // namespace sts
