// Property-based fuzzing of the full pipeline over random layered DAGs:
// arbitrary canonical topologies (fan-in/fan-out, skip edges, mixed rates)
// must always produce valid partitions, monotone schedules, deadlock-free
// simulations, and near-agreeing makespans. These sweeps exercise corner
// shapes the hand-built workloads do not (diamonds, wide joins, deep skips).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baseline/list_scheduler.hpp"
#include "core/streaming_scheduler.hpp"
#include "core/work_depth.hpp"
#include "csdf/csdf.hpp"
#include "fuzz_specs.hpp"
#include "sim/dataflow_sim.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

using testing::fuzz_spec_for;

class FuzzPipeline : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(FuzzPipeline, EndToEndInvariantsHold) {
  const auto [shape, seed] = GetParam();
  const TaskGraph g = make_random_layered(fuzz_spec_for(shape), seed);
  ASSERT_TRUE(g.validate().empty());

  const auto tasks = static_cast<std::int64_t>(g.node_count());
  for (const std::int64_t pes : {std::int64_t{3}, tasks / 2 + 1, tasks}) {
    for (const auto variant : {PartitionVariant::kLTS, PartitionVariant::kRLX}) {
      const auto r = schedule_streaming_graph(g, pes, variant);

      // Partition invariants.
      ASSERT_TRUE(partition_is_valid(g, r.schedule.partition, pes));

      // Timing invariants: ST < FO <= LO, blocks tile the timeline.
      for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
        if (!g.occupies_pe(v)) continue;
        const TaskTiming& t = r.schedule.at(v);
        ASSERT_LT(t.start, t.first_out) << "node " << v;
        ASSERT_LE(t.first_out, t.last_out) << "node " << v;
        ASSERT_GE(t.start, r.schedule.block_start[static_cast<std::size_t>(t.block)]);
        ASSERT_LE(t.last_out, r.schedule.block_end[static_cast<std::size_t>(t.block)]);
      }

      // Buffer plan invariants: capacities within [1, volume].
      for (const ChannelPlan& c : r.buffers.channels) {
        ASSERT_GE(c.capacity, 1);
        ASSERT_LE(c.capacity, g.edge(c.edge).volume);
      }

      // Simulation: deadlock-free, makespan agreement within tolerance.
      const SimResult sim = simulate_streaming(g, r.schedule, r.buffers);
      ASSERT_FALSE(sim.deadlocked)
          << "shape " << shape << " seed " << seed << " pes " << pes;
      ASSERT_FALSE(sim.tick_limit_reached);
      const double err = std::abs(static_cast<double>(r.schedule.makespan) -
                                  static_cast<double>(sim.makespan)) /
                         static_cast<double>(sim.makespan);
      EXPECT_LT(err, 0.30) << "shape " << shape << " seed " << seed << " pes " << pes
                           << " analytic " << r.schedule.makespan << " sim " << sim.makespan;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FuzzPipeline,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(11u, 22u, 33u, 44u, 55u)));

class FuzzAnalysis : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzAnalysis, StreamingDepthAndBaselineBounds) {
  const TaskGraph g = make_random_layered(LayeredSpec{}, GetParam());
  const WorkDepth wd = analyze_work_depth(g);
  ASSERT_GT(wd.work, 0);
  ASSERT_GT(wd.streaming_depth, Rational(0));

  // Non-streaming baseline: bounded by critical path and total work.
  const auto bl = bottom_levels(g);
  std::int64_t cp = 0;
  for (const auto b : bl) cp = std::max(cp, b);
  const ListSchedule nstr = schedule_non_streaming(g, 8);
  EXPECT_GE(nstr.makespan, cp);
  EXPECT_LE(nstr.makespan, wd.work);

  // CSDF conversion stays consistent for buffer-free graphs.
  const CsdfGraph csdf = csdf_from_canonical(g);
  const CsdfAnalysis analysis = analyze_self_timed(csdf);
  EXPECT_FALSE(analysis.deadlocked);
  EXPECT_GT(analysis.makespan, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzAnalysis,
                         ::testing::Values(7u, 14u, 21u, 28u, 35u, 42u, 49u, 56u));

TEST(FuzzGenerator, LayeredGraphsAreValidAndDeterministic) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const TaskGraph a = make_random_layered(LayeredSpec{}, seed);
    EXPECT_TRUE(a.validate().empty()) << seed;
    const TaskGraph b = make_random_layered(LayeredSpec{}, seed);
    ASSERT_EQ(a.node_count(), b.node_count());
    ASSERT_EQ(a.edge_count(), b.edge_count());
    for (NodeId v = 0; static_cast<std::size_t>(v) < a.node_count(); ++v) {
      EXPECT_EQ(a.output_volume(v), b.output_volume(v));
    }
  }
}

TEST(FuzzGenerator, SpecGuards) {
  LayeredSpec bad;
  bad.layers = 0;
  EXPECT_THROW(make_random_layered(bad, 1), std::invalid_argument);
  bad = LayeredSpec{};
  bad.edge_probability = 1.5;
  EXPECT_THROW(make_random_layered(bad, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sts
