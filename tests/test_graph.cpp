#include "graph/task_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <stdexcept>
#include <thread>

#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

bool has_issue_containing(const std::vector<std::string>& issues, const std::string& text) {
  return std::any_of(issues.begin(), issues.end(), [&](const std::string& s) {
    return s.find(text) != std::string::npos;
  });
}

TEST(TaskGraph, BuildsAndQueriesVolumes) {
  TaskGraph g;
  const NodeId src = g.add_source(8, "src");
  const NodeId mid = g.add_compute("mid");
  g.add_edge(src, mid, 8);
  g.declare_output(mid, 4);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.input_volume(src), 0);
  EXPECT_EQ(g.output_volume(src), 8);
  EXPECT_EQ(g.input_volume(mid), 8);
  EXPECT_EQ(g.output_volume(mid), 4);
  EXPECT_EQ(g.rate(mid), Rational(1, 2));
  EXPECT_TRUE(g.is_downsampler(mid));
  EXPECT_TRUE(g.validate().empty());
}

TEST(TaskGraph, NodeKindPredicates) {
  TaskGraph g;
  const NodeId src = g.add_source(4, "s");
  const NodeId up = g.add_compute("up");
  const NodeId elem = g.add_compute("e");
  const NodeId down = g.add_compute("d");
  g.add_edge(src, up, 4);
  g.add_edge(up, elem, 16);
  g.add_edge(elem, down, 16);
  g.declare_output(down, 4);
  EXPECT_TRUE(g.is_upsampler(up));
  EXPECT_TRUE(g.is_elementwise(elem));
  EXPECT_TRUE(g.is_downsampler(down));
  EXPECT_EQ(g.rate(up), Rational(4));
}

TEST(TaskGraph, WorkIsMaxOfVolumes) {
  const TaskGraph g = testing::figure8_graph();
  EXPECT_EQ(g.work(0), 16);  // source: O only
  EXPECT_EQ(g.work(1), 16);  // max(16, 4)
  EXPECT_EQ(g.work(3), 32);  // max(16, 32)
  EXPECT_EQ(g.total_work(), 16 + 16 + 4 + 32 + 32);
}

TEST(TaskGraph, BufferNodesHaveNoWorkAndNoPe) {
  const TaskGraph g = testing::buffer_split_example();
  const NodeId buf = 3;
  ASSERT_EQ(g.kind(buf), NodeKind::kBuffer);
  EXPECT_EQ(g.work(buf), 0);
  EXPECT_FALSE(g.occupies_pe(buf));
  EXPECT_EQ(g.rate(buf), Rational(2));
}

TEST(TaskGraphValidate, AcceptsPaperExamples) {
  EXPECT_TRUE(testing::figure8_graph().validate().empty());
  EXPECT_TRUE(testing::figure9_graph1().validate().empty());
  EXPECT_TRUE(testing::figure9_graph2().validate().empty());
  EXPECT_TRUE(testing::figure6_graph().validate().empty());
  EXPECT_TRUE(testing::buffer_split_example().validate().empty());
}

TEST(TaskGraphValidate, RejectsUnequalInputVolumes) {
  TaskGraph g;
  const NodeId a = g.add_source(4, "a");
  const NodeId b = g.add_source(8, "b");
  const NodeId join = g.add_compute("join");
  g.add_edge(a, join, 4);
  g.add_edge(b, join, 8);
  g.declare_output(join, 4);
  EXPECT_TRUE(has_issue_containing(g.validate(), "input edges carry different volumes"));
}

TEST(TaskGraphValidate, RejectsUnequalOutputVolumes) {
  TaskGraph g;
  const NodeId a = g.add_source(4, "a");
  const NodeId c1 = g.add_compute("c1");
  const NodeId c2 = g.add_compute("c2");
  g.add_edge(a, c1, 4);
  g.add_edge(a, c2, 8);  // source now emits 4 and 8
  g.declare_output(c1, 4);
  g.declare_output(c2, 8);
  EXPECT_TRUE(has_issue_containing(g.validate(), "output edges carry different volumes"));
}

TEST(TaskGraphValidate, RejectsExitComputeWithoutDeclaredOutput) {
  TaskGraph g;
  const NodeId a = g.add_source(4, "a");
  const NodeId c = g.add_compute("c");
  g.add_edge(a, c, 4);
  EXPECT_TRUE(has_issue_containing(g.validate(), "exit compute node without declared output"));
}

TEST(TaskGraphValidate, RejectsComputeWithoutInputs) {
  TaskGraph g;
  const NodeId c = g.add_compute("c");
  g.declare_output(c, 4);
  EXPECT_TRUE(has_issue_containing(g.validate(), "without inputs"));
}

TEST(TaskGraphValidate, RejectsDanglingBuffer) {
  TaskGraph g;
  const NodeId a = g.add_source(4, "a");
  const NodeId buf = g.add_buffer("buf");
  g.add_edge(a, buf, 4);
  g.declare_output(buf, 8);
  EXPECT_TRUE(has_issue_containing(g.validate(), "buffer node without outputs"));
}

TEST(TaskGraphValidate, RejectsDirectedCycle) {
  TaskGraph g;
  const NodeId a = g.add_source(4, "a");
  const NodeId b = g.add_compute("b");
  const NodeId c = g.add_compute("c");
  g.add_edge(a, b, 4);
  g.add_edge(b, c, 4);
  g.add_edge(c, b, 4);
  g.declare_output(c, 4);
  EXPECT_TRUE(has_issue_containing(g.validate(), "directed cycle"));
}

TEST(TaskGraphValidate, RejectsDeclaredOutputContradictingEdges) {
  TaskGraph g;
  const NodeId a = g.add_source(4, "a");
  const NodeId b = g.add_compute("b");
  g.add_edge(a, b, 4);
  g.declare_output(b, 4);
  const NodeId c = g.add_compute("c");
  g.add_edge(b, c, 8);  // contradicts declared 4
  g.declare_output(c, 8);
  EXPECT_TRUE(has_issue_containing(g.validate(), "contradicts out-edge volume"));
}

TEST(TaskGraphValidate, RejectsBufferOnWccCycle) {
  // Undirected cycle through a buffer (Section 4.2.3): x feeds both a buffer
  // and, via a compute path, the buffer's consumer.
  TaskGraph g;
  const NodeId x = g.add_source(4, "x");
  const NodeId buf = g.add_buffer("buf");
  const NodeId c = g.add_compute("c");
  const NodeId join = g.add_compute("join");
  g.add_edge(x, buf, 4);
  g.add_edge(x, c, 4);
  g.add_edge(buf, join, 4);
  g.add_edge(c, join, 4);
  g.declare_output(c, 4);
  g.declare_output(join, 4);
  EXPECT_TRUE(has_issue_containing(g.validate(), "buffer placement"));
}

TEST(TaskGraphValidate, ValidateOrThrowListsIssues) {
  TaskGraph g;
  const NodeId c = g.add_compute("lonely");
  (void)c;
  EXPECT_THROW(g.validate_or_throw(), std::invalid_argument);
}

TEST(TaskGraph, ApiGuards) {
  TaskGraph g;
  EXPECT_THROW(g.add_source(0, "zero"), std::invalid_argument);
  const NodeId a = g.add_source(4, "a");
  EXPECT_THROW(g.add_edge(a, a, 4), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, 42, 4), std::out_of_range);
  EXPECT_THROW(g.add_edge(a, a + 1, 4), std::out_of_range);
  const NodeId b = g.add_compute("b");
  EXPECT_THROW(g.add_edge(a, b, 0), std::invalid_argument);
  EXPECT_THROW(g.declare_output(b, -1), std::invalid_argument);
  EXPECT_THROW((void)g.rate(a), std::logic_error);  // sources have no production rate
}

TEST(TaskGraph, CopyRebuildsCsrAndMovePreservesIt) {
  TaskGraph g;
  const NodeId s = g.add_source(8, "s");
  const NodeId c = g.add_compute("c");
  g.add_edge(s, c, 8);
  g.declare_output(c, 8);
  ASSERT_EQ(g.work(c), 8);  // forces the CSR build

  const TaskGraph copy = g;  // copies the graph, rebuilds caches on demand
  EXPECT_EQ(copy.in_degree(c), 1u);
  EXPECT_EQ(copy.work(c), 8);

  const TaskGraph moved = std::move(g);
  EXPECT_EQ(moved.out_degree(s), 1u);
  EXPECT_EQ(moved.work(c), 8);
}

TEST(TaskGraph, ConcurrentFirstAccessIsSafe) {
  // The lazy CSR rebuild must be safe for threads sharing a const graph --
  // the ScheduleCache schedules on shared graphs outside its lock.
  for (int round = 0; round < 20; ++round) {
    const TaskGraph g = make_fft(8, static_cast<std::uint64_t>(round) + 1);
    std::vector<std::thread> threads;
    std::array<std::int64_t, 8> sums{};
    for (std::size_t t = 0; t < sums.size(); ++t) {
      threads.emplace_back([&g, &sums, t] {
        std::int64_t sum = 0;
        for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
          sum += g.work(v) + static_cast<std::int64_t>(g.in_degree(v));
          for (const EdgeId e : g.out_edges(v)) sum += g.edge(e).volume;
        }
        sums[t] = sum;
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (const std::int64_t sum : sums) EXPECT_EQ(sum, sums[0]);
  }
}

}  // namespace
}  // namespace sts
