#include "baseline/heft.hpp"

#include <gtest/gtest.h>

#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

TEST(Heft, HomogeneousMatchesBaselineMakespan) {
  // With unit speeds, HEFT's upward ranks equal the bottom levels and the
  // schedule quality matches the homogeneous list scheduler.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const TaskGraph g = make_gaussian_elimination(8, seed);
    for (const std::int64_t pes : {2, 4, 8}) {
      const ListSchedule heft = schedule_heft(g, HeterogeneousSystem::homogeneous(pes));
      const ListSchedule baseline = schedule_non_streaming(g, pes);
      EXPECT_EQ(heft.makespan, baseline.makespan) << "seed " << seed << " pes " << pes;
    }
  }
}

TEST(Heft, UpwardRanksAreMeanCostPlusSuccessor) {
  const TaskGraph g = testing::figure9_graph1();
  HeterogeneousSystem system;
  system.pe_speed = {1.0, 2.0};  // mean duration = work * (1 + 0.5) / 2
  const auto ranks = upward_ranks(g, system);
  EXPECT_DOUBLE_EQ(ranks[4], 32 * 0.75);
  EXPECT_DOUBLE_EQ(ranks[3], 32 * 0.75 + ranks[4]);
}

TEST(Heft, FasterPePreferredWhenIdle) {
  TaskGraph g;
  g.add_source(100, "t");
  HeterogeneousSystem system;
  system.pe_speed = {1.0, 4.0};
  const ListSchedule s = schedule_heft(g, system);
  EXPECT_EQ(s.at(0).pe, 1);
  EXPECT_EQ(s.makespan, 25);  // 100 / 4
}

TEST(Heft, SlowPeUsedWhenItFinishesEarlier) {
  // Two independent tasks, one fast PE: the second task goes to the slow PE
  // if waiting for the fast one would finish later.
  TaskGraph g;
  g.add_source(100, "a");
  g.add_source(100, "b");
  HeterogeneousSystem system;
  system.pe_speed = {1.0, 10.0};
  const ListSchedule s = schedule_heft(g, system);
  // Fast PE: 10 units. Slow PE: 100 units. Queueing both on the fast PE
  // gives 20 — better than 100, so HEFT keeps both there.
  EXPECT_EQ(s.makespan, 20);
  EXPECT_EQ(s.at(0).pe, 1);
  EXPECT_EQ(s.at(1).pe, 1);
}

TEST(Heft, PrecedenceRespectedUnderHeterogeneity) {
  const TaskGraph g = make_cholesky(4, 5);
  HeterogeneousSystem system;
  system.pe_speed = {0.5, 1.0, 2.0, 4.0};
  const ListSchedule s = schedule_heft(g, system);
  for (EdgeId e = 0; static_cast<std::size_t>(e) < g.edge_count(); ++e) {
    EXPECT_GE(s.at(g.edge(e).dst).start, s.at(g.edge(e).src).finish);
  }
}

TEST(Heft, DurationsScaleWithSpeed) {
  HeterogeneousSystem system;
  system.pe_speed = {1.0, 2.0, 3.0};
  EXPECT_EQ(system.duration(10, 0), 10);
  EXPECT_EQ(system.duration(10, 1), 5);
  EXPECT_EQ(system.duration(10, 2), 4);  // ceil(10/3)
  EXPECT_DOUBLE_EQ(system.mean_duration(6), (6.0 + 3.0 + 2.0) / 3.0);
}

TEST(Heft, FasterFabricNeverSlower) {
  const TaskGraph g = make_fft(8, 2);
  HeterogeneousSystem slow = HeterogeneousSystem::homogeneous(4);
  HeterogeneousSystem fast = slow;
  for (auto& s : fast.pe_speed) s = 2.0;
  EXPECT_LE(schedule_heft(g, fast).makespan, schedule_heft(g, slow).makespan);
}

TEST(Heft, BufferNodesTakeNoTime) {
  const TaskGraph g = testing::buffer_split_example();
  HeterogeneousSystem system;
  system.pe_speed = {1.0, 3.0};
  const ListSchedule s = schedule_heft(g, system);
  const NodeId buf = 3;
  EXPECT_EQ(s.at(buf).pe, -1);
  EXPECT_EQ(s.at(buf).start, s.at(buf).finish);
}

TEST(Heft, Guards) {
  const TaskGraph g = testing::figure8_graph();
  EXPECT_THROW(schedule_heft(g, HeterogeneousSystem{}), std::invalid_argument);
  HeterogeneousSystem bad;
  bad.pe_speed = {1.0, 0.0};
  EXPECT_THROW(schedule_heft(g, bad), std::invalid_argument);
}

}  // namespace
}  // namespace sts
