// Incremental rescheduling coverage: canonical partition fingerprints must be
// invariant under node-id renumbering (fuzzed permutations), graph-edit lists
// must round-trip (edit + undo == base, bit-for-bit), fragment assembly must
// reproduce a cold schedule's result_fingerprint for every registry
// scheduler, and the delta request path (base_key + edits) through
// ScheduleService / ShardRouter must equal a cold schedule of the edited
// graph while reusing every untouched partition's fragment.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_edit.hpp"
#include "graph/serialization.hpp"
#include "graph/task_graph.hpp"
#include "paper_examples.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/result_fingerprint.hpp"
#include "pipeline/subgraph_cache.hpp"
#include "service/request.hpp"
#include "service/schedule_service.hpp"
#include "service/shard_router.hpp"
#include "support/json.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

/// Renumbers `g` so new node j is old node order[j], preserving kinds, names,
/// declared outputs, and the global edge insertion order (which preserves
/// each node's out-edge insertion order — the part the canonical form pins).
TaskGraph renumber(const TaskGraph& g, const std::vector<NodeId>& order) {
  std::vector<NodeId> new_id(g.node_count());
  for (std::size_t j = 0; j < order.size(); ++j) {
    new_id[static_cast<std::size_t>(order[j])] = static_cast<NodeId>(j);
  }
  TaskGraph out;
  for (std::size_t j = 0; j < order.size(); ++j) {
    const NodeId v = order[j];
    switch (g.kind(v)) {
      case NodeKind::kSource:
        out.add_source(g.declared_output(v), g.name(v));
        break;
      case NodeKind::kCompute: {
        const NodeId lv = out.add_compute(g.name(v));
        if (g.declared_output(v) > 0) out.declare_output(lv, g.declared_output(v));
        break;
      }
      case NodeKind::kBuffer: {
        const NodeId lv = out.add_buffer(g.name(v));
        if (g.declared_output(v) > 0) out.declare_output(lv, g.declared_output(v));
        break;
      }
      case NodeKind::kSink:
        out.add_sink(g.name(v));
        break;
    }
  }
  for (EdgeId e = 0; static_cast<std::size_t>(e) < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    out.add_edge(new_id[static_cast<std::size_t>(edge.src)],
                 new_id[static_cast<std::size_t>(edge.dst)], edge.volume);
  }
  return out;
}

/// True when the structural refinement separated every node of every
/// partition (no tied hashes). Tied families fall back to original-id order
/// — documented to possibly miss the cache under renumbering — so the strict
/// invariance assertions only apply to separated graphs.
bool wl_separated(const TaskGraph& g) {
  const CanonicalPartitionIndex index = canonical_partition_index(g);
  for (std::int32_t c = 0; c < index.count; ++c) {
    const auto nodes = index.nodes(c);
    std::vector<std::uint64_t> hashes;
    hashes.reserve(nodes.size());
    for (const NodeId v : nodes) hashes.push_back(index.node_hash[static_cast<std::size_t>(v)]);
    std::sort(hashes.begin(), hashes.end());
    if (std::adjacent_find(hashes.begin(), hashes.end()) != hashes.end()) return false;
  }
  return true;
}

/// Sorted multiset of the graph's canonical partition forms — the
/// renumbering-invariant identity of its connected partitions.
std::vector<std::string> partition_forms(const TaskGraph& g) {
  const CanonicalPartitionIndex index = canonical_partition_index(g);
  std::vector<std::string> forms;
  forms.reserve(static_cast<std::size_t>(index.count));
  for (std::int32_t c = 0; c < index.count; ++c) {
    forms.push_back(canonical_partition_form(g, index, c));
  }
  std::sort(forms.begin(), forms.end());
  return forms;
}

/// A multi-component graph: several random layered components with
/// heterogeneous volumes (WL-separable, so canonicalization is stable under
/// permutation), built as one graph.
TaskGraph multi_component_graph(int components, std::uint64_t seed) {
  TaskGraph g;
  for (int c = 0; c < components; ++c) {
    LayeredSpec spec;
    spec.layers = 3 + c % 3;
    spec.width = 2 + c % 4;
    spec.edge_probability = 0.3;
    const TaskGraph part = make_random_layered(spec, seed + static_cast<std::uint64_t>(c));
    const auto base = static_cast<NodeId>(g.node_count());
    for (NodeId v = 0; static_cast<std::size_t>(v) < part.node_count(); ++v) {
      switch (part.kind(v)) {
        case NodeKind::kSource:
          g.add_source(part.declared_output(v));
          break;
        case NodeKind::kCompute: {
          const NodeId nv = g.add_compute();
          if (part.declared_output(v) > 0) g.declare_output(nv, part.declared_output(v));
          break;
        }
        case NodeKind::kBuffer: {
          const NodeId nv = g.add_buffer();
          if (part.declared_output(v) > 0) g.declare_output(nv, part.declared_output(v));
          break;
        }
        case NodeKind::kSink:
          g.add_sink();
          break;
      }
    }
    for (EdgeId e = 0; static_cast<std::size_t>(e) < part.edge_count(); ++e) {
      const Edge& edge = part.edge(e);
      g.add_edge(base + edge.src, base + edge.dst, edge.volume);
    }
  }
  return g;
}

/// First seed at or after `seed` whose multi_component_graph the refinement
/// fully separates — tests asserting strict fragment reuse start from a
/// deterministic separated instance instead of hoping about one seed.
TaskGraph separated_multi_component_graph(int components, std::uint64_t seed) {
  for (std::uint64_t s = seed; s < seed + 64; ++s) {
    TaskGraph g = multi_component_graph(components, s);
    if (wl_separated(g)) return g;
  }
  throw std::logic_error("no separated instance in 64 seeds — generator changed?");
}

/// The canonicity-safe one-node retune: rescale the declared output of the
/// first exit compute node (no out-edges, so no edge volume must agree).
/// Touches exactly one partition; every other partition's form is unchanged.
std::vector<GraphEdit> retune_exit(const TaskGraph& g, std::int64_t factor) {
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (g.kind(v) == NodeKind::kCompute && g.out_degree(v) == 0 && g.declared_output(v) > 0) {
      return {GraphEdit{GraphEdit::Op::kSetOutput, NodeKind::kCompute, v, -1, -1,
                        g.declared_output(v) * factor, ""}};
    }
  }
  throw std::logic_error("retune_exit: graph has no exit compute node");
}

// ------------------------------------------------- canonical partition index

TEST(CanonicalPartitionIndex, ComponentsPartitionTheNodeSet) {
  const TaskGraph g = multi_component_graph(4, 11);
  const CanonicalPartitionIndex index = canonical_partition_index(g);
  // At least the 4 requested components; layer-0 sources nobody picked as a
  // predecessor stay isolated and add singleton partitions.
  EXPECT_GE(index.count, 4);
  std::set<NodeId> seen;
  for (std::int32_t c = 0; c < index.count; ++c) {
    for (const NodeId v : index.nodes(c)) {
      EXPECT_EQ(index.component[static_cast<std::size_t>(v)], c);
      EXPECT_TRUE(seen.insert(v).second) << "node " << v << " listed twice";
    }
  }
  EXPECT_EQ(seen.size(), g.node_count());
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    const std::int32_t c = index.component[static_cast<std::size_t>(v)];
    const auto nodes = index.nodes(c);
    const auto at = nodes.begin() + index.rank[static_cast<std::size_t>(v)];
    EXPECT_EQ(*at, v) << "rank must be the node's position in its component order";
  }
}

TEST(CanonicalPartitionIndex, MaterializedPartitionRecanonicalizesToItself) {
  const TaskGraph g = multi_component_graph(3, 23);
  const CanonicalPartitionIndex index = canonical_partition_index(g);
  for (std::int32_t c = 0; c < index.count; ++c) {
    const std::string form = canonical_partition_form(g, index, c);
    const TaskGraph local = materialize_partition(g, index, c);
    const CanonicalPartitionIndex local_index = canonical_partition_index(local);
    ASSERT_EQ(local_index.count, 1);
    EXPECT_EQ(canonical_partition_form(local, local_index, 0), form)
        << "re-canonicalizing a materialized partition must be the identity";
  }
}

TEST(CanonicalPartitionIndex, FormsInvariantUnderFuzzedPermutations) {
  std::mt19937 rng(20230807);
  int separated = 0;
  for (int round = 0; round < 12; ++round) {
    const TaskGraph g = multi_component_graph(2 + round % 4, 100 + static_cast<std::uint64_t>(round));
    // Tied structural hashes (symmetric twins) legitimately break invariance
    // (documented fallback to original-id order), so only separated graphs
    // carry the strict assertion.
    if (!wl_separated(g)) continue;
    ++separated;
    const std::vector<std::string> base_forms = partition_forms(g);
    std::vector<NodeId> order(g.node_count());
    std::iota(order.begin(), order.end(), 0);
    for (int p = 0; p < 3; ++p) {
      std::shuffle(order.begin(), order.end(), rng);
      const TaskGraph permuted = renumber(g, order);
      EXPECT_EQ(partition_forms(permuted), base_forms)
          << "round " << round << " permutation " << p
          << ": canonical partition forms must not depend on node numbering";
    }
  }
  EXPECT_GE(separated, 6) << "refinement should separate most random layered graphs";
}

TEST(CanonicalPartitionIndex, PermutedGraphReusesEveryFragment) {
  const TaskGraph g = separated_multi_component_graph(4, 77);
  const auto n = static_cast<std::uint64_t>(canonical_partition_index(g).count);
  std::mt19937 rng(99);
  std::vector<NodeId> order(g.node_count());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  const TaskGraph permuted = renumber(g, order);

  MachineConfig machine;
  machine.num_pes = 4;
  SubgraphCache cache;
  const ScheduleResult first = schedule_with_subgraph_cache("streaming-rlx", g, machine, cache);
  const SubgraphCache::Stats after_first = cache.stats();
  EXPECT_EQ(after_first.partition_misses, n);
  EXPECT_EQ(after_first.partition_hits, 0u);

  const ScheduleResult second =
      schedule_with_subgraph_cache("streaming-rlx", permuted, machine, cache);
  const SubgraphCache::Stats after_second = cache.stats();
  EXPECT_EQ(after_second.partition_misses, n) << "a renumbered graph must be all hits";
  EXPECT_EQ(after_second.partition_hits, n);
  EXPECT_EQ(after_second.fragments_assembled, 2 * n);

  EXPECT_EQ(result_fingerprint(second),
            result_fingerprint(schedule_by_name("streaming-rlx", permuted, machine)))
      << "fragments reused across a renumbering must still assemble the"
         " permuted graph's own cold schedule";
  EXPECT_EQ(result_fingerprint(first),
            result_fingerprint(schedule_by_name("streaming-rlx", g, machine)));
}

// -------------------------------------------------------- canonicalization memo

void expect_same_index(const CanonicalPartitionIndex& a, const CanonicalPartitionIndex& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.component, b.component);
  EXPECT_EQ(a.node_hash, b.node_hash);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.offsets, b.offsets);
}

TEST(PartitionCanonMemo, MemoPathMatchesPlainPathColdAndWarm) {
  for (int components = 1; components <= 5; ++components) {
    const TaskGraph g = multi_component_graph(components, 500 + static_cast<std::uint64_t>(components));
    const CanonicalPartitionIndex plain = canonical_partition_index(g);
    PartitionCanonMemo memo;
    std::vector<std::shared_ptr<const PartitionCanonMemo::Ranks>> entries;
    // Cold memo: every partition misses, result must still be identical.
    expect_same_index(canonical_partition_index(g, &memo, &entries), plain);
    const auto pcount = static_cast<std::uint64_t>(plain.count);
    ASSERT_EQ(entries.size(), pcount);
    for (std::int32_t c = 0; c < plain.count; ++c) {
      ASSERT_NE(entries[static_cast<std::size_t>(c)], nullptr);
      EXPECT_EQ(entries[static_cast<std::size_t>(c)]->form,
                canonical_partition_form(g, plain, c))
          << "memo entries must carry the exact fragment-cache key material";
    }
    EXPECT_EQ(memo.stats().misses, pcount);
    // Warm memo: every partition hits, result must still be identical.
    expect_same_index(canonical_partition_index(g, &memo, &entries), plain);
    EXPECT_EQ(memo.stats().hits, pcount);
    EXPECT_EQ(memo.stats().misses, pcount);
  }
}

TEST(PartitionCanonMemo, WarmMemoTransfersAcrossRenumbering) {
  const TaskGraph g = separated_multi_component_graph(4, 311);
  PartitionCanonMemo memo;
  (void)canonical_partition_index(g, &memo);
  const auto pcount = memo.stats().misses;

  std::mt19937 rng(17);
  std::vector<NodeId> order(g.node_count());
  std::iota(order.begin(), order.end(), 0);
  for (int p = 0; p < 3; ++p) {
    std::shuffle(order.begin(), order.end(), rng);
    const TaskGraph permuted = renumber(g, order);
    // The permuted graph's partitions carry different original ids, but the
    // raw positional content keys are id-invariant only when ascending-id
    // order is preserved inside each partition — a global shuffle usually
    // breaks that, so hits are not guaranteed here. What IS guaranteed: the
    // memo path equals the plain path on every graph, warm or not.
    expect_same_index(canonical_partition_index(permuted, &memo),
                      canonical_partition_index(permuted));
  }

  // An id-shift (append a fresh component in front of nothing — ids of the
  // original graph shift by the new component's node count when prepended) is
  // the delta regime the memo exists for: same ascending-id order per
  // partition, shifted ids. Rebuild g's components at an offset and expect
  // full reuse.
  TaskGraph shifted;
  shifted.add_source(7);  // one extra singleton partition in front
  const auto base = static_cast<NodeId>(shifted.node_count());
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    switch (g.kind(v)) {
      case NodeKind::kSource:
        shifted.add_source(g.declared_output(v));
        break;
      case NodeKind::kCompute: {
        const NodeId nv = shifted.add_compute();
        if (g.declared_output(v) > 0) shifted.declare_output(nv, g.declared_output(v));
        break;
      }
      case NodeKind::kBuffer: {
        const NodeId nv = shifted.add_buffer();
        if (g.declared_output(v) > 0) shifted.declare_output(nv, g.declared_output(v));
        break;
      }
      case NodeKind::kSink:
        shifted.add_sink();
        break;
    }
  }
  for (EdgeId e = 0; static_cast<std::size_t>(e) < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    shifted.add_edge(base + edge.src, base + edge.dst, edge.volume);
  }
  const std::uint64_t hits_before = memo.stats().hits;
  expect_same_index(canonical_partition_index(shifted, &memo),
                    canonical_partition_index(shifted));
  EXPECT_GE(memo.stats().hits - hits_before, pcount)
      << "an id-shifted copy of every partition must hit the memo";
}

TEST(PartitionCanonMemo, EvictionKeepsWeightWithinCapacity) {
  PartitionCanonMemo memo(8);  // tiny: only a few partitions fit
  for (int round = 0; round < 6; ++round) {
    const TaskGraph g = multi_component_graph(3, 900 + static_cast<std::uint64_t>(round));
    expect_same_index(canonical_partition_index(g, &memo), canonical_partition_index(g));
    EXPECT_LE(memo.total_weight(), memo.capacity());
  }
  EXPECT_LE(memo.size(), memo.capacity());
}

// ---------------------------------------------------------------- graph edits

TEST(GraphEdit, EditUndoRoundTripsToTheBase) {
  const TaskGraph base = multi_component_graph(3, 5);
  const std::string base_fp = canonical_fingerprint(base);
  const std::vector<std::string> base_forms = partition_forms(base);

  // Pick a real edge to retune there-and-back.
  ASSERT_GT(base.edge_count(), 0u);
  const Edge& e0 = base.edge(0);

  const std::vector<std::pair<std::vector<GraphEdit>, const char*>> round_trips = {
      {{GraphEdit{GraphEdit::Op::kSetEdgeVolume, NodeKind::kCompute, -1, e0.src, e0.dst,
                  e0.volume * 2, ""},
        GraphEdit{GraphEdit::Op::kSetEdgeVolume, NodeKind::kCompute, -1, e0.src, e0.dst,
                  e0.volume, ""}},
       "set_edge_volume there and back"},
      {{GraphEdit{GraphEdit::Op::kAddNode, NodeKind::kSource, -1, -1, -1, 8, "tmp"},
        GraphEdit{GraphEdit::Op::kAddNode, NodeKind::kSink, -1, -1, -1, 0, ""},
        GraphEdit{GraphEdit::Op::kAddEdge, NodeKind::kCompute, -1,
                  static_cast<NodeId>(base.node_count()),
                  static_cast<NodeId>(base.node_count() + 1), 8, ""},
        GraphEdit{GraphEdit::Op::kRemoveNode, NodeKind::kCompute,
                  static_cast<NodeId>(base.node_count() + 1), -1, -1, 0, ""},
        GraphEdit{GraphEdit::Op::kRemoveNode, NodeKind::kCompute,
                  static_cast<NodeId>(base.node_count()), -1, -1, 0, ""}},
       "add a component then remove it"},
  };

  for (const auto& [edits, what] : round_trips) {
    const TaskGraph edited = apply_graph_edits(base, edits);
    EXPECT_EQ(canonical_fingerprint(edited), base_fp) << what;
    EXPECT_EQ(partition_forms(edited), base_forms) << what;
  }
}

TEST(GraphEdit, EditedPartitionMissesUntouchedPartitionsHit) {
  const TaskGraph base = separated_multi_component_graph(4, 31);
  const auto n = static_cast<std::uint64_t>(canonical_partition_index(base).count);
  const TaskGraph edited = apply_graph_edits(base, retune_exit(base, 2));

  MachineConfig machine;
  machine.num_pes = 4;
  SubgraphCache cache;
  (void)schedule_with_subgraph_cache("streaming-rlx", base, machine, cache);
  const ScheduleResult delta =
      schedule_with_subgraph_cache("streaming-rlx", edited, machine, cache, /*delta=*/true);
  const SubgraphCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.partition_hits, n - 1) << "only the edited partition may miss";
  EXPECT_EQ(stats.partition_misses, n + 1);  // n cold + 1 invalidated
  EXPECT_EQ(stats.delta_invalidated, 1u);
  EXPECT_EQ(result_fingerprint(delta),
            result_fingerprint(schedule_by_name("streaming-rlx", edited, machine)));
}

TEST(GraphEdit, JsonRoundTripsEveryOp) {
  const std::vector<GraphEdit> edits = {
      GraphEdit{GraphEdit::Op::kAddNode, NodeKind::kSource, -1, -1, -1, 16, "s"},
      GraphEdit{GraphEdit::Op::kAddNode, NodeKind::kCompute, -1, -1, -1, 0, ""},
      GraphEdit{GraphEdit::Op::kRemoveNode, NodeKind::kCompute, 3, -1, -1, 0, ""},
      GraphEdit{GraphEdit::Op::kAddEdge, NodeKind::kCompute, -1, 1, 2, 8, ""},
      GraphEdit{GraphEdit::Op::kRemoveEdge, NodeKind::kCompute, -1, 1, 2, 0, ""},
      GraphEdit{GraphEdit::Op::kSetOutput, NodeKind::kCompute, 0, -1, -1, 32, ""},
      GraphEdit{GraphEdit::Op::kSetEdgeVolume, NodeKind::kCompute, -1, 0, 1, 4, ""},
  };
  for (const GraphEdit& edit : edits) {
    std::string json;
    append_graph_edit_json(json, edit);
    EXPECT_EQ(graph_edit_from_json(parse_json(json)), edit) << json;
  }
}

TEST(GraphEdit, RejectsInvalidEdits) {
  const TaskGraph base = testing::figure8_graph();
  const std::vector<std::vector<GraphEdit>> bad = {
      {GraphEdit{GraphEdit::Op::kRemoveNode, NodeKind::kCompute, 99, -1, -1, 0, ""}},
      {GraphEdit{GraphEdit::Op::kRemoveEdge, NodeKind::kCompute, -1, 2, 0, 0, ""}},
      {GraphEdit{GraphEdit::Op::kAddEdge, NodeKind::kCompute, -1, 0, 1, 0, ""}},  // zero volume
      {GraphEdit{GraphEdit::Op::kRemoveNode, NodeKind::kCompute, 1, -1, -1, 0, ""},
       GraphEdit{GraphEdit::Op::kAddEdge, NodeKind::kCompute, -1, 1, 2, 4, ""}},  // removed src
  };
  for (const auto& edits : bad) {
    EXPECT_THROW((void)apply_graph_edits(base, edits), std::invalid_argument);
  }
}

// ------------------------------------------------------------------ assembly

TEST(SubgraphAssembly, MatchesColdScheduleForEveryRegistryScheduler) {
  const std::vector<TaskGraph> graphs = {
      testing::figure8_graph(),
      testing::figure9_graph2(),
      testing::buffer_split_example(),
      multi_component_graph(3, 41),
  };
  MachineConfig machine;
  machine.num_pes = 4;
  for (const std::string& scheduler : SchedulerRegistry::instance().names()) {
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      ScheduleResult cold;
      try {
        cold = schedule_by_name(scheduler, graphs[i], machine);
      } catch (const std::exception&) {
        continue;  // scheduler precondition (e.g. CSDF shape): nothing to compare
      }
      SubgraphCache cache;
      const ScheduleResult assembled =
          schedule_with_subgraph_cache(scheduler, graphs[i], machine, cache);
      EXPECT_EQ(result_fingerprint(assembled), result_fingerprint(cold))
          << scheduler << " on graph " << i;
      // And again, fully from cache: still bit-identical.
      const ScheduleResult cached =
          schedule_with_subgraph_cache(scheduler, graphs[i], machine, cache);
      EXPECT_EQ(result_fingerprint(cached), result_fingerprint(cold))
          << scheduler << " on graph " << i << " (warm)";
    }
  }
}

TEST(SubgraphAssembly, MeshPlacementDegradesToWholeGraphFragment) {
  MachineConfig machine;
  machine.num_pes = 4;
  machine.place_on_mesh = true;
  const TaskGraph g = testing::figure8_graph();
  SubgraphCache cache;
  const ScheduleResult assembled = schedule_with_subgraph_cache("streaming-rlx", g, machine, cache);
  EXPECT_EQ(result_fingerprint(assembled),
            result_fingerprint(schedule_by_name("streaming-rlx", g, machine)));
  EXPECT_EQ(cache.stats().fragments_assembled, 0u) << "mesh placement must not compose";
  EXPECT_EQ(cache.size(), 1u);
}

// ------------------------------------------------------------- delta serving

ScheduleRequest base_request() {
  ScheduleRequest request;
  request.graph = multi_component_graph(3, 67);
  request.scheduler = "streaming-rlx";
  request.machine.num_pes = 4;
  return request;
}


TEST(DeltaRequest, EnvelopeJsonRoundTrips) {
  ScheduleRequest delta;
  delta.base_key = "00ff00ff00ff00ff";
  delta.edits = std::vector<GraphEdit>{GraphEdit{GraphEdit::Op::kSetEdgeVolume, NodeKind::kCompute, -1, 1, 2, 8, ""}};
  delta.scheduler = "streaming-rlx";
  delta.machine.num_pes = 8;
  const std::string json = delta.to_json();
  EXPECT_NE(json.find("\"base_key\": \"00ff00ff00ff00ff\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"edits\": ["), std::string::npos) << json;
  EXPECT_EQ(json.find("\"graph\""), std::string::npos) << "a delta must not carry a graph";
  const ScheduleRequest parsed = ScheduleRequest::from_json(json);
  EXPECT_EQ(parsed.base_key, delta.base_key);
  EXPECT_EQ(parsed.edits, delta.edits);
}

TEST(DeltaRequest, EnvelopeRejectsMalformedDeltas) {
  const std::vector<std::string> bad = {
      // edits without a base_key
      R"({"schema_version": 2, "scheduler": "s", "graph": {"nodes": [], "edges": []},)"
      R"( "edits": []})",
      // base_key plus an inline graph
      R"({"schema_version": 2, "scheduler": "s", "base_key": "aa",)"
      R"( "graph": {"nodes": [], "edges": []}})",
      // base_key needs schema v2
      R"({"schema_version": 1, "scheduler": "s", "base_key": "aabbccddeeff0011"})",
      // empty base_key
      R"({"schema_version": 2, "scheduler": "s", "base_key": ""})",
      // unknown edit op
      R"({"schema_version": 2, "scheduler": "s", "base_key": "aabbccddeeff0011",)"
      R"( "edits": [{"op": "warp"}]})",
  };
  for (const std::string& json : bad) {
    EXPECT_THROW((void)ScheduleRequest::from_json(json), std::invalid_argument) << json;
  }
}

TEST(DeltaRequest, ServiceReschedulesOnlyTheEditedPartition) {
  ServiceConfig config;
  config.num_workers = 2;
  ScheduleService service(config);

  ScheduleRequest base = base_request();
  const std::string digest = base.key_digest();
  const TaskGraph base_graph = base.graph;
  const ScheduleResponse cold = service.schedule(std::move(base));
  ASSERT_TRUE(cold.ok()) << cold.error;

  ScheduleRequest delta;
  delta.base_key = digest;
  delta.edits = retune_exit(base_graph, 2);
  delta.scheduler = "streaming-rlx";
  delta.machine.num_pes = 4;
  const ScheduleResponse warm = service.schedule(std::move(delta));
  ASSERT_TRUE(warm.ok()) << warm.error;

  const TaskGraph edited = apply_graph_edits(base_graph, retune_exit(base_graph, 2));
  EXPECT_EQ(result_fingerprint(*warm.result),
            result_fingerprint(schedule_by_name("streaming-rlx", edited, delta.machine)));

  const ScheduleService::Stats stats = service.stats();
  EXPECT_EQ(stats.subgraph.partition_hits, 2u) << "untouched partitions must hit";
  EXPECT_EQ(stats.subgraph.partition_misses, 4u);  // 3 cold + 1 invalidated
  EXPECT_EQ(stats.subgraph.delta_invalidated, 1u);
  EXPECT_EQ(stats.subgraph.fragments_assembled, 6u);
  for (const char* field :
       {"\"partition_hits\": 2", "\"partition_misses\": 4", "\"delta_invalidated\": 1",
        "\"fragments_assembled\": 6"}) {
    EXPECT_NE(service.stats_json().find(field), std::string::npos) << field;
  }
}

TEST(DeltaRequest, ChainedDeltasResolveLinkByLink) {
  ScheduleService service(ServiceConfig{2});
  ScheduleRequest base = base_request();
  const TaskGraph base_graph = base.graph;
  const std::string digest = base.key_digest();
  ASSERT_TRUE(service.schedule(std::move(base)).ok());

  // First delta: x2. Its materialized identity is the edited whole-graph
  // request, so compute that digest client-side to chain from it.
  ScheduleRequest delta1;
  delta1.base_key = digest;
  delta1.edits = retune_exit(base_graph, 2);
  delta1.scheduler = "streaming-rlx";
  delta1.machine.num_pes = 4;
  ASSERT_TRUE(service.schedule(std::move(delta1)).ok());

  ScheduleRequest edited1 = base_request();
  edited1.graph = apply_graph_edits(base_graph, retune_exit(base_graph, 2));
  const std::string digest1 = edited1.key_digest();

  ScheduleRequest delta2;
  delta2.base_key = digest1;
  delta2.edits = retune_exit(edited1.graph, 2);
  delta2.scheduler = "streaming-rlx";
  delta2.machine.num_pes = 4;
  const ScheduleResponse chained = service.schedule(std::move(delta2));
  ASSERT_TRUE(chained.ok()) << chained.error;

  const TaskGraph edited2 =
      apply_graph_edits(edited1.graph, retune_exit(edited1.graph, 2));
  MachineConfig machine;
  machine.num_pes = 4;
  EXPECT_EQ(result_fingerprint(*chained.result),
            result_fingerprint(schedule_by_name("streaming-rlx", edited2, machine)));
}

TEST(DeltaRequest, UnknownBaseKeyFailsTheFutureNotTheService) {
  ScheduleService service(ServiceConfig{1});
  ScheduleRequest delta;
  delta.base_key = "deadbeefdeadbeef";
  delta.scheduler = "streaming-rlx";
  const ScheduleResponse response = service.schedule(std::move(delta));
  EXPECT_FALSE(response.ok());
  EXPECT_NE(response.error.find("unknown base_key"), std::string::npos) << response.error;

  // The service stays healthy and balanced: a normal request still serves,
  // and wait_idle does not hang on the failed submission.
  service.wait_idle();
  EXPECT_TRUE(service.schedule(base_request()).ok());
  service.wait_idle();  // schedule() resolves on set_value; counters settle after
  const ScheduleService::Stats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(DeltaRequest, InvalidCompositionFailsInsteadOfAliasingTheBase) {
  // The cache key hashes *derived* volumes, so an edit list that composes a
  // non-canonical graph (a retuned declared output contradicting its
  // out-edge volume) fingerprints identically to its valid base. Without
  // materialization-time validation the delta would silently return the
  // base's cached result; it must fail the future instead.
  ScheduleService service(ServiceConfig{1});
  ScheduleRequest base = base_request();
  const TaskGraph base_graph = base.graph;
  const std::string digest = base.key_digest();
  ASSERT_TRUE(service.schedule(std::move(base)).ok());

  NodeId src = -1;
  for (NodeId v = 0; static_cast<std::size_t>(v) < base_graph.node_count(); ++v) {
    if (base_graph.kind(v) == NodeKind::kSource && base_graph.out_degree(v) > 0) {
      src = v;
      break;
    }
  }
  ASSERT_GE(src, 0);
  ScheduleRequest delta;
  delta.base_key = digest;
  delta.edits = {GraphEdit{GraphEdit::Op::kSetOutput, NodeKind::kSource, src, -1, -1,
                           base_graph.declared_output(src) + 1, ""}};
  delta.scheduler = "streaming-rlx";
  delta.machine.num_pes = 4;
  const ScheduleResponse response = service.schedule(std::move(delta));
  EXPECT_FALSE(response.ok()) << "invalid composition must not alias the base's result";
  EXPECT_NE(response.error.find("invalid graph"), std::string::npos) << response.error;
  service.wait_idle();
  EXPECT_EQ(service.stats().failed, 1u);
}

TEST(DeltaRequest, RouterRoutesDeltaToTheBaseBackend) {
  RouterConfig config;
  config.num_backends = 3;
  ShardRouter router(config);

  ScheduleRequest base = base_request();
  const std::string digest = base.key_digest();
  const std::size_t base_backend = router.backend_for(base);
  const TaskGraph base_graph = base.graph;
  ASSERT_TRUE(router.schedule(std::move(base)).ok());

  ScheduleRequest delta;
  delta.base_key = digest;
  delta.edits = retune_exit(base_graph, 2);
  delta.scheduler = "streaming-rlx";
  delta.machine.num_pes = 4;
  EXPECT_EQ(router.backend_for(delta), base_backend)
      << "a delta must land where its base's registry and fragments are";

  const ScheduleResponse warm = router.schedule(std::move(delta));
  ASSERT_TRUE(warm.ok()) << warm.error;
  const TaskGraph edited = apply_graph_edits(base_graph, retune_exit(base_graph, 2));
  MachineConfig machine;
  machine.num_pes = 4;
  EXPECT_EQ(result_fingerprint(*warm.result),
            result_fingerprint(schedule_by_name("streaming-rlx", edited, machine)));

  // Subgraph counters aggregate across backends (and into the JSON record).
  const ShardRouter::Stats stats = router.stats();
  EXPECT_EQ(stats.total.subgraph.delta_invalidated, 1u);
  EXPECT_EQ(stats.total.subgraph.partition_hits, 2u);
  EXPECT_NE(router.stats_json().find("\"delta_invalidated\": 1"), std::string::npos);
  EXPECT_NE(router.stats_json().find("\"cache_weight\": "), std::string::npos);
}

TEST(DeltaRequest, SubgraphMemoizationCanBeDisabled) {
  ServiceConfig config;
  config.num_workers = 1;
  config.subgraph_cache_capacity = 0;
  ScheduleService service(config);
  EXPECT_EQ(service.subgraph_cache(), nullptr);
  ASSERT_TRUE(service.schedule(base_request()).ok());
  const ScheduleService::Stats stats = service.stats();
  EXPECT_EQ(stats.subgraph.partition_hits, 0u);
  EXPECT_EQ(stats.subgraph.partition_misses, 0u);

  // Deltas still materialize and schedule — the base registry is independent
  // of subgraph memoization.
  ScheduleRequest base = base_request();
  const std::string digest = base.key_digest();
  const TaskGraph base_graph = base.graph;
  ScheduleRequest delta;
  delta.base_key = digest;
  delta.edits = retune_exit(base_graph, 2);
  delta.scheduler = "streaming-rlx";
  delta.machine.num_pes = 4;
  const ScheduleResponse response = service.schedule(std::move(delta));
  ASSERT_TRUE(response.ok()) << response.error;
}

}  // namespace
}  // namespace sts
