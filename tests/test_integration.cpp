#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "baseline/list_scheduler.hpp"
#include "core/streaming_scheduler.hpp"
#include "core/work_depth.hpp"
#include "metrics/metrics.hpp"
#include "ml/models.hpp"
#include "pipeline/registry.hpp"
#include "sim/dataflow_sim.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

TaskGraph make_topology(const std::string& name, std::uint64_t seed) {
  if (name == "chain") return make_chain(8, seed);
  if (name == "fft") return make_fft(8, seed);
  if (name == "gaussian") return make_gaussian_elimination(8, seed);
  return make_cholesky(5, seed);
}

/// End-to-end pipeline sweep through the SchedulerRegistry: generate ->
/// validate -> schedule by name (partition + within-block schedule + FIFO
/// sizing passes) -> simulate; the DES must terminate without deadlock and
/// agree with the analytic makespan (Appendix B).
class PipelineSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::uint64_t, std::int64_t, std::string>> {};

TEST_P(PipelineSweep, SchedulesSimulateDeadlockFree) {
  const auto& [topology, seed, pes, scheduler] = GetParam();
  const TaskGraph g = make_topology(topology, seed);
  ASSERT_TRUE(g.validate().empty());

  MachineConfig machine;
  machine.num_pes = pes;
  const ScheduleResult r = schedule_by_name(scheduler, g, machine);
  ASSERT_TRUE(r.is_streaming());
  ASSERT_TRUE(partition_is_valid(g, r.streaming->partition, pes));
  EXPECT_GT(r.makespan, 0);
  EXPECT_FALSE(r.timings.empty());

  const SimResult sim = simulate_streaming(g, *r.streaming, *r.buffers);
  ASSERT_FALSE(sim.deadlocked) << "computed buffers must prevent deadlock";
  ASSERT_FALSE(sim.tick_limit_reached);

  const double rel_err = (static_cast<double>(r.makespan) -
                          static_cast<double>(sim.makespan)) /
                         static_cast<double>(sim.makespan);
  EXPECT_LT(std::abs(rel_err), 0.35)
      << "analytic " << r.makespan << " vs simulated " << sim.makespan;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PipelineSweep,
    ::testing::Combine(::testing::Values("chain", "fft", "gaussian", "cholesky"),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Values<std::int64_t>(4, 16),
                       ::testing::Values("streaming-lts", "streaming-rlx")),
    [](const auto& info) {
      const std::string& scheduler = std::get<3>(info.param);
      return std::get<0>(info.param) + "_s" + std::to_string(std::get<1>(info.param)) + "_p" +
             std::to_string(std::get<2>(info.param)) + "_" +
             scheduler.substr(scheduler.rfind('-') + 1);
    });

TEST(Integration, StreamingNeverLosesToSequential) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const TaskGraph g = make_fft(8, seed);
    const auto r = schedule_streaming_graph(g, 16, PartitionVariant::kRLX);
    EXPECT_LE(r.schedule.makespan, g.total_work() + 1) << "seed " << seed;
  }
}

TEST(Integration, MakespanRespectsStreamingDepth) {
  // T_s_inf is an infinite-PE quantity; finite-PE makespans stay above a
  // sizable fraction of it (blocks add pipeline drain overheads of at most
  // L per block, so we only check the sane direction).
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const TaskGraph g = make_cholesky(5, seed);
    const Rational depth = streaming_depth(g);
    const auto r = schedule_streaming_graph(
        g, static_cast<std::int64_t>(g.node_count()), PartitionVariant::kRLX);
    EXPECT_GE(Rational(r.schedule.makespan) * Rational(2), depth) << "seed " << seed;
  }
}

TEST(Integration, MoreProcessorsNeverHurtMuch) {
  // Streaming speedup should be non-decreasing (within noise) in PE count.
  const TaskGraph g = make_gaussian_elimination(8, 7);
  const std::int64_t t1 = g.total_work();
  double prev = 0.0;
  for (const std::int64_t pes : {2, 4, 8, 16, 32}) {
    const auto r = schedule_streaming_graph(g, pes, PartitionVariant::kRLX);
    const double s = speedup(t1, r.schedule.makespan);
    EXPECT_GT(s, prev * 0.8) << "PEs " << pes;
    prev = std::max(prev, s);
  }
}

TEST(Integration, TransformerSchedulesAtScale) {
  TransformerConfig cfg;
  cfg.seq_len = 16;  // small but structurally complete
  cfg.d_model = 64;
  cfg.heads = 4;
  cfg.d_ff = 128;
  const TaskGraph g = build_transformer_encoder(cfg);
  ASSERT_TRUE(g.validate().empty());
  MachineConfig machine;
  machine.num_pes = 128;
  const ScheduleResult str = schedule_by_name("streaming-lts", g, machine);
  const ScheduleResult nstr = schedule_by_name("list", g, machine);
  const double gain = str.metrics.speedup / nstr.metrics.speedup;
  // Table 2: streaming outperforms non-streaming on the encoder.
  EXPECT_GT(gain, 1.0);
}

TEST(Integration, ResnetScaleSchedulingIsSane) {
  // A reduced-resolution ResNet-50 (same structure, 64x64 input) runs the
  // full pipeline at four-digit node counts within test budgets.
  ResNetConfig cfg;
  cfg.image = 64;
  const TaskGraph g = build_resnet50(cfg);
  ASSERT_TRUE(g.validate().empty());
  const std::int64_t t1 = g.total_work();
  const auto str = schedule_streaming_graph(g, 256, PartitionVariant::kLTS);
  ASSERT_TRUE(partition_is_valid(g, str.schedule.partition, 256));
  const ListSchedule nstr = schedule_non_streaming(g, 256);
  EXPECT_GT(speedup(t1, str.schedule.makespan), speedup(t1, nstr.makespan));
  // FIFO allocations stay bounded by their edge volumes.
  for (const ChannelPlan& c : str.buffers.channels) {
    EXPECT_LE(c.capacity, g.edge(c.edge).volume);
  }
}

TEST(Integration, NonStreamingSlrIsAtLeastOne) {
  // The paper notes NSTR-SCH achieves SLR 1 (critical-path optimal) on these
  // DAGs; our list scheduler should stay close to the critical path.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const TaskGraph g = make_fft(8, seed);
    const auto bl = bottom_levels(g);
    std::int64_t cp = 0;
    for (const auto b : bl) cp = std::max(cp, b);
    const ListSchedule s = schedule_non_streaming(g, 64);
    EXPECT_EQ(s.makespan, cp) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sts
