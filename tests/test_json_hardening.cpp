// Untrusted-input hardening of the JSON parser: nesting-depth and input-size
// limits must yield typed parse errors (std::invalid_argument) instead of
// stack exhaustion or unbounded allocation, and fuzz-style adversarial
// documents (deeply nested containers, pathological escapes, truncations)
// must never crash or parse to the wrong value.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "support/json.hpp"

namespace sts {
namespace {

std::string nested_arrays(std::size_t depth) {
  std::string text;
  text.reserve(2 * depth + 1);
  text.append(depth, '[');
  text += '1';
  text.append(depth, ']');
  return text;
}

std::string nested_objects(std::size_t depth) {
  std::string text;
  for (std::size_t i = 0; i < depth; ++i) text += "{\"k\":";
  text += "0";
  text.append(depth, '}');
  return text;
}

TEST(JsonHardening, DefaultDepthLimitIs64) {
  // Depth 64 parses; 65 is rejected with a typed error, not a crash.
  EXPECT_NO_THROW((void)parse_json(nested_arrays(64)));
  EXPECT_THROW((void)parse_json(nested_arrays(65)), std::invalid_argument);
  EXPECT_NO_THROW((void)parse_json(nested_objects(64)));
  EXPECT_THROW((void)parse_json(nested_objects(65)), std::invalid_argument);
}

TEST(JsonHardening, DepthErrorNamesTheProblem) {
  try {
    (void)parse_json(nested_arrays(65));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nesting too deep"), std::string::npos) << e.what();
  }
}

TEST(JsonHardening, CustomDepthLimit) {
  JsonLimits limits;
  limits.max_depth = 4;
  EXPECT_NO_THROW((void)parse_json(nested_arrays(4), limits));
  EXPECT_THROW((void)parse_json(nested_arrays(5), limits), std::invalid_argument);
  // Scalars sit at depth 0: a tight limit still parses flat documents.
  limits.max_depth = 0;
  EXPECT_EQ(parse_json("42", limits).as_int(), 42);
  EXPECT_THROW((void)parse_json("[1]", limits), std::invalid_argument);
}

TEST(JsonHardening, AdversarialDepthIsRejectedNotCrashed) {
  // A ~1M-level bomb must fail fast via the depth check long before the
  // recursion could touch the guard page. Both container kinds, and the
  // unterminated variant (all-open, no closers) too.
  EXPECT_THROW((void)parse_json(nested_arrays(1u << 20)), std::invalid_argument);
  EXPECT_THROW((void)parse_json(nested_objects(1u << 18)), std::invalid_argument);
  EXPECT_THROW((void)parse_json(std::string(1u << 20, '[')), std::invalid_argument);
}

TEST(JsonHardening, SizeLimitRejectsOversizedInput) {
  JsonLimits limits;
  limits.max_bytes = 16;
  EXPECT_EQ(parse_json("{\"k\": 1}", limits).at("k").as_int(), 1);
  const std::string big = "\"" + std::string(64, 'x') + "\"";
  try {
    (void)parse_json(big, limits);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos) << e.what();
  }
  // 0 = unlimited (the default): the same document parses.
  limits.max_bytes = 0;
  EXPECT_EQ(parse_json(big, limits).as_string(), std::string(64, 'x'));
}

TEST(JsonHardening, SizeLimitIsExactAtTheBoundary) {
  JsonLimits limits;
  limits.max_bytes = 4;
  EXPECT_EQ(parse_json("1234", limits).as_int(), 1234);
  EXPECT_THROW((void)parse_json("12345", limits), std::invalid_argument);
}

TEST(JsonHardening, FuzzStyleMalformedInputsThrowTyped) {
  // A grab bag of adversarial fragments: every one must throw
  // std::invalid_argument — never crash, hang, or silently parse.
  const char* cases[] = {
      "",
      "[",
      "]",
      "{",
      "{\"k\"",
      "{\"k\":}",
      "[1,]",
      "{\"k\":1,}",
      "\"unterminated",
      "\"bad escape \\q\"",
      "\"truncated escape \\",
      "\"\\u12",
      "\"\\ud800\"",          // lone high surrogate
      "\"\\udc00\"",          // lone low surrogate
      "\"\\ud800\\u0041\"",   // high surrogate + non-surrogate
      "01",
      "-",
      "1.",
      ".5",
      "1e",
      "nul",
      "tru",
      "falsee",
      "1 2",
      "[1] []",
      "{\"a\":1,\"a\":2}",    // duplicate key
      "\x01",
      "\"ctrl \x1f\"",
  };
  for (const char* text : cases) {
    EXPECT_THROW((void)parse_json(text), std::invalid_argument) << "input: " << text;
  }
}

TEST(JsonHardening, DeepButLegalDocumentsRoundTripUnderTheLimit) {
  // Mixed nesting right at a custom bound, with real payloads on the way
  // down — the limit must count container levels, not bytes or members.
  JsonLimits limits;
  limits.max_depth = 8;
  const std::string doc =
      "{\"a\": [{\"b\": [{\"c\": [{\"d\": [7]}]}]}]}";  // depth 8
  const JsonValue v = parse_json(doc, limits);
  EXPECT_EQ(v.at("a").items()[0].at("b").items()[0].at("c").items()[0].at("d").items()[0]
                .as_int(),
            7);
  limits.max_depth = 7;
  EXPECT_THROW((void)parse_json(doc, limits), std::invalid_argument);
}

TEST(JsonHardening, WideDocumentsAreNotDepth) {
  // 10k siblings at depth 1: breadth must not trip the depth limit.
  std::string wide = "[";
  for (int i = 0; i < 10000; ++i) {
    if (i > 0) wide += ',';
    wide += std::to_string(i);
  }
  wide += ']';
  JsonLimits limits;
  limits.max_depth = 1;
  EXPECT_EQ(parse_json(wide, limits).items().size(), 10000u);
}

}  // namespace
}  // namespace sts
