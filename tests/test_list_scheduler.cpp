#include "baseline/list_scheduler.hpp"

#include <gtest/gtest.h>

#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

TEST(ListScheduler, ChainIsStrictlySequential) {
  // Paper Figure 10 (Chain): buffered communication forces a speedup of 1
  // regardless of PE count.
  const TaskGraph g = make_chain(8, /*seed=*/1);
  for (const std::int64_t pes : {1, 2, 8}) {
    const ListSchedule s = schedule_non_streaming(g, pes);
    EXPECT_EQ(s.makespan, g.total_work()) << "PEs " << pes;
  }
}

TEST(ListScheduler, IndependentTasksRunInParallel) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_source(10, "s" + std::to_string(i));
  const ListSchedule s = schedule_non_streaming(g, 4);
  EXPECT_EQ(s.makespan, 10);
  const ListSchedule s1 = schedule_non_streaming(g, 1);
  EXPECT_EQ(s1.makespan, 40);
}

TEST(ListScheduler, RespectsPrecedence) {
  const TaskGraph g = testing::figure9_graph1();
  const ListSchedule s = schedule_non_streaming(g, 4);
  for (EdgeId e = 0; static_cast<std::size_t>(e) < g.edge_count(); ++e) {
    EXPECT_GE(s.at(g.edge(e).dst).start, s.at(g.edge(e).src).finish);
  }
  EXPECT_EQ(s.at(0).finish - s.at(0).start, 32);  // duration = work
}

TEST(ListScheduler, NoPeOverlap) {
  const TaskGraph g = make_gaussian_elimination(8, /*seed=*/3);
  const std::int64_t pes = 4;
  const ListSchedule s = schedule_non_streaming(g, pes);
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> per_pe(
      static_cast<std::size_t>(pes));
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (!g.occupies_pe(v)) continue;
    const auto& entry = s.at(v);
    ASSERT_GE(entry.pe, 0);
    per_pe[static_cast<std::size_t>(entry.pe)].emplace_back(entry.start, entry.finish);
  }
  for (auto& intervals : per_pe) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second);
    }
  }
}

TEST(ListScheduler, BottomLevelsAreCriticalPathLengths) {
  const TaskGraph g = testing::figure9_graph1();
  const auto bl = bottom_levels(g);
  // Node 4 is an exit: bl = W = 32. Node 3: 32 + 32 = 64 (W(3)=max(2,32)).
  EXPECT_EQ(bl[4], 32);
  EXPECT_EQ(bl[3], 64);
  EXPECT_EQ(bl[2], 4 + 64);
  EXPECT_EQ(bl[1], 32 + 68);
  EXPECT_EQ(bl[0], 32 + 100);
}

TEST(ListScheduler, BufferNodesAddNoTime) {
  const TaskGraph g = testing::buffer_split_example();
  const ListSchedule s = schedule_non_streaming(g, 2);
  const NodeId buf = 3;
  EXPECT_EQ(s.at(buf).pe, -1);
  EXPECT_EQ(s.at(buf).start, s.at(buf).finish);
  // Consumers behind the buffer still wait for the producers.
  EXPECT_GE(s.at(4).start, s.at(2).finish);
}

TEST(ListScheduler, InsertionFillsIdleGaps) {
  // Diamond: a long and a short branch; a later-priority independent task
  // must slot into the idle gap on the PE waiting for the join.
  TaskGraph g;
  const NodeId s = g.add_source(4, "s");
  const NodeId longb = g.add_compute("long");
  const NodeId shortb = g.add_compute("short");
  const NodeId join = g.add_compute("join");
  g.add_edge(s, longb, 4);
  g.declare_output(longb, 40);
  g.add_edge(s, shortb, 4);
  g.declare_output(shortb, 4);
  // join waits for both branches (equal input volumes required: use longb
  // only, keep shortb an exit).
  g.add_edge(longb, join, 40);
  g.declare_output(join, 40);
  const ListSchedule sched = schedule_non_streaming(g, 1);
  // Single PE: total = 4 + 40 + 4 + 40.
  EXPECT_EQ(sched.makespan, 88);
  const ListSchedule sched2 = schedule_non_streaming(g, 2);
  // Two PEs: the short branch overlaps the long one.
  EXPECT_EQ(sched2.makespan, 84);
}

TEST(ListScheduler, MakespanNeverBelowCriticalPathOrWorkBound) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const TaskGraph g = make_cholesky(4, seed);
    const auto bl = bottom_levels(g);
    std::int64_t critical_path = 0;
    for (const auto b : bl) critical_path = std::max(critical_path, b);
    for (const std::int64_t pes : {2, 4, 8}) {
      const ListSchedule s = schedule_non_streaming(g, pes);
      EXPECT_GE(s.makespan, critical_path);
      EXPECT_GE(s.makespan, g.total_work() / pes);
      EXPECT_LE(s.makespan, g.total_work());
    }
  }
}

TEST(ListScheduler, ThrowsOnBadPeCount) {
  EXPECT_THROW(schedule_non_streaming(testing::figure8_graph(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace sts
