#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include "core/streaming_scheduler.hpp"
#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

TEST(Metrics, SpeedupDefinition) {
  EXPECT_DOUBLE_EQ(speedup(100, 25), 4.0);
  EXPECT_DOUBLE_EQ(speedup(100, 0), 0.0);
}

TEST(Metrics, StreamingSlrDefinition) {
  EXPECT_DOUBLE_EQ(streaming_slr(60, Rational(30)), 2.0);
  EXPECT_DOUBLE_EQ(streaming_slr(60, Rational(0)), 0.0);
  EXPECT_DOUBLE_EQ(streaming_slr(9, Rational(9, 2)), 2.0);
}

TEST(Metrics, StreamingUtilizationBounded) {
  const TaskGraph g = testing::figure8_graph();
  const auto r = schedule_streaming_graph(g, 5, PartitionVariant::kRLX);
  const double util = streaming_utilization(g, r.schedule, 5);
  EXPECT_GT(util, 0.0);
  EXPECT_LE(util, 1.0);
}

TEST(Metrics, NonStreamingUtilizationMatchesHandComputation) {
  // 4 independent tasks of work 10 on 4 PEs: util = 40 / (4*10) = 1.
  TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_source(10, "s" + std::to_string(i));
  const ListSchedule s = schedule_non_streaming(g, 4);
  EXPECT_DOUBLE_EQ(non_streaming_utilization(g, s, 4), 1.0);
  const ListSchedule s8 = schedule_non_streaming(g, 8);
  EXPECT_DOUBLE_EQ(non_streaming_utilization(g, s8, 8), 0.5);
}

TEST(Metrics, StreamingBeatsNonStreamingOnChain) {
  // The headline claim on the Chain workload (Figure 10 leftmost panel).
  const TaskGraph g = make_chain(8, /*seed=*/3);
  const std::int64_t t1 = g.total_work();
  const ListSchedule nstr = schedule_non_streaming(g, 8);
  EXPECT_DOUBLE_EQ(speedup(t1, nstr.makespan), 1.0);
  const auto str = schedule_streaming_graph(g, 8, PartitionVariant::kRLX);
  EXPECT_GT(speedup(t1, str.schedule.makespan), 1.5);
}

TEST(Metrics, SslrApproachesOneWithManyPes) {
  // Figure 11: SB-RLX reaches SSLR ~ 1 when PEs >= tasks.
  const TaskGraph g = make_fft(8, /*seed=*/4);
  const WorkDepth wd = analyze_work_depth(g);
  const auto r = schedule_streaming_graph(
      g, static_cast<std::int64_t>(g.node_count()), PartitionVariant::kRLX);
  const double sslr = streaming_slr(r.schedule.makespan, wd.streaming_depth);
  EXPECT_GE(sslr, 0.5);
  EXPECT_LE(sslr, 1.5);
}

TEST(Metrics, SslrShrinksWithMorePes) {
  const TaskGraph g = make_gaussian_elimination(8, /*seed=*/9);
  const WorkDepth wd = analyze_work_depth(g);
  const auto few = schedule_streaming_graph(g, 4, PartitionVariant::kRLX);
  const auto many = schedule_streaming_graph(g, 32, PartitionVariant::kRLX);
  EXPECT_LE(streaming_slr(many.schedule.makespan, wd.streaming_depth),
            streaming_slr(few.schedule.makespan, wd.streaming_depth));
}

}  // namespace
}  // namespace sts
