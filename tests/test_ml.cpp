#include "ml/models.hpp"

#include <gtest/gtest.h>

#include "ml/canonical_builder.hpp"
#include "ml/ops.hpp"

namespace sts {
namespace {

TEST(CanonicalBuilder, StreamsCarryVolumes) {
  TaskGraph g;
  CanonicalBuilder b(g);
  const Stream x = b.source(8, "x");
  const Stream y = b.elementwise(x, "y");
  const Stream z = b.compute(y, 2, "z");
  b.finish(z);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(y.volume, 8);
  EXPECT_EQ(g.rate(z.node), Rational(1, 4));
}

TEST(CanonicalBuilder, RejectsMismatchedInputs) {
  TaskGraph g;
  CanonicalBuilder b(g);
  const Stream x = b.source(8, "x");
  const Stream y = b.source(4, "y");
  const std::array<Stream, 2> ins{x, y};
  EXPECT_THROW((void)b.elementwise(ins, "join"), std::invalid_argument);
}

TEST(MatmulWeights, StructureAndVolumes) {
  // Figure 3 graph 2 family: M column tasks, each a 1/K downsampler.
  TaskGraph g;
  CanonicalBuilder b(g);
  const std::int64_t n = 4, k = 8, m = 3;
  const Stream a = b.source(n * k, "A");
  const MatmulExpansion mm = matmul_weights(b, a, n, k, m, "mm");
  b.finish(mm.out);
  EXPECT_TRUE(g.validate().empty());
  ASSERT_EQ(mm.column_streams.size(), static_cast<std::size_t>(m));
  for (const Stream& col : mm.column_streams) {
    EXPECT_EQ(col.volume, n);
    EXPECT_EQ(g.rate(col.node), Rational(1, k));  // downsampler R = 1/K
  }
  EXPECT_EQ(mm.out.volume, n * m);
  // 1 replicator + M dot tasks + 1 interleave = m + 2 PE tasks.
  EXPECT_EQ(mm.tasks, static_cast<int>(m) + 2);
}

TEST(MatmulActivations, BuffersTheSecondOperand) {
  TaskGraph g;
  CanonicalBuilder b(g);
  const std::int64_t n = 4, k = 2, m = 3;
  const Stream a = b.source(n * k, "A");
  const Stream bs = b.source(k * m, "B");
  const MatmulExpansion mm = matmul_activations(b, a, bs, n, k, m, "mm");
  b.finish(mm.out);
  EXPECT_TRUE(g.validate().empty());
  int buffers = 0;
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (g.kind(v) == NodeKind::kBuffer) ++buffers;
  }
  EXPECT_EQ(buffers, 1);
}

TEST(MatmulInnerProduct, SingleDownsampler) {
  // Figure 3 graph 1: both operands buffered, one 1/K dot node.
  TaskGraph g;
  CanonicalBuilder b(g);
  const std::int64_t n = 3, k = 4, m = 2;
  const Stream a = b.source(n * k, "A");
  const Stream bs = b.source(k * m, "B");
  const Stream c = matmul_inner_product(b, a, bs, n, k, m, "mm");
  b.finish(c);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(c.volume, n * m);
  EXPECT_EQ(g.rate(c.node), Rational(1, k));
  EXPECT_EQ(g.input_volume(c.node), n * k * m);
}

TEST(MatmulOuterProduct, TreeOfSums) {
  // Figure 3 graph 3: K rank-1 multiplies + K-1 sum nodes.
  TaskGraph g;
  CanonicalBuilder b(g);
  const std::int64_t n = 2, k = 4, m = 3;
  const Stream a = b.source(n * k, "A");
  const Stream bs = b.source(k * m, "B");
  const MatmulExpansion mm = matmul_outer_product(b, a, bs, n, k, m, "mm");
  b.finish(mm.out);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(mm.tasks, static_cast<int>(2 * k - 1));
  EXPECT_EQ(mm.out.volume, n * m);
}

TEST(OuterProduct, Figure2Graph1Shape) {
  TaskGraph g;
  CanonicalBuilder b(g);
  const std::int64_t n = 4, m = 6;
  const Stream u = b.source(n, "u");
  const Stream v = b.source(m, "v");
  const Stream out = outer_product(b, u, v, n, m, "op");
  b.finish(out);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(out.volume, n * m);
  // The replicator is an upsampler with R = M.
  bool found_upsampler = false;
  for (NodeId node = 0; static_cast<std::size_t>(node) < g.node_count(); ++node) {
    if (g.kind(node) == NodeKind::kCompute && g.in_degree(node) > 0 &&
        g.rate(node) == Rational(m)) {
      found_upsampler = true;
    }
  }
  EXPECT_TRUE(found_upsampler);
}

TEST(VectorNormalize, BothVariantsValidate) {
  {
    TaskGraph g;
    CanonicalBuilder b(g);
    const Stream x = b.source(16, "x");
    b.finish(vector_normalize_buffered(b, x, 16, "vn"));
    EXPECT_TRUE(g.validate().empty());
  }
  {
    TaskGraph g;
    CanonicalBuilder b(g);
    const Stream x = b.source(16, "x");
    b.finish(vector_normalize_streamed(b, x, 16, "vn"));
    EXPECT_TRUE(g.validate().empty());
  }
}

TEST(Softmax, Figure5Shape) {
  TaskGraph g;
  CanonicalBuilder b(g);
  const Stream x = b.source(32, "x");
  const Stream y = softmax(b, x, /*rows=*/4, /*cols=*/8, "sm");
  b.finish(y);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(y.volume, 32);
  // 5 computational tasks (max, sub, exp, sum, div) + 4 buffers + source.
  const ModelStats stats = stats_of(g);
  EXPECT_EQ(stats.buffer_nodes, 4);
  EXPECT_EQ(stats.pe_tasks, 6);  // source + 5 compute
}

TEST(LayerNorm, ValidatesAndKeepsVolume) {
  TaskGraph g;
  CanonicalBuilder b(g);
  const Stream x = b.source(64, "x");
  const Stream y = layer_norm(b, x, 8, 8, "ln");
  b.finish(y);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(y.volume, 64);
}

TEST(Conv2d, ShapesAndIm2col) {
  TaskGraph g;
  CanonicalBuilder b(g);
  ConvSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 4;
  spec.in_height = spec.in_width = 8;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  const Stream x = b.source(3 * 8 * 8, "x");
  const ConvExpansion conv = conv2d_bn(b, x, spec, "conv");
  b.finish(conv.out);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(spec.out_height(), 8);
  EXPECT_EQ(conv.out.volume, 4 * 8 * 8);
  const ModelStats stats = stats_of(g);
  EXPECT_EQ(stats.buffer_nodes, 2);  // im2col buffer + output buffer
}

TEST(Conv2d, PointwiseSkipsIm2colBuffer) {
  TaskGraph g;
  CanonicalBuilder b(g);
  ConvSpec spec;
  spec.in_channels = 8;
  spec.out_channels = 4;
  spec.in_height = spec.in_width = 4;
  spec.kernel = 1;
  const Stream x = b.source(8 * 16, "x");
  const ConvExpansion conv = conv2d_bn(b, x, spec, "conv");
  b.finish(conv.out);
  EXPECT_TRUE(g.validate().empty());
  // A 1x1 stride-1 conv reads every input element once: only the output
  // buffer remains.
  EXPECT_EQ(stats_of(g).buffer_nodes, 1);
}

TEST(Pooling, MaxAndGlobalAvg) {
  TaskGraph g;
  CanonicalBuilder b(g);
  const Stream x = b.source(2 * 6 * 6, "x");
  const Stream pooled = max_pool(b, x, 2, 6, 6, 2, 2, 0, "pool");
  EXPECT_EQ(pooled.volume, 2 * 3 * 3);
  const Stream gap = global_avg_pool(b, pooled, 2, 9, "gap");
  b.finish(gap);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(gap.volume, 2);
}

TEST(Transformer, BuildsValidGraphOfPaperScale) {
  const TaskGraph g = build_transformer_encoder(TransformerConfig{});
  EXPECT_TRUE(g.validate().empty());
  const ModelStats stats = stats_of(g);
  // Paper: 4,748 nodes, 37 buffers for the encoder layer. Our expansion
  // lands in the same regime (thousands of nodes, tens of buffers).
  EXPECT_GT(stats.nodes, 3000);
  EXPECT_LT(stats.nodes, 12000);
  EXPECT_GT(stats.buffer_nodes, 20);
  EXPECT_LT(stats.buffer_nodes, 200);
}

TEST(Transformer, ConfigGuards) {
  TransformerConfig cfg;
  cfg.heads = 3;  // does not divide 512
  EXPECT_THROW(build_transformer_encoder(cfg), std::invalid_argument);
}

TEST(Resnet50, BuildsValidGraphOfPaperScale) {
  const TaskGraph g = build_resnet50(ResNetConfig{});
  EXPECT_TRUE(g.validate().empty());
  const ModelStats stats = stats_of(g);
  // Paper: 54,252 nodes with 246 buffer nodes. Our channel-parallel
  // expansion lands in the same order of magnitude.
  EXPECT_GT(stats.nodes, 20000);
  EXPECT_LT(stats.nodes, 80000);
  EXPECT_GT(stats.buffer_nodes, 30);
  EXPECT_LT(stats.buffer_nodes, 400);
}

class MatmulShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(MatmulShapeSweep, ColumnParallelStructureHolds) {
  const auto [n, k, m] = GetParam();
  TaskGraph g;
  CanonicalBuilder b(g);
  const Stream a = b.source(n * k, "A");
  const MatmulExpansion mm = matmul_weights(b, a, n, k, m, "mm");
  b.finish(mm.out);
  ASSERT_TRUE(g.validate().empty());
  // Node budget: source + replicator + weight source + m tasks + interleave.
  EXPECT_EQ(g.node_count(), static_cast<std::size_t>(m) + 4);
  EXPECT_EQ(mm.out.volume, n * m);
  // Volume conservation through every dot task: I = n*k, O = n.
  for (const Stream& col : mm.column_streams) {
    EXPECT_EQ(g.input_volume(col.node), n * k);
    EXPECT_EQ(g.output_volume(col.node), n);
  }
  // Total work scales with n*k*m (each column task reads the full A).
  EXPECT_GE(g.total_work(), n * k * m);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulShapeSweep,
                         ::testing::Values(std::make_tuple(2, 2, 2),
                                           std::make_tuple(8, 4, 16),
                                           std::make_tuple(16, 32, 8),
                                           std::make_tuple(1, 64, 10),
                                           std::make_tuple(32, 1, 4)));

class SoftmaxShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(SoftmaxShapeSweep, VolumesAndBuffersScale) {
  const auto [rows, cols] = GetParam();
  TaskGraph g;
  CanonicalBuilder b(g);
  const Stream x = b.source(rows * cols, "x");
  const Stream y = softmax(b, x, rows, cols, "sm");
  b.finish(y);
  ASSERT_TRUE(g.validate().empty());
  EXPECT_EQ(y.volume, rows * cols);
  const ModelStats stats = stats_of(g);
  EXPECT_EQ(stats.buffer_nodes, 4);
  EXPECT_EQ(stats.pe_tasks, 6);
  // Row reductions have rate 1/cols.
  int reducers = 0;
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.node_count(); ++v) {
    if (g.kind(v) == NodeKind::kCompute && g.rate(v) == Rational(1, cols)) ++reducers;
  }
  EXPECT_EQ(reducers, 2);  // max and sum
}

INSTANTIATE_TEST_SUITE_P(Shapes, SoftmaxShapeSweep,
                         ::testing::Values(std::make_tuple(1, 8), std::make_tuple(4, 4),
                                           std::make_tuple(16, 64), std::make_tuple(64, 2)));

TEST(Resnet50, RejectsBadImageSize) {
  ResNetConfig cfg;
  cfg.image = 100;
  EXPECT_THROW(build_resnet50(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace sts
