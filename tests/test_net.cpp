// Net-layer coverage: the HTTP/1.1 parser subset (framing, limits, typed
// error statuses), the StsServer endpoints over real sockets (schedule
// round trips, /stats, /healthz, error paths, keep-alive), the graceful
// drain invariant (every accepted request is answered), RemoteBackend's
// settled-outcome mapping including transport errors against a dead server,
// and the fork/exec ServerProcess handshake + SIGTERM drain of a real
// sts-serve child.

#include "net/sts_server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/http.hpp"
#include "net/remote_backend.hpp"
#include "net/server_process.hpp"
#include "net/socket.hpp"
#include "service/schedule_service.hpp"
#include "support/json.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

ScheduleRequest chain_request(int tasks, std::uint64_t seed, std::int64_t pes = 4) {
  ScheduleRequest request;
  request.graph = make_chain(tasks, seed);
  request.scheduler = "streaming-rlx";
  request.machine.num_pes = pes;
  return request;
}

// ---------------------------------------------------------- HTTP/1.1 parser

TEST(HttpParser, RequestRoundTripsThroughRenderAndParse) {
  const std::string wire = render_http_request("POST", "/v1/schedule", "{\"x\": 1}");
  const HttpRequestParse parsed = parse_http_request(wire, HttpLimits{});
  ASSERT_EQ(parsed.status, HttpParseStatus::kComplete);
  EXPECT_EQ(parsed.consumed, wire.size());
  EXPECT_EQ(parsed.request.method, "POST");
  EXPECT_EQ(parsed.request.target, "/v1/schedule");
  EXPECT_EQ(parsed.request.body, "{\"x\": 1}");
  EXPECT_TRUE(parsed.request.keep_alive);
}

TEST(HttpParser, PartialInputNeedsMoreWithoutError) {
  const std::string wire = render_http_request("POST", "/v1/schedule", "{\"x\": 1}");
  for (std::size_t cut = 0; cut < wire.size(); cut += 7) {
    const HttpRequestParse parsed = parse_http_request(wire.substr(0, cut), HttpLimits{});
    EXPECT_EQ(parsed.status, HttpParseStatus::kNeedMore) << "cut at " << cut;
  }
}

TEST(HttpParser, PipelinedRequestsParseOneAtATime) {
  const std::string first = render_http_request("GET", "/healthz", "");
  const std::string second = render_http_request("POST", "/v1/schedule", "{}");
  std::string buffer = first + second;
  HttpRequestParse parsed = parse_http_request(buffer, HttpLimits{});
  ASSERT_EQ(parsed.status, HttpParseStatus::kComplete);
  EXPECT_EQ(parsed.request.target, "/healthz");
  buffer.erase(0, parsed.consumed);
  parsed = parse_http_request(buffer, HttpLimits{});
  ASSERT_EQ(parsed.status, HttpParseStatus::kComplete);
  EXPECT_EQ(parsed.request.target, "/v1/schedule");
  EXPECT_EQ(parsed.consumed, buffer.size());
}

TEST(HttpParser, MalformedRequestLineIs400) {
  for (const char* wire : {
           "GET /x HTTP/1.1 extra\r\n\r\n",   // four tokens
           "GET  /x HTTP/1.1\r\n\r\n",        // empty token
           "GET /x HTTP/2\r\n\r\n",           // unsupported version
           "GET /x HTTP/1.1\r\nbroken\r\n\r\n",  // colonless header
       }) {
    const HttpRequestParse parsed = parse_http_request(wire, HttpLimits{});
    EXPECT_EQ(parsed.status, HttpParseStatus::kError) << wire;
    EXPECT_EQ(parsed.error_status, 400) << wire;
  }
}

TEST(HttpParser, DuplicateOrBogusContentLengthIs400) {
  const HttpRequestParse dup = parse_http_request(
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi", HttpLimits{});
  EXPECT_EQ(dup.status, HttpParseStatus::kError);
  EXPECT_EQ(dup.error_status, 400);
  const HttpRequestParse bogus =
      parse_http_request("POST / HTTP/1.1\r\nContent-Length: 2x\r\n\r\nhi", HttpLimits{});
  EXPECT_EQ(bogus.status, HttpParseStatus::kError);
  EXPECT_EQ(bogus.error_status, 400);
}

TEST(HttpParser, TransferEncodingIs501) {
  const HttpRequestParse parsed = parse_http_request(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", HttpLimits{});
  EXPECT_EQ(parsed.status, HttpParseStatus::kError);
  EXPECT_EQ(parsed.error_status, 501);
}

TEST(HttpParser, LimitOverrunsAre413) {
  HttpLimits tight;
  tight.max_head_bytes = 64;
  tight.max_body_bytes = 8;
  // Head never terminates and already exceeds the cap: reject before buffering
  // more.
  const std::string long_head = "GET /" + std::string(100, 'a') + " HTTP/1.1\r\n";
  const HttpRequestParse head = parse_http_request(long_head, tight);
  EXPECT_EQ(head.status, HttpParseStatus::kError);
  EXPECT_EQ(head.error_status, 413);
  // Declared body exceeds the cap: reject from the header alone, before any
  // body bytes arrive.
  const HttpRequestParse body =
      parse_http_request("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n", tight);
  EXPECT_EQ(body.status, HttpParseStatus::kError);
  EXPECT_EQ(body.error_status, 413);
}

TEST(HttpParser, ResponseRoundTripsThroughRenderAndParse) {
  const std::string wire = render_http_response(503, "{\"status\": \"rejected\"}", false);
  const HttpResponseParse parsed = parse_http_response(wire, HttpLimits{});
  ASSERT_EQ(parsed.status, HttpParseStatus::kComplete);
  EXPECT_EQ(parsed.response.status, 503);
  EXPECT_FALSE(parsed.response.keep_alive);
  EXPECT_EQ(parsed.response.body, "{\"status\": \"rejected\"}");
}

// ------------------------------------------------------------- raw client

/// One blocking request/response exchange on an open connection.
HttpResponse http_exchange(const FdHandle& conn, const std::string& wire) {
  EXPECT_TRUE(send_all(conn.get(), wire));
  std::string buf;
  for (;;) {
    const HttpResponseParse parsed = parse_http_response(buf, HttpLimits{});
    if (parsed.status == HttpParseStatus::kComplete) return parsed.response;
    EXPECT_NE(parsed.status, HttpParseStatus::kError) << parsed.error;
    const long n = recv_some(conn.get(), buf, 1 << 20);
    if (n <= 0) {
      ADD_FAILURE() << "connection closed before a full response";
      return {};
    }
  }
}

HttpResponse one_shot(std::uint16_t port, const std::string& wire) {
  return http_exchange(connect_tcp("127.0.0.1", port), wire);
}

struct ServerFixture {
  std::shared_ptr<ScheduleService> service;
  std::unique_ptr<StsServer> server;

  explicit ServerFixture(std::size_t workers = 1) {
    ServiceConfig config;
    config.num_workers = workers;
    config.cache_capacity = 1 << 16;
    service = std::make_shared<ScheduleService>(config);
    server = std::make_unique<StsServer>(service);
  }
  [[nodiscard]] std::uint16_t port() const { return server->port(); }
};

// --------------------------------------------------------------- StsServer

TEST(StsServer, SchedulesOverTheWireMatchingInProcessResults) {
  ServerFixture fixture;
  const ScheduleRequest request = chain_request(24, 7);
  const ScheduleResponse local = ScheduleService().schedule(chain_request(24, 7));
  ASSERT_TRUE(local.ok());

  const HttpResponse reply =
      one_shot(fixture.port(), render_http_request("POST", "/v1/schedule", request.to_json()));
  EXPECT_EQ(reply.status, 200);
  const ScheduleResponse remote = ScheduleResponse::from_json(reply.body);
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote.result->makespan, local.result->makespan);
  EXPECT_EQ(remote.result->scheduler, local.result->scheduler);
}

TEST(StsServer, HealthzIsAliveAndStatsServesTheBackendDocument) {
  ServerFixture fixture;
  const HttpResponse health = one_shot(fixture.port(), render_http_request("GET", "/healthz", ""));
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(parse_json(health.body).at("status").as_string(), "ok");

  (void)fixture.service->schedule(chain_request(12, 1));
  const HttpResponse stats = one_shot(fixture.port(), render_http_request("GET", "/stats", ""));
  EXPECT_EQ(stats.status, 200);
  const JsonValue doc = parse_json(stats.body);
  EXPECT_EQ(doc.at("submitted").as_int(), 1);
  EXPECT_EQ(doc.at("completed").as_int(), 1);
  EXPECT_EQ(doc.at("schema_version").as_int(),
            static_cast<std::int64_t>(ScheduleService::kStatsSchemaVersion));
}

TEST(StsServer, ErrorPathsAnswerTypedStatusesAndEnvelopes) {
  ServerFixture fixture;
  const HttpResponse missing = one_shot(fixture.port(), render_http_request("GET", "/nope", ""));
  EXPECT_EQ(missing.status, 404);

  const HttpResponse bad_json =
      one_shot(fixture.port(), render_http_request("POST", "/v1/schedule", "{not json"));
  EXPECT_EQ(bad_json.status, 400);
  const ScheduleResponse envelope = ScheduleResponse::from_json(bad_json.body);
  EXPECT_EQ(envelope.status, ScheduleResponse::Status::kError);
  EXPECT_FALSE(envelope.error.empty());

  const HttpResponse wrong_method =
      one_shot(fixture.port(), render_http_request("GET", "/v1/schedule", ""));
  EXPECT_EQ(wrong_method.status, 404);

  // HTTP-level violations close the connection after the error reply.
  const HttpResponse not_impl = one_shot(
      fixture.port(), "POST /v1/schedule HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_EQ(not_impl.status, 501);
  EXPECT_FALSE(not_impl.keep_alive);
}

TEST(StsServer, KeepAliveServesManyRequestsOnOneConnection) {
  ServerFixture fixture;
  const FdHandle conn = connect_tcp("127.0.0.1", fixture.port());
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const HttpResponse reply = http_exchange(
        conn, render_http_request("POST", "/v1/schedule", chain_request(10, seed).to_json()));
    ASSERT_EQ(reply.status, 200) << "seed " << seed;
    EXPECT_TRUE(reply.keep_alive);
    EXPECT_TRUE(ScheduleResponse::from_json(reply.body).ok());
  }
  const StsServer::Stats stats = fixture.server->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.responses, 5u);
  EXPECT_EQ(stats.http_errors, 0u);
}

TEST(StsServer, DrainAnswersEveryAcceptedRequest) {
  ServerFixture fixture;
  RemoteConfig remote_config;
  remote_config.port = fixture.port();
  remote_config.connections = 4;
  auto remote = std::make_unique<RemoteBackend>(remote_config);

  std::vector<ServiceFuture> futures;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    futures.push_back(remote->submit(chain_request(16, seed)).future);
  }
  fixture.server->drain();  // races the submissions on purpose

  // Zero lost in flight: every future settles (result, or transport error for
  // requests the drain closed the door on), and the server answered exactly
  // what it accepted.
  std::size_t ok = 0;
  for (ServiceFuture& future : futures) {
    const Settled settled = future.settled();
    if (settled.result != nullptr) ++ok;
    else EXPECT_FALSE(settled.error.empty());
  }
  const StsServer::Stats stats = fixture.server->stats();
  EXPECT_EQ(stats.requests, stats.responses);
  EXPECT_LE(ok, static_cast<std::size_t>(stats.responses));
  const ServiceStats service_stats = fixture.service->stats();
  EXPECT_EQ(service_stats.submitted, service_stats.completed + service_stats.rejected);
  remote.reset();
}

// ----------------------------------------------------------- RemoteBackend

TEST(RemoteBackend, RoundTripsResultsAndSnapshotsServerStats) {
  ServerFixture fixture(2);
  RemoteConfig config;
  config.port = fixture.port();
  RemoteBackend remote(config);
  EXPECT_EQ(remote.worker_count(), fixture.service->worker_count());

  const ScheduleResponse response = remote.schedule(chain_request(20, 3));
  ASSERT_TRUE(response.ok());
  EXPECT_GT(response.result->makespan, 0);
  // The wire carries the summary, never the schedule artifacts.
  EXPECT_FALSE(response.result->streaming.has_value());

  remote.wait_idle();
  const ScheduleBackend::Snapshot snapshot = remote.stats_snapshot();
  EXPECT_EQ(snapshot.stats.submitted, 1u);
  EXPECT_EQ(snapshot.stats.completed, 1u);
  EXPECT_EQ(parse_json(snapshot.json).at("submitted").as_int(), 1);
}

TEST(RemoteBackend, RefusesConstructionWithoutAReachableServer) {
  RemoteConfig config;
  EXPECT_THROW(RemoteBackend{config}, std::invalid_argument);  // port 0
  config.port = 1;  // reserved port: nothing listens there
  config.probe_retries = 2;
  config.probe_retry_delay = std::chrono::milliseconds(1);
  EXPECT_THROW(RemoteBackend{config}, std::runtime_error);
}

TEST(RemoteBackend, SettlesWithTransportErrorWhenTheServerDies) {
  auto fixture = std::make_unique<ServerFixture>();
  RemoteConfig config;
  config.port = fixture->port();
  config.connections = 1;
  RemoteBackend remote(config);
  ASSERT_TRUE(remote.schedule(chain_request(8, 1)).ok());

  fixture->server->stop();
  fixture.reset();  // the port is gone

  const ScheduleResponse response = remote.schedule(chain_request(8, 2));
  EXPECT_EQ(response.status, ScheduleResponse::Status::kError);
  EXPECT_NE(response.error.find("remote backend"), std::string::npos);
  remote.wait_idle();  // must return despite the dead server
}

// ----------------------------------------------------------- ServerProcess

TEST(ServerProcess, SpawnsServesAndDrainsOnSigterm) {
  const std::string binary = default_sts_serve_binary();
  if (::access(binary.c_str(), X_OK) != 0) {
    GTEST_SKIP() << "sts_serve binary not found at " << binary;
  }
  ServerProcess child(binary, {"--port", "0", "--threads", "1"});
  ASSERT_NE(child.port(), 0);

  RemoteConfig config;
  config.port = child.port();
  {
    RemoteBackend remote(config);
    const ScheduleResponse response = remote.schedule(chain_request(16, 5));
    ASSERT_TRUE(response.ok());
    const ScheduleBackend::Snapshot snapshot = remote.stats_snapshot();
    EXPECT_EQ(snapshot.stats.submitted, 1u);
  }
  // SIGTERM runs the graceful drain; a clean drain exits 0.
  EXPECT_EQ(child.terminate(), 0);
}

TEST(ServerProcess, HandshakeFailureIsATypedError) {
  EXPECT_THROW(ServerProcess("/nonexistent/sts_serve", {}), std::runtime_error);
  // A process that never prints the listening line times out and is killed.
  EXPECT_THROW(ServerProcess("/bin/sleep", {"30"}, std::chrono::milliseconds(200)),
               std::runtime_error);
}

}  // namespace
}  // namespace sts
