#include "core/optimal_partition.hpp"

#include <gtest/gtest.h>

#include "core/streaming_scheduler.hpp"
#include "core/work_depth.hpp"
#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

TEST(OptimalPartition, SingleBlockWhenPesCoverGraph) {
  // With P >= N the all-in-one-block schedule is feasible; the optimum can
  // not be worse than it.
  const TaskGraph g = testing::figure8_graph();
  const OptimalPartitionResult best = optimal_partition_exhaustive(g, 5);
  EXPECT_TRUE(best.exhausted);
  const auto rlx = schedule_streaming_graph(g, 5, PartitionVariant::kRLX);
  EXPECT_LE(best.makespan, rlx.schedule.makespan);
  EXPECT_TRUE(partition_is_valid(g, best.partition, 5));
}

TEST(OptimalPartition, NeverWorseThanHeuristics) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    LayeredSpec spec;
    spec.layers = 4;
    spec.width = 2;
    const TaskGraph g = make_random_layered(spec, seed);
    const auto tasks = static_cast<std::int64_t>(g.node_count());
    for (const std::int64_t pes : {std::int64_t{2}, tasks / 2 + 1}) {
      const OptimalPartitionResult best = optimal_partition_exhaustive(g, pes);
      ASSERT_TRUE(best.exhausted) << "seed " << seed;
      const auto lts = schedule_streaming_graph(g, pes, PartitionVariant::kLTS);
      const auto rlx = schedule_streaming_graph(g, pes, PartitionVariant::kRLX);
      EXPECT_LE(best.makespan, lts.schedule.makespan) << "seed " << seed << " pes " << pes;
      EXPECT_LE(best.makespan, rlx.schedule.makespan) << "seed " << seed << " pes " << pes;
      EXPECT_TRUE(partition_is_valid(g, best.partition, pes));
    }
  }
}

TEST(OptimalPartition, ChainSplitsEvenly) {
  // A uniform element-wise chain of 6 tasks on 3 PEs: the optimum is two
  // blocks of 3 (makespan 2*(k + 2)).
  TaskGraph g;
  const std::int64_t k = 64;
  NodeId prev = g.add_source(k, "s");
  for (int i = 1; i < 6; ++i) {
    const NodeId next = g.add_compute("c" + std::to_string(i));
    g.add_edge(prev, next, k);
    prev = next;
  }
  g.declare_output(prev, k);
  const OptimalPartitionResult best = optimal_partition_exhaustive(g, 3);
  EXPECT_TRUE(best.exhausted);
  EXPECT_EQ(best.partition.block_count(), 2u);
  EXPECT_EQ(best.makespan, 2 * (k + 2));
}

TEST(OptimalPartition, CandidateBudgetReported) {
  const TaskGraph g = make_fft(8, 1);  // 23 tasks: far beyond exhaustive reach
  const OptimalPartitionResult capped = optimal_partition_exhaustive(g, 8, /*max=*/50);
  EXPECT_FALSE(capped.exhausted);
  EXPECT_EQ(capped.explored, 50);
  EXPECT_GT(capped.makespan, 0);  // still returns the best seen
}

TEST(OptimalPartition, RespectsBufferRelaying) {
  // Consumers behind a buffer may sit in any block at or after the
  // producers'; the enumerator must not place them earlier.
  const TaskGraph g = testing::buffer_split_example();
  const OptimalPartitionResult best = optimal_partition_exhaustive(g, 2);
  EXPECT_TRUE(best.exhausted);
  EXPECT_TRUE(partition_is_valid(g, best.partition, 2));
}

TEST(OptimalPartition, Guards) {
  EXPECT_THROW(optimal_partition_exhaustive(testing::figure8_graph(), 0),
               std::invalid_argument);
}

TEST(AppendixTheoremA1, ElementwiseBrentBoundHolds) {
  // Theorem A.1: for element-wise streaming graphs, T_P <= T1/P + T_s_inf.
  for (const std::int64_t k : {16, 64}) {
    for (const std::int64_t pes : {2, 3, 5}) {
      TaskGraph g;
      // Two parallel element-wise chains joined at the end.
      const NodeId s = g.add_source(k, "s");
      NodeId a = s, b = s;
      for (int i = 0; i < 3; ++i) {
        const NodeId na = g.add_compute("a" + std::to_string(i));
        g.add_edge(a, na, k);
        a = na;
        const NodeId nb = g.add_compute("b" + std::to_string(i));
        g.add_edge(b, nb, k);
        b = nb;
      }
      const NodeId join = g.add_compute("join");
      g.add_edge(a, join, k);
      g.add_edge(b, join, k);
      g.declare_output(join, k);

      const WorkDepth wd = analyze_work_depth(g);
      const auto r = schedule_streaming_graph(g, pes, PartitionVariant::kRLX);
      const double bound = static_cast<double>(wd.work) / static_cast<double>(pes) +
                           wd.streaming_depth.to_double();
      EXPECT_LE(static_cast<double>(r.schedule.makespan), bound + 1.0)
          << "k " << k << " pes " << pes;
      // And the lower bound: T_P >= T_s_inf - L (depth bound tolerance).
      EXPECT_GE(static_cast<double>(r.schedule.makespan),
                static_cast<double>(k));
    }
  }
}

TEST(AppendixTheoremA2, WorkOrderedBoundHolds) {
  // Theorem A.2 (elwise + downsampler graphs, Algorithm 2):
  // T_P <= T1/P + T_s_inf + min(n-1, (x-1)(L-1)).
  TaskGraph g;
  const NodeId s = g.add_source(128, "s");
  NodeId left = s, right = s;
  for (int i = 0; i < 3; ++i) {
    const NodeId l = g.add_compute("l" + std::to_string(i));
    g.add_edge(left, l, g.output_volume(left));
    g.declare_output(l, std::max<std::int64_t>(1, g.input_volume(l) / 2));
    left = l;
    const NodeId r = g.add_compute("r" + std::to_string(i));
    g.add_edge(right, r, g.output_volume(right));
    g.declare_output(r, g.input_volume(r));
    right = r;
  }
  const WorkDepth wd = analyze_work_depth(g);
  for (const std::int64_t pes : {2, 3}) {
    const SpatialPartition p = partition_by_work(g, pes);
    const StreamingSchedule sched = schedule_streaming(g, p);
    const auto n = static_cast<double>(g.node_count());
    const double levels = graph_level(g).to_double();
    const double x = 2.0;  // at most two distinct works per level here
    const double slack = std::min(n - 1.0, (x - 1.0) * (levels - 1.0));
    const double bound = static_cast<double>(wd.work) / static_cast<double>(pes) +
                         wd.streaming_depth.to_double() + slack;
    EXPECT_LE(static_cast<double>(sched.makespan), bound + levels)
        << "pes " << pes;
  }
}

}  // namespace
}  // namespace sts
