// Differential guarantee of the intra-request parallelism work: for every
// scheduler, every paper topology, and a sweep of fuzzed layered graphs, the
// full ScheduleResult produced at lane counts {2, 4, 8} (and auto) must be
// bit-identical — same fingerprint, see result_fingerprint.hpp — to the
// serial (intra_threads = 1) result. Plus unit coverage of the Parallel
// runtime itself (chunk coverage, deterministic combine order, exception
// propagation, nested regions) and of the wave-parallel rank/level kernels.
//
// The suites are named Parallel* so the CI ThreadSanitizer job's -R filter
// picks them up: the fork-join handshake of TaskPool runs under TSan here.

#include "support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "baseline/heft.hpp"
#include "baseline/list_scheduler.hpp"
#include "core/optimal_partition.hpp"
#include "graph/algorithms.hpp"
#include "paper_examples.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/result_fingerprint.hpp"
#include "service/schedule_service.hpp"
#include "support/workspace.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

constexpr std::int64_t kLaneSweep[] = {2, 4, 8, 0};  // 0 = auto/hardware

// ------------------------------------------------------------ runtime units

TEST(ParallelRuntime, LaneResolution) {
  EXPECT_EQ(Parallel().lanes(), 1);
  EXPECT_TRUE(Parallel().serial());
  EXPECT_EQ(Parallel(1).lanes(), 1);
  EXPECT_GE(Parallel(0).lanes(), 2) << "auto must engage the pool (>= 1 worker + caller)";
  EXPECT_GE(Parallel(64).lanes(), 2);
  EXPECT_LE(Parallel(64).lanes(), TaskPool::global().worker_count() + 1)
      << "lanes are clamped to the pool size";
  EXPECT_EQ(Parallel(2).lanes(), 2);
}

TEST(ParallelRuntime, ForRangeRunsEveryIndexExactlyOnce) {
  for (const std::int64_t lanes : kLaneSweep) {
    const Parallel parallel(lanes);
    constexpr std::int64_t kN = 10'007;  // prime: uneven chunk boundaries
    std::vector<std::atomic<int>> touched(kN);
    parallel.for_range(kN, 16, [&](std::int64_t begin, std::int64_t end) {
      ASSERT_LE(0, begin);
      ASSERT_LE(begin, end);
      ASSERT_LE(end, kN);
      for (std::int64_t i = begin; i < end; ++i) {
        touched[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(touched[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelRuntime, ForRangeRespectsGrain) {
  const Parallel parallel(8);
  std::atomic<int> chunks{0};
  parallel.for_range(100, 64, [&](std::int64_t begin, std::int64_t end) {
    ++chunks;
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 100);
  });
  EXPECT_EQ(chunks.load(), 1) << "n < 2 * grain must run as one inline chunk";
}

TEST(ParallelRuntime, MapReduceMatchesSerialSum) {
  constexpr std::int64_t kN = 100'000;
  std::int64_t expected = 0;
  for (std::int64_t i = 0; i < kN; ++i) expected += i * i % 1'000'003;
  for (const std::int64_t lanes : kLaneSweep) {
    const std::int64_t got = Parallel(lanes).map_reduce(
        kN, 1024, std::int64_t{0},
        [](std::int64_t begin, std::int64_t end, std::int64_t& acc) {
          for (std::int64_t i = begin; i < end; ++i) acc += i * i % 1'000'003;
        },
        [](std::int64_t& into, const std::int64_t& from) { into += from; });
    EXPECT_EQ(got, expected) << "lanes=" << lanes;
  }
}

TEST(ParallelRuntime, MapReduceCombinesInAscendingChunkOrder) {
  // A non-commutative reduction (sequence concatenation) observes the
  // combine order directly: the documented contract is ascending chunk
  // order, which must reassemble [0, n) exactly.
  constexpr std::int64_t kN = 4096;
  const std::vector<std::int64_t> got = Parallel(8).map_reduce(
      kN, 64, std::vector<std::int64_t>{},
      [](std::int64_t begin, std::int64_t end, std::vector<std::int64_t>& acc) {
        for (std::int64_t i = begin; i < end; ++i) acc.push_back(i);
      },
      [](std::vector<std::int64_t>& into, const std::vector<std::int64_t>& from) {
        into.insert(into.end(), from.begin(), from.end());
      });
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN));
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i) << "combine order broke at " << i;
  }
}

TEST(ParallelRuntime, ExceptionPropagatesAndPoolStaysUsable) {
  const Parallel parallel(4);
  EXPECT_THROW(parallel.for_range(10'000, 1,
                                  [](std::int64_t begin, std::int64_t) {
                                    if (begin >= 0) throw std::runtime_error("chunk boom");
                                  }),
               std::runtime_error);
  // The pool must have fully settled: an immediate next region works.
  std::atomic<std::int64_t> sum{0};
  parallel.for_range(1'000, 1, [&](std::int64_t begin, std::int64_t end) {
    sum.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1'000);
}

TEST(ParallelRuntime, NestedRegionsRunInlineWithoutDeadlock) {
  const Parallel outer(4);
  std::atomic<std::int64_t> total{0};
  outer.for_range(64, 1, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      // A nested region (from a pool worker, or while the pool is busy)
      // must fall back to an inline sweep instead of waiting on the pool.
      Parallel(4).for_range(100, 1, [&](std::int64_t b, std::int64_t e) {
        total.fetch_add(e - b, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 64 * 100);
}

// ------------------------------------------------- wave-parallel primitives

TEST(ParallelWaves, TopologicalWavesPartitionRespectsEdges) {
  const TaskGraph g = make_gaussian_elimination(6, 11);
  const TopoWaves waves = topological_waves(g);
  ASSERT_EQ(waves.order.size(), static_cast<std::size_t>(g.node_count()));
  ASSERT_GE(waves.wave_count(), 1u);
  // wave_of[v]: index of the wave containing v; every edge must point to a
  // strictly later wave.
  std::vector<std::size_t> wave_of(waves.order.size());
  for (std::size_t w = 0; w + 1 < waves.offsets.size(); ++w) {
    for (std::size_t i = waves.offsets[w]; i < waves.offsets[w + 1]; ++i) {
      wave_of[static_cast<std::size_t>(waves.order[i])] = w;
    }
  }
  for (const Edge& e : g.edges()) {
    EXPECT_LT(wave_of[static_cast<std::size_t>(e.src)], wave_of[static_cast<std::size_t>(e.dst)]);
  }
  // Reverse waves: every edge points to a strictly later reverse-wave of its
  // source, i.e. successors settle first.
  const TopoWaves reverse = topological_waves(g, /*reverse=*/true);
  std::vector<std::size_t> rev_wave_of(reverse.order.size());
  for (std::size_t w = 0; w + 1 < reverse.offsets.size(); ++w) {
    for (std::size_t i = reverse.offsets[w]; i < reverse.offsets[w + 1]; ++i) {
      rev_wave_of[static_cast<std::size_t>(reverse.order[i])] = w;
    }
  }
  for (const Edge& e : g.edges()) {
    EXPECT_LT(rev_wave_of[static_cast<std::size_t>(e.dst)],
              rev_wave_of[static_cast<std::size_t>(e.src)]);
  }
}

TEST(ParallelWaves, RankAndLevelKernelsMatchSerialAtEveryLaneCount) {
  const TaskGraph graphs[] = {testing::figure8_graph(), testing::buffer_split_example(),
                              make_fft(16, 3), make_cholesky(4, 5)};
  for (const TaskGraph& g : graphs) {
    const std::vector<Rational> levels = node_levels(g);
    const std::vector<std::int64_t> bl = bottom_levels(g);
    const HeterogeneousSystem sys = HeterogeneousSystem::homogeneous(4);
    const std::vector<double> ranks = upward_ranks(g, sys);
    for (const std::int64_t lanes : kLaneSweep) {
      Workspace ws(lanes);
      EXPECT_EQ(node_levels(g, &ws), levels);
      EXPECT_EQ(bottom_levels(g, &ws), bl);
      EXPECT_EQ(upward_ranks(g, sys, &ws), ranks) << "double ops must be bit-identical";
    }
  }
}

// --------------------------------------------------- end-to-end differential

std::uint64_t fingerprint_at(const std::string& scheduler, const TaskGraph& graph,
                             std::int64_t pes, std::int64_t lanes) {
  MachineConfig machine;
  machine.num_pes = pes;
  machine.intra_threads = lanes;
  return result_fingerprint(schedule_by_name(scheduler, graph, machine));
}

TEST(ParallelScheduleDifferential, PaperTopologiesBitIdenticalAcrossLanes) {
  const struct {
    const char* name;
    TaskGraph graph;
  } cases[] = {
      {"figure8", testing::figure8_graph()},
      {"figure9-1", testing::figure9_graph1()},
      {"figure9-2", testing::figure9_graph2()},
      {"buffer-split", testing::buffer_split_example()},
      {"fft16", make_fft(16, 7)},
      {"gaussian6", make_gaussian_elimination(6, 7)},
      {"cholesky4", make_cholesky(4, 7)},
  };
  const std::vector<std::string> schedulers = SchedulerRegistry::instance().names();
  ASSERT_GE(schedulers.size(), 5u);
  for (const auto& c : cases) {
    for (const std::string& scheduler : schedulers) {
      for (const std::int64_t pes : {2, 8}) {
        std::uint64_t serial = 0;
        try {
          serial = fingerprint_at(scheduler, c.graph, pes, 1);
        } catch (const std::invalid_argument&) {
          // Scheduler/graph combination is out of scope serially (e.g. the
          // CSDF analysis rejects buffer nodes); it must stay out of scope —
          // with the same refusal — at every lane count.
          for (const std::int64_t lanes : kLaneSweep) {
            EXPECT_THROW((void)fingerprint_at(scheduler, c.graph, pes, lanes),
                         std::invalid_argument)
                << c.name << " / " << scheduler << " / lanes=" << lanes;
          }
          continue;
        }
        for (const std::int64_t lanes : kLaneSweep) {
          EXPECT_EQ(fingerprint_at(scheduler, c.graph, pes, lanes), serial)
              << c.name << " / " << scheduler << " / pes=" << pes << " / lanes=" << lanes;
        }
      }
    }
  }
}

TEST(ParallelScheduleDifferential, FuzzedLayeredGraphsBitIdenticalAcrossLanes) {
  const std::vector<std::string> schedulers = SchedulerRegistry::instance().names();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const LayeredSpec spec{/*layers=*/8, /*width=*/10, /*edge_probability=*/0.3,
                           /*max_skip=*/2};
    const TaskGraph g = make_random_layered(spec, seed);
    for (const std::string& scheduler : schedulers) {
      std::uint64_t serial = 0;
      try {
        serial = fingerprint_at(scheduler, g, 6, 1);
      } catch (const std::invalid_argument&) {
        continue;  // combination out of scope serially; covered above
      }
      for (const std::int64_t lanes : {4, 0}) {
        EXPECT_EQ(fingerprint_at(scheduler, g, 6, lanes), serial)
            << "seed=" << seed << " / " << scheduler << " / lanes=" << lanes;
      }
    }
  }
}

TEST(ParallelScheduleDifferential, SimulatedRequestsBitIdenticalAcrossLanes) {
  // End-to-end through the envelope + service, exercising the bulk-advance
  // candidate prefilter: per-request intra_threads, separate services so the
  // lane-4 run actually computes instead of hitting the lane-1 cache entry.
  const TaskGraph g = make_fft(16, 13);
  const auto run = [&](std::int64_t lanes) {
    ScheduleService service(ServiceConfig{/*num_workers=*/2});
    ScheduleRequest request;
    request.graph = g;
    request.scheduler = "streaming-rlx";
    request.machine.num_pes = 8;
    request.sim = SimOptions{};
    request.intra_threads = lanes;
    const ScheduleResponse response = service.schedule(std::move(request));
    EXPECT_TRUE(response.ok()) << response.error;
    return result_fingerprint(*response.result);
  };
  const std::uint64_t serial = run(1);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(0), serial);
}

TEST(ParallelScheduleDifferential, OptimalPartitionSearchMatchesSerial) {
  // Small graphs only — the search space is exponential (see the NP-hardness
  // note in optimal_partition.hpp); these stay in the thousands of
  // candidates. Also exercised capped, where the enumeration-order winner
  // and the explored count must survive batching exactly.
  const TaskGraph graphs[] = {testing::figure8_graph(),
                              make_random_layered({4, 2, 0.4, 1}, 2)};
  for (const TaskGraph& g : graphs) {
    for (const std::int64_t pes : {2, 3}) {
      for (const std::int64_t max_candidates : {std::int64_t{40}, std::int64_t{2'000'000}}) {
        const OptimalPartitionResult serial = optimal_partition_exhaustive(g, pes, max_candidates);
        for (const std::int64_t lanes : kLaneSweep) {
          Workspace ws(lanes);
          const OptimalPartitionResult par =
              optimal_partition_exhaustive(g, pes, max_candidates, &ws);
          EXPECT_EQ(par.makespan, serial.makespan);
          EXPECT_EQ(par.explored, serial.explored);
          EXPECT_EQ(par.exhausted, serial.exhausted);
          EXPECT_EQ(par.partition.blocks, serial.partition.blocks)
              << "first-strict-minimum winner must not depend on lanes=" << lanes;
          EXPECT_EQ(par.partition.block_of, serial.partition.block_of);
        }
      }
    }
  }
}

// ------------------------------------------------------- envelope plumbing

TEST(ParallelRequestEnvelope, IntraThreadsRoundTripsAndStaysOutOfTheKey) {
  ScheduleRequest request;
  request.graph = testing::figure8_graph();
  request.scheduler = "streaming-rlx";
  request.machine.num_pes = 4;
  const std::string base_key = request.key();

  ScheduleRequest hinted = request;
  hinted.intra_threads = 4;
  EXPECT_EQ(hinted.key(), base_key) << "a pure execution knob must not split the cache";

  const ScheduleRequest parsed = ScheduleRequest::from_json(hinted.to_json());
  ASSERT_TRUE(parsed.intra_threads.has_value());
  EXPECT_EQ(*parsed.intra_threads, 4);
  EXPECT_EQ(parsed.key(), base_key);

  const ScheduleRequest unhinted = ScheduleRequest::from_json(request.to_json());
  EXPECT_FALSE(unhinted.intra_threads.has_value());

  EXPECT_THROW((void)ScheduleRequest::from_json(
                   R"({"schema_version": 1, "scheduler": "streaming-rlx",
                       "graph": {"generator": "chain", "param": 4, "seed": 1},
                       "intra_threads": -1})"),
               std::invalid_argument);
}

TEST(ParallelRequestEnvelope, MachineRejectsNegativeLanes) {
  MachineConfig machine;
  machine.num_pes = 4;
  machine.intra_threads = -1;
  EXPECT_THROW((void)schedule_by_name("streaming-rlx", testing::figure8_graph(), machine),
               std::invalid_argument);
  EXPECT_THROW(ScheduleService(ServiceConfig{1, 1024, 0, /*intra_threads=*/-2}),
               std::invalid_argument);
}

TEST(ParallelRequestEnvelope, ServiceTtlExpiresCachedResults) {
  ServiceConfig config;
  config.num_workers = 1;
  config.cache_ttl = std::chrono::nanoseconds{0};
  ScheduleService service(config);
  ScheduleRequest request;
  request.graph = testing::figure8_graph();
  request.scheduler = "streaming-rlx";
  request.machine.num_pes = 4;

  const ScheduleResponse first = service.schedule(request);
  ASSERT_TRUE(first.ok());
  const ScheduleResponse second = service.schedule(request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(result_fingerprint(*first.result), result_fingerprint(*second.result));

  const ScheduleService::Stats stats = service.stats();
  EXPECT_EQ(stats.cache.misses, 2u) << "a zero ttl must force recomputation";
  // One entry dropped by the second submission's probe, plus the second
  // result which (zero ttl) is already expired-but-resident at the snapshot
  // — stats() reports both so it always agrees with lookup behavior.
  EXPECT_EQ(stats.cache.expired, 2u);
  EXPECT_EQ(stats.fast_path_hits, 0u);
  EXPECT_NE(service.stats_json().find("\"cache_expired\": 2"), std::string::npos);
}

}  // namespace
}  // namespace sts
