#include "core/partition.hpp"

#include <gtest/gtest.h>

#include "paper_examples.hpp"
#include "workloads/synthetic.hpp"

namespace sts {
namespace {

TEST(Partition, ChainStaysTogetherWithinCapacity) {
  // Element-wise chains produce equal volumes: SB-LTS keeps them streaming.
  TaskGraph g;
  NodeId prev = g.add_source(16, "s");
  for (int i = 1; i < 8; ++i) {
    const NodeId next = g.add_compute("c" + std::to_string(i));
    g.add_edge(prev, next, 16);
    prev = next;
  }
  g.declare_output(prev, 16);
  const SpatialPartition p = partition_spatial_blocks(g, 8, PartitionVariant::kLTS);
  EXPECT_EQ(p.block_count(), 1u);
  EXPECT_EQ(p.blocks[0].size(), 8u);
}

TEST(Partition, CapacityCutsBlocks) {
  TaskGraph g;
  NodeId prev = g.add_source(16, "s");
  for (int i = 1; i < 8; ++i) {
    const NodeId next = g.add_compute("c" + std::to_string(i));
    g.add_edge(prev, next, 16);
    prev = next;
  }
  g.declare_output(prev, 16);
  const SpatialPartition p = partition_spatial_blocks(g, 3, PartitionVariant::kRLX);
  EXPECT_EQ(p.block_count(), 3u);  // ceil(8/3)
  EXPECT_EQ(p.blocks[0].size(), 3u);
  EXPECT_EQ(p.blocks[1].size(), 3u);
  EXPECT_EQ(p.blocks[2].size(), 2u);
  EXPECT_TRUE(partition_is_valid(g, p, 3));
}

TEST(Partition, LtsRejectsFasterProducerThanSource) {
  // source (4) -> upsampler (16): the upsampler would slow the source, so
  // SB-LTS puts it into its own block; SB-RLX keeps them together.
  TaskGraph g;
  const NodeId s = g.add_source(4, "s");
  const NodeId up = g.add_compute("up");
  g.add_edge(s, up, 4);
  g.declare_output(up, 16);
  const SpatialPartition lts = partition_spatial_blocks(g, 2, PartitionVariant::kLTS);
  EXPECT_EQ(lts.block_count(), 2u);
  const SpatialPartition rlx = partition_spatial_blocks(g, 2, PartitionVariant::kRLX);
  EXPECT_EQ(rlx.block_count(), 1u);
  EXPECT_TRUE(partition_is_valid(g, lts, 2));
  EXPECT_TRUE(partition_is_valid(g, rlx, 2));
}

TEST(Partition, DownsamplersAlwaysJoin) {
  TaskGraph g;
  const NodeId s = g.add_source(64, "s");
  const NodeId d = g.add_compute("d");
  g.add_edge(s, d, 64);
  g.declare_output(d, 4);
  const SpatialPartition p = partition_spatial_blocks(g, 2, PartitionVariant::kLTS);
  EXPECT_EQ(p.block_count(), 1u);
}

TEST(Partition, RlxFillsBlocksToCapacity) {
  // Paper Section 5.2: with SB-RLX all blocks except the last hold P tasks.
  const TaskGraph g = make_fft(16, /*seed=*/7);
  const std::int64_t pes = 16;
  const SpatialPartition p = partition_spatial_blocks(g, pes, PartitionVariant::kRLX);
  for (std::size_t b = 0; b + 1 < p.block_count(); ++b) {
    EXPECT_EQ(p.blocks[b].size(), static_cast<std::size_t>(pes)) << "block " << b;
  }
  EXPECT_TRUE(partition_is_valid(g, p, pes));
}

TEST(Partition, LtsNeverExceedsRlxBlockCount) {
  // SB-RLX partitions into at most as many blocks as SB-LTS.
  for (const std::uint64_t seed : {1u, 4u, 9u, 16u}) {
    const TaskGraph g = make_gaussian_elimination(8, seed);
    const auto lts = partition_spatial_blocks(g, 8, PartitionVariant::kLTS);
    const auto rlx = partition_spatial_blocks(g, 8, PartitionVariant::kRLX);
    EXPECT_LE(rlx.block_count(), lts.block_count()) << "seed " << seed;
  }
}

TEST(Partition, SingleBlockWhenPesCoverGraph) {
  const TaskGraph g = make_cholesky(4, /*seed=*/3);
  const auto tasks = static_cast<std::int64_t>(g.node_count());
  const SpatialPartition p = partition_spatial_blocks(g, tasks, PartitionVariant::kRLX);
  EXPECT_EQ(p.block_count(), 1u);
}

TEST(Partition, BufferNodesCarryNoBlockAndNoCapacity) {
  const TaskGraph g = testing::buffer_split_example();
  const SpatialPartition p = partition_spatial_blocks(g, 5, PartitionVariant::kRLX);
  EXPECT_EQ(p.block_of[3], -1);  // the buffer
  std::size_t placed = 0;
  for (const auto& block : p.blocks) placed += block.size();
  EXPECT_EQ(placed, 5u);  // 5 PE nodes
  EXPECT_TRUE(partition_is_valid(g, p, 5));
}

TEST(Partition, DependenciesFlowForward) {
  for (const std::uint64_t seed : {2u, 5u, 11u}) {
    const TaskGraph g = make_fft(16, seed);
    for (const auto variant : {PartitionVariant::kLTS, PartitionVariant::kRLX}) {
      const SpatialPartition p = partition_spatial_blocks(g, 8, variant);
      EXPECT_TRUE(partition_is_valid(g, p, 8))
          << "seed " << seed << " variant " << to_string(variant);
    }
  }
}

TEST(Partition, ThrowsOnBadPeCount) {
  const TaskGraph g = testing::figure8_graph();
  EXPECT_THROW(partition_spatial_blocks(g, 0, PartitionVariant::kLTS), std::invalid_argument);
}

TEST(PartitionByWork, PicksHeaviestReadyFirst) {
  // Algorithm 2 (Appendix A.2): ready node with the highest work first.
  TaskGraph g;
  const NodeId s = g.add_source(64, "s");
  const NodeId d1 = g.add_compute("d1");  // work 64
  const NodeId d2 = g.add_compute("d2");  // work 16
  g.add_edge(s, d1, 64);
  g.add_edge(d1, d2, 16);
  g.declare_output(d2, 4);
  const SpatialPartition p = partition_by_work(g, 2);
  ASSERT_EQ(p.block_count(), 2u);
  EXPECT_EQ(p.blocks[0], (std::vector<NodeId>{s, d1}));
  EXPECT_EQ(p.blocks[1], (std::vector<NodeId>{d2}));
}

TEST(PartitionByWork, NonIncreasingBlockMaxima) {
  // The proof of Theorem A.2 relies on work being non-increasing along the
  // pick order for elwise+downsampler graphs.
  TaskGraph g;
  const NodeId s = g.add_source(64, "s");
  NodeId left = s;
  NodeId right = s;
  for (int i = 0; i < 3; ++i) {
    const NodeId l = g.add_compute("l" + std::to_string(i));
    g.add_edge(left, l, g.output_volume(left));
    g.declare_output(l, g.input_volume(l) / 2);
    left = l;
    const NodeId r = g.add_compute("r" + std::to_string(i));
    g.add_edge(right, r, g.output_volume(right));
    g.declare_output(r, g.input_volume(r));
    right = r;
  }
  const SpatialPartition p = partition_by_work(g, 3);
  std::int64_t prev_max = std::numeric_limits<std::int64_t>::max();
  for (const auto& block : p.blocks) {
    std::int64_t block_max = 0;
    for (const NodeId v : block) block_max = std::max(block_max, g.work(v));
    EXPECT_LE(block_max, prev_max);
    prev_max = block_max;
  }
  EXPECT_TRUE(partition_is_valid(g, p, 3));
}

TEST(PartitionIsValid, DetectsCorruptAssignments) {
  const TaskGraph g = testing::figure8_graph();
  SpatialPartition p = partition_spatial_blocks(g, 8, PartitionVariant::kRLX);
  ASSERT_TRUE(partition_is_valid(g, p, 8));
  SpatialPartition broken = p;
  broken.block_of[2] = 7;  // points outside any block
  EXPECT_FALSE(partition_is_valid(g, broken, 8));
  SpatialPartition backwards = p;
  if (backwards.blocks.size() == 1) {
    // Fabricate a backwards dependency: split node 0 into a later block.
    backwards.blocks.push_back({0});
    backwards.blocks[0].erase(
        std::find(backwards.blocks[0].begin(), backwards.blocks[0].end(), 0));
    backwards.block_of[0] = 1;
    EXPECT_FALSE(partition_is_valid(g, backwards, 8));
  }
}

}  // namespace
}  // namespace sts
